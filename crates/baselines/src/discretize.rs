//! Discretized views of instances for count-based synthesizers.
//!
//! PrivBayes and the NIST method operate on contingency tables, so numeric
//! attributes are quantized into their schema-declared bins and everything
//! becomes a code in `0..card`. Decoding inverts through
//! [`Quantizer::sample_in_bin`].

use kamino_data::{Instance, Quantizer, Schema, Value};
use rand::Rng;

/// A fully discrete view of an instance: `codes[i][j]` is the bin/code of
/// row `i`, attribute `j`.
pub struct Discretized {
    /// Row-major codes.
    pub codes: Vec<Vec<u32>>,
    /// Per-attribute cardinalities (label count or bin count).
    pub cards: Vec<usize>,
    quantizers: Vec<Quantizer>,
    clamped: u64,
}

impl Discretized {
    /// Quantizes `inst` against `schema`. Out-of-domain categorical codes
    /// fold into the last bin and are tallied in
    /// [`Discretized::clamped`] — the same
    /// `kamino_data::stats::histogram_with_clamped` semantics the eval
    /// crate's marginal tables use, so a malformed synthetic cell is
    /// counted identically everywhere instead of panicking here and
    /// clamping silently there.
    pub fn from_instance(schema: &Schema, inst: &Instance) -> Discretized {
        let quantizers: Vec<Quantizer> = schema.attrs().iter().map(Quantizer::for_attr).collect();
        let cards: Vec<usize> = quantizers.iter().map(Quantizer::n_bins).collect();
        let mut clamped: u64 = 0;
        let codes = (0..inst.n_rows())
            .map(|i| {
                (0..schema.len())
                    .map(|j| {
                        let (bin, out_of_domain) = quantizers[j].bin_checked(inst.value(i, j));
                        if out_of_domain {
                            clamped = clamped.saturating_add(1);
                        }
                        bin as u32
                    })
                    .collect()
            })
            .collect();
        Discretized {
            codes,
            cards,
            quantizers,
            clamped,
        }
    }

    /// How many cells carried categorical codes outside the declared
    /// domain (folded into the last bin). Nonzero means the instance was
    /// produced by buggy encoding upstream; count-based synthesizers can
    /// still proceed on the folded view.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.codes.len()
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.cards.len()
    }

    /// Decodes one attribute's code back to a schema value (uniform within
    /// the bin for numeric attributes).
    pub fn decode<R: Rng + ?Sized>(&self, attr: usize, code: u32, rng: &mut R) -> Value {
        self.quantizers[attr].sample_in_bin(code as usize, rng)
    }

    /// Marginal counts of one attribute.
    pub fn marginal(&self, attr: usize) -> Vec<f64> {
        let mut counts = vec![0.0; self.cards[attr]];
        for row in &self.codes {
            counts[row[attr] as usize] += 1.0;
        }
        counts
    }

    /// Joint counts of an attribute pair, row-major `card(a) × card(b)`.
    pub fn joint2(&self, a: usize, b: usize) -> Vec<f64> {
        let cb = self.cards[b];
        let mut counts = vec![0.0; self.cards[a] * cb];
        for row in &self.codes {
            counts[row[a] as usize * cb + row[b] as usize] += 1.0;
        }
        counts
    }

    /// Joint counts of target `x` against an arbitrary parent set: returns
    /// `(counts, parent_config_index)` where configs are mixed-radix codes
    /// over the parents. Layout: `counts[config * card(x) + x_code]`.
    pub fn joint_with_parents(&self, x: usize, parents: &[usize]) -> Vec<f64> {
        let n_cfg: usize = parents
            .iter()
            .map(|&p| self.cards[p])
            .product::<usize>()
            .max(1);
        let cx = self.cards[x];
        let mut counts = vec![0.0; n_cfg * cx];
        for row in &self.codes {
            let cfg = self.config_of(row, parents);
            counts[cfg * cx + row[x] as usize] += 1.0;
        }
        counts
    }

    /// Mixed-radix parent configuration index of a row.
    pub fn config_of(&self, row: &[u32], parents: &[usize]) -> usize {
        let mut cfg = 0usize;
        for &p in parents {
            cfg = cfg * self.cards[p] + row[p] as usize;
        }
        cfg
    }

    /// Number of parent configurations.
    pub fn n_configs(&self, parents: &[usize]) -> usize {
        parents
            .iter()
            .map(|&p| self.cards[p])
            .product::<usize>()
            .max(1)
    }
}

/// Mutual information (in nats) between a target and a parent set, computed
/// from raw (possibly noisy, nonnegative) joint counts laid out as in
/// [`Discretized::joint_with_parents`].
pub fn mutual_information(counts: &[f64], card_x: usize) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let n_cfg = counts.len() / card_x;
    let mut px = vec![0.0; card_x];
    let mut pc = vec![0.0; n_cfg];
    for cfg in 0..n_cfg {
        for x in 0..card_x {
            let p = counts[cfg * card_x + x] / total;
            px[x] += p;
            pc[cfg] += p;
        }
    }
    let mut mi = 0.0;
    for cfg in 0..n_cfg {
        for x in 0..card_x {
            let pxy = counts[cfg * card_x + x] / total;
            if pxy > 0.0 && px[x] > 0.0 && pc[cfg] > 0.0 {
                mi += pxy * (pxy / (px[x] * pc[cfg])).ln();
            }
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_data::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Schema, Discretized) {
        let s = Schema::new(vec![
            Attribute::categorical_indexed("a", 2).unwrap(),
            Attribute::numeric("x", 0.0, 10.0, 5).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Cat((i % 2) as u32), Value::Num((i % 2) as f64 * 9.0)])
            .collect();
        let inst = Instance::from_rows(&s, &rows).unwrap();
        let d = Discretized::from_instance(&s, &inst);
        (s, d)
    }

    #[test]
    fn shapes_and_cards() {
        let (_, d) = setup();
        assert_eq!(d.n_rows(), 20);
        assert_eq!(d.n_attrs(), 2);
        assert_eq!(d.cards, vec![2, 5]);
    }

    #[test]
    fn marginals_count_correctly() {
        let (_, d) = setup();
        assert_eq!(d.marginal(0), vec![10.0, 10.0]);
        let mx = d.marginal(1);
        assert_eq!(mx[0], 10.0); // x = 0 → bin 0
        assert_eq!(mx[4], 10.0); // x = 9 → bin 4
    }

    #[test]
    fn joint_counts() {
        let (_, d) = setup();
        let j = d.joint2(0, 1);
        // a=0 ↔ bin 0, a=1 ↔ bin 4, perfectly correlated
        assert_eq!(j[0], 10.0);
        assert_eq!(j[5 + 4], 10.0); // row a=1, col bin 4
        assert_eq!(j.iter().sum::<f64>(), 20.0);
    }

    #[test]
    fn parent_configs_mixed_radix() {
        let (_, d) = setup();
        assert_eq!(d.n_configs(&[0, 1]), 10);
        assert_eq!(d.n_configs(&[]), 1);
        assert_eq!(d.config_of(&[1, 3], &[0, 1]), 5 + 3); // row 1, col 3
    }

    #[test]
    fn mi_detects_dependence() {
        let (_, d) = setup();
        let dependent = mutual_information(&d.joint_with_parents(0, &[1]), 2);
        // a vs itself through x is perfectly informative: MI = ln 2
        assert!((dependent - (2.0f64).ln()).abs() < 1e-9);
        // MI with no parents is zero
        let none = mutual_information(&d.joint_with_parents(0, &[]), 2);
        assert_eq!(none, 0.0);
    }

    #[test]
    fn mi_on_independent_attrs_near_zero() {
        let s = Schema::new(vec![
            Attribute::categorical_indexed("a", 2).unwrap(),
            Attribute::categorical_indexed("b", 2).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Cat((i % 2) as u32), Value::Cat(((i / 2) % 2) as u32)])
            .collect();
        let inst = Instance::from_rows(&s, &rows).unwrap();
        let d = Discretized::from_instance(&s, &inst);
        let mi = mutual_information(&d.joint_with_parents(0, &[1]), 2);
        assert!(mi < 1e-9, "independent attrs gave MI {mi}");
    }

    #[test]
    fn decode_respects_domain() {
        let (s, d) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        for code in 0..5u32 {
            let v = d.decode(1, code, &mut rng);
            assert!(s.attr(1).validate(v).is_ok());
        }
    }

    #[test]
    fn mi_zero_on_empty_counts() {
        assert_eq!(mutual_information(&[0.0, 0.0, 0.0, 0.0], 2), 0.0);
    }
}
