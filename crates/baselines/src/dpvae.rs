//! DP-VAE (Chen et al., "Differentially Private Data Generative Models").
//!
//! A variational auto-encoder over the mixed one-hot/standardized encoding,
//! trained with DP-SGD (per-example clipping + Gaussian noise, the same
//! optimizer Kamino's sub-models use). Synthesis decodes latent-prior
//! samples `z ∼ N(0, I)`; tuples are therefore i.i.d., which is why DP-VAE
//! shows the largest DC-violation rates in Table 2.

use kamino_data::encode::Segment;
use kamino_data::{Instance, MixedEncoder, Schema};
use kamino_dp::normal::standard_normal;
use kamino_dp::{calibrate_sgm_sigma, poisson_sample, Budget};
use kamino_nn::mlp::MlpCache;
use kamino_nn::{loss, DpSgd, Mlp, ParamBlock, PerExampleModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Synthesizer;

/// DP-VAE configuration.
#[derive(Debug, Clone)]
pub struct DpVae {
    /// Latent dimension.
    pub latent: usize,
    /// Hidden width of encoder/decoder.
    pub hidden: usize,
    /// DP-SGD steps.
    pub steps: usize,
    /// Expected batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    /// Per-example clip.
    pub clip: f64,
    /// KL term weight (β-VAE style; 1.0 = plain VAE).
    pub kl_weight: f64,
}

impl Default for DpVae {
    fn default() -> Self {
        DpVae {
            latent: 8,
            hidden: 48,
            steps: 400,
            batch: 32,
            lr: 0.08,
            clip: 1.0,
            kl_weight: 0.4,
        }
    }
}

const LOGVAR_RANGE: (f64, f64) = (-6.0, 4.0);

/// One training example: the encoded row plus the reparameterization noise
/// (pre-sampled so `forward_backward` stays deterministic given the batch).
struct VaeExample {
    x: Vec<f64>,
    eps: Vec<f64>,
}

struct VaeModel {
    enc: Mlp, // dim → hidden → 2·latent
    dec: Mlp, // latent → hidden → dim
    latent: usize,
    segments: Vec<Segment>,
    kl_weight: f64,
}

impl VaeModel {
    /// Reconstruction loss and its gradient at the decoder output:
    /// cross-entropy per categorical block, ½-MSE per numeric slot.
    fn recon_loss(&self, y: &[f64], x: &[f64], dy: &mut [f64]) -> f64 {
        let mut total = 0.0;
        for seg in &self.segments {
            match seg {
                Segment::Cat { offset, card } => {
                    let target = x[*offset..offset + card]
                        .iter()
                        .position(|&v| v == 1.0)
                        .expect("one-hot block has a hot slot");
                    total += loss::softmax_cross_entropy(
                        &y[*offset..offset + card],
                        target,
                        &mut dy[*offset..offset + card],
                    );
                }
                Segment::Num { offset, .. } => {
                    let e = y[*offset] - x[*offset];
                    dy[*offset] = e;
                    total += 0.5 * e * e;
                }
            }
        }
        total
    }
}

impl PerExampleModel<VaeExample> for VaeModel {
    fn forward_backward(&mut self, ex: &VaeExample) -> f64 {
        let l = self.latent;
        let mut enc_cache = MlpCache::default();
        let h = self.enc.forward(&ex.x, &mut enc_cache);
        let (mu, logvar_raw) = h.split_at(l);
        let logvar: Vec<f64> = logvar_raw
            .iter()
            .map(|&v| v.clamp(LOGVAR_RANGE.0, LOGVAR_RANGE.1))
            .collect();
        let std: Vec<f64> = logvar.iter().map(|&v| (0.5 * v).exp()).collect();
        let z: Vec<f64> = (0..l).map(|i| mu[i] + std[i] * ex.eps[i]).collect();

        let mut dec_cache = MlpCache::default();
        let y = self.dec.forward(&z, &mut dec_cache);
        let mut dy = vec![0.0; y.len()];
        let recon = self.recon_loss(&y, &ex.x, &mut dy);
        let dz = self.dec.backward(&dec_cache, &dy);

        // KL(q(z|x) ‖ N(0, I)) = ½ Σ (μ² + e^logvar − 1 − logvar)
        let kl: f64 = (0..l)
            .map(|i| 0.5 * (mu[i] * mu[i] + logvar[i].exp() - 1.0 - logvar[i]))
            .sum();
        let mut dh = vec![0.0; 2 * l];
        for i in 0..l {
            dh[i] = dz[i] + self.kl_weight * mu[i];
            // gradient flows through logvar only when the clamp is inactive
            if logvar_raw[l + i - l] == logvar[i] {
                dh[l + i] = dz[i] * 0.5 * std[i] * ex.eps[i]
                    + self.kl_weight * 0.5 * (logvar[i].exp() - 1.0);
            }
        }
        self.enc.backward(&enc_cache, &dh);
        recon + self.kl_weight * kl
    }

    fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        self.enc.visit_blocks(f);
        self.dec.visit_blocks(f);
    }
}

impl Synthesizer for DpVae {
    fn name(&self) -> &'static str {
        "DP-VAE"
    }

    fn synthesize(
        &self,
        schema: &Schema,
        instance: &Instance,
        budget: Budget,
        n_out: usize,
        seed: u64,
    ) -> Instance {
        // kamino-lint: allow(raw_rng) -- baseline stream derived from the caller-provided session seed; privacy accounted by the planner
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD7AE);
        let enc = MixedEncoder::new(schema);
        let n = instance.n_rows();
        let dim = enc.dim();
        let mut model = VaeModel {
            enc: Mlp::new(&[dim, self.hidden, 2 * self.latent], &mut rng),
            dec: Mlp::new(&[self.latent, self.hidden, dim], &mut rng),
            latent: self.latent,
            segments: enc.segments().to_vec(),
            kl_weight: self.kl_weight,
        };

        let q = (self.batch as f64 / n.max(1) as f64).min(1.0);
        let sigma = if budget.is_non_private() {
            0.0
        } else {
            calibrate_sgm_sigma(budget.epsilon, budget.delta, q, self.steps as u64)
        };
        let opt = DpSgd {
            clip: self.clip,
            noise_multiplier: sigma,
            lr: self.lr,
            expected_batch: self.batch as f64,
        };
        let encoded: Vec<Vec<f64>> = (0..n).map(|i| enc.encode_row(instance, i)).collect();
        for _ in 0..self.steps {
            let ids = poisson_sample(n, q, &mut rng);
            let batch: Vec<VaeExample> = ids
                .iter()
                .map(|&i| VaeExample {
                    x: encoded[i].clone(),
                    eps: (0..self.latent)
                        .map(|_| standard_normal(&mut rng))
                        .collect(),
                })
                .collect();
            opt.step(&mut model, &batch, &mut rng);
        }

        // decode latent-prior samples
        let mut out = Instance::zeroed(schema, n_out);
        for i in 0..n_out {
            let z: Vec<f64> = (0..self.latent)
                .map(|_| standard_normal(&mut rng))
                .collect();
            let y = model.dec.infer(&z);
            let row = enc.decode_sampled(schema, &y, &mut rng);
            for (j, v) in row.into_iter().enumerate() {
                out.set(i, j, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_data::stats::{histogram, normalize};
    use kamino_data::{Attribute, Value};
    use kamino_datasets::adult_like;

    #[test]
    fn non_private_vae_tracks_dominant_marginal() {
        // a single heavily-skewed categorical: the VAE must reproduce the
        // skew (this catches sign errors in the ELBO gradients)
        let s = Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::numeric("x", 0.0, 1.0, 4).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..300)
            .map(|i| {
                let a = if i % 10 == 0 { 1 } else { 0 };
                vec![Value::Cat(a), Value::Num(0.5)]
            })
            .collect();
        let inst = Instance::from_rows(&s, &rows).unwrap();
        let vae = DpVae {
            steps: 600,
            ..DpVae::default()
        };
        let out = vae.synthesize(&s, &inst, Budget::non_private(), 600, 1);
        let m = normalize(&histogram(&s, &out, 0));
        assert!(m[0] > 0.6, "dominant class lost: {m:?}");
        assert!(m[2] < 0.2, "never-seen class over-generated: {m:?}");
    }

    #[test]
    fn private_run_valid_on_adult() {
        let d = adult_like(300, 2);
        let vae = DpVae {
            steps: 60,
            ..DpVae::default()
        };
        let out = vae.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 200, 3);
        assert_eq!(out.n_rows(), 200);
        for i in 0..out.n_rows() {
            for j in 0..d.schema.len() {
                assert!(d.schema.attr(j).validate(out.value(i, j)).is_ok());
            }
        }
    }

    #[test]
    fn violates_dcs_like_the_paper_reports() {
        let d = adult_like(400, 4);
        let vae = DpVae {
            steps: 100,
            ..DpVae::default()
        };
        let out = vae.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 400, 5);
        let total: f64 = d
            .dcs
            .iter()
            .map(|dc| kamino_constraints::violation_percentage(dc, &out))
            .sum();
        assert!(
            total > 0.0,
            "i.i.d. VAE sampling should violate the Adult DCs"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = adult_like(150, 6);
        let vae = DpVae {
            steps: 30,
            ..DpVae::default()
        };
        let a = vae.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 80, 7);
        let b = vae.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 80, 7);
        assert_eq!(a, b);
    }
}
