//! Independent noisy-histogram synthesizer.
//!
//! The simplest possible DP synthesizer: release every attribute's
//! histogram with the Gaussian mechanism and sample each cell i.i.d. It
//! preserves 1-way marginals and *nothing else* — a floor that the
//! experiment tables use to contextualize the real methods.

use kamino_data::stats::normalize;
use kamino_data::{Instance, Schema};
use kamino_dp::mechanisms::add_gaussian_noise;
use kamino_dp::{calibrate_sgm_sigma, Budget};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::discretize::Discretized;
use crate::Synthesizer;

/// Independent per-attribute noisy histograms.
#[derive(Debug, Clone, Default)]
pub struct Independent;

impl Synthesizer for Independent {
    fn name(&self) -> &'static str {
        "Independent"
    }

    fn synthesize(
        &self,
        schema: &Schema,
        instance: &Instance,
        budget: Budget,
        n_out: usize,
        seed: u64,
    ) -> Instance {
        // kamino-lint: allow(raw_rng) -- baseline stream derived from the caller-provided session seed; privacy accounted by the planner
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1D9);
        let disc = Discretized::from_instance(schema, instance);
        let k = schema.len();
        let sigma = if budget.is_non_private() {
            0.0
        } else {
            calibrate_sgm_sigma(budget.epsilon, budget.delta, 1.0, k as u64)
        };
        let dists: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                let mut counts = disc.marginal(j);
                add_gaussian_noise(&mut counts, std::f64::consts::SQRT_2, sigma, &mut rng);
                normalize(&counts)
            })
            .collect();
        let mut out = Instance::zeroed(schema, n_out);
        for i in 0..n_out {
            for (j, dist) in dists.iter().enumerate() {
                let code = kamino_data::stats::sample_weighted(dist, &mut rng) as u32;
                out.set(i, j, disc.decode(j, code, &mut rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_data::stats::{histogram, normalize};
    use kamino_datasets::adult_like;

    #[test]
    fn preserves_oneway_marginals_non_private() {
        let d = adult_like(800, 1);
        let out = Independent.synthesize(&d.schema, &d.instance, Budget::non_private(), 4_000, 2);
        assert_eq!(out.n_rows(), 4_000);
        // pick the income attribute: marginal should track the truth
        let income = d.schema.index_of("income").unwrap();
        let truth = normalize(&histogram(&d.schema, &d.instance, income));
        let synth = normalize(&histogram(&d.schema, &out, income));
        for (t, s) in truth.iter().zip(&synth) {
            assert!(
                (t - s).abs() < 0.05,
                "marginal drift {truth:?} vs {synth:?}"
            );
        }
    }

    #[test]
    fn destroys_correlations() {
        // education → education_num is an exact FD in the truth; an
        // independent sampler inevitably breaks it.
        let d = adult_like(500, 3);
        let out = Independent.synthesize(&d.schema, &d.instance, Budget::non_private(), 500, 4);
        let violations = kamino_constraints::count_violating_pairs(&d.dcs[0], &out);
        assert!(violations > 0, "independent sampling should violate the FD");
    }

    #[test]
    fn private_run_is_valid_and_noisy() {
        let d = adult_like(300, 5);
        let out = Independent.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 300, 6);
        for i in 0..out.n_rows() {
            for j in 0..d.schema.len() {
                assert!(d.schema.attr(j).validate(out.value(i, j)).is_ok());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = adult_like(200, 7);
        let a = Independent.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 100, 8);
        let b = Independent.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 100, 8);
        assert_eq!(a, b);
    }
}
