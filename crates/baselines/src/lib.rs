//! Differentially private data-synthesis baselines (§7.1 of the paper).
//!
//! Four state-of-the-art methods the paper compares Kamino against, each
//! re-implemented at the architectural level its own paper describes (see
//! DESIGN.md §3 for fidelity notes), plus an independent-histogram
//! strawman:
//!
//! * [`PrivBayes`] — a Bayesian network learned with the exponential
//!   mechanism over mutual information, Laplace-noised conditionals, and
//!   ancestral sampling (Zhang et al., SIGMOD 2014);
//! * [`NistPgm`] — the NIST challenge winner's recipe: noisy 1-way
//!   marginals for every attribute plus a set of random 2-way marginals,
//!   combined through a tree-structured graphical model (McKenna et al.);
//! * [`DpVae`] — a variational auto-encoder over one-hot/standardized
//!   encodings trained with DP-SGD, sampled from the latent prior
//!   (Chen et al.);
//! * [`PateGan`] — a generator trained against a student discriminator
//!   that only ever sees noisy majority votes of per-shard teacher
//!   discriminators (Jordon et al.);
//! * [`Independent`] — noisy per-attribute histograms, sampled i.i.d.
//!
//! All of them assume i.i.d. tuples — which is exactly why they violate
//! inter-tuple denial constraints (Table 2) and why Kamino exists.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod discretize;
pub mod dpvae;
pub mod independent;
pub mod nist;
pub mod pategan;
pub mod privbayes;

use kamino_data::{Instance, Schema};
use kamino_dp::Budget;

pub use dpvae::DpVae;
pub use independent::Independent;
pub use nist::NistPgm;
pub use pategan::PateGan;
pub use privbayes::PrivBayes;

/// A differentially private synthesizer: consumes the true instance and a
/// budget, produces a synthetic instance of `n_out` rows.
pub trait Synthesizer {
    /// Method name as the paper labels it (for experiment tables).
    fn name(&self) -> &'static str;

    /// Generates `n_out` synthetic rows under `budget`.
    /// A [`Budget::non_private`] budget must disable all noise.
    fn synthesize(
        &self,
        schema: &Schema,
        instance: &Instance,
        budget: Budget,
        n_out: usize,
        seed: u64,
    ) -> Instance;
}

/// All four paper baselines with their default configurations, in the
/// paper's presentation order.
pub fn paper_baselines() -> Vec<Box<dyn Synthesizer>> {
    vec![
        Box::new(DpVae::default()),
        Box::new(NistPgm::default()),
        Box::new(PrivBayes::default()),
        Box::new(PateGan::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roster_matches_paper() {
        let names: Vec<&str> = paper_baselines().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["DP-VAE", "NIST", "PrivBayes", "PATE-GAN"]);
    }
}
