//! The NIST Differential Privacy Synthetic Data Challenge winner's recipe
//! (McKenna, Sheldon, Miklau — "Graphical-model based estimation and
//! inference for differential privacy"), configured as the paper does in
//! §7.1: "marginals over every single attribute, and over 10 randomly
//! chosen attribute pairs".
//!
//! Measured marginals are released with the Gaussian mechanism; inference
//! uses the tree-structured graphical model over the measured pairs (a
//! maximum spanning forest weighted by noisy mutual information), which is
//! the exact special case of the PGM machinery. Attributes outside the
//! forest sample from their noisy 1-way marginals — and when the noise
//! dominates a marginal, post-processing can concentrate it onto a single
//! value, reproducing the paper's observation that NIST "filled the entire
//! edu_num column with the same value".

use std::collections::HashMap;

use kamino_data::stats::{normalize, sample_weighted};
use kamino_data::{Instance, Schema};
use kamino_dp::mechanisms::add_gaussian_noise;
use kamino_dp::{calibrate_sgm_sigma, Budget};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::discretize::{mutual_information, Discretized};
use crate::Synthesizer;

/// NIST-winner-style marginal + tree-PGM synthesizer.
#[derive(Debug, Clone)]
pub struct NistPgm {
    /// Number of random 2-way marginals to measure (paper: 10).
    pub n_pairs: usize,
}

impl Default for NistPgm {
    fn default() -> Self {
        NistPgm { n_pairs: 10 }
    }
}

/// Union-find for Kruskal's maximum spanning forest.
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let r = self.find(self.0[x]);
            self.0[x] = r;
        }
        self.0[x]
    }
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.0[ra] = rb;
        true
    }
}

impl Synthesizer for NistPgm {
    fn name(&self) -> &'static str {
        "NIST"
    }

    fn synthesize(
        &self,
        schema: &Schema,
        instance: &Instance,
        budget: Budget,
        n_out: usize,
        seed: u64,
    ) -> Instance {
        // kamino-lint: allow(raw_rng) -- baseline stream derived from the caller-provided session seed; privacy accounted by the planner
        let mut rng = StdRng::seed_from_u64(seed ^ 0x215);
        let disc = Discretized::from_instance(schema, instance);
        let k = schema.len();

        // random measured pairs (data-independent)
        let mut all_pairs: Vec<(usize, usize)> = (0..k)
            .flat_map(|a| ((a + 1)..k).map(move |b| (a, b)))
            .collect();
        all_pairs.shuffle(&mut rng);
        let measured: Vec<(usize, usize)> = all_pairs
            .into_iter()
            .take(self.n_pairs.min(k * (k - 1) / 2))
            .collect();

        // calibrate one σ for all (k + |pairs|) Gaussian releases
        let releases = (k + measured.len()) as u64;
        let sigma = if budget.is_non_private() {
            0.0
        } else {
            calibrate_sgm_sigma(budget.epsilon, budget.delta, 1.0, releases)
        };

        // noisy 1-way marginals
        let oneway: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                let mut c = disc.marginal(j);
                add_gaussian_noise(&mut c, std::f64::consts::SQRT_2, sigma, &mut rng);
                normalize(&c)
            })
            .collect();
        // noisy 2-way marginals (kept as nonnegative joint mass)
        let mut twoway: HashMap<(usize, usize), Vec<f64>> = HashMap::new();
        for &(a, b) in &measured {
            let mut c = disc.joint2(a, b);
            add_gaussian_noise(&mut c, std::f64::consts::SQRT_2, sigma, &mut rng);
            for x in &mut c {
                *x = x.max(0.0);
            }
            twoway.insert((a, b), c);
        }

        // maximum spanning forest over measured pairs, weighted by noisy MI
        let mut edges: Vec<(f64, usize, usize)> = measured
            .iter()
            .map(|&(a, b)| (mutual_information(&twoway[&(a, b)], disc.cards[b]), a, b))
            .collect();
        edges.sort_by(|x, y| y.0.total_cmp(&x.0));
        let mut dsu = Dsu::new(k);
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (_, a, b) in edges {
            if dsu.union(a, b) {
                adj[a].push(b);
                adj[b].push(a);
            }
        }

        // tree-ordered conditional sampling
        let mut out = Instance::zeroed(schema, n_out);
        let mut codes = vec![0u32; k];
        for i in 0..n_out {
            let mut visited = vec![false; k];
            for root in 0..k {
                if visited[root] {
                    continue;
                }
                // sample the component root from its 1-way marginal
                codes[root] = sample_weighted(&oneway[root], &mut rng) as u32;
                visited[root] = true;
                let mut stack = vec![root];
                while let Some(u) = stack.pop() {
                    for &v in &adj[u] {
                        if visited[v] {
                            continue;
                        }
                        visited[v] = true;
                        codes[v] = sample_conditional(
                            &twoway, &disc, u, codes[u], v, &oneway[v], &mut rng,
                        );
                        stack.push(v);
                    }
                }
            }
            for (j, &code) in codes.iter().enumerate() {
                out.set(i, j, disc.decode(j, code, &mut rng));
            }
        }
        out
    }
}

/// Samples `child` conditioned on `parent = pcode` from the measured joint,
/// falling back to the child's 1-way marginal when the slice has no mass.
fn sample_conditional(
    twoway: &HashMap<(usize, usize), Vec<f64>>,
    disc: &Discretized,
    parent: usize,
    pcode: u32,
    child: usize,
    child_oneway: &[f64],
    rng: &mut StdRng,
) -> u32 {
    let (joint, stride_child, slice): (&Vec<f64>, bool, Vec<f64>) =
        if let Some(j) = twoway.get(&(parent, child)) {
            // layout card(parent) × card(child): row = parent code
            let cb = disc.cards[child];
            let row = j[pcode as usize * cb..(pcode as usize + 1) * cb].to_vec();
            (j, true, row)
        } else if let Some(j) = twoway.get(&(child, parent)) {
            // layout card(child) × card(parent): column = parent code
            let cb = disc.cards[parent];
            let col: Vec<f64> = (0..disc.cards[child])
                .map(|x| j[x * cb + pcode as usize])
                .collect();
            (j, false, col)
        } else {
            unreachable!("tree edges are always measured pairs")
        };
    let _ = (joint, stride_child);
    if slice.iter().sum::<f64>() > 0.0 {
        sample_weighted(&slice, rng) as u32
    } else {
        sample_weighted(child_oneway, rng) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_data::{Attribute, Value};
    use kamino_datasets::adult_like;

    #[test]
    fn preserves_measured_pair_when_tree_includes_it() {
        // two perfectly-correlated attributes; with all pairs measured the
        // spanning tree must include the single edge
        let s = Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::categorical_indexed("b", 3).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..400)
            .map(|i| vec![Value::Cat((i % 3) as u32), Value::Cat((i % 3) as u32)])
            .collect();
        let inst = Instance::from_rows(&s, &rows).unwrap();
        let out = NistPgm { n_pairs: 1 }.synthesize(&s, &inst, Budget::non_private(), 400, 1);
        let agree = (0..out.n_rows())
            .filter(|&i| out.cat(i, 0) == out.cat(i, 1))
            .count();
        assert!(
            agree as f64 / 400.0 > 0.95,
            "tree edge not exploited: {agree}/400"
        );
    }

    #[test]
    fn unmeasured_dependencies_are_lost() {
        // same data, but zero pairs measured: correlation must vanish
        let s = Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::categorical_indexed("b", 3).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..600)
            .map(|i| vec![Value::Cat((i % 3) as u32), Value::Cat((i % 3) as u32)])
            .collect();
        let inst = Instance::from_rows(&s, &rows).unwrap();
        let out = NistPgm { n_pairs: 0 }.synthesize(&s, &inst, Budget::non_private(), 600, 2);
        let agree = (0..out.n_rows())
            .filter(|&i| out.cat(i, 0) == out.cat(i, 1))
            .count();
        let rate = agree as f64 / 600.0;
        assert!(rate < 0.6, "independent sampling should agree ~1/3: {rate}");
    }

    #[test]
    fn runs_on_adult_privately() {
        let d = adult_like(300, 3);
        let out =
            NistPgm::default().synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 300, 4);
        assert_eq!(out.n_rows(), 300);
        for i in 0..out.n_rows() {
            for j in 0..d.schema.len() {
                assert!(d.schema.attr(j).validate(out.value(i, j)).is_ok());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = adult_like(200, 5);
        let m = NistPgm::default();
        let a = m.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 100, 6);
        let b = m.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 100, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn dsu_union_find() {
        let mut d = Dsu::new(4);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert!(d.union(0, 3));
        assert_eq!(d.find(1), d.find(2));
    }
}
