//! PATE-GAN (Jordon, Yoon, van der Schaar — ICLR 2019), simplified.
//!
//! Structure preserved from the original: the training data is sharded
//! across `k` teacher discriminators; a student discriminator only ever
//! sees *noisy majority votes* of the teachers on generated samples (the
//! only privacy-bearing channel); the generator trains against the student.
//!
//! Documented simplification (DESIGN.md §3): the original uses PATE's
//! data-dependent moments accountant, under which high-consensus votes cost
//! almost nothing. We charge every vote query with the data-independent
//! Gaussian accountant instead, which is a valid but much looser bound —
//! at small ε our PATE-GAN is noisier than the paper's. The i.i.d.
//! generation path (and hence the DC-violation behaviour that Table 2
//! measures) is unaffected.

use kamino_data::{Instance, MixedEncoder, Schema};
use kamino_dp::normal::standard_normal;
use kamino_dp::{calibrate_sgm_sigma, Budget};
use kamino_nn::mlp::MlpCache;
use kamino_nn::{loss, Mlp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Synthesizer;

/// PATE-GAN configuration.
#[derive(Debug, Clone)]
pub struct PateGan {
    /// Number of teacher discriminators (data shards).
    pub n_teachers: usize,
    /// Adversarial training steps.
    pub steps: usize,
    /// Generator latent dimension.
    pub latent: usize,
    /// Hidden width of all networks.
    pub hidden: usize,
    /// Fakes labeled per step (vote queries per step).
    pub label_batch: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for PateGan {
    fn default() -> Self {
        PateGan {
            n_teachers: 5,
            steps: 150,
            latent: 8,
            hidden: 48,
            label_batch: 8,
            lr: 0.1,
        }
    }
}

/// One plain SGD step on a single example: zero grads, backprop `dlogit`,
/// apply `−lr·g`.
fn sgd_single(net: &mut Mlp, x: &[f64], dlogit: f64, lr: f64) -> Vec<f64> {
    let mut cache = MlpCache::default();
    net.forward(x, &mut cache);
    net.visit_blocks(&mut |b| b.zero_grad());
    let dx = net.backward(&cache, &[dlogit]);
    net.visit_blocks(&mut |b| {
        for i in 0..b.len() {
            b.values[i] -= lr * b.grads[i];
        }
    });
    dx
}

fn logit(net: &Mlp, x: &[f64]) -> f64 {
    net.infer(x)[0]
}

impl Synthesizer for PateGan {
    fn name(&self) -> &'static str {
        "PATE-GAN"
    }

    fn synthesize(
        &self,
        schema: &Schema,
        instance: &Instance,
        budget: Budget,
        n_out: usize,
        seed: u64,
    ) -> Instance {
        // kamino-lint: allow(raw_rng) -- baseline stream derived from the caller-provided session seed; privacy accounted by the planner
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9A7E);
        let enc = MixedEncoder::new(schema);
        let dim = enc.dim();
        let n = instance.n_rows();
        let k = self.n_teachers.max(1);

        let mut generator = Mlp::new(&[self.latent, self.hidden, dim], &mut rng);
        let mut teachers: Vec<Mlp> = (0..k)
            .map(|_| Mlp::new(&[dim, self.hidden, 1], &mut rng))
            .collect();
        let mut student = Mlp::new(&[dim, self.hidden, 1], &mut rng);

        // shard the (encoded) data across teachers
        let encoded: Vec<Vec<f64>> = (0..n).map(|i| enc.encode_row(instance, i)).collect();
        let shards: Vec<Vec<usize>> = (0..k).map(|t| (t..n).step_by(k).collect()).collect();

        // one vote-count release per labeled fake
        let total_queries = (self.steps * self.label_batch) as u64;
        let sigma_vote = if budget.is_non_private() {
            0.0
        } else {
            calibrate_sgm_sigma(budget.epsilon, budget.delta, 1.0, total_queries.max(1))
        };

        let gen_fake = |g: &Mlp, rng: &mut StdRng| -> (Vec<f64>, Vec<f64>) {
            let z: Vec<f64> = (0..self.latent).map(|_| standard_normal(rng)).collect();
            let x = g.infer(&z);
            (z, x)
        };

        for _ in 0..self.steps {
            // 1. teachers: one real + one fake example each
            for (t, teacher) in teachers.iter_mut().enumerate() {
                if shards[t].is_empty() {
                    continue;
                }
                let real = &encoded[shards[t][rng.gen_range(0..shards[t].len())]];
                let (_, fake) = gen_fake(&generator, &mut rng);
                let (_, d_real) = loss::bce_with_logit(logit(teacher, real), 1.0);
                sgd_single(teacher, real, d_real, self.lr);
                let (_, d_fake) = loss::bce_with_logit(logit(teacher, &fake), 0.0);
                sgd_single(teacher, &fake, d_fake, self.lr);
            }
            // 2. label fakes by noisy teacher majority; train the student
            for _ in 0..self.label_batch {
                let (_, fake) = gen_fake(&generator, &mut rng);
                let votes = teachers.iter().filter(|t| logit(t, &fake) > 0.0).count() as f64;
                let noisy = votes + sigma_vote * standard_normal(&mut rng);
                let label = f64::from(noisy > k as f64 / 2.0);
                let (_, dlogit) = loss::bce_with_logit(logit(&student, &fake), label);
                sgd_single(&mut student, &fake, dlogit, self.lr);
            }
            // 3. generator: fool the student (student frozen)
            let (z, fake) = gen_fake(&generator, &mut rng);
            let (_, dlogit) = loss::bce_with_logit(logit(&student, &fake), 1.0);
            let mut cache = MlpCache::default();
            student.forward(&fake, &mut cache);
            student.visit_blocks(&mut |b| b.zero_grad());
            let dfake = student.backward(&cache, &[dlogit]);
            student.visit_blocks(&mut |b| b.zero_grad()); // discard student grads
            let mut gcache = MlpCache::default();
            generator.forward(&z, &mut gcache);
            generator.visit_blocks(&mut |b| b.zero_grad());
            generator.backward(&gcache, &dfake);
            generator.visit_blocks(&mut |b| {
                for i in 0..b.len() {
                    b.values[i] -= self.lr * b.grads[i];
                }
            });
        }

        // synthesize
        let mut out = Instance::zeroed(schema, n_out);
        for i in 0..n_out {
            let (_, x) = gen_fake(&generator, &mut rng);
            let row = enc.decode_sampled(schema, &x, &mut rng);
            for (j, v) in row.into_iter().enumerate() {
                out.set(i, j, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_datasets::adult_like;

    #[test]
    fn produces_valid_instances() {
        let d = adult_like(250, 1);
        let gan = PateGan {
            steps: 40,
            ..PateGan::default()
        };
        let out = gan.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 150, 2);
        assert_eq!(out.n_rows(), 150);
        for i in 0..out.n_rows() {
            for j in 0..d.schema.len() {
                assert!(d.schema.attr(j).validate(out.value(i, j)).is_ok());
            }
        }
    }

    #[test]
    fn violates_dcs_like_the_paper_reports() {
        let d = adult_like(300, 3);
        let gan = PateGan {
            steps: 50,
            ..PateGan::default()
        };
        let out = gan.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 300, 4);
        let total: f64 = d
            .dcs
            .iter()
            .map(|dc| kamino_constraints::violation_percentage(dc, &out))
            .sum();
        assert!(total > 0.0, "GAN sampling should violate the Adult DCs");
    }

    #[test]
    fn non_private_votes_are_exact() {
        // with ε = ∞ the vote noise is zero; just verify the run completes
        // and produces diverse output (generator did not collapse to one row)
        let d = adult_like(250, 5);
        let gan = PateGan {
            steps: 60,
            ..PateGan::default()
        };
        let out = gan.synthesize(&d.schema, &d.instance, Budget::non_private(), 120, 6);
        let distinct: std::collections::HashSet<Vec<String>> = (0..out.n_rows())
            .map(|i| {
                (0..d.schema.len())
                    .map(|j| format!("{}", out.value(i, j)))
                    .collect()
            })
            .collect();
        assert!(
            distinct.len() > 10,
            "generator collapsed: {} distinct rows",
            distinct.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = adult_like(150, 7);
        let gan = PateGan {
            steps: 20,
            ..PateGan::default()
        };
        let a = gan.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 60, 8);
        let b = gan.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 60, 8);
        assert_eq!(a, b);
    }
}
