//! PrivBayes (Zhang et al., SIGMOD 2014).
//!
//! 1. **Structure**: build a Bayesian network of in-degree ≤ `degree`
//!    greedily; each attribute/parent-set choice is made with the
//!    exponential mechanism scored by mutual information (half the ε
//!    budget, split evenly over the `k−1` selections).
//! 2. **Parameters**: release each attribute's joint counts with its
//!    parents under Laplace noise (the other half of ε, L1 sensitivity `2k`
//!    across the `k` marginals).
//! 3. **Sampling**: ancestral sampling through the network; numeric bins
//!    decode uniformly.
//!
//! PrivBayes is a pure-ε method; we ignore δ (a strictly stronger
//! guarantee). The MI sensitivity uses the standard
//! `Δ = (2/n)·ln((n+1)/2) + ((n−1)/n)·ln((n+1)/(n−1))` bound.

use kamino_data::stats::{normalize, sample_weighted};
use kamino_data::{Instance, Schema};
use kamino_dp::mechanisms::add_laplace_noise;
use kamino_dp::Budget;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::discretize::{mutual_information, Discretized};
use crate::Synthesizer;

/// PrivBayes with configurable network degree.
#[derive(Debug, Clone)]
pub struct PrivBayes {
    /// Maximum number of parents per node (the paper of PrivBayes uses
    /// θ-usefulness to pick this; 2 matches their defaults on Adult-scale
    /// data).
    pub degree: usize,
}

impl Default for PrivBayes {
    fn default() -> Self {
        PrivBayes { degree: 2 }
    }
}

/// One node of the learned network: attribute + chosen parents.
struct Node {
    attr: usize,
    parents: Vec<usize>,
    /// Conditional distribution table: `dist[cfg]` is a distribution over
    /// the attribute's codes.
    dist: Vec<Vec<f64>>,
    /// Fallback marginal for unseen parent configurations.
    fallback: Vec<f64>,
}

fn mi_sensitivity(n: usize) -> f64 {
    let n = n as f64;
    (2.0 / n) * ((n + 1.0) / 2.0).ln() + ((n - 1.0) / n) * ((n + 1.0) / (n - 1.0)).ln()
}

/// Enumerates subsets of `chosen` of size ≤ `degree` (including empty).
fn parent_candidates(chosen: &[usize], degree: usize) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    // size-1 and size-2 subsets cover degree ≤ 2; generalize iteratively
    let mut frontier: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..degree {
        let mut next = Vec::new();
        for base in &frontier {
            let start = base
                .last()
                .map_or(0, |&l| chosen.iter().position(|&c| c == l).unwrap() + 1);
            for &c in &chosen[start..] {
                let mut s = base.clone();
                s.push(c);
                next.push(s);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

impl Synthesizer for PrivBayes {
    fn name(&self) -> &'static str {
        "PrivBayes"
    }

    fn synthesize(
        &self,
        schema: &Schema,
        instance: &Instance,
        budget: Budget,
        n_out: usize,
        seed: u64,
    ) -> Instance {
        // kamino-lint: allow(raw_rng) -- baseline stream derived from the caller-provided session seed; privacy accounted by the planner
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9B5);
        let disc = Discretized::from_instance(schema, instance);
        let k = schema.len();
        let n = disc.n_rows();
        let non_private = budget.is_non_private();
        let (eps_structure, eps_params) = if non_private {
            (f64::INFINITY, f64::INFINITY)
        } else {
            (budget.epsilon / 2.0, budget.epsilon / 2.0)
        };

        // --- structure learning ---
        let mut order: Vec<usize> = Vec::with_capacity(k);
        let mut parents_of: Vec<Vec<usize>> = vec![vec![]; k];
        // first attribute: smallest domain (deterministic, data-free)
        let first = (0..k)
            .min_by_key(|&a| (schema.attr(a).domain_size(), a))
            .expect("k ≥ 1");
        order.push(first);
        let eps_per_choice = eps_structure / (k.max(2) - 1) as f64;
        let delta_mi = mi_sensitivity(n.max(2));
        while order.len() < k {
            // candidates: (attr not chosen) × (parent subset of chosen)
            let mut cands: Vec<(usize, Vec<usize>, f64)> = Vec::new();
            for x in 0..k {
                if order.contains(&x) {
                    continue;
                }
                for ps in parent_candidates(&order, self.degree) {
                    // cap the contingency table size to keep counts usable
                    if disc.n_configs(&ps) * disc.cards[x] > 50_000 {
                        continue;
                    }
                    let mi = mutual_information(&disc.joint_with_parents(x, &ps), disc.cards[x]);
                    cands.push((x, ps, mi));
                }
            }
            // exponential mechanism over MI scores
            let chosen_idx = if non_private {
                cands
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1 .2.total_cmp(&b.1 .2))
                    .map(|(i, _)| i)
                    .expect("at least one candidate")
            } else {
                let weights: Vec<f64> = cands
                    .iter()
                    .map(|(_, _, mi)| (eps_per_choice * mi / (2.0 * delta_mi)).min(700.0).exp())
                    .collect();
                sample_weighted(&weights, &mut rng)
            };
            let (x, ps, _) = cands.swap_remove(chosen_idx);
            order.push(x);
            parents_of[x] = ps;
        }

        // --- parameter learning ---
        // each tuple touches every one of the k released marginals,
        // changing two cells each ⇒ L1 sensitivity 2k
        let laplace_scale = if non_private {
            0.0
        } else {
            2.0 * k as f64 / eps_params
        };
        let nodes: Vec<Node> = order
            .iter()
            .map(|&attr| {
                let ps = parents_of[attr].clone();
                let cx = disc.cards[attr];
                let mut counts = disc.joint_with_parents(attr, &ps);
                add_laplace_noise(&mut counts, laplace_scale, &mut rng);
                let n_cfg = counts.len() / cx;
                let mut fallback = vec![0.0; cx];
                for cfg in 0..n_cfg {
                    for x in 0..cx {
                        fallback[x] += counts[cfg * cx + x].max(0.0);
                    }
                }
                let fallback = normalize(&fallback);
                let dist: Vec<Vec<f64>> = (0..n_cfg)
                    .map(|cfg| {
                        let slice = &counts[cfg * cx..(cfg + 1) * cx];
                        if slice.iter().all(|&c| c <= 0.0) {
                            fallback.clone()
                        } else {
                            normalize(slice)
                        }
                    })
                    .collect();
                Node {
                    attr,
                    parents: ps,
                    dist,
                    fallback,
                }
            })
            .collect();

        // --- ancestral sampling ---
        let mut out = Instance::zeroed(schema, n_out);
        let mut codes = vec![0u32; k];
        for i in 0..n_out {
            for node in &nodes {
                let cfg = disc.config_of(&codes, &node.parents);
                let dist = node.dist.get(cfg).unwrap_or(&node.fallback);
                let code = sample_weighted(dist, &mut rng) as u32;
                codes[node.attr] = code;
                out.set(i, node.attr, disc.decode(node.attr, code, &mut rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_constraints::violation_percentage;
    use kamino_data::{Attribute, Value};
    use kamino_datasets::adult_like;

    #[test]
    fn parent_candidate_enumeration() {
        let chosen = [3, 7, 9];
        let cands = parent_candidates(&chosen, 2);
        // {} + 3 singletons + 3 pairs
        assert_eq!(cands.len(), 7);
        assert!(cands.contains(&vec![]));
        assert!(cands.contains(&vec![3, 9]));
        // degree 1 drops the pairs
        assert_eq!(parent_candidates(&chosen, 1).len(), 4);
    }

    #[test]
    fn mi_sensitivity_decreases_with_n() {
        assert!(mi_sensitivity(100) > mi_sensitivity(10_000));
        assert!(mi_sensitivity(100) > 0.0);
    }

    #[test]
    fn learns_planted_dependency_non_privately() {
        // b == a exactly: P(b | a) must concentrate after synthesis
        let s = Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::categorical_indexed("b", 3).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..300)
            .map(|i| vec![Value::Cat((i % 3) as u32), Value::Cat((i % 3) as u32)])
            .collect();
        let inst = Instance::from_rows(&s, &rows).unwrap();
        let out = PrivBayes::default().synthesize(&s, &inst, Budget::non_private(), 300, 1);
        let agree = (0..out.n_rows())
            .filter(|&i| out.cat(i, 0) == out.cat(i, 1))
            .count();
        assert!(
            agree as f64 / out.n_rows() as f64 > 0.95,
            "PrivBayes lost a deterministic dependency: {agree}/300"
        );
    }

    #[test]
    fn private_run_on_adult_violates_dcs() {
        // Table 2's headline: PrivBayes leaves DC violations at ε = 1
        let d = adult_like(400, 2);
        let out =
            PrivBayes::default().synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 400, 3);
        assert_eq!(out.n_rows(), 400);
        let total: f64 = d.dcs.iter().map(|dc| violation_percentage(dc, &out)).sum();
        assert!(
            total > 0.0,
            "expected nonzero DC violations from i.i.d. sampling"
        );
    }

    #[test]
    fn all_values_schema_conformant() {
        let d = adult_like(300, 4);
        let out =
            PrivBayes::default().synthesize(&d.schema, &d.instance, Budget::new(0.5, 1e-6), 200, 5);
        for i in 0..out.n_rows() {
            for j in 0..d.schema.len() {
                assert!(d.schema.attr(j).validate(out.value(i, j)).is_ok());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = adult_like(200, 6);
        let p = PrivBayes::default();
        let a = p.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 100, 7);
        let b = p.synthesize(&d.schema, &d.instance, Budget::new(1.0, 1e-6), 100, 7);
        assert_eq!(a, b);
    }
}
