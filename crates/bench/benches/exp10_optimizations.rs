//! Criterion bench for Experiment 10: parallel sub-model training and the
//! hard-FD lookup fast path. Run `exp10_optimizations` (binary) for the
//! quality columns.

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_bench::{config, KaminoVariant, Method};
use kamino_datasets::Corpus;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let budget = config::default_budget();
    let mut g = c.benchmark_group("exp10_optimizations");
    g.sample_size(10);
    let adult = Corpus::Adult.generate(150, 1);
    for (name, parallel) in [("sequential_training", false), ("parallel_training", true)] {
        g.bench_function(name, |b| {
            let variant = KaminoVariant {
                parallel,
                ..Default::default()
            };
            b.iter(|| black_box(Method::Kamino(variant).run(&adult, budget, 5)))
        });
    }
    let tpch = Corpus::TpcH.generate(400, 1);
    for (name, lookup) in [("tpch_candidate_scoring", false), ("tpch_fd_lookup", true)] {
        g.bench_function(name, |b| {
            let variant = KaminoVariant {
                hard_fd_lookup: lookup,
                ..Default::default()
            };
            b.iter(|| black_box(Method::Kamino(variant).run(&tpch, budget, 5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
