//! Criterion bench for Table 2 / Experiment 1: end-to-end Kamino synthesis
//! plus DC-violation measurement on a micro Adult-like instance, against
//! the PrivBayes baseline doing the same. Timings show the price of
//! constraint awareness; run the `table2_dc_violations` binary for the
//! full paper-style table.

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_baselines::{PrivBayes, Synthesizer};
use kamino_bench::{config, Method};
use kamino_constraints::violation_percentage;
use kamino_datasets::Corpus;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let d = Corpus::Adult.generate(150, 1);
    let budget = config::default_budget();
    let mut g = c.benchmark_group("exp1_dc_violations");
    g.sample_size(10);
    g.bench_function("kamino_synthesize_and_measure", |b| {
        b.iter(|| {
            let (inst, _) = Method::kamino().run(&d, budget, 7);
            let total: f64 = d.dcs.iter().map(|dc| violation_percentage(dc, &inst)).sum();
            black_box(total)
        })
    });
    g.bench_function("privbayes_synthesize_and_measure", |b| {
        b.iter(|| {
            let inst = PrivBayes::default().synthesize(&d.schema, &d.instance, budget, 150, 7);
            let total: f64 = d.dcs.iter().map(|dc| violation_percentage(dc, &inst)).sum();
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
