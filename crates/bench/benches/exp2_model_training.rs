//! Criterion bench for Figure 3 / Experiment 2: the Metric II harness
//! (train classifiers on synthetic, test on truth) at micro scale. Run the
//! `fig3_model_training` binary for the full per-dataset tables.

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_bench::classifier_roster;
use kamino_datasets::Corpus;
use kamino_eval::tasks::evaluate_classification_with;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let d = Corpus::Adult.generate(150, 1);
    let mut g = c.benchmark_group("exp2_model_training");
    g.sample_size(10);
    g.bench_function("metric2_truth_on_truth", |b| {
        b.iter(|| {
            black_box(evaluate_classification_with(
                &d.schema,
                &d.instance,
                &d.instance,
                5,
                classifier_roster,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
