//! Criterion bench for Figure 4 / Experiment 3: 1-way and 2-way marginal
//! TVD computation. Run the `fig4_marginals` binary for the full tables.

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_datasets::Corpus;
use kamino_eval::marginals::{tvd_all_pairs, tvd_all_singles};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let d = Corpus::Adult.generate(800, 1);
    let d2 = Corpus::Adult.generate(800, 2);
    let mut g = c.benchmark_group("exp3_marginals");
    g.bench_function("tvd_1way_all_attrs", |b| {
        b.iter(|| black_box(tvd_all_singles(&d.schema, &d.instance, &d2.instance)))
    });
    g.bench_function("tvd_2way_all_pairs", |b| {
        b.iter(|| black_box(tvd_all_pairs(&d.schema, &d.instance, &d2.instance)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
