//! Criterion bench for Figure 7 / Experiment 4: the end-to-end Kamino
//! pipeline at micro scale (per-phase profiling lives in the
//! `fig7_time_profile` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_bench::{config, Method};
use kamino_datasets::Corpus;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let budget = config::default_budget();
    let mut g = c.benchmark_group("exp4_runtime");
    g.sample_size(10);
    for corpus in [Corpus::Adult, Corpus::TpcH] {
        let d = corpus.generate(150, 1);
        g.bench_function(format!("kamino_end_to_end_{}", d.name), |b| {
            b.iter(|| black_box(Method::kamino().run(&d, budget, 3)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
