//! Criterion bench for Table 3 + Figure 5 / Experiment 5: Kamino vs the
//! RandBoth ablation at micro scale. Run `table3_fig5_ablation` for the
//! full four-arm comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_bench::{config, Ablation, KaminoVariant, Method};
use kamino_datasets::Corpus;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let d = Corpus::Adult.generate(150, 1);
    let budget = config::default_budget();
    let mut g = c.benchmark_group("exp5_ablation");
    g.sample_size(10);
    for (name, ablation) in [("kamino", Ablation::None), ("randboth", Ablation::RandBoth)] {
        g.bench_function(name, |b| {
            let variant = KaminoVariant {
                ablation,
                ..Default::default()
            };
            b.iter(|| black_box(Method::Kamino(variant).run(&d, budget, 5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
