//! Criterion bench for Experiment 6: constraint-aware vs accept–reject
//! sampling cost at micro scale. Run `exp6_ar_sampling` (binary) for the
//! violation comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_bench::{config, KaminoVariant, Method};
use kamino_datasets::Corpus;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let d = Corpus::Adult.generate(150, 1);
    let budget = config::default_budget();
    let mut g = c.benchmark_group("exp6_ar_sampling");
    g.sample_size(10);
    for (name, ar) in [("constraint_aware", false), ("accept_reject", true)] {
        g.bench_function(name, |b| {
            let variant = KaminoVariant {
                ar_sampling: ar,
                ..Default::default()
            };
            b.iter(|| black_box(Method::Kamino(variant).run(&d, budget, 5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
