//! Criterion bench for Figure 6 / Experiment 7: Kamino at tight vs loose
//! privacy budgets (the parameter search trades iterations for noise). Run
//! `fig6_budget_sweep` for the full sweep with all methods.

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_bench::Method;
use kamino_datasets::Corpus;
use kamino_dp::Budget;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let d = Corpus::Adult.generate(150, 1);
    let mut g = c.benchmark_group("exp7_budget_sweep");
    g.sample_size(10);
    for eps in [0.1, 1.6] {
        g.bench_function(format!("kamino_eps_{eps}"), |b| {
            b.iter(|| black_box(Method::kamino().run(&d, Budget::new(eps, 1e-6), 5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
