//! Criterion bench for Figure 8 / Experiment 8: synthesis cost as the DC
//! set grows (discovered approximate DCs). Run `fig8_dc_scaling` for the
//! quality-vs-|Φ| table.

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_bench::{config, Method};
use kamino_constraints::discovery::discover_approximate_dcs;
use kamino_datasets::{Corpus, Dataset};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let base = Corpus::Adult.generate(150, 1);
    let budget = config::default_budget();
    let mut g = c.benchmark_group("exp8_dc_scaling");
    g.sample_size(10);
    for n_dcs in [2usize, 16] {
        let dcs: Vec<_> = discover_approximate_dcs(&base.schema, &base.instance, n_dcs, 25.0)
            .into_iter()
            .map(|d| d.dc)
            .collect();
        let d = Dataset {
            name: base.name.clone(),
            schema: base.schema.clone(),
            instance: base.instance.clone(),
            dcs,
        };
        g.bench_function(format!("kamino_{n_dcs}_dcs"), |b| {
            b.iter(|| black_box(Method::kamino().run(&d, budget, 5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
