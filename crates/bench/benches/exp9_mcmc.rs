//! Criterion bench for Figure 9 / Experiment 9: MCMC re-sampling cost.
//! Run `fig9_mcmc` for the quality sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_bench::{config, KaminoVariant, Method};
use kamino_datasets::Corpus;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let d = Corpus::Adult.generate(150, 1);
    let budget = config::default_budget();
    let mut g = c.benchmark_group("exp9_mcmc");
    g.sample_size(10);
    for ratio in [0.0, 2.0] {
        g.bench_function(format!("mcmc_ratio_{ratio}"), |b| {
            let variant = KaminoVariant {
                mcmc_ratio: ratio,
                ..Default::default()
            };
            b.iter(|| black_box(Method::Kamino(variant).run(&d, budget, 5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
