//! Criterion bench for Figure 1: baseline synthesis + post-hoc repair on a
//! micro Adult-like instance. Run the `fig1_motivation` binary for the
//! full standard-vs-cleaned comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_baselines::{PrivBayes, Synthesizer};
use kamino_bench::config;
use kamino_datasets::Corpus;
use kamino_eval::clean::repair;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let d = Corpus::Adult.generate(150, 1);
    let budget = config::default_budget();
    let synth = PrivBayes::default().synthesize(&d.schema, &d.instance, budget, 150, 3);
    let mut g = c.benchmark_group("fig1_motivation");
    g.sample_size(10);
    g.bench_function("privbayes_standard", |b| {
        b.iter(|| {
            black_box(PrivBayes::default().synthesize(&d.schema, &d.instance, budget, 150, 3))
        })
    });
    g.bench_function("repair_cleaned_arm", |b| {
        b.iter(|| black_box(repair(&d.schema, &synth, &d.dcs)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
