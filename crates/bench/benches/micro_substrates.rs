//! Microbenchmarks for the hot substrate kernels: violation counting
//! (FD fast path, order fast path, naive scan), incremental counters, the
//! RDP accountant, batch candidate scoring (serial vs. the rayon-backed
//! parallel substrate, and the compact scan table vs. its row-map
//! reference), DP-SGD steps (serial vs. microbatch-parallel and fused vs.
//! reference clip-accumulate), and the tiled matvec against its naive
//! reference.
//!
//! The `*_serial` / `*_parallel` pairs share one setup and produce
//! identical outputs; only wall-clock should differ. Run with
//! `RAYON_NUM_THREADS=<k>` to fix the worker count — the parallel entries
//! degenerate to the serial path when only one worker is available, so
//! those pairs only show a speedup on a multi-core host (the bench prints
//! the detected core count at startup so single-core results are not
//! misread as regressions). The `matvec_{tiled,ref}` and
//! `scan_count_{compact,rowmap_ref}` pairs are single-thread algorithmic
//! comparisons and should show movement on any host. The
//! `dpsgd_step_{fused,reference}` pair documents that the fused
//! clip-accumulate is at worst cost-neutral on a dense single-block model
//! (the traversal it eliminates is a memset; the win grows with block
//! count) while staying bit-identical. The `synthesize_{serial,sharded4}`
//! pair compares the sequential Algorithm 3 against the sharded engine
//! (different outputs by design — see `kamino_core::sampler` — but both
//! hard-DC clean, asserted in setup).

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_constraints::{
    count_violating_pairs, parse_dc, CandidateRow, CellContext, DcCounter, Hardness, ScanIndexRef,
    ScoreSet,
};
use kamino_data::Value;
use kamino_datasets::adult_like;
use kamino_dp::RdpAccountant;
use kamino_nn::{DpSgd, ParamBlock, PerExampleModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Dense linear model (64×64) for DP-SGD step benchmarks: one
/// matrix-vector product + outer-product gradient per example.
#[derive(Clone)]
struct DenseModel {
    w: ParamBlock,
    dim: usize,
}

impl DenseModel {
    fn new(dim: usize) -> DenseModel {
        DenseModel {
            w: ParamBlock::zeros(dim * dim),
            dim,
        }
    }
}

impl PerExampleModel<Vec<f64>> for DenseModel {
    fn forward_backward(&mut self, x: &Vec<f64>) -> f64 {
        let d = self.dim;
        let mut loss = 0.0;
        for r in 0..d {
            let row = r * d..(r + 1) * d;
            let y: f64 = self.w.values[row.clone()]
                .iter()
                .zip(x)
                .map(|(w, xc)| w * xc)
                .sum();
            let err = y - x[r];
            loss += 0.5 * err * err;
            for (g, &xc) in self.w.grads[row].iter_mut().zip(x) {
                *g += err * xc;
            }
        }
        loss
    }

    fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        f(&mut self.w);
    }
}

fn bench(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "micro_substrates: {cores} core(s) available — \
         *_parallel entries need >1 to beat their *_serial twin"
    );

    let d = adult_like(2_000, 1);
    let fd = &d.dcs[0];
    let ord = &d.dcs[1];
    let naive_ord = parse_dc(
        &d.schema,
        "naive",
        "!(t1.capital_gain >= t2.capital_gain & t1.capital_loss <= t2.capital_loss & t1.age > t2.age)",
        Hardness::Soft,
    )
    .unwrap();

    let mut g = c.benchmark_group("micro_substrates");
    g.sample_size(10);
    g.bench_function("count_pairs_fd_fastpath_n2000", |b| {
        b.iter(|| black_box(count_violating_pairs(fd, &d.instance)))
    });
    g.bench_function("count_pairs_order_fenwick_n2000", |b| {
        b.iter(|| black_box(count_violating_pairs(ord, &d.instance)))
    });
    g.bench_function("count_pairs_naive_scan_n2000", |b| {
        b.iter(|| black_box(count_violating_pairs(&naive_ord, &d.instance)))
    });
    g.bench_function("incremental_fd_counter_fill_n2000", |b| {
        let edu_num = d.schema.index_of("education_num").unwrap();
        b.iter(|| {
            let mut counter = DcCounter::build(fd);
            let mut total = 0;
            for i in 0..d.instance.n_rows() {
                let cand = CandidateRow::committed(&d.instance, i, edu_num);
                total += counter.count_new(&cand);
                counter.insert(&cand);
            }
            black_box(total)
        })
    });

    // Batch candidate scoring through the scan-counter prefix: the
    // Algorithm 3 inner loop at n = 2000 with a 64-value candidate set
    // (~128k pair evaluations per call). Serial vs. rayon-parallel.
    {
        let gain = d.schema.index_of("capital_gain").unwrap();
        let dcs = vec![naive_ord.clone()];
        let weights = [1.5];
        let mut set = ScoreSet::build(&[0], &dcs);
        for i in 0..d.instance.n_rows() {
            set.insert(&CandidateRow::committed(&d.instance, i, gain));
        }
        let cell = CellContext::new(&d.instance, d.instance.n_rows() - 1, gain);
        let values: Vec<Value> = (0..64).map(|k| Value::Num(k as f64 * 30.0)).collect();
        let reference = set.score_candidates(cell, &values, &weights, false);
        assert_eq!(
            reference,
            set.score_candidates(cell, &values, &weights, true),
            "parallel scoring must be bit-identical"
        );
        g.bench_function("score_candidates_serial_n2000_d64", |b| {
            b.iter(|| black_box(set.score_candidates(cell, &values, &weights, false)))
        });
        g.bench_function("score_candidates_parallel_n2000_d64", |b| {
            b.iter(|| black_box(set.score_candidates(cell, &values, &weights, true)))
        });

        // Compact contiguous scan table vs. its row-map reference twin
        // (per-row heap allocations behind a hash map — the layout the
        // compact index replaced): identical per-candidate counts
        // (asserted in setup), single-thread, so the pair isolates what
        // the layout change buys the scoring scan on any host.
        let mut compact = DcCounter::build(&naive_ord);
        let mut rowmap = ScanIndexRef::new(&naive_ord);
        for i in 0..d.instance.n_rows() {
            let cand = CandidateRow::committed(&d.instance, i, gain);
            compact.insert(&cand);
            rowmap.insert(&cand);
        }
        for &v in &values {
            let cand = cell.with(v);
            assert_eq!(
                compact.count_new(&cand),
                rowmap.count_new(&cand),
                "compact scan diverged from the row-map reference"
            );
        }
        g.bench_function("scan_count_rowmap_ref_n2000_d64", |b| {
            b.iter(|| {
                let mut total = 0;
                for &v in &values {
                    total += rowmap.count_new(&cell.with(v));
                }
                black_box(total)
            })
        });
        g.bench_function("scan_count_compact_n2000_d64", |b| {
            b.iter(|| {
                let mut total = 0;
                for &v in &values {
                    total += compact.count_new(&cell.with(v));
                }
                black_box(total)
            })
        });
    }

    // Tiled (register-blocked) matvec vs. the naive reference on a
    // 256×256 weight: a single-thread algorithmic pair — the tiled kernel
    // is bit-identical (asserted in setup) and should win on any host.
    {
        use kamino_nn::linalg::{matvec, matvec_ref};
        let dim = 256;
        let mut rng = StdRng::seed_from_u64(5);
        let w: Vec<f64> = (0..dim * dim).map(|_| rng.gen::<f64>() - 0.5).collect();
        let x: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() - 0.5).collect();
        let mut y_t = vec![0.0; dim];
        let mut y_r = vec![0.0; dim];
        matvec(&w, &x, &mut y_t);
        matvec_ref(&w, &x, &mut y_r);
        assert!(
            y_t.iter()
                .zip(&y_r)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "tiled matvec must be bit-identical to the reference"
        );
        g.bench_function("matvec_ref_256x256", |b| {
            b.iter(|| {
                matvec_ref(black_box(&w), black_box(&x), &mut y_r);
                black_box(&y_r);
            })
        });
        g.bench_function("matvec_tiled_256x256", |b| {
            b.iter(|| {
                matvec(black_box(&w), black_box(&x), &mut y_t);
                black_box(&y_t);
            })
        });
    }

    // One DP-SGD step on a dense 64×64 model over a 256-example batch:
    // serial vs. microbatch-parallel (16 microbatches).
    {
        let dim = 64;
        let mut rng = StdRng::seed_from_u64(7);
        let batch: Vec<Vec<f64>> = (0..256)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>() - 0.5).collect())
            .collect();
        let opt = DpSgd {
            clip: 1.0,
            noise_multiplier: 1.1,
            lr: 0.05,
            expected_batch: 256.0,
        };
        g.bench_function("dpsgd_step_serial_b256_d64x64", |b| {
            let mut model = DenseModel::new(dim);
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| black_box(opt.step(&mut model, &batch, &mut rng)))
        });
        g.bench_function("dpsgd_step_parallel_b256_d64x64", |b| {
            let mut model = DenseModel::new(dim);
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| {
                let proto = model.clone();
                black_box(opt.step_parallel(&mut model, &batch, &mut rng, || proto.clone()))
            })
        });
        // Fused clip-and-accumulate vs. the two-pass reference kernel:
        // single-thread, same gradients to the bit (pinned by a test in
        // kamino_nn::optim), fewer traversals of every gradient buffer.
        g.bench_function("dpsgd_step_reference_b256_d64x64", |b| {
            let mut model = DenseModel::new(dim);
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| black_box(opt.step_reference(&mut model, &batch, &mut rng)))
        });
        g.bench_function("dpsgd_step_fused_b256_d64x64", |b| {
            let mut model = DenseModel::new(dim);
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| black_box(opt.step(&mut model, &batch, &mut rng)))
        });
    }

    // Serial vs. sharded synthesis: one trained model, the full Algorithm
    // 3 column walk at n = 512, sequential against 4 row shards with the
    // cross-shard repair pass. Unlike the scoring/DP-SGD pairs the two
    // entries are NOT bit-identical (sharding re-orders the conditioning
    // prefix); what they share is the hard-DC guarantee, asserted below.
    {
        use kamino_core::{synthesize, train_model, SampleConfig, TrainConfig};

        let dsmall = adult_like(512, 3);
        let sequence = kamino_core::sequence_attrs(&dsmall.schema, &dsmall.dcs);
        let tc = TrainConfig {
            iters: 40,
            embed_dim: 8,
            ..TrainConfig::default()
        };
        let model = train_model(&dsmall.schema, &dsmall.instance, &sequence, &tc);
        let weights = vec![f64::INFINITY; dsmall.dcs.len()];
        for shards in [1usize, 4] {
            let mut sc = SampleConfig::new(512);
            sc.shards = shards;
            let out = {
                let mut rng = StdRng::seed_from_u64(11);
                synthesize(&dsmall.schema, &model, &dsmall.dcs, &weights, &sc, &mut rng)
            };
            for dc in &dsmall.dcs {
                assert_eq!(
                    count_violating_pairs(dc, &out),
                    0,
                    "{} violated at shards={shards}",
                    dc.name
                );
            }
            let name = if shards == 1 {
                "synthesize_serial_n512"
            } else {
                "synthesize_sharded4_n512"
            };
            g.bench_function(name, |b| {
                let mut rng = StdRng::seed_from_u64(11);
                b.iter(|| {
                    black_box(synthesize(
                        &dsmall.schema,
                        &model,
                        &dsmall.dcs,
                        &weights,
                        &sc,
                        &mut rng,
                    ))
                })
            });
        }
    }

    g.bench_function("rdp_accountant_5000_sgm_steps", |b| {
        b.iter(|| {
            let mut acc = RdpAccountant::new();
            acc.add_sgm(1.1, 0.001, 5_000);
            black_box(acc.epsilon(1e-6))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
