//! Microbenchmarks for the hot substrate kernels: violation counting
//! (FD fast path, order fast path, naive scan), incremental counters, the
//! RDP accountant, and one DP-SGD step.

use criterion::{criterion_group, criterion_main, Criterion};
use kamino_constraints::{count_violating_pairs, parse_dc, CandidateRow, DcCounter, Hardness};
use kamino_datasets::adult_like;
use kamino_dp::RdpAccountant;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let d = adult_like(2_000, 1);
    let fd = &d.dcs[0];
    let ord = &d.dcs[1];
    let naive_ord = parse_dc(
        &d.schema,
        "naive",
        "!(t1.capital_gain >= t2.capital_gain & t1.capital_loss <= t2.capital_loss & t1.age > t2.age)",
        Hardness::Soft,
    )
    .unwrap();

    let mut g = c.benchmark_group("micro_substrates");
    g.bench_function("count_pairs_fd_fastpath_n2000", |b| {
        b.iter(|| black_box(count_violating_pairs(fd, &d.instance)))
    });
    g.bench_function("count_pairs_order_fenwick_n2000", |b| {
        b.iter(|| black_box(count_violating_pairs(ord, &d.instance)))
    });
    g.bench_function("count_pairs_naive_scan_n2000", |b| {
        b.iter(|| black_box(count_violating_pairs(&naive_ord, &d.instance)))
    });
    g.bench_function("incremental_fd_counter_fill_n2000", |b| {
        let edu_num = d.schema.index_of("education_num").unwrap();
        b.iter(|| {
            let mut counter = DcCounter::build(fd);
            let mut total = 0;
            for i in 0..d.instance.n_rows() {
                let cand = CandidateRow::committed(&d.instance, i, edu_num);
                total += counter.count_new(&cand);
                counter.insert(&cand);
            }
            black_box(total)
        })
    });
    g.bench_function("rdp_accountant_5000_sgm_steps", |b| {
        b.iter(|| {
            let mut acc = RdpAccountant::new();
            acc.add_sgm(1.1, 0.001, 5_000);
            black_box(acc.epsilon(1e-6))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
