//! Machine-readable throughput baseline: times one fit and the sharded
//! synthesis engine at several shard counts, reporting rows/sec.
//!
//! ```bash
//! cargo run --release -p kamino-bench --bin bench_report            # table
//! cargo run --release -p kamino-bench --bin bench_report -- --json  # + BENCH_synthesis.json
//! cargo run --release -p kamino-bench --bin bench_report -- --json --out path.json
//! ```
//!
//! The `--json` mode writes `BENCH_synthesis.json` (deterministic keys,
//! stable schema) so future PRs can diff fit latency and synthesis
//! throughput against this one. `KAMINO_BENCH_FAST=1` shrinks the run
//! ~10× for CI smoke; `KAMINO_BENCH_N` overrides the row count.
//!
//! `--dump-rows PATH` additionally writes the synthesized rows (CSV with
//! header) from a fresh snapshot restore. The fit, the snapshot, and the
//! restored RNG cursor are all seed-determined, so two runs with the same
//! configuration must produce byte-identical dumps — CI diffs them as a
//! determinism guard over the whole fit→snapshot→synthesize path.

use kamino_bench::report::Table;
use kamino_core::{fit_kamino, KaminoConfig};
use kamino_datasets::Corpus;
use kamino_dp::Budget;
use kamino_obs::{clock, ObsHandle};
use kamino_serve::Json;

/// One timed synthesis run.
struct SynthSample {
    shards: usize,
    rows: usize,
    seconds: f64,
}

impl SynthSample {
    fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.seconds.max(1e-9)
    }
}

fn main() {
    let mut json_mode = false;
    let mut out_path = String::from("BENCH_synthesis.json");
    let mut dump_rows: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_mode = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out takes a path");
                    std::process::exit(2);
                })
            }
            "--dump-rows" => {
                dump_rows = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--dump-rows takes a path");
                    std::process::exit(2);
                }))
            }
            "--trace-out" => {
                trace_out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--trace-out takes a path");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!(
                    "usage: bench_report [--json] [--out PATH] [--dump-rows PATH] [--trace-out PATH] (got `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }

    let fast = std::env::var("KAMINO_BENCH_FAST").is_ok_and(|v| v == "1");
    let corpus = Corpus::Adult;
    let n: usize = std::env::var("KAMINO_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast { 150 } else { 800 });
    let train_scale = if fast { 0.03 } else { 0.2 };
    let synth_rows = if fast { 300 } else { 2_000 };
    let shard_counts = [1usize, 2, 4];
    let seed = 11;

    let d = corpus.generate(n, 1);
    let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
    cfg.seed = seed;
    cfg.train_scale = train_scale;
    // phase spans and the DP budget ledger only when a trace was asked
    // for; the measured numbers and the JSON artifact are unaffected
    let obs = if trace_out.is_some() {
        ObsHandle::enabled()
    } else {
        ObsHandle::disabled()
    };
    cfg.obs = obs.clone();

    let t0 = clock::now_nanos();
    let fitted = fit_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
    let fit_seconds = clock::secs_since(t0);

    // one fit feeds every shard measurement: each round restores the
    // session from the same snapshot bytes (identical model AND RNG
    // cursor, so the shard counts sample the same stream position) and
    // re-tunes only the execution knob
    let snapshot = kamino_serve::encode_fitted(&fitted);
    let mut samples = Vec::new();
    for &shards in &shard_counts {
        let mut session = kamino_serve::decode_fitted(&snapshot).expect("snapshot round-trip");
        session.set_shards(shards);
        // warm-up draw so allocation effects do not dominate small runs
        let _ = session.sample(synth_rows.min(100));
        let t0 = clock::now_nanos();
        let inst = session.sample(synth_rows);
        let seconds = clock::secs_since(t0);
        assert_eq!(inst.n_rows(), synth_rows);
        samples.push(SynthSample {
            shards,
            rows: synth_rows,
            seconds,
        });
    }

    let mut table = Table::new(
        "Synthesis throughput baseline (fit once, sample many)",
        &["Phase", "Shards", "Rows", "Seconds", "Rows/sec"],
    );
    table.row(vec![
        "fit".into(),
        "-".into(),
        format!("{n}"),
        format!("{fit_seconds:.3}"),
        "-".into(),
    ]);
    for s in &samples {
        table.row(vec![
            "synthesize".into(),
            format!("{}", s.shards),
            format!("{}", s.rows),
            format!("{:.3}", s.seconds),
            format!("{:.0}", s.rows_per_sec()),
        ]);
    }
    table.emit("bench_report");

    if let Some(path) = &trace_out {
        std::fs::write(path, obs.chrome_trace_json()).unwrap_or_else(|e| {
            eprintln!("bench_report: cannot write trace {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    if let Some(path) = &dump_rows {
        // Fresh restore: identical model and RNG cursor every run, so the
        // dump is a byte-exact function of corpus/seed/row-count alone.
        let mut session = kamino_serve::decode_fitted(&snapshot).expect("snapshot round-trip");
        session.set_shards(*shard_counts.last().expect("non-empty shard list"));
        let inst = session.sample(synth_rows);
        let header = kamino_data::csv::header_line(session.schema()).expect("csv header");
        let rows = kamino_data::csv::rows_text(session.schema(), &inst).expect("csv rows");
        std::fs::write(path, format!("{header}{rows}")).unwrap_or_else(|e| {
            eprintln!("bench_report: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    if json_mode {
        let body = Json::obj([
            ("schema_version", Json::Num(1.0)),
            ("corpus", Json::Str(corpus.name().to_string())),
            ("fit_rows", Json::Num(n as f64)),
            ("train_scale", Json::Num(train_scale)),
            ("seed", Json::Num(seed as f64)),
            ("fit_seconds", Json::Num(fit_seconds)),
            (
                "synthesize",
                Json::Arr(
                    samples
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("shards", Json::Num(s.shards as f64)),
                                ("rows", Json::Num(s.rows as f64)),
                                ("seconds", Json::Num(s.seconds)),
                                ("rows_per_sec", Json::Num(s.rows_per_sec())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(&out_path, format!("{body}\n")).unwrap_or_else(|e| {
            eprintln!("bench_report: cannot write {out_path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {out_path}");
    }
}
