//! `kamino-chaos` — crash-recovery chaos driver for `kamino-serve`.
//!
//! ```text
//! kamino-chaos --server-bin PATH [--work-dir DIR] [--out FILE]
//! ```
//!
//! Spawns the given server binary, kills it at injected fault points
//! (mid-fit, mid-ledger-append, mid-snapshot-rename, full disk),
//! restarts it over the same model directory and checks the recovery
//! invariants. The report (`--out`, default stdout) contains only
//! scenario/check names and booleans — no timings, no paths — so two
//! runs of the same build produce byte-identical documents; CI runs the
//! harness twice and diffs them.
//!
//! Exits 0 when every scenario passes, 1 otherwise.

use std::path::PathBuf;
use std::process::ExitCode;

use kamino_bench::chaos::{self, ChaosConfig};

fn usage() -> ! {
    eprintln!("usage: kamino-chaos --server-bin PATH [--work-dir DIR] [--out FILE]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut server_bin: Option<PathBuf> = None;
    let mut work_dir = std::env::temp_dir().join(format!("kamino-chaos-{}", std::process::id()));
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--server-bin" => server_bin = Some(PathBuf::from(value("--server-bin"))),
            "--work-dir" => work_dir = PathBuf::from(value("--work-dir")),
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    let Some(server_bin) = server_bin else {
        eprintln!("--server-bin is required");
        usage();
    };
    if !server_bin.is_file() {
        eprintln!("kamino-chaos: {} is not a file", server_bin.display());
        return ExitCode::FAILURE;
    }
    std::fs::create_dir_all(&work_dir).expect("create work dir");

    let cfg = ChaosConfig {
        server_bin,
        work_dir: work_dir.clone(),
    };
    let reports = chaos::run_all(&cfg);
    for r in &reports {
        let failed: Vec<&str> = r
            .checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.name)
            .collect();
        if failed.is_empty() {
            println!(
                "kamino-chaos: {:<26} pass ({} checks)",
                r.scenario,
                r.checks.len()
            );
        } else {
            println!(
                "kamino-chaos: {:<26} FAIL ({})",
                r.scenario,
                failed.join(", ")
            );
        }
    }
    let doc = chaos::render_json(&reports);
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("kamino-chaos: writing {} failed: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("kamino-chaos: wrote {}", path.display());
        }
        None => print!("{doc}"),
    }
    let _ = std::fs::remove_dir_all(&work_dir);
    if reports.iter().all(|r| r.pass()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
