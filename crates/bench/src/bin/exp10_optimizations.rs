//! Experiment 10: efficiency optimizations.
//!
//! (a) Parallel sub-model training with fresh (non-reused) embeddings:
//!     the paper reports 3.5× faster training at ≈0.01 quality cost.
//! (b) The hard-FD lookup fast path on a scaled-up TPC-H (all of whose
//!     DCs are hard FDs): large sampling speedup at identical violations.

use std::time::Instant;

use kamino_bench::{classifier_roster, config, report, KaminoVariant, Method};
use kamino_constraints::violation_percentage;
use kamino_datasets::{tpch_like, Corpus};
use kamino_eval::tasks::evaluate_classification_with;

fn main() {
    let budget = config::default_budget();
    let seed = config::seeds()[0];

    // (a) parallel training on Adult
    let n = config::rows_for(Corpus::Adult);
    let d = Corpus::Adult.generate(n, 1);
    let mut ta = report::Table::new(
        &format!("Exp. 10a (Adult-like, n={n}): parallel sub-model training"),
        &["Mode", "Train (s)", "Accuracy"],
    );
    for parallel in [false, true] {
        let variant = KaminoVariant {
            parallel,
            ..Default::default()
        };
        let (inst, rep) = Method::Kamino(variant).run(&d, budget, seed);
        let rep = rep.unwrap();
        let summary =
            evaluate_classification_with(&d.schema, &d.instance, &inst, seed, classifier_roster);
        ta.row(vec![
            if parallel {
                "parallel (fresh embeddings)"
            } else {
                "sequential (reused)"
            }
            .to_string(),
            format!("{:.2}", rep.timings.training.as_secs_f64()),
            format!("{:.3}", summary.mean_accuracy()),
        ]);
    }
    ta.emit("exp10_optimizations");

    // (b) hard-FD lookup on scaled TPC-H
    let big_n = (config::rows_for(Corpus::TpcH) * 3).max(1500);
    let d = tpch_like(big_n, 1);
    let mut tb = report::Table::new(
        &format!("Exp. 10b (TPC-H-like, n={big_n}): hard-FD lookup fast path"),
        &["Mode", "Sampling (s)", "Total viol. %"],
    );
    for lookup in [false, true] {
        let variant = KaminoVariant {
            hard_fd_lookup: lookup,
            ..Default::default()
        };
        let start = Instant::now();
        let (inst, rep) = Method::Kamino(variant).run(&d, budget, seed);
        let _ = start;
        let rep = rep.unwrap();
        let viol: f64 = d.dcs.iter().map(|dc| violation_percentage(dc, &inst)).sum();
        tb.row(vec![
            if lookup {
                "FD lookup"
            } else {
                "candidate scoring"
            }
            .to_string(),
            format!("{:.2}", rep.timings.sampling.as_secs_f64()),
            format!("{viol:.2}"),
        ]);
    }
    tb.emit("exp10_optimizations");
}
