//! Experiment 10: efficiency optimizations.
//!
//! (a) Parallel sub-model training with fresh (non-reused) embeddings:
//!     the paper reports 3.5× faster training at ≈0.01 quality cost.
//! (b) The hard-FD lookup fast path on a scaled-up TPC-H (all of whose
//!     DCs are hard FDs): large sampling speedup at identical violations.
//! (c) The tiled/fused numeric-kernel ablation: register-blocked matvec
//!     vs. the naive reference, and the fused DP-SGD clip-accumulate vs.
//!     the two-pass reference — single-thread algorithmic wins whose
//!     outputs are bit-identical (asserted before timing).

use kamino_bench::{classifier_roster, config, report, KaminoVariant, Method};
use kamino_constraints::violation_percentage;
use kamino_datasets::{tpch_like, Corpus};
use kamino_eval::tasks::evaluate_classification_with;
use kamino_nn::linalg::{matvec, matvec_ref};
use kamino_nn::{DpSgd, ParamBlock, PerExampleModel};
use kamino_obs::clock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let budget = config::default_budget();
    let seed = config::seeds()[0];

    // (a) parallel training on Adult
    let n = config::rows_for(Corpus::Adult);
    let d = Corpus::Adult.generate(n, 1);
    let mut ta = report::Table::new(
        &format!("Exp. 10a (Adult-like, n={n}): parallel sub-model training"),
        &["Mode", "Train (s)", "Accuracy"],
    );
    for parallel in [false, true] {
        let variant = KaminoVariant {
            parallel,
            ..Default::default()
        };
        let (inst, rep) = Method::Kamino(variant).run(&d, budget, seed);
        let rep = rep.unwrap();
        let summary =
            evaluate_classification_with(&d.schema, &d.instance, &inst, seed, classifier_roster);
        ta.row(vec![
            if parallel {
                "parallel (fresh embeddings)"
            } else {
                "sequential (reused)"
            }
            .to_string(),
            format!("{:.2}", rep.timings.training.as_secs_f64()),
            format!("{:.3}", summary.mean_accuracy()),
        ]);
    }
    ta.emit("exp10_optimizations");

    // (b) hard-FD lookup on scaled TPC-H
    let big_n = (config::rows_for(Corpus::TpcH) * 3).max(1500);
    let d = tpch_like(big_n, 1);
    let mut tb = report::Table::new(
        &format!("Exp. 10b (TPC-H-like, n={big_n}): hard-FD lookup fast path"),
        &["Mode", "Sampling (s)", "Total viol. %"],
    );
    for lookup in [false, true] {
        let variant = KaminoVariant {
            hard_fd_lookup: lookup,
            ..Default::default()
        };
        let start = clock::now_nanos();
        let (inst, rep) = Method::Kamino(variant).run(&d, budget, seed);
        let _ = start;
        let rep = rep.unwrap();
        let viol: f64 = d.dcs.iter().map(|dc| violation_percentage(dc, &inst)).sum();
        tb.row(vec![
            if lookup {
                "FD lookup"
            } else {
                "candidate scoring"
            }
            .to_string(),
            format!("{:.2}", rep.timings.sampling.as_secs_f64()),
            format!("{viol:.2}"),
        ]);
    }
    tb.emit("exp10_optimizations");

    // (c) tiled/fused kernel ablation (single-thread, bit-identical)
    let mut tc = report::Table::new(
        "Exp. 10c: numeric-kernel ablation (reference vs. optimized, bit-identical outputs)",
        &["Kernel", "Reference (s)", "Optimized (s)", "Speedup"],
    );
    {
        let dim = 256;
        let reps = 2_000;
        // kamino-lint: allow(raw_rng) -- bench harness stream with a pinned seed; measures kernels and releases nothing
        let mut rng = StdRng::seed_from_u64(5);
        let w: Vec<f64> = (0..dim * dim).map(|_| rng.gen::<f64>() - 0.5).collect();
        let x: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() - 0.5).collect();
        let mut y_t = vec![0.0; dim];
        let mut y_r = vec![0.0; dim];
        matvec(&w, &x, &mut y_t);
        matvec_ref(&w, &x, &mut y_r);
        assert!(
            y_t.iter()
                .zip(&y_r)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "tiled matvec drifted from the reference"
        );
        let t0 = clock::now_nanos();
        for _ in 0..reps {
            matvec_ref(&w, &x, &mut y_r);
            std::hint::black_box(&y_r);
        }
        let ref_s = clock::secs_since(t0);
        let t0 = clock::now_nanos();
        for _ in 0..reps {
            matvec(&w, &x, &mut y_t);
            std::hint::black_box(&y_t);
        }
        let opt_s = clock::secs_since(t0);
        tc.row(vec![
            format!("matvec {dim}x{dim} ({reps} reps)"),
            format!("{ref_s:.3}"),
            format!("{opt_s:.3}"),
            format!("{:.2}x", ref_s / opt_s.max(1e-9)),
        ]);
    }
    {
        let dim = 64;
        let steps = 20;
        // kamino-lint: allow(raw_rng) -- bench harness stream with a pinned seed; measures kernels and releases nothing
        let mut rng = StdRng::seed_from_u64(7);
        let batch: Vec<Vec<f64>> = (0..256)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>() - 0.5).collect())
            .collect();
        let opt = DpSgd {
            clip: 1.0,
            noise_multiplier: 1.1,
            lr: 0.05,
            expected_batch: 256.0,
        };
        let mut m_ref = DenseModel::new(dim);
        let mut m_fused = DenseModel::new(dim);
        // kamino-lint: allow(raw_rng) -- bench harness stream with a pinned seed; measures kernels and releases nothing
        let mut r1 = StdRng::seed_from_u64(8);
        // kamino-lint: allow(raw_rng) -- bench harness stream with a pinned seed; measures kernels and releases nothing
        let mut r2 = StdRng::seed_from_u64(8);
        let t0 = clock::now_nanos();
        for _ in 0..steps {
            std::hint::black_box(opt.step_reference(&mut m_ref, &batch, &mut r1));
        }
        let ref_s = clock::secs_since(t0);
        let t0 = clock::now_nanos();
        for _ in 0..steps {
            std::hint::black_box(opt.step(&mut m_fused, &batch, &mut r2));
        }
        let fused_s = clock::secs_since(t0);
        assert!(
            m_ref
                .w
                .values
                .iter()
                .zip(&m_fused.w.values)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "fused DP-SGD step drifted from the reference"
        );
        tc.row(vec![
            format!("dpsgd step b256 d{dim}x{dim} ({steps} steps)"),
            format!("{ref_s:.3}"),
            format!("{fused_s:.3}"),
            format!("{:.2}x", ref_s / fused_s.max(1e-9)),
        ]);
    }
    tc.emit("exp10_optimizations");
}

/// Dense linear model (one matvec + outer-product gradient per example)
/// for the DP-SGD kernel ablation.
struct DenseModel {
    w: ParamBlock,
    dim: usize,
}

impl DenseModel {
    fn new(dim: usize) -> DenseModel {
        DenseModel {
            w: ParamBlock::zeros(dim * dim),
            dim,
        }
    }
}

impl PerExampleModel<Vec<f64>> for DenseModel {
    fn forward_backward(&mut self, x: &Vec<f64>) -> f64 {
        let d = self.dim;
        let mut loss = 0.0;
        for r in 0..d {
            let row = r * d..(r + 1) * d;
            let y: f64 = self.w.values[row.clone()]
                .iter()
                .zip(x)
                .map(|(w, xc)| w * xc)
                .sum();
            let err = y - x[r];
            loss += 0.5 * err * err;
            for (g, &xc) in self.w.grads[row].iter_mut().zip(x) {
                *g += err * xc;
            }
        }
        loss
    }

    fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        f(&mut self.w);
    }
}
