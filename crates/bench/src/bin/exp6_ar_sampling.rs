//! Experiment 6: Kamino's constraint-aware sampling versus accept–reject
//! (AR) sampling.
//!
//! Paper shape: on Adult (hard DCs) AR sampling leaves violations (their
//! run: 0.4% on φ₁ᵃ and 37.2% on φ₂ᵃ) and is slower per accepted value;
//! on BR2000 (soft DCs) AR performs comparably and converges faster.

use kamino_bench::{config, report, KaminoVariant, Method};
use kamino_constraints::violation_percentage;
use kamino_datasets::Corpus;
use kamino_obs::clock;

fn main() {
    let budget = config::default_budget();
    let seed = config::seeds()[0];
    let mut t = report::Table::new(
        "Experiment 6: constraint-aware vs accept-reject sampling",
        &["Dataset", "Sampler", "DC", "Violation %", "Total time (s)"],
    );
    for corpus in [Corpus::Adult, Corpus::Br2000] {
        let n = config::rows_for(corpus);
        let d = corpus.generate(n, 1);
        for ar in [false, true] {
            let variant = KaminoVariant {
                ar_sampling: ar,
                ..Default::default()
            };
            let start = clock::now_nanos();
            let (inst, _) = Method::Kamino(variant).run(&d, budget, seed);
            let elapsed = clock::secs_since(start);
            for dc in &d.dcs {
                t.row(vec![
                    corpus.name().to_string(),
                    if ar {
                        "accept-reject"
                    } else {
                        "constraint-aware"
                    }
                    .to_string(),
                    dc.name.clone(),
                    format!("{:.2}", violation_percentage(dc, &inst)),
                    format!("{elapsed:.2}"),
                ]);
            }
        }
    }
    t.emit("exp6_ar_sampling");
}
