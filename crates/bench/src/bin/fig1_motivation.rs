//! Figure 1 (motivation): the "standard vs cleaned" experiment. Baselines
//! synthesize Adult at (ε = 1, δ = 1e-6); post-hoc constraint repair fixes
//! their DC violations but *degrades* classification accuracy and 2-way
//! marginal distance — the phenomenon motivating constraint-aware
//! synthesis.

use kamino_bench::{classifier_roster, config, figure1_roster, report};
use kamino_datasets::Corpus;
use kamino_eval::clean::repair;
use kamino_eval::marginals::{summarize, tvd_all_pairs};
use kamino_eval::tasks::evaluate_classification_with;
use kamino_eval::violations::violation_table;

fn main() {
    let seed = config::seeds()[0];
    let n = config::rows_for(Corpus::Adult);
    let d = Corpus::Adult.generate(n, 1);

    // Two panels: the paper's (ε = 1) regime, and a non-private regime.
    // At harness scale the ε = 1 baselines have already lost most joint
    // structure to noise, so post-hoc repair has little left to damage;
    // the ε = ∞ panel isolates the repair effect itself (the paper's
    // full-scale ε = 1 runs sit between the two). See EXPERIMENTS.md.
    for (label, budget) in [
        ("eps=1", config::default_budget()),
        ("eps=inf", kamino_dp::Budget::non_private()),
    ] {
        let mut t = report::Table::new(
            &format!("Figure 1 (Adult-like, n={n}, {label}): standard vs cleaned"),
            &[
                "Method",
                "Arm",
                "DC viol. %",
                "Accuracy",
                "2-way TVD (mean)",
            ],
        );
        for b in figure1_roster() {
            let standard = b.synthesize(&d.schema, &d.instance, budget, n, seed);
            let cleaned = repair(&d.schema, &standard, &d.dcs);
            for (arm, inst) in [("standard", &standard), ("cleaned", &cleaned)] {
                let viol: f64 = violation_table(&d.dcs, inst)
                    .iter()
                    .map(|(_, pct)| pct)
                    .sum::<f64>();
                let summary = evaluate_classification_with(
                    &d.schema,
                    &d.instance,
                    inst,
                    seed,
                    classifier_roster,
                );
                let (tvd_mean, _, _) = summarize(&tvd_all_pairs(&d.schema, &d.instance, inst));
                t.row(vec![
                    b.name().to_string(),
                    arm.to_string(),
                    format!("{viol:.2}"),
                    format!("{:.3}", summary.mean_accuracy()),
                    format!("{tvd_mean:.3}"),
                ]);
            }
        }
        t.emit("fig1_motivation");
    }
    println!(
        "Expected shape: 'cleaned' rows have ~0 violations but degraded\n\
         accuracy / 2-way TVD relative to 'standard', most visibly in the\n\
         low-noise panel where the baselines retain joint structure."
    );
}
