//! Figure 3 / Experiment 2: classification quality (accuracy and F1) of
//! models trained on synthetic data and tested on true data, per dataset ×
//! method. Each point in the paper's box plot is the model-averaged score
//! for one target attribute; we print mean/min/max over attributes plus
//! the Truth row (train and test on the true data).

use kamino_bench::{classifier_roster, config, report, Method};
use kamino_datasets::Corpus;
use kamino_eval::marginals::summarize;
use kamino_eval::tasks::evaluate_classification_with;

fn main() {
    let budget = config::default_budget();
    let seed = config::seeds()[0];
    for corpus in Corpus::all() {
        let n = config::rows_for(corpus);
        let d = corpus.generate(n, 1);
        let mut t = report::Table::new(
            &format!(
                "Figure 3 ({}, n={n}, eps=1): accuracy / F1 over attributes",
                corpus.name()
            ),
            &[
                "Method", "Acc mean", "Acc min", "Acc max", "F1 mean", "F1 min", "F1 max",
            ],
        );
        let mut eval_row = |name: String, synth: &kamino_data::Instance| {
            let summary = evaluate_classification_with(
                &d.schema,
                &d.instance,
                synth,
                seed,
                classifier_roster,
            );
            let accs: Vec<f64> = summary.per_attribute.iter().map(|r| r.accuracy).collect();
            let f1s: Vec<f64> = summary.per_attribute.iter().map(|r| r.f1).collect();
            let (am, alo, ahi) = summarize(&accs);
            let (fm, flo, fhi) = summarize(&f1s);
            t.row(vec![
                name,
                format!("{am:.3}"),
                format!("{alo:.3}"),
                format!("{ahi:.3}"),
                format!("{fm:.3}"),
                format!("{flo:.3}"),
                format!("{fhi:.3}"),
            ]);
        };
        for m in Method::paper_roster() {
            let (inst, _) = m.run(&d, budget, seed);
            eval_row(m.name(), &inst);
        }
        eval_row("Truth".to_string(), &d.instance);
        t.emit("fig3_model_training");
    }
}
