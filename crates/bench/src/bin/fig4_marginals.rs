//! Figure 4 / Experiment 3: total variation distance on 1-way and 2-way
//! marginals, per dataset × method (mean/min/max over attribute sets).

use kamino_bench::{config, report, Method};
use kamino_datasets::Corpus;
use kamino_eval::marginals::{summarize, tvd_all_pairs, tvd_all_singles};

fn main() {
    let budget = config::default_budget();
    let seed = config::seeds()[0];
    for corpus in Corpus::all() {
        let n = config::rows_for(corpus);
        let d = corpus.generate(n, 1);
        let mut t = report::Table::new(
            &format!("Figure 4 ({}, n={n}, eps=1): marginal TVD", corpus.name()),
            &[
                "Method",
                "1-way mean",
                "1-way max",
                "2-way mean",
                "2-way max",
            ],
        );
        for m in Method::paper_roster() {
            let (inst, _) = m.run(&d, budget, seed);
            let ones = tvd_all_singles(&d.schema, &d.instance, &inst);
            let twos = tvd_all_pairs(&d.schema, &d.instance, &inst);
            let (m1, _, x1) = summarize(&ones);
            let (m2, _, x2) = summarize(&twos);
            t.row(vec![
                m.name(),
                format!("{m1:.3}"),
                format!("{x1:.3}"),
                format!("{m2:.3}"),
                format!("{x2:.3}"),
            ]);
        }
        t.emit("fig4_marginals");
    }
}
