//! Figure 6 / Experiment 7: task quality versus privacy budget on Adult,
//! ε ∈ {0.1, 0.2, 0.4, 0.8, 1.6, ∞} at δ = 1e-6, for Kamino and all
//! baselines. Quality should increase with ε for every method, with
//! Kamino leading on classification quality across budgets.

use kamino_bench::{classifier_roster, config, report, Method};
use kamino_datasets::Corpus;
use kamino_dp::Budget;
use kamino_eval::marginals::{summarize, tvd_all_pairs, tvd_all_singles};
use kamino_eval::tasks::evaluate_classification_with;

fn main() {
    let seed = config::seeds()[0];
    let n = config::rows_for(Corpus::Adult);
    let d = Corpus::Adult.generate(n, 1);
    let mut t = report::Table::new(
        &format!("Figure 6 (Adult-like, n={n}): quality vs epsilon"),
        &["eps", "Method", "Accuracy", "F1", "1-way TVD", "2-way TVD"],
    );
    let budgets: Vec<(String, Budget)> = [0.1, 0.2, 0.4, 0.8, 1.6]
        .iter()
        .map(|&e| (format!("{e}"), Budget::new(e, 1e-6)))
        .chain(std::iter::once(("inf".to_string(), Budget::non_private())))
        .collect();
    for (label, budget) in &budgets {
        for m in Method::paper_roster() {
            let (inst, _) = m.run(&d, *budget, seed);
            let summary = evaluate_classification_with(
                &d.schema,
                &d.instance,
                &inst,
                seed,
                classifier_roster,
            );
            let (t1, _, _) = summarize(&tvd_all_singles(&d.schema, &d.instance, &inst));
            let (t2, _, _) = summarize(&tvd_all_pairs(&d.schema, &d.instance, &inst));
            t.row(vec![
                label.clone(),
                m.name(),
                format!("{:.3}", summary.mean_accuracy()),
                format!("{:.3}", summary.mean_f1()),
                format!("{t1:.3}"),
                format!("{t2:.3}"),
            ]);
        }
    }
    t.emit("fig6_budget_sweep");
}
