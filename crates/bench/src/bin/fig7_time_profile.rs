//! Figure 7 / Experiment 4: Kamino's end-to-end execution time, profiled
//! per phase (sequencing+params, training, violation matrix + DC weights,
//! sampling) on every dataset. The paper's shape: training + sampling
//! together dominate (>99% of total).

use kamino_bench::{config, report, Method};
use kamino_datasets::Corpus;

fn main() {
    let budget = config::default_budget();
    let seed = config::seeds()[0];
    let mut t = report::Table::new(
        "Figure 7: per-phase execution time (seconds)",
        &[
            "Dataset",
            "Seq.",
            "Train",
            "DC weights",
            "Sampling",
            "Total",
            "Train+Samp %",
        ],
    );
    for corpus in Corpus::all() {
        let n = config::rows_for(corpus);
        let d = corpus.generate(n, 1);
        let (_, report) = Method::kamino().run(&d, budget, seed);
        let r = report.expect("kamino run returns a report");
        let tm = r.timings;
        let total = tm.total().as_secs_f64();
        let dominant = (tm.training + tm.sampling).as_secs_f64() / total * 100.0;
        t.row(vec![
            format!("{} (n={n})", corpus.name()),
            format!("{:.3}", tm.sequencing.as_secs_f64()),
            format!("{:.3}", tm.training.as_secs_f64()),
            format!("{:.3}", tm.dc_weights.as_secs_f64()),
            format!("{:.3}", tm.sampling.as_secs_f64()),
            format!("{total:.3}"),
            format!("{dominant:.1}%"),
        ]);
    }
    t.emit("fig7_time_profile");
}
