//! Figure 8 / Experiment 8: scalability with the number of DCs. Input DC
//! sets of size 2..128 are produced by approximate-DC discovery on the
//! Adult-like instance (standing in for the paper's use of citation \[70\]),
//! treated
//! as soft constraints.
//!
//! Paper shape: task quality degrades only slightly (≈0.04 at 128 DCs)
//! while total time grows roughly linearly, dominated by sampling.

use kamino_bench::{classifier_roster, config, report, Method};
use kamino_constraints::discovery::discover_approximate_dcs;
use kamino_datasets::{Corpus, Dataset};
use kamino_eval::marginals::{summarize, tvd_all_pairs, tvd_all_singles};
use kamino_eval::tasks::evaluate_classification_with;
use kamino_obs::clock;

fn main() {
    let budget = config::default_budget();
    let seed = config::seeds()[0];
    let n = config::rows_for(Corpus::Adult);
    let base = Corpus::Adult.generate(n, 1);
    let mut t = report::Table::new(
        &format!("Figure 8 (Adult-like, n={n}): scaling the number of DCs"),
        &[
            "#DCs",
            "Accuracy",
            "F1",
            "1-way TVD",
            "2-way TVD",
            "Train (s)",
            "Weights (s)",
            "Sample (s)",
        ],
    );
    for &n_dcs in &[2usize, 4, 8, 16, 32, 64, 128] {
        let discovered = discover_approximate_dcs(&base.schema, &base.instance, n_dcs, 25.0);
        let dcs: Vec<_> = discovered.into_iter().map(|d| d.dc).collect();
        let d = Dataset {
            name: base.name.clone(),
            schema: base.schema.clone(),
            instance: base.instance.clone(),
            dcs,
        };
        let start = clock::now_nanos();
        let (inst, rep) = Method::kamino().run(&d, budget, seed);
        let _ = start;
        let rep = rep.unwrap();
        let summary =
            evaluate_classification_with(&d.schema, &d.instance, &inst, seed, classifier_roster);
        let (t1, _, _) = summarize(&tvd_all_singles(&d.schema, &d.instance, &inst));
        let (t2, _, _) = summarize(&tvd_all_pairs(&d.schema, &d.instance, &inst));
        t.row(vec![
            format!("{}", d.dcs.len()),
            format!("{:.3}", summary.mean_accuracy()),
            format!("{:.3}", summary.mean_f1()),
            format!("{t1:.3}"),
            format!("{t2:.3}"),
            format!("{:.2}", rep.timings.training.as_secs_f64()),
            format!("{:.2}", rep.timings.dc_weights.as_secs_f64()),
            format!("{:.2}", rep.timings.sampling.as_secs_f64()),
        ]);
    }
    t.emit("fig8_dc_scaling");
}
