//! Figure 9 / Experiment 9: effect of the constrained-MCMC re-sampling
//! amount `m` (as a ratio of `n`) on task quality and execution time.
//!
//! Paper shape: modest quality gains up to m = 3n (accuracy +0.03, 2-way
//! TVD −0.02) at up to 4× the sampling time.

use kamino_bench::{classifier_roster, config, report, KaminoVariant, Method};
use kamino_datasets::Corpus;
use kamino_eval::marginals::{summarize, tvd_all_pairs, tvd_all_singles};
use kamino_eval::tasks::evaluate_classification_with;

fn main() {
    let budget = config::default_budget();
    let seed = config::seeds()[0];
    let n = config::rows_for(Corpus::Adult);
    let d = Corpus::Adult.generate(n, 1);
    let mut t = report::Table::new(
        &format!("Figure 9 (Adult-like, n={n}): MCMC re-sampling sweep"),
        &[
            "m/n",
            "Accuracy",
            "F1",
            "1-way TVD",
            "2-way TVD",
            "Sampling (s)",
        ],
    );
    for &ratio in &[0.0, 0.5, 1.0, 2.0, 3.0] {
        let variant = KaminoVariant {
            mcmc_ratio: ratio,
            ..Default::default()
        };
        let (inst, rep) = Method::Kamino(variant).run(&d, budget, seed);
        let rep = rep.unwrap();
        let summary =
            evaluate_classification_with(&d.schema, &d.instance, &inst, seed, classifier_roster);
        let (t1, _, _) = summarize(&tvd_all_singles(&d.schema, &d.instance, &inst));
        let (t2, _, _) = summarize(&tvd_all_pairs(&d.schema, &d.instance, &inst));
        t.row(vec![
            format!("{ratio}"),
            format!("{:.3}", summary.mean_accuracy()),
            format!("{:.3}", summary.mean_f1()),
            format!("{t1:.3}"),
            format!("{t2:.3}"),
            format!("{:.2}", rep.timings.sampling.as_secs_f64()),
        ]);
    }
    t.emit("fig9_mcmc");
}
