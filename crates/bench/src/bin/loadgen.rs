//! `kamino-loadgen` — production-traffic load generator for the serving
//! stack, reporting sustained `/synthesize` throughput and latency
//! quantiles as `BENCH_serve.json`.
//!
//! ```text
//! kamino-loadgen [--fast] [--out FILE]
//! ```
//!
//! The workload is "fetch N synthetic rows per request" on keep-alive
//! connections, measured across serving architectures:
//!
//! * `threaded_baseline` — a faithful reconstruction of the pre-pool
//!   server: blocking accept loop, one thread per connection, each
//!   request sampled inline as a single `sample(n)` draw (the old
//!   server drew whole request batches). Built from the same public
//!   parser/model APIs, so the comparison is architecture-for-
//!   architecture on identical hardware and an identically-specced
//!   model.
//! * `direct` — the epoll event loop with pooling disabled
//!   (`--pool-batches 0`), same single-draw-per-request semantics.
//! * `pooled_hot` — the event loop with the speculation ring warm;
//!   clients stream the same N rows as aligned `--pool-rows` chunks the
//!   ring pre-sampled. Pooling fixes the draw granularity at the ring's
//!   batch size, which sidesteps the superlinear per-draw cost of the
//!   constraint-repair pass on large draws — that, plus taking sampling
//!   off the request critical path, is where the speedup comes from.
//! * `pooled_c2` / `pooled_c4` — the pooled path under 2 and 4
//!   concurrent clients (scaling behavior of the single event loop).
//!
//! Timing comes from `kamino-obs` instrumentation: every server feeds
//! the `kamino_http_request_duration_seconds` histogram (p50/p99), and
//! the monotonic obs clock frames the sustained-RPS window. All
//! wall-clock-dependent values live under `"timing"` keys so CI can
//! assert the rest of the document byte-identical across runs.
//!
//! Overload replies are retried, not fatal: a 429 (queue shed) or 503
//! (deadline expired) backs off on a deterministic, jitter-free
//! exponential schedule — `25ms · 2^attempt`, capped at 800ms, floored
//! by the server's `Retry-After` — and the per-scenario retry counts are
//! reported as the non-timing `retries_429`/`retries_503` keys (both 0
//! when the server is run without `--max-queue`/`--request-timeout`, as
//! here, keeping the document byte-stable).

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use kamino_core::{fit_kamino, FittedKamino, KaminoConfig};
use kamino_dp::Budget;
use kamino_obs::metrics::LATENCY_BUCKETS_S;
use kamino_obs::{clock, ObsHandle};
use kamino_serve::http;
use kamino_serve::{Json, ServeConfig, Server};

/// Worker threads per event-loop scenario server.
const THREADS: usize = 4;
/// Speculated batches kept per model in the pooled scenarios.
const POOL_BATCHES: usize = 32;
/// Rows per speculated batch — the pool's fixed draw granularity.
const POOL_ROWS: usize = 10;
/// First backoff delay after a 429/503 reply.
const BACKOFF_BASE_MS: u64 = 25;
/// Backoff ceiling (the server's `Retry-After` may still exceed it).
const BACKOFF_CAP_MS: u64 = 800;
/// Retries per request before the run is declared stuck.
const BACKOFF_MAX_ATTEMPTS: u32 = 10;

/// Knobs that differ between `--fast` (CI smoke) and the full run.
struct LoadCfg {
    fast: bool,
    fit_rows: usize,
    train_scale: f64,
    /// Rows fetched per `/synthesize` request (the workload unit).
    rows_per_request: usize,
    requests_per_client: usize,
}

impl LoadCfg {
    fn new(fast: bool) -> LoadCfg {
        LoadCfg {
            fast,
            fit_rows: if fast { 100 } else { 200 },
            train_scale: if fast { 0.03 } else { 0.05 },
            rows_per_request: 400,
            requests_per_client: if fast { 40 } else { 150 },
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: kamino-loadgen [--fast] [--out FILE]");
    std::process::exit(2);
}

/// One `Connection: close` exchange (control plane: fit, metrics, poll).
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, payload) = text.split_once("\r\n\r\n").expect("no header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, payload.to_string())
}

fn boot(pooled: bool, obs: &ObsHandle) -> (Server, SocketAddr) {
    let server = Server::bind(ServeConfig {
        listen: "127.0.0.1:0".into(),
        threads: THREADS,
        pool_batches: if pooled { POOL_BATCHES } else { 0 },
        pool_rows: POOL_ROWS,
        obs: obs.clone(),
        ..ServeConfig::default()
    })
    .expect("bind scenario server");
    let addr = server.local_addr();
    (server, addr)
}

/// Fits the scenario model over HTTP and waits for readiness.
fn fit_model(addr: SocketAddr, cfg: &LoadCfg) -> u64 {
    let spec = format!(
        r#"{{"corpus":"adult","rows":{},"epsilon":1.0,"seed":17,"train_scale":{}}}"#,
        cfg.fit_rows, cfg.train_scale
    );
    let (status, body) = request(addr, "POST", "/fit", Some(&spec));
    assert!(status.contains("202"), "fit rejected: {status} {body}");
    let id = Json::parse(&body)
        .expect("fit response JSON")
        .get("model_id")
        .and_then(Json::as_u64)
        .expect("model_id");
    let t0 = clock::now_nanos();
    loop {
        let (_, body) = request(addr, "GET", &format!("/models/{id}"), None);
        match Json::parse(&body)
            .expect("model info JSON")
            .get("status")
            .and_then(Json::as_str)
        {
            Some("ready") => return id,
            Some("failed") => panic!("fit failed: {body}"),
            _ => {
                assert!(clock::secs_since(t0) < 300.0, "fit did not finish");
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Drives the pool to full depth before a pooled measurement: one aligned
/// request triggers speculation, then `/metrics` is polled until the ring
/// reports `POOL_BATCHES`.
fn warm_pool(addr: SocketAddr, id: u64) {
    let path = format!("/models/{id}/synthesize?n={POOL_ROWS}&batch={POOL_ROWS}&format=csv");
    let (status, _) = request(addr, "POST", &path, None);
    assert!(status.contains("200"), "warmup request failed: {status}");
    let series = format!("kamino_pool_depth{{model=\"{id}\"}} ");
    let t0 = clock::now_nanos();
    loop {
        let (_, body) = request(addr, "GET", "/metrics", None);
        let depth: u64 = body
            .lines()
            .find_map(|l| l.strip_prefix(series.as_str()))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if depth as usize >= POOL_BATCHES {
            return;
        }
        assert!(clock::secs_since(t0) < 60.0, "pool never warmed: {body}");
        thread::sleep(Duration::from_millis(10));
    }
}

/// Per-client overload retry counters (summed into the scenario report).
#[derive(Default)]
struct ClientStats {
    retries_429: u64,
    retries_503: u64,
}

/// Deterministic, jitter-free exponential backoff for shed (429) and
/// deadline (503) replies: `25ms · 2^attempt` capped at 800ms, floored
/// by the server's `Retry-After`. No randomness — replaying a run
/// replays its exact retry timeline.
fn backoff_delay(attempt: u32, retry_after_secs: Option<u64>) -> Duration {
    let ms = BACKOFF_BASE_MS
        .saturating_mul(1 << attempt.min(5))
        .min(BACKOFF_CAP_MS);
    Duration::from_millis(ms.max(retry_after_secs.unwrap_or(0).saturating_mul(1000)))
}

/// Offset just past the head's blank line, once it has fully arrived.
fn head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Reads one full HTTP response: chunked bodies to their terminating
/// chunk (a deadline trailer also terminates), otherwise to the declared
/// `Content-Length`. CSV payloads contain no CR, so the chunked framing
/// terminators are unambiguous.
fn read_full_response(stream: &mut TcpStream, buf: &mut [u8]) -> Vec<u8> {
    let mut raw = Vec::new();
    loop {
        if let Some(end) = head_end(&raw) {
            let head = String::from_utf8_lossy(&raw[..end]).to_ascii_lowercase();
            let done = if head.contains("transfer-encoding: chunked") {
                raw.ends_with(b"\r\n0\r\n\r\n") || raw.ends_with(b"deadline-expired\r\n\r\n")
            } else {
                let len: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("content-length: "))
                    .expect("no content length")
                    .trim()
                    .parse()
                    .expect("bad content length");
                raw.len() >= end + len
            };
            if done {
                return raw;
            }
        }
        let n = stream.read(buf).expect("read response");
        assert!(n > 0, "server closed mid-response");
        raw.extend_from_slice(&buf[..n]);
    }
}

/// One keep-alive client: `requests` back-to-back `/synthesize` streams on
/// a single connection. `batch = None` requests the whole stream as one
/// draw (pre-pool semantics); `Some(b)` streams aligned `b`-row chunks.
/// Overloaded replies (429/503, or a stream cut by a deadline trailer)
/// back off deterministically and retry. Returns the raw bytes of the
/// first response so the caller can validate row counts once, plus the
/// retry counters.
fn client_loop(
    addr: SocketAddr,
    id: u64,
    batch: Option<usize>,
    cfg: &LoadCfg,
) -> (Vec<u8>, ClientStats) {
    let mut stream = TcpStream::connect(addr).expect("client connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let batch = batch.unwrap_or(cfg.rows_per_request);
    let req = format!(
        "POST /models/{id}/synthesize?n={n}&batch={batch}&format=csv HTTP/1.1\r\nhost: loadgen\r\ncontent-length: 0\r\n\r\n",
        n = cfg.rows_per_request
    );
    let mut stats = ClientStats::default();
    let mut first = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];
    for i in 0..cfg.requests_per_client {
        let mut attempt = 0u32;
        let raw = loop {
            stream.write_all(req.as_bytes()).expect("write request");
            let raw = read_full_response(&mut stream, &mut buf);
            let expired =
                raw.starts_with(b"HTTP/1.1 200") && raw.ends_with(b"deadline-expired\r\n\r\n");
            if raw.starts_with(b"HTTP/1.1 200") && !expired {
                break raw;
            }
            let end = head_end(&raw).unwrap_or(raw.len());
            let head = String::from_utf8_lossy(&raw[..end]).to_ascii_lowercase();
            if raw.starts_with(b"HTTP/1.1 429") {
                stats.retries_429 += 1;
            } else if raw.starts_with(b"HTTP/1.1 503") || expired {
                stats.retries_503 += 1;
            } else {
                panic!(
                    "unexpected reply under load: {}",
                    head.lines().next().unwrap_or("")
                );
            }
            assert!(
                attempt < BACKOFF_MAX_ATTEMPTS,
                "server still shedding after {attempt} retries"
            );
            // an expired stream is closed by the server; sheds may also
            // request a close — either way, reconnect before retrying
            if expired || head.contains("connection: close") {
                stream = TcpStream::connect(addr).expect("client reconnect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .unwrap();
            }
            let retry_after = head
                .lines()
                .find_map(|l| l.strip_prefix("retry-after: "))
                .and_then(|v| v.trim().parse().ok());
            thread::sleep(backoff_delay(attempt, retry_after));
            attempt += 1;
        };
        if i == 0 {
            first = raw;
        }
    }
    (first, stats)
}

/// Rows in a de-chunked CSV response (excluding the header line).
fn response_rows(raw: &[u8]) -> usize {
    let text = String::from_utf8_lossy(raw);
    let (_, payload) = text.split_once("\r\n\r\n").expect("no body");
    let mut rows = 0usize;
    let mut rest = payload;
    let mut first_chunk = true;
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        let chunk = &after[..size];
        rows += chunk.lines().count();
        if first_chunk {
            rows -= 1; // the CSV header line
            first_chunk = false;
        }
        rest = after[size..].strip_prefix("\r\n").unwrap_or(&after[size..]);
    }
    rows
}

struct ScenarioResult {
    name: &'static str,
    clients: usize,
    pooled: bool,
    requests: usize,
    rows_streamed: usize,
    retries_429: u64,
    retries_503: u64,
    secs: f64,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    pool_hits: u64,
}

/// Reads p50/p99 for the synthesize route out of an obs registry.
fn latency_quantiles(obs: &ObsHandle, min_count: u64, name: &str) -> (f64, f64) {
    let histo = obs.histogram(
        "kamino_http_request_duration_seconds",
        &[
            ("method", "POST"),
            ("route", "/models/{id}/synthesize"),
            ("status", "200"),
        ],
        LATENCY_BUCKETS_S,
    );
    let inner = histo.inner().expect("histogram detached");
    // server threads observe after the last response byte is written, so
    // the final observation can trail the client's read by a moment
    let t0 = clock::now_nanos();
    while inner.count() < min_count {
        assert!(
            clock::secs_since(t0) < 5.0,
            "{name}: histogram missed requests ({}/{min_count})",
            inner.count()
        );
        thread::sleep(Duration::from_millis(5));
    }
    (inner.quantile(0.5) * 1e3, inner.quantile(0.99) * 1e3)
}

/// Boots a fresh event-loop server, runs `clients` keep-alive loops to
/// completion, and reads throughput + latency out of the server's own obs
/// registry.
fn run_scenario(name: &'static str, pooled: bool, clients: usize, cfg: &LoadCfg) -> ScenarioResult {
    let obs = ObsHandle::enabled();
    let (server, addr) = boot(pooled, &obs);
    let handle = thread::spawn(move || server.run().expect("server run"));
    let id = fit_model(addr, cfg);
    if pooled {
        warm_pool(addr, id);
    }
    let batch = pooled.then_some(POOL_ROWS);

    let t0 = clock::now_nanos();
    let outcomes: Vec<(Vec<u8>, ClientStats)> = thread::scope(|s| {
        let workers: Vec<_> = (0..clients)
            .map(|_| s.spawn(move || client_loop(addr, id, batch, cfg)))
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client panicked"))
            .collect()
    });
    let secs = clock::secs_since(t0);

    for (first, _) in &outcomes {
        assert_eq!(
            response_rows(first),
            cfg.rows_per_request,
            "{name}: short stream"
        );
    }
    let retries_429 = outcomes.iter().map(|(_, s)| s.retries_429).sum();
    let retries_503 = outcomes.iter().map(|(_, s)| s.retries_503).sum();
    let requests = clients * cfg.requests_per_client;
    let (p50_ms, p99_ms) = latency_quantiles(&obs, requests as u64, name);

    let (_, metrics) = request(addr, "GET", "/metrics", None);
    let pool_hits: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("kamino_pool_hits_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);

    let (status, _) = request(addr, "POST", "/shutdown", None);
    assert!(status.contains("200"), "shutdown failed: {status}");
    handle.join().expect("server thread panicked");

    ScenarioResult {
        name,
        clients,
        pooled,
        requests,
        rows_streamed: requests * cfg.rows_per_request,
        retries_429,
        retries_503,
        secs,
        rps: requests as f64 / secs,
        p50_ms,
        p99_ms,
        pool_hits,
    }
}

/// The pre-pool architecture, reconstructed: blocking accept loop, one
/// thread per connection, every `/synthesize` request sampled inline as a
/// single whole-request draw under the model mutex.
fn run_threaded_baseline(cfg: &LoadCfg) -> ScenarioResult {
    let obs = ObsHandle::enabled();
    // the same model spec the event-loop scenarios fit over HTTP
    let d = kamino_datasets::adult_like(cfg.fit_rows, 3);
    let mut kcfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
    kcfg.train_scale = cfg.train_scale;
    kcfg.seed = 17;
    let fitted = fit_kamino(&d.schema, &d.instance, &d.dcs, &kcfg);
    let header = kamino_data::csv::header_line(fitted.schema()).expect("csv header");
    let model = Arc::new(Mutex::new(fitted));

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind baseline");
    let addr = listener.local_addr().expect("local addr");
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let (stop, model, obs, header) = (
            Arc::clone(&stop),
            Arc::clone(&model),
            obs.clone(),
            header.clone(),
        );
        thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { break };
                let (model, obs, header) = (Arc::clone(&model), obs.clone(), header.clone());
                thread::spawn(move || baseline_conn(stream, &model, &obs, &header));
            }
        })
    };

    let t0 = clock::now_nanos();
    let outcomes: Vec<(Vec<u8>, ClientStats)> = thread::scope(|s| {
        let workers: Vec<_> = (0..1)
            .map(|_| s.spawn(|| client_loop(addr, 1, None, cfg)))
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client panicked"))
            .collect()
    });
    let secs = clock::secs_since(t0);
    for (first, _) in &outcomes {
        assert_eq!(
            response_rows(first),
            cfg.rows_per_request,
            "threaded_baseline: short stream"
        );
    }
    let requests = cfg.requests_per_client;
    let (p50_ms, p99_ms) = latency_quantiles(&obs, requests as u64, "threaded_baseline");

    stop.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect(addr); // unblock the accept loop
    accept.join().expect("baseline accept loop panicked");

    ScenarioResult {
        name: "threaded_baseline",
        clients: 1,
        pooled: false,
        requests,
        rows_streamed: requests * cfg.rows_per_request,
        retries_429: outcomes.iter().map(|(_, s)| s.retries_429).sum(),
        retries_503: outcomes.iter().map(|(_, s)| s.retries_503).sum(),
        secs,
        rps: requests as f64 / secs,
        p50_ms,
        p99_ms,
        pool_hits: 0,
    }
}

/// One baseline connection: blocking parse → inline sample → chunked
/// write, looping while the client keeps the connection alive.
fn baseline_conn(stream: TcpStream, model: &Mutex<FittedKamino>, obs: &ObsHandle, header: &str) {
    stream.set_nodelay(true).ok(); // the pre-pool server set nodelay too
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut w = stream;
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(r) => r,
            Err(_) => return, // disconnect or malformed: drop, like the old server
        };
        let close = req.wants_close();
        let t0 = clock::now_nanos();
        let served = serve_baseline_request(&req, &mut w, model, header, close);
        if served {
            obs.histogram(
                "kamino_http_request_duration_seconds",
                &[
                    ("method", "POST"),
                    ("route", "/models/{id}/synthesize"),
                    ("status", "200"),
                ],
                LATENCY_BUCKETS_S,
            )
            .observe(clock::secs_since(t0));
        }
        if close {
            return;
        }
    }
}

/// Handles one parsed baseline request; `true` when it was a successful
/// synthesize stream (the only route the latency histogram tracks).
fn serve_baseline_request(
    req: &http::Request,
    w: &mut TcpStream,
    model: &Mutex<FittedKamino>,
    header: &str,
    close: bool,
) -> bool {
    if req.path == "/healthz" {
        let _ = http::write_response(
            w,
            "200 OK",
            "application/json",
            b"{\"status\":\"ok\"}",
            close,
        );
        return false;
    }
    let Some(n) = req.query_usize("n").filter(|&n| n > 0) else {
        let _ = http::write_response(w, "400 Bad Request", "text/plain", b"bad n", close);
        return false;
    };
    let batch = req.query_usize("batch").unwrap_or(n).clamp(1, n);
    if http::start_chunked(w, "200 OK", "text/csv").is_err() {
        return false;
    }
    let _ = http::write_chunk(w, header.as_bytes());
    let mut remaining = n;
    while remaining > 0 {
        let take = batch.min(remaining);
        let text = {
            let mut guard = model.lock().expect("model mutex");
            let inst = guard.sample(take);
            kamino_data::csv::rows_text(guard.schema(), &inst).expect("encode csv")
        };
        if http::write_chunk(w, text.as_bytes()).is_err() {
            return false;
        }
        remaining -= take;
    }
    http::finish_chunked(w).is_ok()
}

fn scenario_json(r: &ScenarioResult) -> Json {
    Json::obj([
        ("name", Json::Str(r.name.to_string())),
        ("clients", Json::Num(r.clients as f64)),
        ("pooled", Json::Bool(r.pooled)),
        ("requests", Json::Num(r.requests as f64)),
        ("rows_streamed", Json::Num(r.rows_streamed as f64)),
        // non-timing: 0 under in-spec load, so byte-stable in CI
        ("retries_429", Json::Num(r.retries_429 as f64)),
        ("retries_503", Json::Num(r.retries_503 as f64)),
        (
            "timing",
            Json::obj([
                ("secs", Json::Num(round3(r.secs))),
                ("rps", Json::Num(round1(r.rps))),
                ("p50_ms", Json::Num(round3(r.p50_ms))),
                ("p99_ms", Json::Num(round3(r.p99_ms))),
                ("pool_hits", Json::Num(r.pool_hits as f64)),
            ]),
        ),
    ])
}

fn round1(v: f64) -> f64 {
    (v * 10.0).round() / 10.0
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn main() -> ExitCode {
    let mut fast = false;
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--out" => out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    let cfg = LoadCfg::new(fast);

    println!(
        "kamino-loadgen: {} mode, {} requests/client × {} rows/request",
        if cfg.fast { "fast" } else { "full" },
        cfg.requests_per_client,
        cfg.rows_per_request
    );
    let mut results = vec![run_threaded_baseline(&cfg)];
    let scenarios = [
        ("direct", false, 1usize),
        ("pooled_hot", true, 1),
        ("pooled_c2", true, 2),
        ("pooled_c4", true, 4),
    ];
    for (name, pooled, clients) in scenarios {
        results.push(run_scenario(name, pooled, clients, &cfg));
    }
    for r in &results {
        println!(
            "  {:<18} {} client(s): {:.0} rps, p50 {:.2} ms, p99 {:.2} ms, {} pool hits, \
             {} shed retries, {} deadline retries",
            r.name, r.clients, r.rps, r.p50_ms, r.p99_ms, r.pool_hits, r.retries_429, r.retries_503
        );
    }

    let baseline_rps = results[0].rps;
    let pooled_rps = results[2].rps;
    let speedup = pooled_rps / baseline_rps;
    println!("  pooled_hot vs threaded_baseline: {speedup:.2}x sustained RPS");

    let doc = Json::obj([
        ("schema_version", Json::Num(1.0)),
        (
            "config",
            Json::obj([
                ("fast", Json::Bool(cfg.fast)),
                ("fit_rows", Json::Num(cfg.fit_rows as f64)),
                ("train_scale", Json::Num(cfg.train_scale)),
                ("rows_per_request", Json::Num(cfg.rows_per_request as f64)),
                (
                    "requests_per_client",
                    Json::Num(cfg.requests_per_client as f64),
                ),
                ("pool_batches", Json::Num(POOL_BATCHES as f64)),
                ("pool_rows", Json::Num(POOL_ROWS as f64)),
                ("threads", Json::Num(THREADS as f64)),
                ("backoff_base_ms", Json::Num(BACKOFF_BASE_MS as f64)),
                ("backoff_cap_ms", Json::Num(BACKOFF_CAP_MS as f64)),
                ("baseline", Json::Str("threaded_baseline".to_string())),
            ]),
        ),
        (
            "scenarios",
            Json::Arr(results.iter().map(scenario_json).collect()),
        ),
        (
            "timing",
            Json::obj([("speedup_pooled_vs_baseline", Json::Num(round3(speedup)))]),
        ),
    ]);
    if let Err(e) = std::fs::write(&out, format!("{doc}\n")) {
        eprintln!("kamino-loadgen: writing {} failed: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("kamino-loadgen: wrote {}", out.display());
    ExitCode::SUCCESS
}
