//! `kamino-repro` — the paper-reproduction harness (see `bench::repro`).
//!
//! ```bash
//! # full matrix (offline default): 4 corpora × 4 ε × 6 synthesizers
//! cargo run --release -p kamino-bench --bin kamino-repro
//!
//! # CI-sized: Adult + Tax × {0.4, 1.0} × {Kamino, PrivBayes, Independent}
//! cargo run --release -p kamino-bench --bin kamino-repro -- --fast --seed 17
//! ```
//!
//! Emits `BENCH_repro.json` (machine-readable, diffable — byte-identical
//! across re-runs of the same config) and `REPRODUCTION.md` (paper-style
//! tables with deltas vs. paper-reported numbers). Fitted Kamino models
//! are cached as `.kamino` snapshots under `--cache-dir`; a re-run skips
//! every DP-SGD fit whose `(dataset, ε, seed, config)` key is already
//! cached and reports the hit count on stdout.

use std::path::PathBuf;

use kamino_bench::repro::{render_markdown, run_matrix, to_json, ReproConfig};

fn usage() -> ! {
    eprintln!(
        "usage: kamino-repro [--fast] [--seed N] [--rows N] [--threads N]\n\
         \x20                  [--cache-dir PATH] [--out-json PATH] [--out-md PATH]\n\
         \x20                  [--timings] [--trace-out PATH]\n\
         \n\
         --fast        CI-sized matrix (Adult+Tax, 2-point ε grid, 3 synthesizers)\n\
         --seed N      master seed (default 11)\n\
         --rows N      rows per corpus (default: 240 fast / 800 full; env KAMINO_REPRO_N)\n\
         --threads N   worker threads (default: available parallelism)\n\
         --cache-dir   snapshot cache directory (default target/repro-cache)\n\
         --out-json    output path (default BENCH_repro.json)\n\
         --out-md      output path (default REPRODUCTION.md)\n\
         --timings     include wall-clock in the artifacts (breaks diffability)\n\
         --trace-out   write a chrome://tracing JSON of the run (cells, fit\n\
         \x20             phases, DP budget ledger); artifacts stay byte-identical"
    );
    std::process::exit(2);
}

fn main() {
    let mut fast = false;
    let mut seed: u64 = 11;
    let mut rows: Option<usize> = std::env::var("KAMINO_REPRO_N")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut threads: Option<usize> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut out_json = String::from("BENCH_repro.json");
    let mut out_md = String::from("REPRODUCTION.md");
    let mut timings = false;
    let mut trace_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} takes a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--fast" => fast = true,
            "--timings" => timings = true,
            "--seed" => seed = take("--seed").parse().unwrap_or_else(|_| usage()),
            "--rows" => rows = Some(take("--rows").parse().unwrap_or_else(|_| usage())),
            "--threads" => threads = Some(take("--threads").parse().unwrap_or_else(|_| usage())),
            "--cache-dir" => cache_dir = Some(PathBuf::from(take("--cache-dir"))),
            "--out-json" => out_json = take("--out-json"),
            "--out-md" => out_md = take("--out-md"),
            "--trace-out" => trace_out = Some(PathBuf::from(take("--trace-out"))),
            _ => usage(),
        }
    }

    let mut cfg = if fast {
        ReproConfig::fast(seed)
    } else {
        ReproConfig::full(seed)
    };
    if let Some(n) = rows {
        cfg.rows = n;
    }
    if let Some(t) = threads {
        cfg.threads = t.max(1);
    }
    if let Some(dir) = cache_dir {
        cfg.cache_dir = dir;
    }
    cfg.timings = timings;
    if trace_out.is_some() {
        // tracing is strictly off the determinism contract: the emitted
        // artifacts are byte-identical with or without it (CI re-asserts)
        cfg.obs = kamino_obs::ObsHandle::enabled();
    }

    eprintln!(
        "kamino-repro: {} matrix — {} datasets × {} ε × {} synthesizers = {} cells, \
         {} rows/corpus, seed {seed}, {} threads",
        cfg.mode,
        cfg.datasets.len(),
        cfg.epsilons.len(),
        cfg.methods.len(),
        cfg.datasets.len() * cfg.epsilons.len() * cfg.methods.len(),
        cfg.rows,
        cfg.threads,
    );

    let report = run_matrix(&cfg);

    if let Some(path) = &trace_out {
        match std::fs::write(path, cfg.obs.chrome_trace_json()) {
            Ok(()) => eprintln!("kamino-repro: trace written to {}", path.display()),
            Err(e) => eprintln!("kamino-repro: cannot write trace {}: {e}", path.display()),
        }
    }

    std::fs::write(&out_json, format!("{}\n", to_json(&report, &cfg))).unwrap_or_else(|e| {
        eprintln!("kamino-repro: cannot write {out_json}: {e}");
        std::process::exit(1);
    });
    std::fs::write(&out_md, render_markdown(&report, &cfg)).unwrap_or_else(|e| {
        eprintln!("kamino-repro: cannot write {out_md}: {e}");
        std::process::exit(1);
    });

    println!(
        "snapshot cache: {} hits, {} misses across {} kamino cells (dir: {})",
        report.cache_hits,
        report.cache_misses,
        report.kamino_cells,
        cfg.cache_dir.display()
    );
    println!(
        "wrote {out_json} and {out_md} ({} cells in {:.1}s)",
        report.cells.len(),
        report.total_seconds
    );
}
