//! Table 1: description of the datasets used in the experiments.

use kamino_bench::{config, report::Table};
use kamino_constraints::Hardness;
use kamino_datasets::Corpus;

fn main() {
    let mut t = Table::new(
        "Table 1: datasets (synthetic stand-ins; see DESIGN.md §3)",
        &["Dataset", "n", "k", "log2(domain)", "Hard DCs", "DCs"],
    );
    for corpus in Corpus::all() {
        let n = config::rows_for(corpus);
        let d = corpus.generate(n, config::seeds()[0]);
        let hard = d
            .dcs
            .iter()
            .filter(|dc| dc.hardness == Hardness::Hard)
            .count();
        let names: Vec<&str> = d.dcs.iter().map(|dc| dc.name.as_str()).collect();
        t.row(vec![
            corpus.name().to_string(),
            format!("{n}"),
            format!("{}", d.schema.len()),
            format!("{:.1}", d.schema.log2_domain_size()),
            format!("{hard}/{}", d.dcs.len()),
            names.join(", "),
        ]);
    }
    t.emit("table1_datasets");

    // also print the constraint texts, like the paper's right-hand column
    for corpus in Corpus::all() {
        let d = corpus.generate(50, 0);
        println!("{}:", corpus.name());
        for dc in &d.dcs {
            println!(
                "  {:8} [{}]  {}",
                dc.name,
                match dc.hardness {
                    Hardness::Hard => "hard",
                    Hardness::Soft => "soft",
                },
                dc.display(&d.schema)
            );
        }
    }
}
