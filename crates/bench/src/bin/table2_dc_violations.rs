//! Table 2 / Experiment 1: percentage of tuple pairs violating each DC,
//! for every dataset × method, mean±std over 3 seeded runs.
//!
//! Paper shape to reproduce: the truth column is ~0 for hard-DC datasets
//! (small for BR2000's soft DCs); the four baselines leave substantial
//! violations on most DCs; Kamino matches the truth column.

use kamino_bench::{config, report, Method};
use kamino_constraints::violation_percentage;
use kamino_datasets::Corpus;

fn main() {
    let budget = config::default_budget();
    for corpus in Corpus::all() {
        let n = config::rows_for(corpus);
        let d = corpus.generate(n, 1);
        let methods = Method::paper_roster();
        let mut header = vec!["DC".to_string(), "Truth".to_string()];
        header.extend(methods.iter().map(Method::name));
        let mut t = report::Table::new(
            &format!(
                "Table 2 ({}, n={n}, eps=1): % violating tuple pairs",
                corpus.name()
            ),
            &header.iter().map(String::as_str).collect::<Vec<_>>(),
        );

        // per method × per DC, across seeds
        let mut cells: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); d.dcs.len()]; methods.len()];
        for &seed in &config::seeds() {
            for (mi, m) in methods.iter().enumerate() {
                let (inst, _) = m.run(&d, budget, seed);
                for (li, dc) in d.dcs.iter().enumerate() {
                    cells[mi][li].push(violation_percentage(dc, &inst));
                }
            }
        }
        for (li, dc) in d.dcs.iter().enumerate() {
            let mut row = vec![
                dc.name.clone(),
                format!("{:.2}", violation_percentage(dc, &d.instance)),
            ];
            for method_cells in cells.iter().take(methods.len()) {
                let (m, s) = report::mean_std(&method_cells[li]);
                row.push(report::pm(m, s));
            }
            t.row(row);
        }
        t.emit("table2_dc_violations");
    }
}
