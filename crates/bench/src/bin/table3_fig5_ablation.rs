//! Table 3 + Figure 5 / Experiment 5: effectiveness of the
//! constraint-aware components, on Adult. Arms: full Kamino, RandSequence
//! (random attribute order), RandSampling (i.i.d. sampling), RandBoth.
//!
//! Paper shape: arms without constraint-aware sampling violate the DCs;
//! RandBoth is worst on φ₁ᵃ because a random sequence can place
//! `education_num` before `education`. Quality (accuracy/F1/TVD) degrades
//! without the components.

use kamino_bench::{classifier_roster, config, report, Ablation, KaminoVariant, Method};
use kamino_constraints::violation_percentage;
use kamino_datasets::Corpus;
use kamino_eval::marginals::{summarize, tvd_all_pairs, tvd_all_singles};
use kamino_eval::tasks::evaluate_classification_with;

fn main() {
    let budget = config::default_budget();
    let n = config::rows_for(Corpus::Adult);
    let d = Corpus::Adult.generate(n, 1);
    let arms = [
        ("Kamino", Ablation::None),
        ("RandSequence", Ablation::RandSequence),
        ("RandSampling", Ablation::RandSampling),
        ("RandBoth", Ablation::RandBoth),
    ];

    let mut t3 = report::Table::new(
        &format!("Table 3 (Adult-like, n={n}, eps=1): % DC-violating pairs"),
        &[
            "DC",
            "Truth",
            "Kamino",
            "RandSequence",
            "RandSampling",
            "RandBoth",
        ],
    );
    let mut viols: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); d.dcs.len()]; arms.len()];
    let mut quality: Vec<Vec<[f64; 4]>> = vec![Vec::new(); arms.len()];
    for &seed in &config::seeds() {
        for (ai, (_, ablation)) in arms.iter().enumerate() {
            let variant = KaminoVariant {
                ablation: *ablation,
                ..Default::default()
            };
            let (inst, _) = Method::Kamino(variant).run(&d, budget, seed);
            for (li, dc) in d.dcs.iter().enumerate() {
                viols[ai][li].push(violation_percentage(dc, &inst));
            }
            if seed == config::seeds()[0] {
                let summary = evaluate_classification_with(
                    &d.schema,
                    &d.instance,
                    &inst,
                    seed,
                    classifier_roster,
                );
                let (t1, _, _) = summarize(&tvd_all_singles(&d.schema, &d.instance, &inst));
                let (t2, _, _) = summarize(&tvd_all_pairs(&d.schema, &d.instance, &inst));
                quality[ai].push([summary.mean_accuracy(), summary.mean_f1(), t1, t2]);
            }
        }
    }
    for (li, dc) in d.dcs.iter().enumerate() {
        let mut row = vec![
            dc.name.clone(),
            format!("{:.2}", violation_percentage(dc, &d.instance)),
        ];
        for arm_viols in viols.iter().take(arms.len()) {
            let (m, s) = report::mean_std(&arm_viols[li]);
            row.push(report::pm(m, s));
        }
        t3.row(row);
    }
    t3.emit("table3_fig5_ablation");

    let mut f5 = report::Table::new(
        "Figure 5 (Adult-like): task quality per ablation arm",
        &["Arm", "Accuracy", "F1", "1-way TVD", "2-way TVD"],
    );
    for (ai, (name, _)) in arms.iter().enumerate() {
        let q = quality[ai][0];
        f5.row(vec![
            name.to_string(),
            format!("{:.3}", q[0]),
            format!("{:.3}", q[1]),
            format!("{:.3}", q[2]),
            format!("{:.3}", q[3]),
        ]);
    }
    f5.emit("table3_fig5_ablation");
}
