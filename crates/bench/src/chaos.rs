//! Crash-recovery chaos harness: spawns a real `kamino-serve` binary,
//! kills it at injected fault points (`KAMINO_CHAOS_FAULT`), restarts it
//! over the same `--model-dir`, and checks the durability invariants —
//! ledger ε never under-counted, torn tails truncated, stale tmps
//! quarantined, sample streams resumed bit-exactly, `/healthz` ready.
//!
//! The report is deliberately timing-free and path-free: scenario and
//! check names with pass/fail booleans only, so two runs of the same
//! build render byte-identical JSON (CI diffs them).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::Duration;

use kamino_obs::clock;
use kamino_serve::Json;

/// Where the harness finds the server and scratch space.
pub struct ChaosConfig {
    /// Path to the `kamino-serve` binary under test.
    pub server_bin: PathBuf,
    /// Scratch directory; each scenario gets a fresh subdirectory.
    pub work_dir: PathBuf,
}

/// One named invariant check inside a scenario.
pub struct Check {
    /// Stable check name (a report key — never includes paths or times).
    pub name: &'static str,
    /// Whether the invariant held.
    pub pass: bool,
}

/// One scenario's outcome.
pub struct ScenarioReport {
    /// Stable scenario name.
    pub scenario: &'static str,
    /// The checks, in execution order.
    pub checks: Vec<Check>,
}

impl ScenarioReport {
    /// A scenario passes when every check passed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

/// A chaos scenario: a name plus the function that exercises it.
type Scenario = (&'static str, fn(&ChaosConfig, &Path) -> Vec<Check>);

/// Runs every scenario; the report order is fixed.
pub fn run_all(cfg: &ChaosConfig) -> Vec<ScenarioReport> {
    let scenarios: [Scenario; 5] = [
        ("crashed_fit_replay", crashed_fit_replay),
        ("torn_ledger_append", torn_ledger_append),
        ("stale_tmp_quarantine", stale_tmp_quarantine),
        ("stream_resume_bit_exact", stream_resume_bit_exact),
        ("disk_full_liveness", disk_full_liveness),
    ];
    scenarios
        .into_iter()
        .map(|(name, run)| {
            let dir = cfg.work_dir.join(name);
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create scenario dir");
            // a scenario that panics (transport error, dead server) is a
            // deterministic single failed check, not a harness abort
            let checks = catch_unwind(AssertUnwindSafe(|| run(cfg, &dir))).unwrap_or_else(|_| {
                vec![Check {
                    name: "scenario_completed",
                    pass: false,
                }]
            });
            let _ = std::fs::remove_dir_all(&dir);
            ScenarioReport {
                scenario: name,
                checks,
            }
        })
        .collect()
}

/// Renders the timing-free report document.
pub fn render_json(reports: &[ScenarioReport]) -> String {
    let scenarios: Vec<Json> = reports
        .iter()
        .map(|r| {
            Json::obj([
                ("name", Json::Str(r.scenario.to_string())),
                ("pass", Json::Bool(r.pass())),
                (
                    "checks",
                    Json::Arr(
                        r.checks
                            .iter()
                            .map(|c| {
                                Json::obj([
                                    ("name", Json::Str(c.name.to_string())),
                                    ("pass", Json::Bool(c.pass)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("schema_version", Json::Num(1.0)),
        ("harness", Json::Str("kamino-chaos".to_string())),
        ("pass", Json::Bool(reports.iter().all(ScenarioReport::pass))),
        ("scenarios", Json::Arr(scenarios)),
    ]);
    format!("{doc}\n")
}

// ------------------------------------------------------------ scenarios

const FIT_BODY: &str =
    r#"{"corpus":"adult","rows":100,"epsilon":1.0,"seed":11,"train_scale":0.03,"persist":true}"#;

fn check(name: &'static str, pass: bool) -> Check {
    Check { name, pass }
}

/// Abort between the durable `FitIntent` and the fit: after restart the
/// model is `failed (crashed)` and its ε still counts as spent.
fn crashed_fit_replay(cfg: &ChaosConfig, dir: &Path) -> Vec<Check> {
    let mut s = spawn(cfg, dir, &[("KAMINO_CHAOS_FAULT", "fit.after_intent")]);
    request_lossy(s.addr, "POST", "/fit", Some(FIT_BODY));
    s.wait_crash();

    let mut s = spawn(cfg, dir, &[]);
    let mut checks = vec![check("healthz_after_replay", healthy(s.addr))];
    let (_, body) = request(s.addr, "GET", "/models/1", None);
    let info = json(&body);
    checks.push(check(
        "crashed_fit_is_failed",
        info.get("status").and_then(Json::as_str) == Some("failed")
            && info
                .get("error")
                .and_then(Json::as_str)
                .is_some_and(|e| e.contains("crashed")),
    ));
    let (_, metrics) = request(s.addr, "GET", "/metrics", None);
    checks.push(check(
        "ledger_epsilon_not_forgotten",
        metric_value(&metrics, "kamino_ledger_epsilon_total") >= 1.0,
    ));
    checks.push(check(
        "ledger_replayed",
        metric_value(&metrics, "kamino_ledger_replays_total") >= 1.0,
    ));
    let next_id = fit_and_wait(s.addr, FIT_BODY);
    checks.push(check("crashed_id_not_reused", next_id == 2));
    checks.push(check("clean_shutdown", s.shutdown_clean()));
    checks
}

/// Abort halfway through a ledger frame: replay truncates the torn tail,
/// boots, and never surfaces the never-durable intent.
fn torn_ledger_append(cfg: &ChaosConfig, dir: &Path) -> Vec<Check> {
    let mut s = spawn(cfg, dir, &[("KAMINO_CHAOS_FAULT", "ledger.torn_append")]);
    request_lossy(s.addr, "POST", "/fit", Some(FIT_BODY));
    s.wait_crash();

    let mut s = spawn(cfg, dir, &[]);
    let mut checks = vec![check("healthz_after_truncation", healthy(s.addr))];
    let (_, body) = request(s.addr, "GET", "/models", None);
    checks.push(check(
        "torn_intent_not_surfaced",
        matches!(json(&body), Json::Arr(items) if items.is_empty()),
    ));
    let id = fit_and_wait(s.addr, FIT_BODY);
    checks.push(check("fresh_fit_after_truncation", id == 1));
    checks.push(check("clean_shutdown", s.shutdown_clean()));
    checks
}

/// Abort after the snapshot tmp is written but before the rename: boot
/// quarantines the stale tmp and keeps the committed fit's ε spent.
fn stale_tmp_quarantine(cfg: &ChaosConfig, dir: &Path) -> Vec<Check> {
    let mut s = spawn(cfg, dir, &[("KAMINO_CHAOS_FAULT", "snapshot.pre_rename")]);
    request_lossy(s.addr, "POST", "/fit", Some(FIT_BODY));
    s.wait_crash();

    let mut s = spawn(cfg, dir, &[]);
    let mut checks = vec![check("healthz_after_quarantine", healthy(s.addr))];
    let quarantined = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".quarantine"))
        .count();
    checks.push(check("stale_tmp_quarantined", quarantined == 1));
    checks.push(check(
        "half_install_never_visible",
        !dir.join("model-1.kamino").exists(),
    ));
    let (_, metrics) = request(s.addr, "GET", "/metrics", None);
    checks.push(check(
        "epsilon_survives_lost_snapshot",
        metric_value(&metrics, "kamino_ledger_epsilon_total") >= 1.0,
    ));
    checks.push(check("clean_shutdown", s.shutdown_clean()));
    checks
}

/// SIGKILL with a persisted model: after restart the identical request
/// must return byte-identical rows.
fn stream_resume_bit_exact(cfg: &ChaosConfig, dir: &Path) -> Vec<Check> {
    let mut s = spawn(cfg, dir, &[]);
    let id = fit_and_wait(s.addr, FIT_BODY);
    let path = format!("/models/{id}/synthesize?n=60&batch=20&format=csv");
    let (status, before) = request(s.addr, "POST", &path, None);
    let mut checks = vec![check("stream_before_kill", status.contains("200"))];
    s.kill_hard();

    let mut s = spawn(cfg, dir, &[]);
    checks.push(check("healthz_after_kill", healthy(s.addr)));
    let (status, after) = request(s.addr, "POST", &path, None);
    checks.push(check("stream_after_restart", status.contains("200")));
    checks.push(check("stream_bit_exact", before == after));
    checks.push(check("clean_shutdown", s.shutdown_clean()));
    checks
}

/// A shimmed full disk fails snapshots with a clean 500 but never kills
/// the server: streams still serve and shutdown stays graceful.
fn disk_full_liveness(cfg: &ChaosConfig, dir: &Path) -> Vec<Check> {
    let mut s = spawn(cfg, dir, &[("KAMINO_CHAOS_DISK_FULL", "1")]);
    let id = fit_and_wait(s.addr, FIT_BODY);
    let (status, body) = request(s.addr, "POST", &format!("/models/{id}/snapshot"), None);
    let mut checks = vec![check(
        "snapshot_fails_cleanly",
        status.contains("500") && body.contains("disk full"),
    )];
    checks.push(check("healthz_on_full_disk", healthy(s.addr)));
    let (status, rows) = request(
        s.addr,
        "POST",
        &format!("/models/{id}/synthesize?n=10&batch=5&format=json"),
        None,
    );
    checks.push(check(
        "streams_survive_full_disk",
        status.contains("200") && rows.lines().count() == 10,
    ));
    checks.push(check("clean_shutdown", s.shutdown_clean()));
    checks
}

// ----------------------------------------------------------- subprocess

struct ChaosServer {
    child: Child,
    addr: SocketAddr,
}

fn spawn(cfg: &ChaosConfig, dir: &Path, env: &[(&str, &str)]) -> ChaosServer {
    let mut cmd = Command::new(&cfg.server_bin);
    cmd.arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--model-dir")
        .arg(dir)
        .arg("--threads")
        .arg("2")
        .arg("--pool-batches")
        .arg("0")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn kamino-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read child stdout");
        assert!(n > 0, "kamino-serve exited before printing its address");
        if let Some(rest) = line
            .trim()
            .strip_prefix("kamino-serve listening on http://")
        {
            break rest.parse().expect("listen address");
        }
    };
    thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    ChaosServer { child, addr }
}

impl ChaosServer {
    fn wait_crash(&mut self) {
        let t0 = clock::now_nanos();
        loop {
            if self.child.try_wait().expect("try_wait").is_some() {
                return;
            }
            assert!(clock::secs_since(t0) < 300.0, "child never crashed");
            thread::sleep(Duration::from_millis(50));
        }
    }

    fn kill_hard(&mut self) {
        self.child.kill().expect("kill child");
        let _ = self.child.wait();
    }

    fn shutdown_clean(&mut self) -> bool {
        let (status, _) = request(self.addr, "POST", "/shutdown", None);
        status.contains("200") && self.child.wait().expect("wait child").success()
    }
}

impl Drop for ChaosServer {
    fn drop(&mut self) {
        if self.child.try_wait().ok().flatten().is_none() {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

// --------------------------------------------------------------- client

fn send_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(180)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    Ok(raw)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (String, String) {
    let raw = send_request(addr, method, path, body).expect("request");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status = head.lines().next().unwrap_or("").to_string();
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        dechunk(payload)
    } else {
        payload.to_string()
    };
    (status, body)
}

/// A request that may ride into an injected crash: errors are expected.
fn request_lossy(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) {
    let _ = send_request(addr, method, path, body);
}

fn dechunk(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        out.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").unwrap_or(&after[size..]);
    }
    out
}

fn json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn healthy(addr: SocketAddr) -> bool {
    let (status, body) = request(addr, "GET", "/healthz", None);
    status.contains("200") && json(&body).get("status").and_then(Json::as_str) == Some("ok")
}

fn metric_value(metrics: &str, name: &str) -> f64 {
    let prefix = format!("{name} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(prefix.as_str()))
        .unwrap_or("0")
        .trim()
        .parse()
        .unwrap_or(f64::INFINITY)
}

fn fit_and_wait(addr: SocketAddr, body: &str) -> u64 {
    let (status, reply) = request(addr, "POST", "/fit", Some(body));
    assert!(status.contains("202"), "fit rejected: {status} {reply}");
    let id = json(&reply).get("model_id").and_then(Json::as_u64).unwrap();
    let t0 = clock::now_nanos();
    loop {
        let (_, body) = request(addr, "GET", &format!("/models/{id}"), None);
        match json(&body).get("status").and_then(Json::as_str) {
            Some("ready") => return id,
            Some("failed") => panic!("fit failed: {body}"),
            _ => {
                assert!(clock::secs_since(t0) < 300.0, "fit never finished");
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}
