//! Experiment harness for the paper's evaluation section.
//!
//! Every table and figure in §7 maps to one binary in `src/bin/` (full
//! output, paper-style rows) and one Criterion bench in `benches/`
//! (micro-scale regeneration). Shared machinery lives here:
//!
//! * [`Method`] — a uniform handle over Kamino (with all its ablation /
//!   sampling variants) and the four baselines;
//! * [`config`] — harness sizing. Defaults run every experiment on a
//!   laptop in minutes; set `KAMINO_BENCH_N=<rows>` to change the dataset
//!   size or `KAMINO_BENCH_FULL=1` for paper-scale row counts (hours);
//! * [`report`] — mean±std aggregation and table printing, mirrored to
//!   `target/experiments/<name>.txt`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use kamino_baselines::{DpVae, Independent, NistPgm, PateGan, PrivBayes, Synthesizer};
use kamino_core::{run_kamino, KaminoConfig, KaminoReport};
use kamino_data::Instance;
use kamino_datasets::Dataset;
use kamino_dp::Budget;

pub mod chaos;
pub mod repro;

/// Harness sizing knobs (environment-driven).
pub mod config {
    use kamino_datasets::Corpus;

    /// Row count for a corpus: `KAMINO_BENCH_FULL=1` → Table 1 sizes;
    /// `KAMINO_BENCH_N=<n>` → n; default 800.
    pub fn rows_for(corpus: Corpus) -> usize {
        if std::env::var("KAMINO_BENCH_FULL").is_ok_and(|v| v == "1") {
            return corpus.paper_n();
        }
        std::env::var("KAMINO_BENCH_N")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(800)
    }

    /// Training-scale knob for Kamino (fraction of the paper's T range).
    pub fn train_scale() -> f64 {
        std::env::var("KAMINO_TRAIN_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.4)
    }

    /// The paper reports mean±std of 3 runs.
    pub fn seeds() -> [u64; 3] {
        [11, 23, 47]
    }

    /// The paper's default budget: (ε = 1, δ = 1e-6).
    pub fn default_budget() -> kamino_dp::Budget {
        kamino_dp::Budget::new(1.0, 1e-6)
    }
}

/// Ablation arms of Experiment 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Full Kamino.
    None,
    /// Random attribute sequence ("RandSequence").
    RandSequence,
    /// i.i.d. sampling from the model ("RandSampling").
    RandSampling,
    /// Both ("RandBoth").
    RandBoth,
}

/// Kamino variant knobs used across experiments.
#[derive(Debug, Clone, Copy)]
pub struct KaminoVariant {
    /// Ablation arm (Exp. 5).
    pub ablation: Ablation,
    /// MCMC re-sampling ratio `m/n` (Exp. 9).
    pub mcmc_ratio: f64,
    /// Accept–reject sampling (Exp. 6).
    pub ar_sampling: bool,
    /// Hard-FD lookup fast path (Exp. 10).
    pub hard_fd_lookup: bool,
    /// Parallel sub-model training (Exp. 10).
    pub parallel: bool,
}

impl Default for KaminoVariant {
    fn default() -> Self {
        KaminoVariant {
            ablation: Ablation::None,
            mcmc_ratio: 0.0,
            ar_sampling: false,
            hard_fd_lookup: false,
            parallel: false,
        }
    }
}

/// A method under evaluation: Kamino (any variant) or a baseline.
pub enum Method {
    /// Kamino with the given variant knobs.
    Kamino(KaminoVariant),
    /// One of the baseline synthesizers.
    Baseline(Box<dyn Synthesizer>),
}

impl Method {
    /// Full Kamino with defaults.
    pub fn kamino() -> Method {
        Method::Kamino(KaminoVariant::default())
    }

    /// The paper's method roster for the end-to-end tables: the four
    /// baselines followed by Kamino.
    pub fn paper_roster() -> Vec<Method> {
        vec![
            Method::Baseline(Box::new(DpVae {
                steps: 200,
                ..DpVae::default()
            })),
            Method::Baseline(Box::new(NistPgm::default())),
            Method::Baseline(Box::new(PrivBayes::default())),
            Method::Baseline(Box::new(PateGan {
                steps: 120,
                ..PateGan::default()
            })),
            Method::kamino(),
        ]
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Method::Kamino(v) => match v.ablation {
                Ablation::None if v.ar_sampling => "Kamino-AR".to_string(),
                Ablation::None => "Kamino".to_string(),
                Ablation::RandSequence => "RandSequence".to_string(),
                Ablation::RandSampling => "RandSampling".to_string(),
                Ablation::RandBoth => "RandBoth".to_string(),
            },
            Method::Baseline(b) => b.name().to_string(),
        }
    }

    /// Builds the Kamino config this harness uses (shared by every
    /// experiment so methods are compared under identical settings).
    pub fn kamino_config(budget: Budget, seed: u64, v: &KaminoVariant) -> KaminoConfig {
        let mut cfg = KaminoConfig::new(budget);
        cfg.seed = seed;
        cfg.train_scale = config::train_scale();
        cfg.embed_dim = 12;
        cfg.lr = 0.25;
        cfg.mcmc_ratio = v.mcmc_ratio;
        cfg.ar_sampling = v.ar_sampling;
        cfg.hard_fd_lookup = v.hard_fd_lookup;
        cfg.parallel_training = v.parallel;
        cfg.constraint_aware_sampling =
            !matches!(v.ablation, Ablation::RandSampling | Ablation::RandBoth);
        cfg.constraint_aware_sequencing =
            !matches!(v.ablation, Ablation::RandSequence | Ablation::RandBoth);
        cfg
    }

    /// Runs the method, returning the synthetic instance (and the full
    /// Kamino report when applicable).
    pub fn run(&self, d: &Dataset, budget: Budget, seed: u64) -> (Instance, Option<KaminoReport>) {
        match self {
            Method::Kamino(v) => {
                let cfg = Self::kamino_config(budget, seed, v);
                let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
                let inst = report.instance.clone();
                (inst, Some(report))
            }
            Method::Baseline(b) => (
                b.synthesize(&d.schema, &d.instance, budget, d.instance.n_rows(), seed),
                None,
            ),
        }
    }
}

/// A baseline-only roster handle (used by Figure 1).
pub fn figure1_roster() -> Vec<Box<dyn Synthesizer>> {
    vec![
        Box::new(PrivBayes::default()),
        Box::new(PateGan {
            steps: 120,
            ..PateGan::default()
        }),
        Box::new(DpVae {
            steps: 200,
            ..DpVae::default()
        }),
    ]
}

/// The independent strawman (context rows in some tables).
pub fn independent() -> Box<dyn Synthesizer> {
    Box::new(Independent)
}

/// Reduced classifier roster for time-budgeted experiment binaries
/// (`KAMINO_BENCH_FULL=1` switches to the full nine).
pub fn classifier_roster() -> Vec<Box<dyn kamino_eval::classifiers::Classifier>> {
    if std::env::var("KAMINO_BENCH_FULL").is_ok_and(|v| v == "1") {
        kamino_eval::classifiers::standard_nine()
    } else {
        let mut forest = kamino_eval::classifiers::RandomForest::default();
        forest.n_trees = 8;
        let mut xgb = kamino_eval::classifiers::XgbLite::default();
        xgb.rounds = 15;
        vec![
            Box::new(kamino_eval::classifiers::LogisticRegression::default()),
            Box::new(kamino_eval::classifiers::DecisionTree::default()),
            Box::new(forest),
            Box::new(xgb),
            Box::new(kamino_eval::classifiers::BernoulliNb::default()),
        ]
    }
}

/// Result aggregation + table printing.
pub mod report {
    use std::fmt::Write as _;
    use std::io::Write as _;

    /// Mean and (population) standard deviation.
    pub fn mean_std(xs: &[f64]) -> (f64, f64) {
        assert!(!xs.is_empty());
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    /// Simple aligned table with a title; rendered to stdout and appended
    /// to `target/experiments/<file>.txt`.
    pub struct Table {
        title: String,
        header: Vec<String>,
        rows: Vec<Vec<String>>,
    }

    impl Table {
        /// New table with column headers.
        pub fn new(title: &str, header: &[&str]) -> Table {
            Table {
                title: title.to_string(),
                header: header.iter().map(|s| s.to_string()).collect(),
                rows: Vec::new(),
            }
        }

        /// Appends one row.
        pub fn row(&mut self, cells: Vec<String>) {
            assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
            self.rows.push(cells);
        }

        /// Renders the table.
        pub fn render(&self) -> String {
            let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
            for row in &self.rows {
                for (w, cell) in widths.iter_mut().zip(row) {
                    *w = (*w).max(cell.len());
                }
            }
            let mut out = String::new();
            let _ = writeln!(out, "== {} ==", self.title);
            let line = |cells: &[String], widths: &[usize]| -> String {
                cells
                    .iter()
                    .zip(widths)
                    .map(|(c, w)| format!("{c:<w$}"))
                    .collect::<Vec<_>>()
                    .join("  ")
            };
            let _ = writeln!(out, "{}", line(&self.header, &widths));
            let _ = writeln!(
                out,
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
            );
            for row in &self.rows {
                let _ = writeln!(out, "{}", line(row, &widths));
            }
            out
        }

        /// Prints to stdout and appends to the experiment output file.
        pub fn emit(&self, file: &str) {
            let text = self.render();
            println!("{text}");
            let dir = std::path::Path::new("target/experiments");
            let _ = std::fs::create_dir_all(dir);
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join(format!("{file}.txt")))
            {
                let _ = writeln!(f, "{text}");
            }
        }
    }

    /// `12.3±0.4` formatting.
    pub fn pm(mean: f64, std: f64) -> String {
        format!("{mean:.2}±{std:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names() {
        assert_eq!(Method::kamino().name(), "Kamino");
        let names: Vec<String> = Method::paper_roster().iter().map(Method::name).collect();
        assert_eq!(
            names,
            vec!["DP-VAE", "NIST", "PrivBayes", "PATE-GAN", "Kamino"]
        );
        let v = KaminoVariant {
            ablation: Ablation::RandBoth,
            ..Default::default()
        };
        assert_eq!(Method::Kamino(v).name(), "RandBoth");
    }

    #[test]
    fn ablation_switch_wiring() {
        let budget = Budget::new(1.0, 1e-6);
        let mut v = KaminoVariant {
            ablation: Ablation::RandSampling,
            ..Default::default()
        };
        let cfg = Method::kamino_config(budget, 0, &v);
        assert!(!cfg.constraint_aware_sampling);
        assert!(cfg.constraint_aware_sequencing);
        v.ablation = Ablation::RandBoth;
        let cfg = Method::kamino_config(budget, 0, &v);
        assert!(!cfg.constraint_aware_sampling);
        assert!(!cfg.constraint_aware_sequencing);
    }

    #[test]
    fn mean_std_math() {
        let (m, s) = report::mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = report::Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["x".into(), "y".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("a  bbbb"), "got:\n{text}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = report::Table::new("demo", &["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
