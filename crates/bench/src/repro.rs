//! The paper-reproduction harness behind the `kamino-repro` binary.
//!
//! Runs the §7 evaluation as an experiment matrix — every cell is one
//! `(dataset, ε, synthesizer)` triple taken end-to-end: fit, synthesize,
//! then score with the `kamino-eval` stack (Metric I Ψ violation rates
//! per DC, Metric II downstream classifier accuracy/F1, Metric III
//! total-variation distance on 1-/2-way marginals). Cells are mutually
//! independent, so the matrix runs them concurrently on scoped threads;
//! results are collected by cell index, so output order (and content) is
//! deterministic regardless of scheduling.
//!
//! ## Snapshot cache
//!
//! Kamino cells dominate wall-clock through their DP-SGD fit. The fit is
//! fully determined by `(dataset, ε, seed, config)`, so the harness
//! persists each fitted session as a `.kamino` snapshot (the PR 3
//! container, via [`kamino_serve::save_fitted`]) keyed by the dataset
//! name, ε, seed and [`KaminoConfig::stable_hash`]. A re-run — or a
//! sweep that shares cells with a previous run — loads the snapshot and
//! skips the fit entirely. Snapshots are written *before* sampling, so a
//! cached session resumes the exact RNG cursor a fresh fit would have:
//! cached and uncached runs produce byte-identical results.
//!
//! ## Artifacts
//!
//! * `BENCH_repro.json` — machine-readable cell results, deterministic
//!   key order and content, diffable across PRs like
//!   `BENCH_synthesis.json`. Wall-clock fields are only included when
//!   explicitly requested (`--timings`), because timing noise would break
//!   byte-for-byte diffability.
//! * `REPRODUCTION.md` — markdown tables mirroring the paper's Table 2 /
//!   figure layout per dataset, plus a "vs. paper" table with deltas
//!   against paper-reported reference numbers and a pass/fail tolerance
//!   column.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use kamino_baselines::{DpVae, Independent, NistPgm, PateGan, PrivBayes, Synthesizer};
use kamino_core::{fit_kamino, KaminoConfig};
use kamino_datasets::{Corpus, Dataset};
use kamino_dp::Budget;
use kamino_eval::classifiers::Classifier;
use kamino_eval::tasks::evaluate_classification_with;
use kamino_eval::{tvd_all_pairs, tvd_all_singles, violation_table};
use kamino_obs::{clock, ObsHandle};
use kamino_serve::Json;

/// The δ every cell runs at (the paper's default).
pub const DELTA: f64 = 1e-6;

/// Ψ tolerance (percentage points) for the vs-paper pass/fail column:
/// pass when our violation total is at most the paper's plus this.
pub const TOL_PSI_PP: f64 = 5.0;

/// Accuracy tolerance for the vs-paper pass/fail column: pass when our
/// mean accuracy is at least the paper's minus this.
pub const TOL_ACCURACY: f64 = 0.15;

/// A synthesizer the matrix can run. `Kamino` is the paper's method
/// (snapshot-cached); the rest are the §7 baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Full Kamino (Algorithm 1) through the session pipeline.
    Kamino,
    /// PrivBayes (Zhang et al.).
    PrivBayes,
    /// The NIST-challenge PGM recipe (McKenna et al.).
    Nist,
    /// DP-VAE (Chen et al.).
    DpVae,
    /// PATE-GAN (Jordon et al.).
    PateGan,
    /// Independent noisy histograms (the floor).
    Independent,
}

impl MethodKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Kamino => "Kamino",
            MethodKind::PrivBayes => "PrivBayes",
            MethodKind::Nist => "NIST",
            MethodKind::DpVae => "DP-VAE",
            MethodKind::PateGan => "PATE-GAN",
            MethodKind::Independent => "Independent",
        }
    }

    /// Builds the baseline synthesizer (harness-scale step counts, same
    /// settings as [`crate::Method::paper_roster`]). `None` for Kamino,
    /// which runs through the fit/snapshot pipeline instead.
    fn baseline(self) -> Option<Box<dyn Synthesizer>> {
        match self {
            MethodKind::Kamino => None,
            MethodKind::PrivBayes => Some(Box::new(PrivBayes::default())),
            MethodKind::Nist => Some(Box::new(NistPgm::default())),
            MethodKind::DpVae => Some(Box::new(DpVae {
                steps: 200,
                ..DpVae::default()
            })),
            MethodKind::PateGan => Some(Box::new(PateGan {
                steps: 120,
                ..PateGan::default()
            })),
            MethodKind::Independent => Some(Box::new(Independent)),
        }
    }
}

/// Matrix configuration. Build with [`ReproConfig::fast`] (CI-sized:
/// subsampled corpora, 2-point ε grid, Kamino + 2 baselines) or
/// [`ReproConfig::full`] (the offline default: all four corpora, the full
/// ε grid, Kamino + every baseline), then adjust fields.
#[derive(Debug, Clone)]
pub struct ReproConfig {
    /// `"fast"` or `"full"` — recorded in the artifacts.
    pub mode: &'static str,
    /// Master seed: corpus generation, fits and evaluation derive from it.
    pub seed: u64,
    /// Rows per generated corpus (and rows synthesized per cell).
    pub rows: usize,
    /// The ε grid, ascending.
    pub epsilons: Vec<f64>,
    /// Corpora under evaluation.
    pub datasets: Vec<Corpus>,
    /// Synthesizer roster.
    pub methods: Vec<MethodKind>,
    /// Worker threads for the cell pool (cells are independent).
    pub threads: usize,
    /// Directory for cached `.kamino` fit snapshots.
    pub cache_dir: PathBuf,
    /// Kamino DP-SGD iteration scale (quality knob, privacy-safe).
    pub train_scale: f64,
    /// Include wall-clock fields in the artifacts. Off by default: the
    /// artifacts are byte-for-byte diffable only without timings.
    pub timings: bool,
    /// Observability sink shared by every cell (spans, fit phases, the
    /// DP budget ledger). Disabled by default; enabling it must not —
    /// and does not — change a single artifact byte (`--trace-out`
    /// exercises this, and CI re-asserts it).
    pub obs: ObsHandle,
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl ReproConfig {
    /// CI-sized matrix: Adult + Tax, ε ∈ {0.4, 1.0}, Kamino + PrivBayes +
    /// Independent, small corpora. Finishes in minutes.
    pub fn fast(seed: u64) -> ReproConfig {
        ReproConfig {
            mode: "fast",
            seed,
            rows: 240,
            epsilons: vec![0.4, 1.0],
            datasets: vec![Corpus::Adult, Corpus::Tax],
            methods: vec![
                MethodKind::Kamino,
                MethodKind::PrivBayes,
                MethodKind::Independent,
            ],
            threads: default_threads(),
            cache_dir: PathBuf::from("target/repro-cache"),
            train_scale: 0.05,
            timings: false,
            obs: ObsHandle::disabled(),
        }
    }

    /// The offline default: all four corpora, ε ∈ {0.2, 0.4, 1.0, 2.0},
    /// Kamino + all four baselines + the independent floor.
    pub fn full(seed: u64) -> ReproConfig {
        ReproConfig {
            mode: "full",
            seed,
            rows: 800,
            epsilons: vec![0.2, 0.4, 1.0, 2.0],
            datasets: Corpus::all().to_vec(),
            methods: vec![
                MethodKind::Kamino,
                MethodKind::PrivBayes,
                MethodKind::Nist,
                MethodKind::DpVae,
                MethodKind::PateGan,
                MethodKind::Independent,
            ],
            threads: default_threads(),
            cache_dir: PathBuf::from("target/repro-cache"),
            train_scale: 0.4,
            timings: false,
            obs: ObsHandle::disabled(),
        }
    }

    /// The Kamino pipeline configuration for one cell — shared by the
    /// fit and by the cache key. `stable_hash` already ignores the
    /// execution-only knobs, but `shards` is still pinned here because
    /// different shard counts sample *different* (each deterministic)
    /// streams, and the artifacts must not depend on `KAMINO_SHARDS`.
    pub fn kamino_config(&self, epsilon: f64) -> KaminoConfig {
        let mut cfg = KaminoConfig::new(Budget::new(epsilon, DELTA));
        cfg.seed = self.seed;
        cfg.train_scale = self.train_scale;
        cfg.embed_dim = 12;
        cfg.lr = 0.25;
        cfg.shards = 1;
        cfg.obs = self.obs.clone();
        cfg
    }

    /// The snapshot path for one Kamino cell:
    /// `{dataset}-n{rows}-eps{ε}-seed{seed}-{config_hash:016x}.kamino`.
    /// The row count is part of the key because it sizes the generated
    /// corpus the model was fitted on — the config hash alone cannot see
    /// it (the corpus is an input to the fit, not a config field).
    pub fn cache_path(&self, dataset: &str, epsilon: f64) -> PathBuf {
        let hash = self.kamino_config(epsilon).stable_hash();
        self.cache_dir.join(format!(
            "{dataset}-n{}-eps{epsilon}-seed{}-{hash:016x}.kamino",
            self.rows, self.seed
        ))
    }

    /// The classifier roster Metric II runs with: 2 models in fast mode,
    /// the reduced five otherwise. Pinned per mode — deliberately *not*
    /// `crate::classifier_roster()`, whose `KAMINO_BENCH_FULL` switch
    /// would let an unrecorded env var change the artifacts (they must
    /// be byte-identical for a given config across hosts).
    fn classifier_roster(&self) -> Vec<Box<dyn Classifier>> {
        use kamino_eval::classifiers::{
            BernoulliNb, DecisionTree, LogisticRegression, RandomForest, XgbLite,
        };
        if self.mode == "fast" {
            vec![
                Box::new(LogisticRegression::default()),
                Box::new(DecisionTree::default()),
            ]
        } else {
            let mut forest = RandomForest::default();
            forest.n_trees = 8;
            let mut xgb = XgbLite::default();
            xgb.rounds = 15;
            vec![
                Box::new(LogisticRegression::default()),
                Box::new(DecisionTree::default()),
                Box::new(forest),
                Box::new(xgb),
                Box::new(BernoulliNb::default()),
            ]
        }
    }
}

/// Whether a cell's fit came from the snapshot cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Loaded from a `.kamino` snapshot — the DP-SGD fit was skipped.
    Hit,
    /// Fitted fresh (and the snapshot was written for next time).
    Miss,
    /// Baselines are not snapshot-cached.
    NotCached,
}

/// One scored experiment cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Dataset name (`adult`, `br2000`, `tax`, `tpch`).
    pub dataset: String,
    /// Synthesizer name.
    pub method: &'static str,
    /// The requested ε.
    pub epsilon: f64,
    /// The ε Kamino actually spent (planner-composed); `None` for
    /// baselines, which calibrate internally to the full budget.
    pub achieved_epsilon: Option<f64>,
    /// Per-DC `(name, truth %, synth %)` violation rates (Metric I).
    pub psi: Vec<(String, f64, f64)>,
    /// Mean 1-way marginal TVD over attributes (Metric III).
    pub tvd1_mean: f64,
    /// Max 1-way marginal TVD over attributes.
    pub tvd1_max: f64,
    /// Mean 2-way marginal TVD over attribute pairs.
    pub tvd2_mean: f64,
    /// Mean classifier accuracy over attributes × models (Metric II).
    pub accuracy: f64,
    /// Mean classifier F1 over attributes × models.
    pub f1: f64,
    /// Cache disposition of the fit.
    pub cache: CacheStatus,
    /// Cell wall-clock (fit-or-load + synthesize + score), seconds.
    /// Only surfaced in artifacts when [`ReproConfig::timings`] is set.
    pub seconds: f64,
}

impl CellResult {
    /// Total synthetic violation percentage across DCs — the scalar the
    /// vs-paper table compares.
    pub fn psi_total(&self) -> f64 {
        self.psi.iter().map(|(_, _, s)| s).sum()
    }
}

/// Everything one matrix run produced.
#[derive(Debug)]
pub struct MatrixReport {
    /// Cell results in matrix order (dataset-major, then ε, then method).
    pub cells: Vec<CellResult>,
    /// Snapshot-cache hits across Kamino cells.
    pub cache_hits: usize,
    /// Snapshot-cache misses (fresh fits) across Kamino cells.
    pub cache_misses: usize,
    /// Number of Kamino cells in the matrix.
    pub kamino_cells: usize,
    /// End-to-end wall-clock of the run, seconds.
    pub total_seconds: f64,
}

/// One cell's coordinates in the matrix.
#[derive(Debug, Clone, Copy)]
struct Cell {
    dataset: usize,
    epsilon: f64,
    method: MethodKind,
}

/// Enumerates the matrix in deterministic order: dataset-major, then ε
/// ascending, then the configured method order.
fn enumerate_cells(cfg: &ReproConfig) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(cfg.datasets.len() * cfg.epsilons.len() * cfg.methods.len());
    for d in 0..cfg.datasets.len() {
        for &epsilon in &cfg.epsilons {
            for &method in &cfg.methods {
                cells.push(Cell {
                    dataset: d,
                    epsilon,
                    method,
                });
            }
        }
    }
    cells
}

/// Fits (or cache-loads) Kamino and synthesizes the cell's rows.
/// Snapshots are saved *before* sampling so the cached RNG cursor equals
/// the fresh-fit cursor — cached and uncached runs sample identically.
fn run_kamino_cell(
    d: &Dataset,
    cfg: &ReproConfig,
    epsilon: f64,
) -> (kamino_data::Instance, Option<f64>, CacheStatus) {
    let path = cfg.cache_path(&d.name, epsilon);
    let (mut session, status) = match kamino_serve::load_fitted(&path) {
        Ok(session) => (session, CacheStatus::Hit),
        Err(_) => {
            let kcfg = cfg.kamino_config(epsilon);
            let fitted = fit_kamino(&d.schema, &d.instance, &d.dcs, &kcfg);
            if let Err(e) = kamino_serve::save_fitted(&fitted, &path) {
                eprintln!(
                    "kamino-repro: cannot cache snapshot {}: {e}",
                    path.display()
                );
            }
            (fitted, CacheStatus::Miss)
        }
    };
    let achieved = session.achieved_epsilon();
    let synth = session.sample(cfg.rows);
    (synth, Some(achieved), status)
}

/// Runs one cell end-to-end and scores it. `truth_psi` is the dataset's
/// truth-side violation table, computed once per dataset in
/// [`run_matrix`] (it is O(n²) per DC and identical for every cell of
/// the dataset).
fn run_cell(d: &Dataset, truth_psi: &[(String, f64)], cfg: &ReproConfig, cell: Cell) -> CellResult {
    let t0 = clock::now_nanos();
    let mut span = cfg.obs.span("repro.cell");
    if span.is_active() {
        span.arg("dataset", d.name.clone());
        span.arg("method", cell.method.name().to_string());
        span.arg("epsilon", cell.epsilon.to_string());
    }
    let (synth, achieved, cache) = match cell.method.baseline() {
        None => run_kamino_cell(d, cfg, cell.epsilon),
        Some(b) => (
            b.synthesize(
                &d.schema,
                &d.instance,
                Budget::new(cell.epsilon, DELTA),
                cfg.rows,
                cfg.seed,
            ),
            None,
            CacheStatus::NotCached,
        ),
    };

    let synth_psi = violation_table(&d.dcs, &synth);
    let psi = truth_psi
        .iter()
        .cloned()
        .zip(synth_psi)
        .map(|((name, t), (_, s))| (name, t, s))
        .collect();

    let tvd1 = tvd_all_singles(&d.schema, &d.instance, &synth);
    let tvd2 = tvd_all_pairs(&d.schema, &d.instance, &synth);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    // kamino-lint: allow(float_fold) -- max accumulator: 0.0 is the identity for max over non-negative values, not a sum seed
    let max = |xs: &[f64]| xs.iter().copied().fold(0.0f64, f64::max);

    let tasks = evaluate_classification_with(&d.schema, &d.instance, &synth, cfg.seed, || {
        cfg.classifier_roster()
    });

    CellResult {
        dataset: d.name.clone(),
        method: cell.method.name(),
        epsilon: cell.epsilon,
        achieved_epsilon: achieved,
        psi,
        tvd1_mean: mean(&tvd1),
        tvd1_max: max(&tvd1),
        tvd2_mean: mean(&tvd2),
        accuracy: tasks.mean_accuracy(),
        f1: tasks.mean_f1(),
        cache,
        seconds: clock::secs_since(t0),
    }
}

/// Runs the whole matrix: generates each corpus once, then drains the
/// cell list with a scoped-thread worker pool. Results land in matrix
/// order regardless of which worker finishes first.
pub fn run_matrix(cfg: &ReproConfig) -> MatrixReport {
    let t0 = clock::now_nanos();
    std::fs::create_dir_all(&cfg.cache_dir).ok();
    let datasets: Vec<Dataset> = cfg
        .datasets
        .iter()
        .map(|c| c.generate(cfg.rows, cfg.seed))
        .collect();
    let truth_psis: Vec<Vec<(String, f64)>> = datasets
        .iter()
        .map(|d| violation_table(&d.dcs, &d.instance))
        .collect();
    let cells = enumerate_cells(cfg);
    let results: Vec<Mutex<Option<CellResult>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let workers = cfg.threads.clamp(1, cells.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i).copied() else {
                    break;
                };
                let res = run_cell(
                    &datasets[cell.dataset],
                    &truth_psis[cell.dataset],
                    cfg,
                    cell,
                );
                *results[i].lock().unwrap() = Some(res);
            });
        }
    });

    let cells: Vec<CellResult> = results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("worker pool drained every cell")
        })
        .collect();
    let cache_hits = cells.iter().filter(|c| c.cache == CacheStatus::Hit).count();
    let cache_misses = cells
        .iter()
        .filter(|c| c.cache == CacheStatus::Miss)
        .count();
    let kamino_cells = cells.iter().filter(|c| c.method == "Kamino").count();
    MatrixReport {
        cells,
        cache_hits,
        cache_misses,
        kamino_cells,
        total_seconds: clock::secs_since(t0),
    }
}

/// Paper-reported reference numbers the `REPRODUCTION.md` deltas compare
/// against: the total Ψ violation percentage and mean downstream accuracy
/// at ε = 1 (Table 2 and Figures 3–5 of the paper).
///
/// These are **transcribed approximations of the published magnitudes**,
/// not re-measured ground truth: the paper evaluates the real corpora at
/// full scale, while this harness runs seeded lookalike generators at
/// harness scale — which is why the pass/fail column carries generous
/// tolerances ([`TOL_PSI_PP`], [`TOL_ACCURACY`]) and is advisory.
pub mod paper_ref {
    /// Reference point for one `(dataset, method)` at ε = 1.
    #[derive(Debug, Clone, Copy)]
    // kamino-lint: allow(twin_drift) -- transcribed paper reference table, not a runtime parity twin
    pub struct PaperRef {
        /// Total Ψ violation percentage across the dataset's DCs.
        pub psi_total: f64,
        /// Mean downstream classifier accuracy.
        pub accuracy: f64,
    }

    /// Looks up the reference for `(dataset, method)`; `None` when the
    /// paper reports no number for the pair.
    pub fn reference(dataset: &str, method: &str) -> Option<PaperRef> {
        let (psi_total, accuracy) = match (dataset, method) {
            ("adult", "Kamino") => (0.05, 0.77),
            ("adult", "PrivBayes") => (13.5, 0.74),
            ("adult", "NIST") => (9.2, 0.72),
            ("adult", "DP-VAE") => (20.0, 0.70),
            ("adult", "PATE-GAN") => (27.0, 0.66),
            ("adult", "Independent") => (15.0, 0.65),
            ("br2000", "Kamino") => (1.0, 0.80),
            ("br2000", "PrivBayes") => (4.0, 0.78),
            ("br2000", "NIST") => (3.0, 0.76),
            ("br2000", "DP-VAE") => (6.0, 0.72),
            ("br2000", "PATE-GAN") => (8.0, 0.68),
            ("br2000", "Independent") => (5.0, 0.66),
            ("tax", "Kamino") => (0.1, 0.85),
            ("tax", "PrivBayes") => (11.0, 0.80),
            ("tax", "NIST") => (8.0, 0.78),
            ("tax", "DP-VAE") => (18.0, 0.74),
            ("tax", "PATE-GAN") => (25.0, 0.70),
            ("tax", "Independent") => (14.0, 0.68),
            ("tpch", "Kamino") => (0.05, 0.88),
            ("tpch", "PrivBayes") => (9.0, 0.82),
            ("tpch", "NIST") => (7.0, 0.80),
            ("tpch", "DP-VAE") => (15.0, 0.75),
            ("tpch", "PATE-GAN") => (20.0, 0.72),
            ("tpch", "Independent") => (12.0, 0.70),
            _ => return None,
        };
        Some(PaperRef {
            psi_total,
            accuracy,
        })
    }
}

/// Serializes a matrix run as the `BENCH_repro.json` document.
/// Deterministic: sorted object keys (the codec's `BTreeMap`), matrix
/// cell order, and no wall-clock fields unless `cfg.timings` is set.
pub fn to_json(report: &MatrixReport, cfg: &ReproConfig) -> Json {
    let cells = report
        .cells
        .iter()
        .map(|c| {
            let mut pairs = vec![
                ("dataset", Json::Str(c.dataset.clone())),
                ("method", Json::Str(c.method.to_string())),
                ("epsilon", Json::Num(c.epsilon)),
                (
                    "achieved_epsilon",
                    c.achieved_epsilon.map_or(Json::Null, Json::Num),
                ),
                (
                    "psi",
                    Json::Arr(
                        c.psi
                            .iter()
                            .map(|(name, truth, synth)| {
                                Json::obj([
                                    ("dc", Json::Str(name.clone())),
                                    ("truth_pct", Json::Num(*truth)),
                                    ("synth_pct", Json::Num(*synth)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("psi_total", Json::Num(c.psi_total())),
                ("tvd1_mean", Json::Num(c.tvd1_mean)),
                ("tvd1_max", Json::Num(c.tvd1_max)),
                ("tvd2_mean", Json::Num(c.tvd2_mean)),
                ("accuracy", Json::Num(c.accuracy)),
                ("f1", Json::Num(c.f1)),
            ];
            if cfg.timings {
                pairs.push(("wall_seconds", Json::Num(c.seconds)));
            }
            Json::obj(pairs)
        })
        .collect();

    let mut top = vec![
        ("schema_version", Json::Num(1.0)),
        ("mode", Json::Str(cfg.mode.to_string())),
        ("seed", Json::Num(cfg.seed as f64)),
        ("rows", Json::Num(cfg.rows as f64)),
        ("delta", Json::Num(DELTA)),
        (
            "epsilons",
            Json::Arr(cfg.epsilons.iter().map(|&e| Json::Num(e)).collect()),
        ),
        (
            // the lowercase ids every cell's "dataset" field carries, so
            // the manifest joins against the cells
            "datasets",
            Json::Arr(
                cfg.datasets
                    .iter()
                    .map(|c| Json::Str(c.id().to_string()))
                    .collect(),
            ),
        ),
        (
            "methods",
            Json::Arr(
                cfg.methods
                    .iter()
                    .map(|m| Json::Str(m.name().to_string()))
                    .collect(),
            ),
        ),
        ("cells", Json::Arr(cells)),
    ];
    if cfg.timings {
        top.push(("total_wall_seconds", Json::Num(report.total_seconds)));
    }
    Json::obj(top)
}

/// The grid ε closest to 1.0 — the point the vs-paper table compares at
/// (the paper's headline budget).
fn reference_epsilon(cfg: &ReproConfig) -> f64 {
    cfg.epsilons
        .iter()
        .copied()
        .min_by(|a, b| (a - 1.0).abs().total_cmp(&(b - 1.0).abs()))
        .unwrap_or(1.0)
}

/// Renders the generated `REPRODUCTION.md`: per-dataset Ψ / TVD /
/// accuracy tables across the ε grid, then the vs-paper delta table.
/// Deterministic for a fixed config (no timestamps; timings only when
/// requested).
pub fn render_markdown(report: &MatrixReport, cfg: &ReproConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let eps_cols: Vec<String> = cfg.epsilons.iter().map(|e| format!("ε={e}")).collect();
    let cell = |dataset: &str, method: &str, eps: f64| -> Option<&CellResult> {
        report
            .cells
            .iter()
            .find(|c| c.dataset == dataset && c.method == method && c.epsilon == eps)
    };

    let _ = writeln!(out, "# Reproducing Kamino §7 — generated report\n");
    let _ = writeln!(
        out,
        "Generated by `kamino-repro` (do **not** edit by hand). \
         Mode: `{}` · seed {} · {} rows per corpus · δ = {DELTA:e}.\n",
        cfg.mode, cfg.seed, cfg.rows
    );
    let _ = writeln!(
        out,
        "Corpora are the seeded lookalike generators of `kamino-datasets` \
         (the originals are not redistributable), so absolute numbers differ \
         from the paper; the *structure* — which methods break which \
         constraints, and how utility orders across methods — is what this \
         report checks. See the tolerance notes in the final table.\n"
    );

    for corpus in &cfg.datasets {
        let dataset = corpus.id().to_string();
        let _ = writeln!(out, "## {}\n", corpus.name());

        // DC names come from any scored cell of this dataset.
        let dc_names: Vec<String> = report
            .cells
            .iter()
            .find(|c| c.dataset == dataset)
            .map(|c| c.psi.iter().map(|(name, _, _)| name.clone()).collect())
            .unwrap_or_default();

        // Metric I — the Table 2 shape: one row per DC × method.
        let _ = writeln!(
            out,
            "### Ψ — DC violation rate (% violating tuple pairs) · paper Table 2\n"
        );
        let _ = writeln!(out, "| DC | Method | Truth | {} |", eps_cols.join(" | "));
        let _ = writeln!(
            out,
            "|---|---|---|{}|",
            cfg.epsilons
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for (dc_idx, dc_name) in dc_names.iter().enumerate() {
            for method in &cfg.methods {
                let mut row = Vec::new();
                let mut truth = String::from("—");
                for &eps in &cfg.epsilons {
                    match cell(&dataset, method.name(), eps) {
                        Some(c) => {
                            truth = format!("{:.2}", c.psi[dc_idx].1);
                            row.push(format!("{:.2}", c.psi[dc_idx].2));
                        }
                        None => row.push("—".into()),
                    }
                }
                let _ = writeln!(
                    out,
                    "| {dc_name} | {} | {truth} | {} |",
                    method.name(),
                    row.join(" | ")
                );
            }
        }
        let _ = writeln!(out);

        // Metric III — marginals.
        for (title, pick) in [
            (
                "1-way marginal TVD (mean over attributes) · paper Figure 4",
                0usize,
            ),
            ("2-way marginal TVD (mean over pairs) · paper Figure 4", 1),
        ] {
            let _ = writeln!(out, "### {title}\n");
            let _ = writeln!(out, "| Method | {} |", eps_cols.join(" | "));
            let _ = writeln!(
                out,
                "|---|{}|",
                cfg.epsilons
                    .iter()
                    .map(|_| "---")
                    .collect::<Vec<_>>()
                    .join("|")
            );
            for method in &cfg.methods {
                let row: Vec<String> = cfg
                    .epsilons
                    .iter()
                    .map(|&eps| match cell(&dataset, method.name(), eps) {
                        Some(c) => {
                            format!("{:.4}", if pick == 0 { c.tvd1_mean } else { c.tvd2_mean })
                        }
                        None => "—".into(),
                    })
                    .collect();
                let _ = writeln!(out, "| {} | {} |", method.name(), row.join(" | "));
            }
            let _ = writeln!(out);
        }

        // Metric II — downstream classification.
        let _ = writeln!(
            out,
            "### Downstream classification accuracy (mean over attributes × models) · paper Figure 3\n"
        );
        let _ = writeln!(out, "| Method | {} |", eps_cols.join(" | "));
        let _ = writeln!(
            out,
            "|---|{}|",
            cfg.epsilons
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for method in &cfg.methods {
            let row: Vec<String> = cfg
                .epsilons
                .iter()
                .map(|&eps| match cell(&dataset, method.name(), eps) {
                    Some(c) => format!("{:.3}", c.accuracy),
                    None => "—".into(),
                })
                .collect();
            let _ = writeln!(out, "| {} | {} |", method.name(), row.join(" | "));
        }
        let _ = writeln!(out);
    }

    // vs-paper deltas at the headline budget.
    let ref_eps = reference_epsilon(cfg);
    let _ = writeln!(out, "## vs. paper-reported numbers (at ε = {ref_eps})\n");
    let _ = writeln!(
        out,
        "Reference values are transcribed approximations of the paper's \
         reported magnitudes at ε = 1 on the real corpora. `pass` means \
         ours is within tolerance of — or better than — the reference: \
         Ψ ≤ paper + {TOL_PSI_PP} pp, accuracy ≥ paper − {TOL_ACCURACY}. \
         Advisory at harness scale.\n"
    );
    if cfg.mode == "fast" {
        let _ = writeln!(
            out,
            "**This is a `--fast` (CI-sized) run** — subsampled corpora, a \
             reduced classifier roster and a short DP-SGD schedule. Utility \
             rows (accuracy, and Ψ for the i.i.d. baselines) are expected to \
             miss the paper's full-scale numbers here; the offline full \
             matrix is the fidelity check. The Kamino hard-constraint rows \
             (Ψ ≈ 0) should pass at any scale.\n"
        );
    }
    let _ = writeln!(
        out,
        "| Dataset | Method | Metric | Ours | Paper | Δ | Tolerance | Status |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for corpus in &cfg.datasets {
        let dataset = corpus.id();
        for method in &cfg.methods {
            let Some(c) = cell(dataset, method.name(), ref_eps) else {
                continue;
            };
            let Some(pref) = paper_ref::reference(dataset, method.name()) else {
                continue;
            };
            let psi = c.psi_total();
            let psi_pass = psi <= pref.psi_total + TOL_PSI_PP;
            let _ = writeln!(
                out,
                "| {} | {} | Ψ total (%) | {:.2} | {:.2} | {:+.2} | ≤ paper + {TOL_PSI_PP} | {} |",
                corpus.name(),
                method.name(),
                psi,
                pref.psi_total,
                psi - pref.psi_total,
                if psi_pass { "pass" } else { "FAIL" }
            );
            let acc_pass = c.accuracy >= pref.accuracy - TOL_ACCURACY;
            let _ = writeln!(
                out,
                "| {} | {} | accuracy | {:.3} | {:.3} | {:+.3} | ≥ paper − {TOL_ACCURACY} | {} |",
                corpus.name(),
                method.name(),
                c.accuracy,
                pref.accuracy,
                c.accuracy - pref.accuracy,
                if acc_pass { "pass" } else { "FAIL" }
            );
        }
    }

    if cfg.timings {
        let _ = writeln!(out, "\n## Wall-clock\n");
        let _ = writeln!(out, "| Dataset | Method | ε | Seconds |");
        let _ = writeln!(out, "|---|---|---|---|");
        for c in &report.cells {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.2} |",
                c.dataset, c.method, c.epsilon, c.seconds
            );
        }
        let _ = writeln!(
            out,
            "\nTotal: {:.2} s ({} cache hits, {} misses across {} Kamino cells).",
            report.total_seconds, report.cache_hits, report.cache_misses, report.kamino_cells
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_enumeration_is_dataset_major_and_complete() {
        let cfg = ReproConfig::fast(17);
        let cells = enumerate_cells(&cfg);
        assert_eq!(cells.len(), 2 * 2 * 3);
        // dataset-major: first half is dataset 0
        assert!(cells[..6].iter().all(|c| c.dataset == 0));
        // ε ascending within a dataset block, method order preserved
        assert_eq!(cells[0].epsilon, 0.4);
        assert_eq!(cells[3].epsilon, 1.0);
        assert_eq!(cells[0].method, MethodKind::Kamino);
        assert_eq!(cells[2].method, MethodKind::Independent);
    }

    #[test]
    fn cache_path_tracks_the_fit_identity() {
        let a = ReproConfig::fast(17);
        let mut b = ReproConfig::fast(17);
        assert_eq!(a.cache_path("adult", 1.0), b.cache_path("adult", 1.0));
        assert_ne!(
            a.cache_path("adult", 1.0),
            a.cache_path("adult", 0.4),
            "ε must key the cache"
        );
        assert_ne!(
            a.cache_path("adult", 1.0),
            a.cache_path("tax", 1.0),
            "dataset must key the cache"
        );
        b.seed = 18;
        assert_ne!(
            a.cache_path("adult", 1.0),
            b.cache_path("adult", 1.0),
            "seed must key the cache"
        );
        b.seed = 17;
        b.train_scale = 0.5;
        assert_ne!(
            a.cache_path("adult", 1.0),
            b.cache_path("adult", 1.0),
            "config hash must key the cache"
        );
    }

    #[test]
    fn reference_epsilon_picks_nearest_to_one() {
        let mut cfg = ReproConfig::fast(1);
        assert_eq!(reference_epsilon(&cfg), 1.0);
        cfg.epsilons = vec![0.2, 0.8, 2.0];
        assert_eq!(reference_epsilon(&cfg), 0.8);
    }

    fn fake_report(cfg: &ReproConfig) -> MatrixReport {
        let cells = enumerate_cells(cfg)
            .into_iter()
            .map(|c| CellResult {
                dataset: match c.dataset {
                    0 => "adult".to_string(),
                    _ => "tax".to_string(),
                },
                method: c.method.name(),
                epsilon: c.epsilon,
                achieved_epsilon: (c.method == MethodKind::Kamino).then_some(0.93),
                psi: vec![("fd".into(), 0.0, 1.25)],
                tvd1_mean: 0.05,
                tvd1_max: 0.11,
                tvd2_mean: 0.08,
                accuracy: 0.75,
                f1: 0.6,
                cache: CacheStatus::NotCached,
                seconds: 1.0,
            })
            .collect();
        MatrixReport {
            cells,
            cache_hits: 0,
            cache_misses: 4,
            kamino_cells: 4,
            total_seconds: 12.0,
        }
    }

    #[test]
    fn json_is_deterministic_and_timings_are_opt_in() {
        let cfg = ReproConfig::fast(17);
        let report = fake_report(&cfg);
        let a = to_json(&report, &cfg).to_string();
        let b = to_json(&report, &cfg).to_string();
        assert_eq!(a, b);
        assert!(a.contains("\"psi_total\""));
        assert!(a.contains("\"mode\":\"fast\""));
        assert!(
            !a.contains("wall_seconds"),
            "timings must be opt-in for diffable artifacts"
        );
        let mut timed = cfg.clone();
        timed.timings = true;
        assert!(to_json(&report, &timed)
            .to_string()
            .contains("wall_seconds"));
    }

    #[test]
    fn matrix_cache_roundtrip_is_deterministic() {
        // one tiny Kamino cell, run twice against a fresh cache dir: the
        // second run must load the snapshot instead of refitting, and
        // both runs must serialize identically
        let dir = std::env::temp_dir().join(format!(
            "kamino-repro-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ReproConfig::fast(17);
        cfg.rows = 120;
        cfg.train_scale = 0.02;
        cfg.datasets = vec![Corpus::Adult];
        cfg.epsilons = vec![1.0];
        cfg.methods = vec![MethodKind::Kamino];
        cfg.cache_dir = dir.clone();

        let first = run_matrix(&cfg);
        assert_eq!((first.cache_hits, first.cache_misses), (0, 1));
        assert_eq!(first.kamino_cells, 1);
        let second = run_matrix(&cfg);
        assert_eq!(
            (second.cache_hits, second.cache_misses),
            (1, 0),
            "second run must reuse the cached snapshot"
        );
        assert_eq!(
            to_json(&first, &cfg).to_string(),
            to_json(&second, &cfg).to_string(),
            "cached and fresh fits must score identically"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn markdown_renders_every_required_table() {
        let cfg = ReproConfig::fast(17);
        let report = fake_report(&cfg);
        let md = render_markdown(&report, &cfg);
        for needle in [
            "## Adult",
            "## Tax",
            "Ψ — DC violation rate",
            "1-way marginal TVD",
            "Downstream classification accuracy",
            "## vs. paper-reported numbers (at ε = 1)",
            "| Adult | Kamino | Ψ total (%) |",
            "ε=0.4 | ε=1",
        ] {
            assert!(md.contains(needle), "missing `{needle}` in:\n{md}");
        }
        assert_eq!(
            md,
            render_markdown(&report, &cfg),
            "markdown must be deterministic"
        );
        assert!(!md.contains("Wall-clock"), "timings are opt-in");
    }
}
