//! Denial-constraint AST.

use std::collections::BTreeSet;
use std::fmt;

use kamino_data::{Schema, Value};

/// Which quantified tuple an operand refers to: `t_i` (first) or `t_j`
/// (second). Unary DCs only use [`TupleRef::T1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TupleRef {
    /// The first quantified tuple (`t_i` / `t1`).
    T1,
    /// The second quantified tuple (`t_j` / `t2`).
    T2,
}

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Evaluates the operator on two values of the same kind.
    #[inline]
    pub fn eval(self, a: Value, b: Value) -> bool {
        use std::cmp::Ordering::*;
        let ord = a.compare(b);
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// Text form used by the parser and `Display`.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One side of a predicate: a tuple attribute or a constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// `t.A` — attribute `attr` (schema index) of tuple `tuple`.
    Attr {
        /// Which quantified tuple.
        tuple: TupleRef,
        /// Schema index of the attribute.
        attr: usize,
    },
    /// A constant value.
    Const(Value),
}

/// A single predicate `lhs op rhs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    /// Left operand.
    pub lhs: Operand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Operand,
}

impl Predicate {
    /// Evaluates the predicate given accessors for the two tuples' values.
    /// `get(tuple, attr)` must return the value of `attr` on that tuple.
    #[inline]
    pub fn eval<F: Fn(TupleRef, usize) -> Value>(&self, get: &F) -> bool {
        let a = match self.lhs {
            Operand::Attr { tuple, attr } => get(tuple, attr),
            Operand::Const(v) => v,
        };
        let b = match self.rhs {
            Operand::Attr { tuple, attr } => get(tuple, attr),
            Operand::Const(v) => v,
        };
        self.op.eval(a, b)
    }

    fn references(&self, t: TupleRef) -> bool {
        matches!(self.lhs, Operand::Attr { tuple, .. } if tuple == t)
            || matches!(self.rhs, Operand::Attr { tuple, .. } if tuple == t)
    }
}

/// Whether a DC must hold exactly in the truth ("hard": weight → ∞) or may
/// be violated ("soft": weight learned by Algorithm 5 unless given).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hardness {
    /// No violations allowed; Kamino assigns an effectively infinite weight.
    Hard,
    /// Violations allowed; weight is learned or supplied.
    Soft,
}

/// A functional dependency `lhs → rhs` recognized from an FD-shaped DC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    /// Determinant attribute indices (the FD's left-hand side).
    pub lhs: Vec<usize>,
    /// Dependent attribute index (the FD's right-hand side).
    pub rhs: usize,
}

/// A strict-order DC shape `¬(eqs ∧ t1[A] opA t2[A] ∧ t1[B] opB t2[B])`
/// with `opA, opB ∈ {<, >}` — recognized by
/// [`DenialConstraint::as_strict_order`]. The order-DC fast paths in the
/// engine, the sampler's feasible-band clamp, and the Figure 1 repair all
/// key off this shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrictOrder {
    /// Cross-tuple equality attributes (the "same group" part).
    pub eq_attrs: Vec<usize>,
    /// First order predicate: (attribute, strict operator).
    pub a: (usize, CmpOp),
    /// Second order predicate.
    pub b: (usize, CmpOp),
}

/// A denial constraint `¬(P₁ ∧ … ∧ P_m)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenialConstraint {
    /// Display name (e.g. `phi_a1`).
    pub name: String,
    /// The conjunctive predicates being negated.
    pub predicates: Vec<Predicate>,
    /// Hardness declared by the data owner (part of Kamino's input).
    pub hardness: Hardness,
}

impl DenialConstraint {
    /// Builds a DC; `predicates` must be non-empty.
    pub fn new<S: Into<String>>(
        name: S,
        predicates: Vec<Predicate>,
        hardness: Hardness,
    ) -> DenialConstraint {
        assert!(
            !predicates.is_empty(),
            "a denial constraint needs at least one predicate"
        );
        DenialConstraint {
            name: name.into(),
            predicates,
            hardness,
        }
    }

    /// Whether any predicate references the second tuple — i.e. the DC is
    /// binary. Unary DCs only constrain single tuples.
    pub fn is_binary(&self) -> bool {
        self.predicates.iter().any(|p| p.references(TupleRef::T2))
    }

    /// The set `A_φ` of attribute indices participating in the DC.
    pub fn attrs(&self) -> BTreeSet<usize> {
        let mut set = BTreeSet::new();
        for p in &self.predicates {
            for op in [p.lhs, p.rhs] {
                if let Operand::Attr { attr, .. } = op {
                    set.insert(attr);
                }
            }
        }
        set
    }

    /// Evaluates whether a single tuple violates this unary DC (all
    /// predicates true). Panics if called on a binary DC.
    #[inline]
    pub fn violated_by_tuple<F: Fn(usize) -> Value>(&self, get: F) -> bool {
        self.predicates.iter().all(|p| {
            p.eval(&|t, a| {
                debug_assert!(t == TupleRef::T1, "unary evaluation of a binary DC");
                get(a)
            })
        })
    }

    /// Evaluates whether the ordered pair (`t1` = `get1`, `t2` = `get2`)
    /// makes all predicates true.
    #[inline]
    pub fn violated_by_ordered_pair<F1, F2>(&self, get1: &F1, get2: &F2) -> bool
    where
        F1: Fn(usize) -> Value,
        F2: Fn(usize) -> Value,
    {
        self.predicates.iter().all(|p| {
            p.eval(&|t, a| match t {
                TupleRef::T1 => get1(a),
                TupleRef::T2 => get2(a),
            })
        })
    }

    /// Whether the unordered pair violates the DC in either orientation.
    /// This is the pair-membership test behind `V(φ, D)` for binary DCs and
    /// the paper's Metric I (percentage of violating tuple *pairs*).
    #[inline]
    pub fn violated_by_pair<F1, F2>(&self, get1: &F1, get2: &F2) -> bool
    where
        F1: Fn(usize) -> Value,
        F2: Fn(usize) -> Value,
    {
        self.violated_by_ordered_pair(get1, get2) || self.violated_by_ordered_pair(get2, get1)
    }

    /// Recognizes the FD shape
    /// `¬(t1[X₁]=t2[X₁] ∧ … ∧ t1[X_m]=t2[X_m] ∧ t1[B]≠t2[B])`:
    /// every predicate compares the *same* attribute across the two tuples,
    /// all with `=` except exactly one with `≠`. Returns the FD `X → B`.
    ///
    /// Algorithm 4 (sequencing) consumes these, and the incremental engine
    /// uses a hash index for them.
    pub fn as_fd(&self) -> Option<Fd> {
        let mut lhs = Vec::new();
        let mut rhs = None;
        for p in &self.predicates {
            let (a1, a2) = match (p.lhs, p.rhs) {
                (
                    Operand::Attr {
                        tuple: ta,
                        attr: aa,
                    },
                    Operand::Attr {
                        tuple: tb,
                        attr: ab,
                    },
                ) if ta != tb => (aa, ab),
                _ => return None,
            };
            if a1 != a2 {
                return None;
            }
            match p.op {
                CmpOp::Eq => lhs.push(a1),
                CmpOp::Ne => {
                    if rhs.replace(a1).is_some() {
                        return None; // two ≠ predicates is not an FD
                    }
                }
                _ => return None,
            }
        }
        let rhs = rhs?;
        if lhs.is_empty() {
            return None;
        }
        Some(Fd { lhs, rhs })
    }

    /// Recognizes the strict-order shape (see [`StrictOrder`]): every
    /// predicate compares the same attribute across the two tuples, with
    /// any number of `=` predicates and exactly two strict (`<`/`>`)
    /// predicates over distinct attributes. Non-strict (`≤`/`≥`)
    /// predicates are excluded — both orientations of a pair can then hold
    /// at once, which breaks the fast paths built on this shape.
    pub fn as_strict_order(&self) -> Option<StrictOrder> {
        let mut eq_attrs = Vec::new();
        let mut orders = Vec::new();
        for p in &self.predicates {
            let (a1, a2) = match (p.lhs, p.rhs) {
                (
                    Operand::Attr {
                        tuple: TupleRef::T1,
                        attr: aa,
                    },
                    Operand::Attr {
                        tuple: TupleRef::T2,
                        attr: ab,
                    },
                ) => (aa, ab),
                _ => return None,
            };
            if a1 != a2 {
                return None;
            }
            match p.op {
                CmpOp::Eq => eq_attrs.push(a1),
                CmpOp::Lt | CmpOp::Gt => orders.push((a1, p.op)),
                _ => return None,
            }
        }
        if orders.len() != 2 || orders[0].0 == orders[1].0 {
            return None;
        }
        Some(StrictOrder {
            eq_attrs,
            a: orders[0],
            b: orders[1],
        })
    }

    /// Renders the DC with attribute names from `schema` in a form the
    /// [`crate::parser`] can read back.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DcDisplay<'a> {
        DcDisplay { dc: self, schema }
    }
}

/// `Display` adapter produced by [`DenialConstraint::display`].
pub struct DcDisplay<'a> {
    dc: &'a DenialConstraint,
    schema: &'a Schema,
}

impl fmt::Display for DcDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "!(")?;
        for (i, p) in self.dc.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            let show = |f: &mut fmt::Formatter<'_>, op: &Operand| -> fmt::Result {
                match *op {
                    Operand::Attr { tuple, attr } => {
                        let t = if tuple == TupleRef::T1 { "t1" } else { "t2" };
                        write!(f, "{t}.{}", self.schema.attr(attr).name)
                    }
                    Operand::Const(Value::Num(x)) => write!(f, "{x}"),
                    Operand::Const(Value::Cat(c)) => {
                        // Render with the label when the predicate's other
                        // side pins down the attribute; fall back to code.
                        write!(f, "'#{c}'")
                    }
                }
            };
            show(f, &p.lhs)?;
            write!(f, " {} ", p.op.symbol())?;
            show(f, &p.rhs)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_data::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("edu", 3).unwrap(),
            Attribute::integer("edu_num", 1.0, 16.0, 16).unwrap(),
            Attribute::numeric("gain", 0.0, 100.0, 10).unwrap(),
            Attribute::numeric("loss", 0.0, 100.0, 10).unwrap(),
        ])
        .unwrap()
    }

    fn attr(t: TupleRef, a: usize) -> Operand {
        Operand::Attr { tuple: t, attr: a }
    }

    /// `¬(t1.edu = t2.edu ∧ t1.edu_num ≠ t2.edu_num)` — the paper's φ₁.
    fn fd_dc() -> DenialConstraint {
        DenialConstraint::new(
            "phi1",
            vec![
                Predicate {
                    lhs: attr(TupleRef::T1, 0),
                    op: CmpOp::Eq,
                    rhs: attr(TupleRef::T2, 0),
                },
                Predicate {
                    lhs: attr(TupleRef::T1, 1),
                    op: CmpOp::Ne,
                    rhs: attr(TupleRef::T2, 1),
                },
            ],
            Hardness::Hard,
        )
    }

    /// `¬(t1.gain > t2.gain ∧ t1.loss < t2.loss)` — the paper's φ₂.
    fn order_dc() -> DenialConstraint {
        DenialConstraint::new(
            "phi2",
            vec![
                Predicate {
                    lhs: attr(TupleRef::T1, 2),
                    op: CmpOp::Gt,
                    rhs: attr(TupleRef::T2, 2),
                },
                Predicate {
                    lhs: attr(TupleRef::T1, 3),
                    op: CmpOp::Lt,
                    rhs: attr(TupleRef::T2, 3),
                },
            ],
            Hardness::Hard,
        )
    }

    /// `¬(t1.edu_num < 5 ∧ t1.gain > 90)` — a unary DC like the paper's φ₃.
    fn unary_dc() -> DenialConstraint {
        DenialConstraint::new(
            "phi3",
            vec![
                Predicate {
                    lhs: attr(TupleRef::T1, 1),
                    op: CmpOp::Lt,
                    rhs: Operand::Const(Value::Num(5.0)),
                },
                Predicate {
                    lhs: attr(TupleRef::T1, 2),
                    op: CmpOp::Gt,
                    rhs: Operand::Const(Value::Num(90.0)),
                },
            ],
            Hardness::Hard,
        )
    }

    #[test]
    fn cmp_op_eval_table() {
        let a = Value::Num(1.0);
        let b = Value::Num(2.0);
        assert!(CmpOp::Lt.eval(a, b));
        assert!(CmpOp::Le.eval(a, b));
        assert!(CmpOp::Le.eval(a, a));
        assert!(CmpOp::Ne.eval(a, b));
        assert!(CmpOp::Eq.eval(a, a));
        assert!(CmpOp::Gt.eval(b, a));
        assert!(CmpOp::Ge.eval(b, b));
        assert!(!CmpOp::Gt.eval(a, a));
    }

    #[test]
    fn arity_and_attrs() {
        assert!(fd_dc().is_binary());
        assert!(order_dc().is_binary());
        assert!(!unary_dc().is_binary());
        assert_eq!(fd_dc().attrs().into_iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(
            unary_dc().attrs().into_iter().collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn fd_recognition() {
        let fd = fd_dc().as_fd().expect("phi1 is an FD");
        assert_eq!(fd.lhs, vec![0]);
        assert_eq!(fd.rhs, 1);
        assert!(order_dc().as_fd().is_none());
        assert!(unary_dc().as_fd().is_none());
    }

    #[test]
    fn multi_lhs_fd_recognition() {
        // ¬(t1.a=t2.a ∧ t1.b=t2.b ∧ t1.c≠t2.c)  ⇒  {a,b} → c
        let dc = DenialConstraint::new(
            "fd2",
            vec![
                Predicate {
                    lhs: attr(TupleRef::T1, 0),
                    op: CmpOp::Eq,
                    rhs: attr(TupleRef::T2, 0),
                },
                Predicate {
                    lhs: attr(TupleRef::T1, 2),
                    op: CmpOp::Eq,
                    rhs: attr(TupleRef::T2, 2),
                },
                Predicate {
                    lhs: attr(TupleRef::T1, 1),
                    op: CmpOp::Ne,
                    rhs: attr(TupleRef::T2, 1),
                },
            ],
            Hardness::Hard,
        );
        let fd = dc.as_fd().unwrap();
        assert_eq!(fd.lhs, vec![0, 2]);
        assert_eq!(fd.rhs, 1);
    }

    #[test]
    fn unary_violation_semantics() {
        let dc = unary_dc();
        // edu_num=3 (<5) and gain=95 (>90): all predicates true ⇒ violation
        let vals = [
            Value::Cat(0),
            Value::Num(3.0),
            Value::Num(95.0),
            Value::Num(0.0),
        ];
        assert!(dc.violated_by_tuple(|a| vals[a]));
        // gain=50 breaks the conjunction
        let ok = [
            Value::Cat(0),
            Value::Num(3.0),
            Value::Num(50.0),
            Value::Num(0.0),
        ];
        assert!(!dc.violated_by_tuple(|a| ok[a]));
    }

    #[test]
    fn pair_violation_orientations() {
        let dc = order_dc();
        let r1 = [
            Value::Cat(0),
            Value::Num(0.0),
            Value::Num(10.0),
            Value::Num(1.0),
        ];
        let r2 = [
            Value::Cat(0),
            Value::Num(0.0),
            Value::Num(5.0),
            Value::Num(9.0),
        ];
        // r1.gain > r2.gain and r1.loss < r2.loss: (r1, r2) orientation violates
        assert!(dc.violated_by_ordered_pair(&|a| r1[a], &|a| r2[a]));
        assert!(!dc.violated_by_ordered_pair(&|a| r2[a], &|a| r1[a]));
        // the unordered pair violates either way it is presented
        assert!(dc.violated_by_pair(&|a| r1[a], &|a| r2[a]));
        assert!(dc.violated_by_pair(&|a| r2[a], &|a| r1[a]));
    }

    #[test]
    fn fd_pair_violation_is_symmetric() {
        let dc = fd_dc();
        let r1 = [
            Value::Cat(1),
            Value::Num(10.0),
            Value::Num(0.0),
            Value::Num(0.0),
        ];
        let r2 = [
            Value::Cat(1),
            Value::Num(12.0),
            Value::Num(0.0),
            Value::Num(0.0),
        ];
        assert!(dc.violated_by_pair(&|a| r1[a], &|a| r2[a]));
        let r3 = [
            Value::Cat(2),
            Value::Num(12.0),
            Value::Num(0.0),
            Value::Num(0.0),
        ];
        assert!(!dc.violated_by_pair(&|a| r1[a], &|a| r3[a]));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let s = schema();
        let text = order_dc().display(&s).to_string();
        assert_eq!(text, "!(t1.gain > t2.gain & t1.loss < t2.loss)");
        let parsed = crate::parser::parse_dc(&s, "phi2", &text, Hardness::Hard).unwrap();
        assert_eq!(parsed.predicates, order_dc().predicates);
    }

    #[test]
    #[should_panic(expected = "at least one predicate")]
    fn empty_dc_rejected() {
        DenialConstraint::new("empty", vec![], Hardness::Hard);
    }
}
