//! Approximate denial-constraint discovery.
//!
//! Experiment 8 of the paper varies the number of input DCs from 2 to 128
//! by "discovering approximate DCs \[70\] to simulate the knowledge from the
//! domain expert". This module provides that generator: it enumerates
//! two-attribute candidate DCs (FD-shaped for every ordered attribute pair,
//! order-shaped for every numeric pair), measures each candidate's
//! violation percentage on the instance, and returns the `n` candidates
//! with the lowest violation rates under a cutoff — i.e. the constraints
//! that *approximately* hold.
//!
//! Like the paper's setup, discovery runs on the true instance as a
//! stand-in for domain knowledge and is not part of the private pipeline.

use kamino_data::{Instance, Schema};

use crate::ast::{CmpOp, DenialConstraint, Hardness, Operand, Predicate, TupleRef};
use crate::engine::violation_percentage;

/// A discovered DC together with its observed violation percentage.
#[derive(Debug, Clone)]
pub struct DiscoveredDc {
    /// The constraint.
    pub dc: DenialConstraint,
    /// Percentage of violating tuple pairs in the instance it was mined on.
    pub violation_pct: f64,
}

fn cross_pred(a: usize, op: CmpOp) -> Predicate {
    Predicate {
        lhs: Operand::Attr {
            tuple: TupleRef::T1,
            attr: a,
        },
        op,
        rhs: Operand::Attr {
            tuple: TupleRef::T2,
            attr: a,
        },
    }
}

/// Enumerates candidate two-attribute DCs: the FD `A → B` for every ordered
/// pair, and both discordance DCs `¬(A↑ ∧ B↓)` / `¬(A↑ ∧ B↑)` for every
/// unordered numeric pair.
pub fn candidate_dcs(schema: &Schema) -> Vec<DenialConstraint> {
    let k = schema.len();
    let mut out = Vec::new();
    for a in 0..k {
        for b in 0..k {
            if a == b {
                continue;
            }
            out.push(DenialConstraint::new(
                format!("fd_{}_{}", schema.attr(a).name, schema.attr(b).name),
                vec![cross_pred(a, CmpOp::Eq), cross_pred(b, CmpOp::Ne)],
                Hardness::Soft,
            ));
        }
    }
    for a in 0..k {
        if schema.attr(a).is_categorical() {
            continue;
        }
        for b in (a + 1)..k {
            if schema.attr(b).is_categorical() {
                continue;
            }
            out.push(DenialConstraint::new(
                format!("ord_{}_{}_disc", schema.attr(a).name, schema.attr(b).name),
                vec![cross_pred(a, CmpOp::Gt), cross_pred(b, CmpOp::Lt)],
                Hardness::Soft,
            ));
            out.push(DenialConstraint::new(
                format!("ord_{}_{}_conc", schema.attr(a).name, schema.attr(b).name),
                vec![cross_pred(a, CmpOp::Gt), cross_pred(b, CmpOp::Gt)],
                Hardness::Soft,
            ));
        }
    }
    out
}

/// Discovers up to `n` approximate DCs with violation percentage at most
/// `max_violation_pct`, ordered from most to least exact. When fewer than
/// `n` candidates pass the cutoff, the best-failing candidates are appended
/// so that DC-scaling experiments can always reach the requested count (the
/// extra constraints are legitimately *soft*).
pub fn discover_approximate_dcs(
    schema: &Schema,
    inst: &Instance,
    n: usize,
    max_violation_pct: f64,
) -> Vec<DiscoveredDc> {
    let mut scored: Vec<DiscoveredDc> = candidate_dcs(schema)
        .into_iter()
        .map(|dc| {
            let violation_pct = violation_percentage(&dc, inst);
            DiscoveredDc { dc, violation_pct }
        })
        .collect();
    scored.sort_by(|x, y| {
        x.violation_pct
            .total_cmp(&y.violation_pct)
            .then_with(|| x.dc.name.cmp(&y.dc.name))
    });
    let passing = scored
        .iter()
        .take_while(|d| d.violation_pct <= max_violation_pct)
        .count();
    scored.truncate(passing.max(n.min(scored.len())));
    scored.truncate(n);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_data::{Attribute, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::categorical_indexed("b", 3).unwrap(),
            Attribute::numeric("x", 0.0, 10.0, 5).unwrap(),
            Attribute::numeric("y", 0.0, 10.0, 5).unwrap(),
        ])
        .unwrap()
    }

    /// a determines b exactly; x and y move together.
    fn inst(s: &Schema) -> Instance {
        let rows: Vec<Vec<Value>> = (0..30)
            .map(|i| {
                let a = (i % 3) as u32;
                let x = (i % 10) as f64;
                vec![
                    Value::Cat(a),
                    Value::Cat(a),
                    Value::Num(x),
                    Value::Num(x / 2.0),
                ]
            })
            .collect();
        Instance::from_rows(s, &rows).unwrap()
    }

    #[test]
    fn candidate_enumeration_counts() {
        let s = schema();
        // 4·3 ordered FD pairs + 1 numeric unordered pair × 2 order DCs
        assert_eq!(candidate_dcs(&s).len(), 12 + 2);
    }

    #[test]
    fn discovers_planted_fd_first() {
        let s = schema();
        let d = inst(&s);
        let found = discover_approximate_dcs(&s, &d, 8, 0.5);
        assert_eq!(found.len(), 8);
        // the exact constraints come out with zero violations
        let exact: Vec<&str> = found
            .iter()
            .filter(|f| f.violation_pct == 0.0)
            .map(|f| f.dc.name.as_str())
            .collect();
        assert!(
            exact.contains(&"fd_a_b"),
            "planted FD a→b not discovered: {exact:?}"
        );
        assert!(exact.contains(&"fd_b_a"));
        // x,y are concordant: the discordance DC ¬(x↑ ∧ y↓) holds exactly
        assert!(exact.contains(&"ord_x_y_disc"));
    }

    #[test]
    fn results_sorted_by_violation_rate() {
        let s = schema();
        let d = inst(&s);
        let found = discover_approximate_dcs(&s, &d, 10, 100.0);
        for w in found.windows(2) {
            assert!(w[0].violation_pct <= w[1].violation_pct);
        }
    }

    #[test]
    fn can_overshoot_cutoff_to_reach_n() {
        let s = schema();
        let d = inst(&s);
        // a tight cutoff admits few DCs, but we still get n of them
        let found = discover_approximate_dcs(&s, &d, 8, 0.0);
        assert_eq!(found.len(), 8);
        // requesting more than exist returns all candidates
        let all = discover_approximate_dcs(&s, &d, 1000, 100.0);
        assert_eq!(all.len(), candidate_dcs(&s).len());
    }

    #[test]
    fn discovered_dcs_are_soft() {
        let s = schema();
        let d = inst(&s);
        for f in discover_approximate_dcs(&s, &d, 5, 100.0) {
            assert_eq!(f.dc.hardness, Hardness::Soft);
        }
    }
}
