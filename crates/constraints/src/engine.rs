//! Full-instance violation counting.
//!
//! These functions implement the paper's violation set `V(φ, D)`:
//! * unary DCs — the set of tuples making all predicates true;
//! * binary DCs — the set of *unordered tuple pairs* `{i, j}` such that
//!   some orientation `(t_i, t_j)` makes all predicates true. This matches
//!   Metric I (§7.1), which reports `100·|V(φ, D)| / C(n, 2)`.
//!
//! Counting dispatches on DC shape:
//! * FD-shaped DCs count in O(n) by grouping on the determinant;
//! * DCs of the shape `equalities ∧ (A strict-op) ∧ (B strict-op)` (e.g.
//!   φ₂ᵃ, φ₆ᵗ) count in O(n log n) with a Fenwick tree per equality group;
//! * everything else falls back to the exact O(n²) pair scan — the
//!   complexity the paper itself states for general binary DCs.

use std::collections::HashMap;

use kamino_data::{Instance, Value};

use crate::ast::{CmpOp, DenialConstraint};

/// Stable hashable key for a cell value. Keys are only ever compared
/// within a single attribute, whose values are all of one kind, so no
/// cross-kind tag is needed (an earlier version OR-ed tag bits into the
/// float pattern, which collided 0.0 with 2.0 — caught by the workspace
/// property tests).
#[inline]
pub(crate) fn value_key(v: Value) -> u64 {
    match v {
        Value::Cat(c) => c as u64,
        Value::Num(x) => {
            // Normalize -0.0 to 0.0 so equal numbers share a key.
            let x = if x == 0.0 { 0.0 } else { x };
            x.to_bits()
        }
    }
}

/// Number of tuples violating a unary DC.
///
/// # Panics
/// Panics if `dc` is binary.
pub fn count_unary_violations(dc: &DenialConstraint, inst: &Instance) -> u64 {
    assert!(
        !dc.is_binary(),
        "count_unary_violations called with a binary DC"
    );
    let mut count = 0;
    for i in 0..inst.n_rows() {
        if dc.violated_by_tuple(|a| inst.value(i, a)) {
            count += 1;
        }
    }
    count
}

/// Number of unordered tuple pairs violating a binary DC (in either
/// orientation).
///
/// # Panics
/// Panics if `dc` is unary.
pub fn count_violating_pairs(dc: &DenialConstraint, inst: &Instance) -> u64 {
    assert!(
        dc.is_binary(),
        "count_violating_pairs called with a unary DC"
    );
    if let Some(fd) = dc.as_fd() {
        return fd_violating_pairs(&fd.lhs, fd.rhs, inst);
    }
    if let Some(shape) = OrderShape::recognize(dc) {
        return shape.count_pairs(inst);
    }
    naive_violating_pairs(dc, inst)
}

fn naive_violating_pairs(dc: &DenialConstraint, inst: &Instance) -> u64 {
    let n = inst.n_rows();
    let mut count = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            if dc.violated_by_pair(&|a| inst.value(i, a), &|a| inst.value(j, a)) {
                count += 1;
            }
        }
    }
    count
}

/// O(n) FD pair counting: for groups with equal determinant values, pairs
/// that disagree on the dependent violate. `Σ_g [C(g,2) − Σ_v C(c_v,2)]`.
fn fd_violating_pairs(lhs: &[usize], rhs: usize, inst: &Instance) -> u64 {
    let mut groups: HashMap<Vec<u64>, HashMap<u64, u64>> = HashMap::new();
    for i in 0..inst.n_rows() {
        let key: Vec<u64> = lhs.iter().map(|&a| value_key(inst.value(i, a))).collect();
        *groups
            .entry(key)
            .or_default()
            .entry(value_key(inst.value(i, rhs)))
            .or_insert(0) += 1;
    }
    let choose2 = |m: u64| m * m.saturating_sub(1) / 2;
    groups
        .values()
        .map(|by_rhs| {
            let g: u64 = by_rhs.values().sum();
            choose2(g) - by_rhs.values().map(|&c| choose2(c)).sum::<u64>()
        })
        .sum()
}

/// Per-tuple violation counts `V(φ, t_i | D − {t_i})`: for binary DCs the
/// number of partner tuples forming a violating pair with `t_i`; for unary
/// DCs 1 if `t_i` itself violates, else 0. This is the column of the
/// violation matrix Algorithm 5 builds.
pub fn per_tuple_violations(dc: &DenialConstraint, inst: &Instance) -> Vec<u64> {
    let n = inst.n_rows();
    if !dc.is_binary() {
        return (0..n)
            .map(|i| u64::from(dc.violated_by_tuple(|a| inst.value(i, a))))
            .collect();
    }
    if let Some(fd) = dc.as_fd() {
        // partner count = group size − tuples sharing the dependent value
        let mut groups: HashMap<Vec<u64>, HashMap<u64, u64>> = HashMap::new();
        let mut keys = Vec::with_capacity(n);
        for i in 0..n {
            let key: Vec<u64> = fd
                .lhs
                .iter()
                .map(|&a| value_key(inst.value(i, a)))
                .collect();
            let rv = value_key(inst.value(i, fd.rhs));
            *groups
                .entry(key.clone())
                .or_default()
                .entry(rv)
                .or_insert(0) += 1;
            keys.push((key, rv));
        }
        return keys
            .into_iter()
            .map(|(key, rv)| {
                let by_rhs = &groups[&key];
                let g: u64 = by_rhs.values().sum();
                g - by_rhs[&rv]
            })
            .collect();
    }
    let mut counts = vec![0u64; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dc.violated_by_pair(&|a| inst.value(i, a), &|a| inst.value(j, a)) {
                counts[i] += 1;
                counts[j] += 1;
            }
        }
    }
    counts
}

/// Metric I: percentage of violating tuple pairs (binary DCs) or violating
/// tuples (unary DCs). Returns 0 for instances too small to form a pair.
pub fn violation_percentage(dc: &DenialConstraint, inst: &Instance) -> f64 {
    let n = inst.n_rows() as u64;
    if dc.is_binary() {
        if n < 2 {
            return 0.0;
        }
        let pairs = n * (n - 1) / 2;
        100.0 * count_violating_pairs(dc, inst) as f64 / pairs as f64
    } else {
        if n == 0 {
            return 0.0;
        }
        100.0 * count_unary_violations(dc, inst) as f64 / n as f64
    }
}

/// Recognized shape: optional cross-tuple equality predicates on the same
/// attribute, plus exactly two strict order predicates
/// `t1[A] op_a t2[A] ∧ t1[B] op_b t2[B]` with `op ∈ {<, >}` and `A ≠ B`.
pub(crate) struct OrderShape {
    eq_attrs: Vec<usize>,
    attr_a: usize,
    op_a: CmpOp,
    attr_b: usize,
    op_b: CmpOp,
}

impl OrderShape {
    pub(crate) fn recognize(dc: &DenialConstraint) -> Option<OrderShape> {
        let so = dc.as_strict_order()?;
        Some(OrderShape {
            eq_attrs: so.eq_attrs,
            attr_a: so.a.0,
            op_a: so.a.1,
            attr_b: so.b.0,
            op_b: so.b.1,
        })
    }

    /// Counts unordered violating pairs in O(n log n) per equality group.
    ///
    /// Canonicalize so that within a pair, `u` is the row with the strictly
    /// larger `A` value; a violation occurs iff `b_u CMP b_v` where `CMP` is
    /// `op_b` when `op_a = >`, or the flip of `op_b` when `op_a = <`
    /// (swapping the roles of `t1`/`t2`). Strictness means equal-`A` or
    /// equal-`B` pairs never violate, so each violating unordered pair is
    /// counted exactly once.
    pub(crate) fn count_pairs(&self, inst: &Instance) -> u64 {
        let n = inst.n_rows();
        let mut groups: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let key: Vec<u64> = self
                .eq_attrs
                .iter()
                .map(|&a| value_key(inst.value(i, a)))
                .collect();
            groups.entry(key).or_default().push(i);
        }
        let larger_b_means_violation = match (self.op_a, self.op_b) {
            (CmpOp::Gt, op) => op == CmpOp::Lt, // u has larger a; need b_u op b_v
            (CmpOp::Lt, op) => op == CmpOp::Gt, // u plays t2; flip
            _ => unreachable!("recognize() only admits strict ops"),
        };
        // `larger_b_means_violation == true`  ⇒ violation iff b_u < b_v
        // (the larger-a row has the *smaller* b) — count inserted rows with
        // b strictly greater; otherwise count strictly smaller.
        let mut total = 0u64;
        for rows in groups.values() {
            total += self.count_group(inst, rows, larger_b_means_violation);
        }
        total
    }

    fn count_group(&self, inst: &Instance, rows: &[usize], count_greater: bool) -> u64 {
        // Sort by a ascending; process tie-blocks of equal a together.
        let mut order: Vec<usize> = rows.to_vec();
        order.sort_by(|&i, &j| {
            inst.value(i, self.attr_a)
                .compare(inst.value(j, self.attr_a))
        });
        // Coordinate-compress b.
        let mut bs: Vec<Value> = rows.iter().map(|&i| inst.value(i, self.attr_b)).collect();
        bs.sort_by(|x, y| x.compare(*y));
        bs.dedup_by(|x, y| x.compare(*y) == std::cmp::Ordering::Equal);
        let rank = |v: Value| -> usize {
            bs.partition_point(|&x| x.compare(v) == std::cmp::Ordering::Less)
        };
        let mut bit = Fenwick::new(bs.len());
        let mut total = 0u64;
        let mut idx = 0;
        while idx < order.len() {
            // Identify the tie-block [idx, end) of equal a-values.
            let mut end = idx + 1;
            let a_val = inst.value(order[idx], self.attr_a);
            while end < order.len()
                && inst.value(order[end], self.attr_a).compare(a_val) == std::cmp::Ordering::Equal
            {
                end += 1;
            }
            // Query the whole block against strictly-smaller-a rows...
            for &i in &order[idx..end] {
                let r = rank(inst.value(i, self.attr_b));
                total += if count_greater {
                    bit.total() - bit.prefix(r + 1) // strictly greater b
                } else {
                    bit.prefix(r) // strictly smaller b
                };
            }
            // ...then insert the block.
            for &i in &order[idx..end] {
                bit.add(rank(inst.value(i, self.attr_b)));
            }
            idx = end;
        }
        total
    }
}

/// Minimal Fenwick (binary indexed) tree over counts.
pub(crate) struct Fenwick {
    tree: Vec<u64>,
    total: u64,
}

impl Fenwick {
    pub(crate) fn new(n: usize) -> Fenwick {
        Fenwick {
            tree: vec![0; n + 1],
            total: 0,
        }
    }

    /// Adds one occurrence at 0-based position `i`.
    pub(crate) fn add(&mut self, i: usize) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
        self.total += 1;
    }

    /// Count of occurrences at positions `< i` (0-based exclusive bound).
    pub(crate) fn prefix(&self, i: usize) -> u64 {
        let mut i = i.min(self.tree.len() - 1);
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Total inserted count.
    pub(crate) fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Hardness;
    use crate::parser::parse_dc;
    use kamino_data::{Attribute, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("edu", 4).unwrap(),
            Attribute::integer("edu_num", 1.0, 16.0, 16).unwrap(),
            Attribute::numeric("gain", 0.0, 100.0, 10).unwrap(),
            Attribute::numeric("loss", 0.0, 100.0, 10).unwrap(),
            Attribute::categorical_indexed("state", 3).unwrap(),
        ])
        .unwrap()
    }

    fn inst(s: &Schema, rows: &[(u32, f64, f64, f64, u32)]) -> Instance {
        let rows: Vec<Vec<Value>> = rows
            .iter()
            .map(|&(e, en, g, l, st)| {
                vec![
                    Value::Cat(e),
                    Value::Num(en),
                    Value::Num(g),
                    Value::Num(l),
                    Value::Cat(st),
                ]
            })
            .collect();
        Instance::from_rows(s, &rows).unwrap()
    }

    #[test]
    fn fd_pair_counting_matches_naive() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "fd",
            "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
            Hardness::Hard,
        )
        .unwrap();
        // group edu=0: edu_num 10,10,12 → 2 violating pairs; edu=1: 10,11 → 1
        let d = inst(
            &s,
            &[
                (0, 10.0, 0.0, 0.0, 0),
                (0, 10.0, 0.0, 0.0, 0),
                (0, 12.0, 0.0, 0.0, 0),
                (1, 10.0, 0.0, 0.0, 0),
                (1, 11.0, 0.0, 0.0, 0),
            ],
        );
        assert_eq!(count_violating_pairs(&dc, &d), 3);
        assert_eq!(naive_violating_pairs(&dc, &d), 3);
        assert!((violation_percentage(&dc, &d) - 100.0 * 3.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn order_dc_fast_path_matches_naive() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "ord",
            "!(t1.gain > t2.gain & t1.loss < t2.loss)",
            Hardness::Hard,
        )
        .unwrap();
        let d = inst(
            &s,
            &[
                (0, 0.0, 10.0, 1.0, 0),
                (0, 0.0, 5.0, 9.0, 0),
                (0, 0.0, 7.0, 7.0, 0),
                (0, 0.0, 10.0, 1.0, 0), // ties with r0 on both: no violation
                (0, 0.0, 1.0, 0.5, 0),  // smallest on both: no violation
            ],
        );
        // violating pairs: {0,1}, {0,2}, {1,2}, {1,3}, {2,3}
        let fast = count_violating_pairs(&dc, &d);
        let naive = naive_violating_pairs(&dc, &d);
        assert_eq!(fast, naive);
        assert_eq!(fast, 5);
    }

    #[test]
    fn grouped_order_dc_matches_naive() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "tax6",
            "!(t1.state == t2.state & t1.gain > t2.gain & t1.loss < t2.loss)",
            Hardness::Hard,
        )
        .unwrap();
        let d = inst(
            &s,
            &[
                (0, 0.0, 10.0, 1.0, 0),
                (0, 0.0, 5.0, 9.0, 0), // same state as r0: violating pair
                (0, 0.0, 10.0, 1.0, 1),
                (0, 0.0, 5.0, 9.0, 2), // different states: no violation
            ],
        );
        assert!(OrderShape::recognize(&dc).is_some());
        assert_eq!(
            count_violating_pairs(&dc, &d),
            naive_violating_pairs(&dc, &d)
        );
        assert_eq!(count_violating_pairs(&dc, &d), 1);
    }

    #[test]
    fn non_strict_order_uses_naive_and_counts_correctly() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "ns",
            "!(t1.gain >= t2.gain & t1.loss <= t2.loss)",
            Hardness::Soft,
        )
        .unwrap();
        assert!(OrderShape::recognize(&dc).is_none());
        let d = inst(&s, &[(0, 0.0, 5.0, 5.0, 0), (0, 0.0, 5.0, 5.0, 0)]);
        // equal rows satisfy >= and <= in both orientations
        assert_eq!(count_violating_pairs(&dc, &d), 1);
    }

    #[test]
    fn unary_counting() {
        let s = schema();
        let dc = parse_dc(&s, "u", "!(t1.edu_num < 5 & t1.gain > 90)", Hardness::Hard).unwrap();
        let d = inst(
            &s,
            &[
                (0, 3.0, 95.0, 0.0, 0), // violates
                (0, 3.0, 10.0, 0.0, 0),
                (0, 10.0, 95.0, 0.0, 0),
                (0, 1.0, 99.0, 0.0, 0), // violates
            ],
        );
        assert_eq!(count_unary_violations(&dc, &d), 2);
        assert!((violation_percentage(&dc, &d) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn per_tuple_violations_fd() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "fd",
            "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
            Hardness::Hard,
        )
        .unwrap();
        let d = inst(
            &s,
            &[
                (0, 10.0, 0.0, 0.0, 0),
                (0, 10.0, 0.0, 0.0, 0),
                (0, 12.0, 0.0, 0.0, 0),
                (1, 9.0, 0.0, 0.0, 0),
            ],
        );
        // r0,r1 each conflict with r2; r2 conflicts with both; r3 alone
        assert_eq!(per_tuple_violations(&dc, &d), vec![1, 1, 2, 0]);
    }

    #[test]
    fn per_tuple_violations_general_binary_and_unary() {
        let s = schema();
        let ord = parse_dc(
            &s,
            "ord",
            "!(t1.gain > t2.gain & t1.loss < t2.loss)",
            Hardness::Soft,
        )
        .unwrap();
        let d = inst(
            &s,
            &[
                (0, 0.0, 10.0, 1.0, 0),
                (0, 0.0, 5.0, 9.0, 0),
                (0, 0.0, 1.0, 10.0, 0),
            ],
        );
        // pairs (0,1), (0,2), (1,2) all violate
        assert_eq!(per_tuple_violations(&ord, &d), vec![2, 2, 2]);
        let u = parse_dc(&s, "u", "!(t1.gain > 90)", Hardness::Soft).unwrap();
        let d2 = inst(&s, &[(0, 0.0, 95.0, 0.0, 0), (0, 0.0, 5.0, 0.0, 0)]);
        assert_eq!(per_tuple_violations(&u, &d2), vec![1, 0]);
    }

    #[test]
    fn empty_and_singleton_instances() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "fd",
            "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
            Hardness::Hard,
        )
        .unwrap();
        let empty = Instance::empty(&s);
        assert_eq!(count_violating_pairs(&dc, &empty), 0);
        assert_eq!(violation_percentage(&dc, &empty), 0.0);
        let single = inst(&s, &[(0, 10.0, 0.0, 0.0, 0)]);
        assert_eq!(count_violating_pairs(&dc, &single), 0);
        assert_eq!(violation_percentage(&dc, &single), 0.0);
    }

    #[test]
    fn fenwick_prefix_counts() {
        let mut f = Fenwick::new(5);
        f.add(0);
        f.add(2);
        f.add(2);
        f.add(4);
        assert_eq!(f.total(), 4);
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(1), 1);
        assert_eq!(f.prefix(3), 3);
        assert_eq!(f.prefix(5), 4);
        // out-of-range queries clamp
        assert_eq!(f.prefix(99), 4);
    }

    #[test]
    fn value_key_injective_within_kind() {
        assert_eq!(value_key(Value::Num(0.0)), value_key(Value::Num(-0.0)));
        assert_ne!(value_key(Value::Num(1.0)), value_key(Value::Num(2.0)));
        // the regression that motivated dropping the tag bits:
        assert_ne!(value_key(Value::Num(0.0)), value_key(Value::Num(2.0)));
        assert_ne!(value_key(Value::Num(1.0)), value_key(Value::Num(-1.0)));
        assert_ne!(value_key(Value::Cat(3)), value_key(Value::Cat(4)));
    }
}
