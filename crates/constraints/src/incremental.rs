//! Incremental violation counting for the sampler.
//!
//! Equation (3) of the paper decomposes `|V(φ, D)|` into per-tuple
//! increments `|V(φ, t_i | D_:i)|` — the number of *new* violations tuple
//! `t_i` introduces against the prefix `D_:i = [t_1, …, t_{i−1}]`.
//! Algorithm 3 evaluates this quantity for *every candidate value* of every
//! cell, so it must be cheap. [`DcCounter`] maintains the prefix state and
//! answers:
//!
//! * unary DCs in O(1) (evaluate the candidate row alone),
//! * FD-shaped DCs in ~O(1) via a hash index keyed on the determinant
//!   (`group size − #rows sharing the candidate's dependent value`), which
//!   also powers the hard-FD lookup optimization of §7.3.6,
//! * anything else by an exact scan of stored prefix rows (restricted to
//!   `A_φ`), matching the paper's stated O(n) per-candidate complexity for
//!   general binary DCs.
//!
//! ## Read/write split
//!
//! The state is layered so the read path can run concurrently:
//!
//! * [`FdIndex`] and [`ScanIndex`] are the **prefix indexes**. All scoring
//!   entry points take `&self` — an index is immutable for the entire
//!   duration of a scoring pass, so any number of threads may score
//!   candidates against it at once.
//! * [`DcCounter`] owns an index and adds the **mutation API**
//!   ([`DcCounter::insert`] / [`DcCounter::remove`], used when a cell is
//!   committed or MCMC re-opens one). Between mutations it hands out
//!   [`DcScorer`] — a `Copy` read-only view — and answers batch queries
//!   via [`DcCounter::score_candidates`].
//!
//! Counters support [`DcCounter::remove`] so the constrained MCMC step
//! (Algorithm 3 line 12) can take one tuple out, re-sample its cell
//! conditioned on all others, and re-insert it.

use std::collections::HashMap;

use kamino_data::{Instance, Value};

use crate::ast::{CmpOp, DenialConstraint, Fd};
use crate::engine::value_key;

/// A view of one tuple where the `target` attribute takes a hypothetical
/// `value` and every other attribute reads from the (partially filled)
/// instance. This is the "what if `t_i[S[j]] = v`" row of Algorithm 3.
#[derive(Clone, Copy)]
pub struct CandidateRow<'a> {
    inst: &'a Instance,
    row: usize,
    target: usize,
    value: Value,
}

impl<'a> CandidateRow<'a> {
    /// Builds a candidate view of `row` with `target` hypothetically set to
    /// `value`.
    pub fn new(inst: &'a Instance, row: usize, target: usize, value: Value) -> CandidateRow<'a> {
        CandidateRow {
            inst,
            row,
            target,
            value,
        }
    }

    /// Builds a view of `row` exactly as currently stored (used when
    /// inserting a finalized row, or removing it for MCMC).
    pub fn committed(inst: &'a Instance, row: usize, target: usize) -> CandidateRow<'a> {
        let value = inst.value(row, target);
        CandidateRow {
            inst,
            row,
            target,
            value,
        }
    }

    /// Value of `attr` under the hypothesis.
    #[inline]
    pub fn get(&self, attr: usize) -> Value {
        if attr == self.target {
            self.value
        } else {
            self.inst.value(self.row, attr)
        }
    }

    /// The row index this candidate describes.
    #[inline]
    pub fn row(&self) -> usize {
        self.row
    }

    /// The hypothetical value.
    #[inline]
    pub fn value(&self) -> Value {
        self.value
    }
}

/// The cell a scoring pass is about: row `row` of `inst` at attribute
/// `target`, with every *other* attribute read from the partially filled
/// instance. Pair it with a candidate value via [`CellContext::with`] to
/// get the [`CandidateRow`] hypothesis for that value.
#[derive(Clone, Copy)]
pub struct CellContext<'a> {
    inst: &'a Instance,
    row: usize,
    target: usize,
}

impl<'a> CellContext<'a> {
    /// Describes the cell at (`row`, `target`) of `inst`.
    pub fn new(inst: &'a Instance, row: usize, target: usize) -> CellContext<'a> {
        CellContext { inst, row, target }
    }

    /// The hypothesis "this cell takes value `v`".
    #[inline]
    pub fn with(&self, v: Value) -> CandidateRow<'a> {
        CandidateRow::new(self.inst, self.row, self.target, v)
    }

    /// The attribute being sampled.
    #[inline]
    pub fn target(&self) -> usize {
        self.target
    }

    /// The row being filled.
    #[inline]
    pub fn row(&self) -> usize {
        self.row
    }
}

/// One determinant group of an [`FdIndex`].
///
/// The dependent-value tally is a small linear-searched vector rather than
/// a hash map: groups almost always carry a handful of distinct dependents
/// (exactly one, for clean data), so a contiguous scan beats hashing and
/// keeps batch scoring walking adjacent memory. Every query over `by_rhs`
/// is iteration-order independent (sums, a `len == 1` check, and a
/// totally tie-broken max), so the `swap_remove` used on removal cannot
/// change any answer.
#[derive(Default)]
struct FdGroup {
    total: u64,
    /// (dependent value key, count, a representative `Value`)
    by_rhs: Vec<(u64, u64, Value)>,
}

impl FdGroup {
    fn count_of(&self, rhs_key: u64) -> u64 {
        self.by_rhs
            .iter()
            .find(|e| e.0 == rhs_key)
            .map_or(0, |e| e.1)
    }

    fn bump(&mut self, rhs_key: u64, repr: Value, by: u64) {
        match self.by_rhs.iter_mut().find(|e| e.0 == rhs_key) {
            Some(e) => e.1 += by,
            None => self.by_rhs.push((rhs_key, by, repr)),
        }
    }

    fn decr(&mut self, rhs_key: u64) {
        let i = self
            .by_rhs
            .iter()
            .position(|e| e.0 == rhs_key)
            .expect("removing an uninserted dependent");
        self.by_rhs[i].1 -= 1;
        if self.by_rhs[i].1 == 0 {
            self.by_rhs.swap_remove(i);
        }
    }

    fn absorb(&mut self, other: FdGroup) {
        self.total += other.total;
        for (rhs_key, count, repr) in other.by_rhs {
            self.bump(rhs_key, repr, count);
        }
    }
}

/// Determinant keys below this bound use the dense slot table.
/// Single-attribute categorical determinants produce their category code
/// as the key, so any realistic domain fits; numeric determinants produce
/// `f64` bit patterns and fall through to the map on first insert.
const DENSE_KEY_LIMIT: u64 = 4096;

/// Widest determinant probed with a stack key buffer; wider (never seen in
/// practice) falls back to a heap key.
const MAX_INLINE_LHS: usize = 8;

/// Group storage of an [`FdIndex`].
enum GroupTable {
    /// Dense fast path: single-attribute determinant with small value
    /// keys — groups live in a flat slot vector indexed directly by key,
    /// so a probe is one bounds check and one pointer chase.
    Dense(Vec<Option<FdGroup>>),
    /// General case: hash map keyed by the full determinant tuple.
    /// Probes borrow the key as `&[u64]` (stack buffer), so the read path
    /// never allocates.
    Map(HashMap<Vec<u64>, FdGroup>),
}

/// Runs `f` on the determinant key of `cand`, built in a stack buffer for
/// realistic determinant widths.
fn with_fd_key<R>(fd: &Fd, cand: &CandidateRow<'_>, f: impl FnOnce(&[u64]) -> R) -> R {
    if fd.lhs.len() <= MAX_INLINE_LHS {
        let mut buf = [0u64; MAX_INLINE_LHS];
        for (b, &a) in buf.iter_mut().zip(&fd.lhs) {
            *b = value_key(cand.get(a));
        }
        f(&buf[..fd.lhs.len()])
    } else {
        let key: Vec<u64> = fd.lhs.iter().map(|&a| value_key(cand.get(a))).collect();
        f(&key)
    }
}

/// Immutable-at-scoring-time prefix index for an FD `X → B`: a dense slot
/// table for small single-attribute determinants (the common case — one
/// array index per probe), falling back to a hash index keyed on the full
/// determinant tuple for wide domains. Every method takes `&self`;
/// mutation goes through the owning [`DcCounter`].
pub struct FdIndex {
    fd: Fd,
    table: GroupTable,
    n_rows: usize,
}

impl FdIndex {
    fn new(fd: Fd) -> FdIndex {
        let table = if fd.lhs.len() == 1 {
            GroupTable::Dense(Vec::new())
        } else {
            GroupTable::Map(HashMap::new())
        };
        FdIndex {
            fd,
            table,
            n_rows: 0,
        }
    }

    /// The candidate's determinant group, if any. Allocation-free.
    fn group(&self, cand: &CandidateRow<'_>) -> Option<&FdGroup> {
        match &self.table {
            GroupTable::Dense(slots) => {
                let k = value_key(cand.get(self.fd.lhs[0]));
                usize::try_from(k)
                    .ok()
                    .and_then(|i| slots.get(i))
                    .and_then(|s| s.as_ref())
            }
            GroupTable::Map(map) => with_fd_key(&self.fd, cand, |key| map.get(key)),
        }
    }

    /// Moves every dense slot into the fallback map (triggered by the
    /// first determinant key at or above [`DENSE_KEY_LIMIT`]).
    fn migrate_to_map(&mut self) {
        if let GroupTable::Dense(slots) = &mut self.table {
            let slots = std::mem::take(slots);
            let mut map = HashMap::new();
            for (i, slot) in slots.into_iter().enumerate() {
                if let Some(g) = slot {
                    map.insert(vec![i as u64], g);
                }
            }
            self.table = GroupTable::Map(map);
        }
    }

    /// The candidate's determinant group, created if absent.
    fn group_entry(&mut self, cand: &CandidateRow<'_>) -> &mut FdGroup {
        if matches!(self.table, GroupTable::Dense(_)) {
            let k = value_key(cand.get(self.fd.lhs[0]));
            if k < DENSE_KEY_LIMIT {
                let GroupTable::Dense(slots) = &mut self.table else {
                    unreachable!()
                };
                let i = k as usize;
                if slots.len() <= i {
                    slots.resize_with(i + 1, || None);
                }
                return slots[i].get_or_insert_with(FdGroup::default);
            }
            self.migrate_to_map();
        }
        let GroupTable::Map(map) = &mut self.table else {
            unreachable!()
        };
        let key: Vec<u64> = self
            .fd
            .lhs
            .iter()
            .map(|&a| value_key(cand.get(a)))
            .collect();
        map.entry(key).or_default()
    }

    /// New violations the candidate would introduce against the prefix.
    pub fn count_new(&self, cand: &CandidateRow<'_>) -> u64 {
        let Some(group) = self.group(cand) else {
            return 0;
        };
        group.total - group.count_of(value_key(cand.get(self.fd.rhs)))
    }

    /// The dependent value every member of the candidate's determinant
    /// group carries, if the group exists and is internally consistent
    /// (§7.3.6 hard-FD lookup).
    pub fn required_value(&self, cand: &CandidateRow<'_>) -> Option<Value> {
        let group = self.group(cand)?;
        if group.by_rhs.len() == 1 {
            Some(group.by_rhs[0].2)
        } else {
            None
        }
    }

    /// The most common dependent value in the candidate's determinant
    /// group, if the group exists. Unlike [`FdIndex::required_value`] this
    /// also answers for *inconsistent* groups — the sharded repair pass
    /// uses it to steer conflicting rows toward the majority side. Ties
    /// break on the value key so the answer never depends on storage
    /// order.
    pub fn majority_value(&self, cand: &CandidateRow<'_>) -> Option<Value> {
        let group = self.group(cand)?;
        group
            .by_rhs
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|&(_, _, v)| v)
    }

    /// The FD's dependent (right-hand-side) attribute.
    pub fn rhs(&self) -> usize {
        self.fd.rhs
    }

    fn insert(&mut self, cand: &CandidateRow<'_>) {
        let rhs = cand.get(self.fd.rhs);
        let rhs_key = value_key(rhs);
        let group = self.group_entry(cand);
        group.total += 1;
        group.bump(rhs_key, rhs, 1);
        self.n_rows += 1;
    }

    fn remove(&mut self, cand: &CandidateRow<'_>) {
        let rhs_key = value_key(cand.get(self.fd.rhs));
        match &mut self.table {
            GroupTable::Dense(slots) => {
                let k = value_key(cand.get(self.fd.lhs[0]));
                let slot = usize::try_from(k)
                    .ok()
                    .and_then(|i| slots.get_mut(i))
                    .unwrap_or_else(|| {
                        panic!("removing a row that was never inserted (unknown determinant group)")
                    });
                let Some(group) = slot.as_mut() else {
                    panic!("removing a row that was never inserted (unknown determinant group)")
                };
                group.decr(rhs_key);
                group.total -= 1;
                if group.total == 0 {
                    *slot = None;
                }
            }
            GroupTable::Map(map) => with_fd_key(&self.fd, cand, |key| {
                let Some(group) = map.get_mut(key) else {
                    panic!("removing a row that was never inserted (unknown determinant group)")
                };
                group.decr(rhs_key);
                group.total -= 1;
                if group.total == 0 {
                    map.remove(key);
                }
            }),
        }
        self.n_rows -= 1;
    }

    /// Folds `group` (keyed by `key`) into this index, keeping the dense
    /// layout when the key still fits.
    fn absorb_group(&mut self, key: &[u64], group: FdGroup) {
        if let GroupTable::Dense(slots) = &mut self.table {
            debug_assert_eq!(key.len(), 1);
            if key[0] < DENSE_KEY_LIMIT {
                let i = key[0] as usize;
                if slots.len() <= i {
                    slots.resize_with(i + 1, || None);
                }
                slots[i].get_or_insert_with(FdGroup::default).absorb(group);
                return;
            }
            self.migrate_to_map();
        }
        let GroupTable::Map(map) = &mut self.table else {
            unreachable!()
        };
        map.entry(key.to_vec()).or_default().absorb(group);
    }

    /// Absorbs another index over the *same* FD: determinant groups are
    /// summed entry-wise. Counts are additive, so the merged index answers
    /// exactly as if every row of both indexes had been inserted into one.
    /// Either side may have independently migrated to the fallback map;
    /// group keys are canonical across both layouts.
    fn merge(&mut self, other: FdIndex) {
        debug_assert_eq!(self.fd, other.fd, "merging indexes of different FDs");
        match other.table {
            GroupTable::Dense(slots) => {
                for (i, slot) in slots.into_iter().enumerate() {
                    if let Some(g) = slot {
                        self.absorb_group(&[i as u64], g);
                    }
                }
            }
            GroupTable::Map(map) => {
                for (key, g) in map {
                    self.absorb_group(&key, g);
                }
            }
        }
        self.n_rows += other.n_rows;
    }
}

/// Recognized strict-order shape for feasible-band queries:
/// `¬(eqs ∧ t1[A] opA t2[A] ∧ t1[B] opB t2[B])` with `opA, opB ∈ {<, >}`.
struct OrderInfo {
    eq_attrs: Vec<usize>,
    a: (usize, CmpOp),
    b: (usize, CmpOp),
}

fn recognize_order(dc: &DenialConstraint) -> Option<OrderInfo> {
    let so = dc.as_strict_order()?;
    Some(OrderInfo {
        eq_attrs: so.eq_attrs,
        a: so.a,
        b: so.b,
    })
}

/// Immutable-at-scoring-time prefix index for general binary DCs: stores
/// each inserted row restricted to `A_φ` in one contiguous row-major
/// table (stride = `|A_φ|`) and scores by exact scan over it — batch
/// `score_candidates` walks adjacent memory instead of chasing hash-map
/// buckets. Every method takes `&self`; mutation goes through the owning
/// [`DcCounter`].
///
/// Removal is swap-remove (a `row id → slot` side map keeps lookups O(1)),
/// so physical row order is arbitrary; every query here is a fold that is
/// independent of iteration order (violation counts sum, feasible bounds
/// are min/max), so the layout cannot change any answer.
pub struct ScanIndex {
    dc: DenialConstraint,
    attrs: Vec<usize>,
    /// Attribute id → position in `attrs`, pre-resolved so the per-pair
    /// scan loop does a direct index instead of a linear search on every
    /// operand access (`usize::MAX` marks attributes outside `A_φ`).
    pos_of: Vec<usize>,
    /// Row-major values aligned with `attrs`; slot `s` occupies
    /// `data[s * attrs.len() .. (s + 1) * attrs.len()]`.
    data: Vec<Value>,
    /// Slot → row id, parallel to the rows of `data`.
    row_ids: Vec<usize>,
    /// Row id → slot, maintained across swap-removes.
    slot_of: HashMap<usize, usize>,
    order: Option<OrderInfo>,
}

impl ScanIndex {
    fn new(dc: DenialConstraint) -> ScanIndex {
        let attrs: Vec<usize> = dc.attrs().into_iter().collect();
        let mut pos_of = vec![usize::MAX; attrs.iter().max().map_or(0, |&a| a + 1)];
        for (p, &a) in attrs.iter().enumerate() {
            pos_of[a] = p;
        }
        let order = recognize_order(&dc);
        ScanIndex {
            dc,
            attrs,
            pos_of,
            data: Vec::new(),
            row_ids: Vec::new(),
            slot_of: HashMap::new(),
            order,
        }
    }

    #[inline]
    fn pos(&self, attr: usize) -> usize {
        let p = self.pos_of.get(attr).copied().unwrap_or(usize::MAX);
        assert_ne!(p, usize::MAX, "attribute not in A_phi");
        p
    }

    /// Stored rows as `(row id, values aligned with attrs)` pairs.
    #[inline]
    fn stored_rows(&self) -> impl Iterator<Item = (usize, &[Value])> {
        self.row_ids
            .iter()
            .copied()
            .zip(self.data.chunks_exact(self.attrs.len().max(1)))
    }

    /// New violations the candidate would introduce against the prefix.
    pub fn count_new(&self, cand: &CandidateRow<'_>) -> u64 {
        let mut count = 0;
        for (row_id, stored) in self.stored_rows() {
            if row_id == cand.row() {
                continue;
            }
            let stored_get = |a: usize| stored[self.pos(a)];
            if self.dc.violated_by_pair(&stored_get, &|a| cand.get(a)) {
                count += 1;
            }
        }
        count
    }

    /// Number of prefix rows a single candidate score must visit — the
    /// work estimate batch schedulers use to decide whether parallelism
    /// pays for itself.
    pub fn len(&self) -> usize {
        self.row_ids.len()
    }

    /// Whether no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.row_ids.is_empty()
    }

    fn insert(&mut self, cand: &CandidateRow<'_>) {
        let prev = self.slot_of.insert(cand.row(), self.row_ids.len());
        assert!(prev.is_none(), "row {} inserted twice", cand.row());
        self.row_ids.push(cand.row());
        self.data.extend(self.attrs.iter().map(|&a| cand.get(a)));
    }

    fn remove(&mut self, cand: &CandidateRow<'_>) {
        let slot = self
            .slot_of
            .remove(&cand.row())
            .expect("removing a row that was never inserted");
        let stride = self.attrs.len();
        let last = self.row_ids.len() - 1;
        if slot != last {
            // move the tail row into the vacated slot
            let moved_id = self.row_ids[last];
            self.row_ids[slot] = moved_id;
            self.slot_of.insert(moved_id, slot);
            let (head, tail) = self.data.split_at_mut(last * stride);
            head[slot * stride..(slot + 1) * stride].copy_from_slice(tail);
        }
        self.row_ids.pop();
        self.data.truncate(last * stride);
    }

    /// Absorbs another index over the same DC. Row ids must be disjoint —
    /// shards partition the instance, so a collision means the caller
    /// merged overlapping shards.
    fn merge(&mut self, other: ScanIndex) {
        debug_assert_eq!(self.dc.name, other.dc.name, "merging different DCs");
        for row_id in &other.row_ids {
            let prev = self.slot_of.insert(*row_id, self.row_ids.len());
            assert!(prev.is_none(), "row {row_id} present in both shards");
            self.row_ids.push(*row_id);
        }
        self.data.extend_from_slice(&other.data);
    }

    /// Feasible interval for the `target` attribute of `cand` under a
    /// strict order DC (see [`DcCounter::feasible_range`]). Scans stored
    /// rows, accumulating the tightest closed bounds `[lo, hi]` such that
    /// any `v ∈ [lo, hi]` creates no violation with the prefix.
    pub fn feasible_range(&self, cand: &CandidateRow<'_>, target: usize) -> Option<(f64, f64)> {
        let info = self.order.as_ref()?;
        // which order predicate binds the target? the other one is known
        // from the candidate's context.
        let ((t_attr, op_t), (o_attr, op_o)) = if info.a.0 == target {
            (info.a, info.b)
        } else if info.b.0 == target {
            (info.b, info.a)
        } else {
            return None;
        };
        debug_assert_eq!(t_attr, target);
        let o_cand = cand.get(o_attr);
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        for (row_id, stored) in self.stored_rows() {
            if row_id == cand.row() {
                continue;
            }
            // equality predicates must all hold for the pair to matter
            if !info
                .eq_attrs
                .iter()
                .all(|&a| stored[self.pos(a)].compare(cand.get(a)) == std::cmp::Ordering::Equal)
            {
                continue;
            }
            let o_r = stored[self.pos(o_attr)];
            let t_r = stored[self.pos(t_attr)].as_num()?;
            // orientation (cand = t1, r = t2): forbid op_t(v, t_r) when
            // op_o(o_cand, o_r) holds
            if op_o.eval(o_cand, o_r) {
                match op_t {
                    CmpOp::Lt => lo = lo.max(t_r), // v < t_r forbidden ⇒ v ≥ t_r
                    CmpOp::Gt => hi = hi.min(t_r), // v > t_r forbidden ⇒ v ≤ t_r
                    _ => unreachable!("recognize_order admits only strict ops"),
                }
            }
            // orientation (r = t1, cand = t2): forbid op_t(t_r, v) when
            // op_o(o_r, o_cand) holds
            if op_o.eval(o_r, o_cand) {
                match op_t {
                    CmpOp::Lt => hi = hi.min(t_r), // t_r < v forbidden ⇒ v ≤ t_r
                    CmpOp::Gt => lo = lo.max(t_r), // t_r > v forbidden ⇒ v ≥ t_r
                    _ => unreachable!(),
                }
            }
        }
        if lo <= hi {
            Some((lo, hi))
        } else {
            None // the prefix itself is inconsistent for this context
        }
    }
}

/// The row-map reference twin of [`ScanIndex`]: stored rows live in
/// per-row heap allocations behind a hash map keyed by row id — the layout
/// the compact contiguous table replaced. `count_new` asks the exact same
/// question with the exact same per-pair predicate evaluation, so it must
/// return identical counts (parity-tested below); only memory layout — and
/// therefore scan speed — differs. Kept and exported so parity tests and
/// the `micro_substrates` candidate-scoring pair can pin the compact
/// layout against it.
pub struct ScanIndexRef {
    dc: DenialConstraint,
    attrs: Vec<usize>,
    rows: HashMap<usize, Vec<Value>>,
}

impl ScanIndexRef {
    /// Builds an empty reference index for `dc` (any binary shape).
    pub fn new(dc: &DenialConstraint) -> ScanIndexRef {
        ScanIndexRef {
            attrs: dc.attrs().into_iter().collect(),
            dc: dc.clone(),
            rows: HashMap::new(),
        }
    }

    /// Commits the candidate row (restricted to `A_φ`).
    pub fn insert(&mut self, cand: &CandidateRow<'_>) {
        let prev = self.rows.insert(
            cand.row(),
            self.attrs.iter().map(|&a| cand.get(a)).collect(),
        );
        assert!(prev.is_none(), "row {} inserted twice", cand.row());
    }

    /// New violations the candidate would introduce against the prefix.
    /// Hash-map iteration order is arbitrary, but the count is a sum, so
    /// the answer matches [`ScanIndex::count_new`] exactly.
    pub fn count_new(&self, cand: &CandidateRow<'_>) -> u64 {
        let mut count = 0;
        for (&row_id, stored) in &self.rows {
            if row_id == cand.row() {
                continue;
            }
            let stored_get = |a: usize| {
                stored[self
                    .attrs
                    .iter()
                    .position(|&b| b == a)
                    .expect("attribute not in A_phi")]
            };
            if self.dc.violated_by_pair(&stored_get, &|a| cand.get(a)) {
                count += 1;
            }
        }
        count
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A `Copy`, `Send + Sync` read-only view of one counter's prefix index —
/// the handle the parallel scoring substrate fans out across threads.
/// Obtained from [`DcCounter::scorer`]; lives only between mutations.
#[derive(Clone, Copy)]
pub enum DcScorer<'a> {
    /// Unary DC: stateless evaluation of the candidate row.
    Unary(&'a DenialConstraint),
    /// FD-shaped binary DC: hash-index lookups.
    Fd(&'a FdIndex),
    /// General binary DC: exact scan of the stored prefix.
    Scan(&'a ScanIndex),
}

impl DcScorer<'_> {
    /// `|V(φ, t_i | D_:i)|` if the candidate row were committed.
    pub fn count_new(&self, cand: &CandidateRow<'_>) -> u64 {
        match self {
            DcScorer::Unary(dc) => u64::from(dc.violated_by_tuple(|a| cand.get(a))),
            DcScorer::Fd(ix) => ix.count_new(cand),
            DcScorer::Scan(ix) => ix.count_new(cand),
        }
    }

    /// Hard-FD lookup value (see [`DcCounter::required_value`]).
    pub fn required_value(&self, cand: &CandidateRow<'_>) -> Option<Value> {
        match self {
            DcScorer::Fd(ix) => ix.required_value(cand),
            _ => None,
        }
    }

    /// Order-DC feasible band (see [`DcCounter::feasible_range`]).
    pub fn feasible_range(&self, cand: &CandidateRow<'_>, target: usize) -> Option<(f64, f64)> {
        match self {
            DcScorer::Scan(ix) => ix.feasible_range(cand, target),
            _ => None,
        }
    }

    /// FD dependent attribute (see [`DcCounter::fd_rhs`]).
    pub fn fd_rhs(&self) -> Option<usize> {
        match self {
            DcScorer::Fd(ix) => Some(ix.rhs()),
            _ => None,
        }
    }

    /// Prefix rows one candidate score visits (1 for O(1) counters) — the
    /// per-candidate work estimate used to decide whether to parallelize.
    pub fn scan_cost(&self) -> usize {
        match self {
            DcScorer::Scan(ix) => ix.len().max(1),
            _ => 1,
        }
    }
}

/// Incremental violation counter for one DC: a prefix index plus the
/// mutation API. See the module docs for the per-shape strategies and the
/// read/write split.
pub enum DcCounter {
    /// Unary DC: stateless evaluation of the candidate row.
    Unary(DenialConstraint),
    /// FD-shaped binary DC: hash index on the determinant.
    Fd(FdIndex),
    /// General binary DC: exact scan over stored prefix rows.
    Scan(ScanIndex),
}

impl DcCounter {
    /// Chooses the best counter implementation for `dc`.
    pub fn build(dc: &DenialConstraint) -> DcCounter {
        if !dc.is_binary() {
            return DcCounter::Unary(dc.clone());
        }
        if let Some(fd) = dc.as_fd() {
            return DcCounter::Fd(FdIndex::new(fd));
        }
        DcCounter::Scan(ScanIndex::new(dc.clone()))
    }

    /// The read-only scoring view over the current prefix index.
    pub fn scorer(&self) -> DcScorer<'_> {
        match self {
            DcCounter::Unary(dc) => DcScorer::Unary(dc),
            DcCounter::Fd(ix) => DcScorer::Fd(ix),
            DcCounter::Scan(ix) => DcScorer::Scan(ix),
        }
    }

    /// `|V(φ, t_i | D_:i)|` if the candidate row were committed: the number
    /// of new violations against currently inserted rows (for binary DCs),
    /// or whether the row itself violates (for unary DCs).
    pub fn count_new(&self, cand: &CandidateRow<'_>) -> u64 {
        self.scorer().count_new(cand)
    }

    /// Batch form of [`Self::count_new`]: the violation count for every
    /// candidate value of the cell, in input order. `&self` — the prefix
    /// index is immutable during the pass, so callers may fan this out
    /// across threads (the `score` module does exactly that across a whole
    /// counter set).
    pub fn score_candidates(&self, cell: CellContext<'_>, values: &[Value]) -> Vec<u64> {
        let scorer = self.scorer();
        values
            .iter()
            .map(|&v| scorer.count_new(&cell.with(v)))
            .collect()
    }

    /// Commits the candidate row into the prefix state.
    pub fn insert(&mut self, cand: &CandidateRow<'_>) {
        match self {
            DcCounter::Unary(_) => {}
            DcCounter::Fd(ix) => ix.insert(cand),
            DcCounter::Scan(ix) => ix.insert(cand),
        }
    }

    /// Removes a previously inserted row (its values must match what was
    /// inserted — pass a [`CandidateRow::committed`] view). Used by MCMC.
    pub fn remove(&mut self, cand: &CandidateRow<'_>) {
        match self {
            DcCounter::Unary(_) => {}
            DcCounter::Fd(ix) => ix.remove(cand),
            DcCounter::Scan(ix) => ix.remove(cand),
        }
    }

    /// For hard FDs (§7.3.6 optimization): the dependent value every member
    /// of the candidate's determinant group carries, if the group exists
    /// and is internally consistent. `None` for non-FD counters, unseen
    /// groups, or inconsistent groups.
    pub fn required_value(&self, cand: &CandidateRow<'_>) -> Option<Value> {
        self.scorer().required_value(cand)
    }

    /// For FD counters, the majority dependent value of the candidate's
    /// determinant group — defined even when the group is inconsistent
    /// (see [`FdIndex::majority_value`]). `None` for non-FD counters or
    /// unseen groups.
    pub fn majority_value(&self, cand: &CandidateRow<'_>) -> Option<Value> {
        match self {
            DcCounter::Fd(ix) => ix.majority_value(cand),
            _ => None,
        }
    }

    /// For FD counters, the dependent (right-hand-side) attribute of the
    /// FD; `None` otherwise. The sampler's hard-FD fast path only applies
    /// [`Self::required_value`] when the attribute being sampled *is* the
    /// dependent.
    pub fn fd_rhs(&self) -> Option<usize> {
        self.scorer().fd_rhs()
    }

    /// For strict-order DCs (`¬(eqs ∧ A≶ ∧ B≶)`), the closed interval of
    /// `target` values that create *no* violation against the inserted
    /// rows, given the candidate's other attribute values. `None` when the
    /// DC is not order-shaped, `target` is not one of its order attributes,
    /// or the prefix is already inconsistent for this context (the band
    /// would be empty). Unbounded sides come back as ±∞.
    ///
    /// If the inserted rows are violation-free, the band is always
    /// non-empty: for rows `r₁, r₂` with `other(r₁) ≶ other(cand) ≶
    /// other(r₂)`, consistency of `(r₁, r₂)` forces their target values to
    /// be ordered compatibly.
    pub fn feasible_range(&self, cand: &CandidateRow<'_>, target: usize) -> Option<(f64, f64)> {
        self.scorer().feasible_range(cand, target)
    }

    /// Absorbs another counter built for the **same DC** over a disjoint
    /// row-id range (a shard). The merged counter answers every query —
    /// `count_new`, `required_value`, `feasible_range` — exactly as if all
    /// rows of both counters had been inserted into one, because both
    /// index shapes keep purely additive state (FD group counts sum;
    /// scan rows union). Used by the sharded sampler to combine per-shard
    /// prefix indexes before the cross-shard repair pass.
    pub fn merge(&mut self, other: DcCounter) {
        match (self, other) {
            (DcCounter::Unary(_), DcCounter::Unary(_)) => {}
            (DcCounter::Fd(a), DcCounter::Fd(b)) => a.merge(b),
            (DcCounter::Scan(a), DcCounter::Scan(b)) => a.merge(b),
            _ => panic!("merging counters of different shapes (different DCs?)"),
        }
    }

    /// Number of rows currently inserted (0 for unary counters, which keep
    /// no state).
    pub fn len(&self) -> usize {
        match self {
            DcCounter::Unary(_) => 0,
            DcCounter::Fd(ix) => ix.n_rows,
            DcCounter::Scan(ix) => ix.len(),
        }
    }

    /// Whether no rows are inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Hardness;
    use crate::engine::count_violating_pairs;
    use crate::parser::parse_dc;
    use kamino_data::{Attribute, Instance, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("edu", 4).unwrap(),
            Attribute::integer("edu_num", 1.0, 16.0, 16).unwrap(),
            Attribute::numeric("gain", 0.0, 100.0, 10).unwrap(),
            Attribute::numeric("loss", 0.0, 100.0, 10).unwrap(),
        ])
        .unwrap()
    }

    fn inst(s: &Schema, rows: &[(u32, f64, f64, f64)]) -> Instance {
        let rows: Vec<Vec<Value>> = rows
            .iter()
            .map(|&(e, en, g, l)| vec![Value::Cat(e), Value::Num(en), Value::Num(g), Value::Num(l)])
            .collect();
        Instance::from_rows(s, &rows).unwrap()
    }

    fn fd_dc(s: &Schema) -> DenialConstraint {
        parse_dc(
            s,
            "fd",
            "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
            Hardness::Hard,
        )
        .unwrap()
    }

    fn ord_dc(s: &Schema) -> DenialConstraint {
        parse_dc(
            s,
            "ord",
            "!(t1.gain > t2.gain & t1.loss < t2.loss)",
            Hardness::Hard,
        )
        .unwrap()
    }

    /// Eqn. (3): the sum of incremental counts over the tuple sequence
    /// equals the total violation count.
    fn check_chain_rule(dc: &DenialConstraint, d: &Instance, target: usize) {
        let mut counter = DcCounter::build(dc);
        let mut incremental_sum = 0;
        for i in 0..d.n_rows() {
            let cand = CandidateRow::committed(d, i, target);
            incremental_sum += counter.count_new(&cand);
            counter.insert(&cand);
        }
        assert_eq!(
            incremental_sum,
            count_violating_pairs(dc, d),
            "chain rule violated"
        );
    }

    #[test]
    fn fd_counter_chain_rule() {
        let s = schema();
        let d = inst(
            &s,
            &[
                (0, 10.0, 0.0, 0.0),
                (0, 10.0, 0.0, 0.0),
                (0, 12.0, 0.0, 0.0),
                (1, 10.0, 0.0, 0.0),
                (1, 11.0, 0.0, 0.0),
                (0, 13.0, 0.0, 0.0),
            ],
        );
        check_chain_rule(&fd_dc(&s), &d, 1);
    }

    #[test]
    fn compact_scan_matches_rowmap_reference() {
        // The contiguous-table ScanIndex and its row-map reference twin
        // must answer every candidate count identically over the same
        // committed prefix (layout may never change an answer).
        let s = schema();
        let dc = ord_dc(&s);
        let rows: Vec<(u32, f64, f64, f64)> = (0..80)
            .map(|i| {
                let i = i as f64;
                (0, 0.0, (i * 13.0) % 97.0, (i * 7.0) % 53.0)
            })
            .collect();
        let d = inst(&s, &rows);
        let mut compact = DcCounter::build(&dc);
        let mut reference = ScanIndexRef::new(&dc);
        for i in 0..d.n_rows() - 1 {
            let cand = CandidateRow::committed(&d, i, 3);
            compact.insert(&cand);
            reference.insert(&cand);
        }
        let cell = CellContext::new(&d, d.n_rows() - 1, 3);
        for k in 0..40 {
            let cand = cell.with(Value::Num(k as f64 * 2.5));
            assert_eq!(
                compact.count_new(&cand),
                reference.count_new(&cand),
                "candidate {k} diverged from the row-map reference"
            );
        }
        assert_eq!(compact.len(), reference.len());
    }

    #[test]
    fn scan_counter_chain_rule() {
        let s = schema();
        let d = inst(
            &s,
            &[
                (0, 0.0, 10.0, 1.0),
                (0, 0.0, 5.0, 9.0),
                (0, 0.0, 7.0, 7.0),
                (0, 0.0, 10.0, 1.0),
                (0, 0.0, 2.0, 2.0),
            ],
        );
        check_chain_rule(&ord_dc(&s), &d, 3);
    }

    #[test]
    fn fd_candidate_counts() {
        let s = schema();
        let dc = fd_dc(&s);
        let d = inst(
            &s,
            &[(0, 10.0, 0.0, 0.0), (0, 10.0, 0.0, 0.0), (1, 5.0, 0.0, 0.0)],
        );
        let mut counter = DcCounter::build(&dc);
        for i in 0..3 {
            counter.insert(&CandidateRow::committed(&d, i, 1));
        }
        // hypothetical 4th row with edu=0
        let probe = inst(
            &s,
            &[
                (0, 10.0, 0.0, 0.0),
                (0, 10.0, 0.0, 0.0),
                (1, 5.0, 0.0, 0.0),
                (0, 0.0, 0.0, 0.0),
            ],
        );
        // edu_num = 10 matches the group: no new violations
        assert_eq!(
            counter.count_new(&CandidateRow::new(&probe, 3, 1, Value::Num(10.0))),
            0
        );
        // edu_num = 11 conflicts with both group members
        assert_eq!(
            counter.count_new(&CandidateRow::new(&probe, 3, 1, Value::Num(11.0))),
            2
        );
        // unseen determinant: no violations either way
        let probe2 = inst(
            &s,
            &[
                (0, 10.0, 0.0, 0.0),
                (0, 10.0, 0.0, 0.0),
                (1, 5.0, 0.0, 0.0),
                (3, 0.0, 0.0, 0.0),
            ],
        );
        assert_eq!(
            counter.count_new(&CandidateRow::new(&probe2, 3, 1, Value::Num(1.0))),
            0
        );
    }

    #[test]
    fn batch_scoring_matches_single_candidate_path() {
        let s = schema();
        let dc = fd_dc(&s);
        let d = inst(
            &s,
            &[(0, 10.0, 0.0, 0.0), (0, 10.0, 0.0, 0.0), (1, 5.0, 0.0, 0.0)],
        );
        let mut counter = DcCounter::build(&dc);
        for i in 0..3 {
            counter.insert(&CandidateRow::committed(&d, i, 1));
        }
        let probe = inst(
            &s,
            &[
                (0, 10.0, 0.0, 0.0),
                (0, 10.0, 0.0, 0.0),
                (1, 5.0, 0.0, 0.0),
                (0, 0.0, 0.0, 0.0),
            ],
        );
        let cell = CellContext::new(&probe, 3, 1);
        let values: Vec<Value> = (1..=16).map(|k| Value::Num(k as f64)).collect();
        let batch = counter.score_candidates(cell, &values);
        for (v, got) in values.iter().zip(&batch) {
            assert_eq!(*got, counter.count_new(&cell.with(*v)));
        }
        // and the same through the order-DC scan index
        let ord = ord_dc(&s);
        let d2 = inst(
            &s,
            &[
                (0, 0.0, 10.0, 1.0),
                (0, 0.0, 5.0, 9.0),
                (0, 0.0, 7.0, 7.0),
                (0, 0.0, 0.0, 0.0),
            ],
        );
        let mut scan = DcCounter::build(&ord);
        for i in 0..3 {
            scan.insert(&CandidateRow::committed(&d2, i, 3));
        }
        let cell2 = CellContext::new(&d2, 3, 3);
        let values2: Vec<Value> = (0..20).map(|k| Value::Num(k as f64)).collect();
        let batch2 = scan.score_candidates(cell2, &values2);
        for (v, got) in values2.iter().zip(&batch2) {
            assert_eq!(*got, scan.count_new(&cell2.with(*v)));
        }
    }

    #[test]
    fn scorer_view_answers_like_the_counter() {
        let s = schema();
        let dc = ord_dc(&s);
        let d = inst(
            &s,
            &[(0, 0.0, 10.0, 1.0), (0, 0.0, 5.0, 9.0), (0, 0.0, 7.0, 7.0)],
        );
        let mut counter = DcCounter::build(&dc);
        for i in 0..2 {
            counter.insert(&CandidateRow::committed(&d, i, 3));
        }
        let scorer = counter.scorer();
        let cand = CandidateRow::new(&d, 2, 3, Value::Num(7.0));
        assert_eq!(scorer.count_new(&cand), counter.count_new(&cand));
        assert_eq!(
            scorer.feasible_range(&cand, 3),
            counter.feasible_range(&cand, 3)
        );
        assert_eq!(scorer.fd_rhs(), None);
        assert_eq!(scorer.scan_cost(), 2);
        // the view is Copy + Send + Sync: fan it across threads
        let copies = [scorer; 4];
        let counts: Vec<u64> = std::thread::scope(|sc| {
            copies
                .iter()
                .map(|sv| sc.spawn(move || sv.count_new(&cand)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(counts.iter().all(|&c| c == counter.count_new(&cand)));
    }

    #[test]
    fn fd_required_value_lookup() {
        let s = schema();
        let dc = fd_dc(&s);
        let d = inst(
            &s,
            &[(0, 10.0, 0.0, 0.0), (0, 10.0, 0.0, 0.0), (1, 5.0, 0.0, 0.0)],
        );
        let mut counter = DcCounter::build(&dc);
        for i in 0..3 {
            counter.insert(&CandidateRow::committed(&d, i, 1));
        }
        let probe = inst(&s, &[(0, 0.0, 0.0, 0.0)]);
        let cand = CandidateRow::new(&probe, 0, 1, Value::Num(0.0));
        assert_eq!(counter.required_value(&cand), Some(Value::Num(10.0)));
        // inconsistent group → None
        let d2 = inst(&s, &[(2, 1.0, 0.0, 0.0), (2, 2.0, 0.0, 0.0)]);
        let mut c2 = DcCounter::build(&dc);
        for i in 0..2 {
            c2.insert(&CandidateRow::committed(&d2, i, 1));
        }
        let probe2 = inst(&s, &[(2, 0.0, 0.0, 0.0)]);
        assert_eq!(
            c2.required_value(&CandidateRow::new(&probe2, 0, 1, Value::Num(0.0))),
            None
        );
        // unseen group → None
        let probe3 = inst(&s, &[(3, 0.0, 0.0, 0.0)]);
        assert_eq!(
            c2.required_value(&CandidateRow::new(&probe3, 0, 1, Value::Num(0.0))),
            None
        );
    }

    #[test]
    fn remove_then_requery_supports_mcmc() {
        let s = schema();
        let dc = ord_dc(&s);
        let d = inst(
            &s,
            &[(0, 0.0, 10.0, 1.0), (0, 0.0, 5.0, 9.0), (0, 0.0, 7.0, 7.0)],
        );
        let mut counter = DcCounter::build(&dc);
        for i in 0..3 {
            counter.insert(&CandidateRow::committed(&d, i, 3));
        }
        // take row 1 out and ask: what if its loss were 0.5?
        counter.remove(&CandidateRow::committed(&d, 1, 3));
        assert_eq!(counter.len(), 2);
        // gain=5, loss=0.5: rows 0 (10, 1) and 2 (7, 7) both have larger
        // gain and larger loss → no violation either orientation for row 0?
        // (10 > 5 ∧ 1 < 0.5)=false, (5 > 10 ∧ 0.5 < 1)=false → ok;
        // row 2: (7 > 5 ∧ 7 < 0.5)=false, (5 > 7 ...)=false → ok.
        assert_eq!(
            counter.count_new(&CandidateRow::new(&d, 1, 3, Value::Num(0.5))),
            0
        );
        // what if loss were 20? row0: (10>5 ∧ 1<20) → violation. row2:
        // (7>5 ∧ 7<20) → violation.
        assert_eq!(
            counter.count_new(&CandidateRow::new(&d, 1, 3, Value::Num(20.0))),
            2
        );
        // reinsert the original and the state is consistent again
        counter.insert(&CandidateRow::committed(&d, 1, 3));
        assert_eq!(counter.len(), 3);
    }

    #[test]
    fn fd_remove_roundtrip() {
        let s = schema();
        let dc = fd_dc(&s);
        let d = inst(&s, &[(0, 10.0, 0.0, 0.0), (0, 12.0, 0.0, 0.0)]);
        let mut counter = DcCounter::build(&dc);
        counter.insert(&CandidateRow::committed(&d, 0, 1));
        counter.insert(&CandidateRow::committed(&d, 1, 1));
        counter.remove(&CandidateRow::committed(&d, 1, 1));
        let probe = inst(&s, &[(0, 0.0, 0.0, 0.0)]);
        assert_eq!(
            counter.count_new(&CandidateRow::new(&probe, 0, 1, Value::Num(12.0))),
            1
        );
        assert_eq!(
            counter.required_value(&CandidateRow::new(&probe, 0, 1, Value::Num(0.0))),
            Some(Value::Num(10.0))
        );
    }

    #[test]
    fn unary_counter_is_stateless() {
        let s = schema();
        let dc = parse_dc(&s, "u", "!(t1.gain > 90)", Hardness::Hard).unwrap();
        let mut counter = DcCounter::build(&dc);
        assert!(counter.is_empty());
        let d = inst(&s, &[(0, 0.0, 50.0, 0.0)]);
        assert_eq!(
            counter.count_new(&CandidateRow::new(&d, 0, 2, Value::Num(95.0))),
            1
        );
        assert_eq!(
            counter.count_new(&CandidateRow::new(&d, 0, 2, Value::Num(10.0))),
            0
        );
        counter.insert(&CandidateRow::committed(&d, 0, 2));
        assert_eq!(counter.len(), 0);
    }

    #[test]
    fn scan_counter_ignores_same_row_id() {
        // During MCMC a row may still be present while probing itself is a
        // bug; count_new must never pair a row with itself.
        let s = schema();
        let dc = ord_dc(&s);
        let d = inst(&s, &[(0, 0.0, 10.0, 1.0)]);
        let mut counter = DcCounter::build(&dc);
        counter.insert(&CandidateRow::committed(&d, 0, 3));
        assert_eq!(
            counter.count_new(&CandidateRow::new(&d, 0, 3, Value::Num(50.0))),
            0
        );
    }

    #[test]
    fn feasible_range_for_order_dc() {
        let s = schema();
        let dc = ord_dc(&s); // ¬(gain↑ ∧ loss↓): loss must be monotone in gain
                             // rows 0 and 1 are the inserted prefix; rows 2 and 3 are probes
                             // (probe row ids must differ from inserted ids, as during sampling)
        let d = inst(
            &s,
            &[
                (0, 0.0, 2.0, 10.0),
                (0, 0.0, 8.0, 30.0),
                (0, 0.0, 5.0, 0.0),
                (0, 0.0, 1.0, 0.0),
            ],
        );
        let mut counter = DcCounter::build(&dc);
        for i in 0..2 {
            counter.insert(&CandidateRow::committed(&d, i, 3));
        }
        // new row with gain = 5 (between 2 and 8): loss ∈ [10, 30]
        let cand = CandidateRow::new(&d, 2, 3, Value::Num(0.0));
        let (lo, hi) = counter.feasible_range(&cand, 3).unwrap();
        assert_eq!((lo, hi), (10.0, 30.0));
        // gain = 1 (below both): loss ∈ (−∞, 10]
        let cand2 = CandidateRow::new(&d, 3, 3, Value::Num(0.0));
        let (lo2, hi2) = counter.feasible_range(&cand2, 3).unwrap();
        assert_eq!(hi2, 10.0);
        assert_eq!(lo2, f64::NEG_INFINITY);
        // any value inside the band really is violation-free
        for v in [10.0, 20.0, 30.0] {
            assert_eq!(
                counter.count_new(&CandidateRow::new(&d, 2, 3, Value::Num(v))),
                0
            );
        }
        // and just outside, it is not
        assert!(counter.count_new(&CandidateRow::new(&d, 2, 3, Value::Num(9.0))) > 0);
        assert!(counter.count_new(&CandidateRow::new(&d, 2, 3, Value::Num(31.0))) > 0);
    }

    #[test]
    fn feasible_range_respects_equality_groups() {
        let s = schema();
        // same-edu pairs only: ¬(edu= ∧ gain↑ ∧ loss↓)
        let dc = parse_dc(
            &s,
            "grp",
            "!(t1.edu == t2.edu & t1.gain > t2.gain & t1.loss < t2.loss)",
            Hardness::Hard,
        )
        .unwrap();
        let d = inst(
            &s,
            &[(0, 0.0, 2.0, 10.0), (1, 0.0, 2.0, 99.0), (0, 0.0, 5.0, 0.0)],
        );
        let mut counter = DcCounter::build(&dc);
        for i in 0..2 {
            counter.insert(&CandidateRow::committed(&d, i, 3));
        }
        // candidate in edu group 0 with gain 5 ignores the edu-1 row
        let cand = CandidateRow::new(&d, 2, 3, Value::Num(0.0));
        let (lo, hi) = counter.feasible_range(&cand, 3).unwrap();
        assert_eq!(lo, 10.0);
        assert_eq!(hi, f64::INFINITY);
    }

    #[test]
    fn feasible_range_none_for_wrong_shapes() {
        let s = schema();
        let fd = fd_dc(&s);
        let counter = DcCounter::build(&fd);
        let d = inst(&s, &[(0, 0.0, 0.0, 0.0)]);
        let cand = CandidateRow::new(&d, 0, 1, Value::Num(0.0));
        assert!(counter.feasible_range(&cand, 1).is_none());
        // order counter asked about a non-order attribute
        let ord = DcCounter::build(&ord_dc(&s));
        assert!(ord.feasible_range(&cand, 0).is_none());
    }

    #[test]
    fn feasible_range_none_when_prefix_inconsistent() {
        let s = schema();
        let dc = ord_dc(&s);
        // rows 0 and 1 already violate each other
        let d = inst(
            &s,
            &[(0, 0.0, 2.0, 50.0), (0, 0.0, 8.0, 10.0), (0, 0.0, 5.0, 0.0)],
        );
        let mut counter = DcCounter::build(&dc);
        for i in 0..2 {
            counter.insert(&CandidateRow::committed(&d, i, 3));
        }
        let cand = CandidateRow::new(&d, 2, 3, Value::Num(0.0));
        // band would be [50, 10] — empty
        assert!(counter.feasible_range(&cand, 3).is_none());
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let s = schema();
        let dc = ord_dc(&s);
        let d = inst(&s, &[(0, 0.0, 1.0, 1.0)]);
        let mut counter = DcCounter::build(&dc);
        counter.insert(&CandidateRow::committed(&d, 0, 3));
        counter.insert(&CandidateRow::committed(&d, 0, 3));
    }
}
