//! Denial-constraint (DC) language and violation-counting engine.
//!
//! Denial constraints (§2.1 of the paper) are first-order formulas
//! `¬(P₁ ∧ … ∧ P_m)` over one tuple (unary DCs) or a pair of tuples (binary
//! DCs), where each predicate compares attribute values or constants with
//! `=, ≠, <, ≤, >, ≥`. They subsume functional dependencies (FDs) and
//! conditional FDs, and are the structure constraints Kamino preserves.
//!
//! This crate provides:
//! * the [`DenialConstraint`] AST and a text [`parser`]
//!   (`!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)`),
//! * a full-instance counting [`engine`] (violating pairs, per-tuple
//!   violation vectors for Algorithm 5's violation matrix, percentage
//!   metrics) with an O(n) fast path for FD-shaped DCs,
//! * [`incremental`] counters implementing `V(φ, t_i | D_:i)` — the quantity
//!   Algorithm 3 queries per candidate value — with a hash-index fast path
//!   for FDs and an exact scan fallback matching the paper's stated
//!   complexity,
//! * the batch candidate-[`score`] substrate: a read-only scoring view
//!   over the incremental counters that evaluates whole candidate sets at
//!   once, in parallel when the `parallel` feature (default) is enabled,
//! * approximate-DC [`discovery`] used by Experiment 8 to scale `|Φ|`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod discovery;
pub mod engine;
pub mod incremental;
pub mod parser;
pub mod score;
pub mod snapshot;

pub use ast::{CmpOp, DenialConstraint, Fd, Hardness, Operand, Predicate, StrictOrder, TupleRef};
pub use engine::{
    count_unary_violations, count_violating_pairs, per_tuple_violations, violation_percentage,
};
pub use incremental::{CandidateRow, CellContext, DcCounter, DcScorer, ScanIndexRef};
pub use parser::parse_dc;
pub use score::ScoreSet;
