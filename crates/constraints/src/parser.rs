//! Text parser for denial constraints.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! dc      := '!' '(' pred ( '&' pred )* ')'
//! pred    := operand op operand
//! operand := ('t1' | 't2') '.' attr-name
//!          | number
//!          | '\'' label '\''
//! op      := '==' | '=' | '!=' | '<=' | '>=' | '<' | '>'
//! ```
//!
//! `t1`/`t2` are the paper's `t_i`/`t_j`. A categorical constant `'label'`
//! is resolved against the domain of the attribute on the other side of the
//! predicate; a bare number is numeric. Examples:
//!
//! ```text
//! !(t1.edu == t2.edu & t1.edu_num != t2.edu_num)      -- FD edu → edu_num
//! !(t1.cap_gain > t2.cap_gain & t1.cap_loss < t2.cap_loss)
//! !(t1.age < 10 & t1.cap_gain > 1000000)              -- unary DC
//! !(t1.state == 'CA' & t1.rate > 9)                   -- conditional (CFD-like)
//! ```

use kamino_data::{AttrKind, DataError, Schema, Value};

use crate::ast::{CmpOp, DenialConstraint, Hardness, Operand, Predicate, TupleRef};

/// Parses the textual DC `text` against `schema`.
///
/// ```
/// use kamino_constraints::{parse_dc, Hardness};
/// use kamino_data::{Attribute, Schema};
///
/// let schema = Schema::new(vec![
///     Attribute::categorical_indexed("edu", 16).unwrap(),
///     Attribute::integer("edu_num", 1.0, 16.0, 16).unwrap(),
/// ]).unwrap();
/// let dc = parse_dc(
///     &schema,
///     "phi1",
///     "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
///     Hardness::Hard,
/// ).unwrap();
/// let fd = dc.as_fd().unwrap();
/// assert_eq!(schema.attr(fd.rhs).name, "edu_num");
/// ```
///
/// # Errors
/// Returns [`DataError::Parse`] on malformed syntax,
/// [`DataError::UnknownAttribute`]/[`DataError::UnknownLabel`] when names do
/// not resolve, and [`DataError::TypeMismatch`] when a predicate compares
/// incompatible kinds (e.g. a categorical attribute with `<`).
pub fn parse_dc(
    schema: &Schema,
    name: &str,
    text: &str,
    hardness: Hardness,
) -> Result<DenialConstraint, DataError> {
    let body = text.trim();
    let body = body
        .strip_prefix('!')
        .ok_or_else(|| DataError::Parse(format!("`{name}`: expected leading `!`")))?
        .trim_start();
    let body = body
        .strip_prefix('(')
        .and_then(|b| b.strip_suffix(')'))
        .ok_or_else(|| DataError::Parse(format!("`{name}`: expected parenthesized body")))?;

    let mut predicates = Vec::new();
    for raw in split_top_level(body) {
        predicates.push(parse_predicate(schema, name, raw.trim())?);
    }
    if predicates.is_empty() {
        return Err(DataError::Parse(format!("`{name}`: no predicates")));
    }
    Ok(DenialConstraint::new(name, predicates, hardness))
}

/// Splits on `&` outside of quotes.
fn split_top_level(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_quote = false;
    for (i, c) in body.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            '&' if !in_quote => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

fn parse_predicate(schema: &Schema, name: &str, raw: &str) -> Result<Predicate, DataError> {
    // Find the operator outside quotes. Two-char operators first.
    let ops: [(&str, CmpOp); 7] = [
        ("==", CmpOp::Eq),
        ("!=", CmpOp::Ne),
        ("<=", CmpOp::Le),
        (">=", CmpOp::Ge),
        ("<", CmpOp::Lt),
        (">", CmpOp::Gt),
        ("=", CmpOp::Eq),
    ];
    let mut in_quote = false;
    let bytes = raw.as_bytes();
    for i in 0..bytes.len() {
        if bytes[i] == b'\'' {
            in_quote = !in_quote;
            continue;
        }
        if in_quote {
            continue;
        }
        for (sym, op) in ops {
            if raw[i..].starts_with(sym) {
                let lhs_txt = raw[..i].trim();
                let rhs_txt = raw[i + sym.len()..].trim();
                if lhs_txt.is_empty() || rhs_txt.is_empty() {
                    return Err(DataError::Parse(format!(
                        "`{name}`: predicate `{raw}` is missing an operand"
                    )));
                }
                let (lhs, rhs) = resolve_operands(schema, name, lhs_txt, rhs_txt)?;
                check_types(schema, name, raw, &lhs, op, &rhs)?;
                return Ok(Predicate { lhs, op, rhs });
            }
        }
    }
    Err(DataError::Parse(format!(
        "`{name}`: predicate `{raw}` has no comparison operator"
    )))
}

enum RawOperand<'a> {
    Attr(TupleRef, usize),
    NumConst(f64),
    LabelConst(&'a str),
}

fn parse_operand<'a>(
    schema: &Schema,
    name: &str,
    txt: &'a str,
) -> Result<RawOperand<'a>, DataError> {
    if let Some(rest) = txt.strip_prefix("t1.").or_else(|| txt.strip_prefix("ti.")) {
        return Ok(RawOperand::Attr(
            TupleRef::T1,
            schema.index_of(rest.trim())?,
        ));
    }
    if let Some(rest) = txt.strip_prefix("t2.").or_else(|| txt.strip_prefix("tj.")) {
        return Ok(RawOperand::Attr(
            TupleRef::T2,
            schema.index_of(rest.trim())?,
        ));
    }
    if let Some(inner) = txt.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
        return Ok(RawOperand::LabelConst(inner));
    }
    txt.parse::<f64>()
        .map(RawOperand::NumConst)
        .map_err(|_| DataError::Parse(format!("`{name}`: cannot parse operand `{txt}`")))
}

fn resolve_operands(
    schema: &Schema,
    name: &str,
    lhs_txt: &str,
    rhs_txt: &str,
) -> Result<(Operand, Operand), DataError> {
    let lhs = parse_operand(schema, name, lhs_txt)?;
    let rhs = parse_operand(schema, name, rhs_txt)?;
    // Resolve label constants against the attribute on the other side.
    let attr_of = |o: &RawOperand| match o {
        RawOperand::Attr(_, a) => Some(*a),
        _ => None,
    };
    let other_attr = |this: &RawOperand, that: &RawOperand| attr_of(that).or(attr_of(this));
    let finish = |o: RawOperand, other: Option<usize>| -> Result<Operand, DataError> {
        match o {
            RawOperand::Attr(t, a) => Ok(Operand::Attr { tuple: t, attr: a }),
            RawOperand::NumConst(x) => Ok(Operand::Const(Value::Num(x))),
            RawOperand::LabelConst(label) => {
                let a = other.ok_or_else(|| {
                    DataError::Parse(format!(
                        "`{name}`: label constant '{label}' needs an attribute operand"
                    ))
                })?;
                let attr = schema.attr(a);
                let code = attr.code(label).ok_or_else(|| DataError::UnknownLabel {
                    attr: attr.name.clone(),
                    label: label.to_string(),
                })?;
                Ok(Operand::Const(Value::Cat(code)))
            }
        }
    };
    let l_other = other_attr(&lhs, &rhs);
    let r_other = other_attr(&rhs, &lhs);
    Ok((finish(lhs, l_other)?, finish(rhs, r_other)?))
}

fn kind_of<'a>(schema: &'a Schema, o: &Operand) -> Option<&'a AttrKind> {
    match o {
        Operand::Attr { attr, .. } => Some(&schema.attr(*attr).kind),
        Operand::Const(_) => None,
    }
}

fn check_types(
    schema: &Schema,
    name: &str,
    raw: &str,
    lhs: &Operand,
    op: CmpOp,
    rhs: &Operand,
) -> Result<(), DataError> {
    let l_cat = match (kind_of(schema, lhs), lhs) {
        (Some(AttrKind::Categorical { .. }), _) => Some(true),
        (Some(AttrKind::Numeric { .. }), _) => Some(false),
        (None, Operand::Const(Value::Cat(_))) => Some(true),
        (None, Operand::Const(Value::Num(_))) => Some(false),
        _ => None,
    };
    let r_cat = match (kind_of(schema, rhs), rhs) {
        (Some(AttrKind::Categorical { .. }), _) => Some(true),
        (Some(AttrKind::Numeric { .. }), _) => Some(false),
        (None, Operand::Const(Value::Cat(_))) => Some(true),
        (None, Operand::Const(Value::Num(_))) => Some(false),
        _ => None,
    };
    match (l_cat, r_cat) {
        (Some(a), Some(b)) if a != b => {
            return Err(DataError::Parse(format!(
                "`{name}`: predicate `{raw}` compares categorical and numeric operands"
            )));
        }
        _ => {}
    }
    // Ordered comparison of categorical attributes is ill-defined.
    if l_cat == Some(true) && !matches!(op, CmpOp::Eq | CmpOp::Ne) {
        return Err(DataError::Parse(format!(
            "`{name}`: predicate `{raw}` orders categorical values; only ==/!= are allowed"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_data::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("edu", vec!["HS".into(), "BS".into(), "MS".into()]).unwrap(),
            Attribute::integer("edu_num", 1.0, 16.0, 16).unwrap(),
            Attribute::numeric("cap_gain", 0.0, 1e6, 10).unwrap(),
            Attribute::numeric("cap_loss", 0.0, 1e5, 10).unwrap(),
            Attribute::integer("age", 0.0, 100.0, 20).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn parses_fd() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "phi1",
            "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
            Hardness::Hard,
        )
        .unwrap();
        assert!(dc.is_binary());
        let fd = dc.as_fd().unwrap();
        assert_eq!(fd.lhs, vec![0]);
        assert_eq!(fd.rhs, 1);
        assert_eq!(dc.hardness, Hardness::Hard);
    }

    #[test]
    fn parses_order_dc() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "phi2",
            "!(t1.cap_gain > t2.cap_gain & t1.cap_loss < t2.cap_loss)",
            Hardness::Soft,
        )
        .unwrap();
        assert!(dc.is_binary());
        assert!(dc.as_fd().is_none());
        assert_eq!(dc.predicates.len(), 2);
        assert_eq!(dc.hardness, Hardness::Soft);
    }

    #[test]
    fn parses_unary_with_constants() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "phi3",
            "!(t1.age < 10 & t1.cap_gain > 1000000)",
            Hardness::Hard,
        )
        .unwrap();
        assert!(!dc.is_binary());
        assert_eq!(dc.predicates[1].rhs, Operand::Const(Value::Num(1000000.0)));
    }

    #[test]
    fn parses_label_constant() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "cfd",
            "!(t1.edu == 'BS' & t1.edu_num < 10)",
            Hardness::Soft,
        )
        .unwrap();
        assert_eq!(dc.predicates[0].rhs, Operand::Const(Value::Cat(1)));
    }

    #[test]
    fn accepts_single_equals_and_ti_tj() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "p",
            "!(ti.edu = tj.edu & ti.edu_num != tj.edu_num)",
            Hardness::Hard,
        )
        .unwrap();
        assert!(dc.as_fd().is_some());
    }

    #[test]
    fn rejects_unknown_attribute() {
        let s = schema();
        let err = parse_dc(&s, "p", "!(t1.zzz == t2.zzz)", Hardness::Hard).unwrap_err();
        assert!(matches!(err, DataError::UnknownAttribute(_)));
    }

    #[test]
    fn rejects_unknown_label() {
        let s = schema();
        let err = parse_dc(&s, "p", "!(t1.edu == 'PhD')", Hardness::Hard).unwrap_err();
        assert!(matches!(err, DataError::UnknownLabel { .. }));
    }

    #[test]
    fn rejects_mixed_kind_comparison() {
        let s = schema();
        assert!(parse_dc(&s, "p", "!(t1.edu == t2.edu_num)", Hardness::Hard).is_err());
        assert!(parse_dc(&s, "p", "!(t1.edu == 3)", Hardness::Hard).is_err());
    }

    #[test]
    fn rejects_ordering_categoricals() {
        let s = schema();
        assert!(parse_dc(&s, "p", "!(t1.edu < t2.edu)", Hardness::Hard).is_err());
    }

    #[test]
    fn rejects_malformed_syntax() {
        let s = schema();
        assert!(parse_dc(&s, "p", "(t1.age < 10)", Hardness::Hard).is_err());
        assert!(parse_dc(&s, "p", "!t1.age < 10", Hardness::Hard).is_err());
        assert!(parse_dc(&s, "p", "!(t1.age 10)", Hardness::Hard).is_err());
        assert!(parse_dc(&s, "p", "!(t1.age <)", Hardness::Hard).is_err());
        assert!(parse_dc(&s, "p", "!()", Hardness::Hard).is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let s = schema();
        let a = parse_dc(&s, "p", "!(t1.age<10&t1.cap_gain>5)", Hardness::Hard).unwrap();
        let b = parse_dc(
            &s,
            "p",
            "!( t1.age < 10 & t1.cap_gain > 5 )",
            Hardness::Hard,
        )
        .unwrap();
        assert_eq!(a.predicates, b.predicates);
    }

    #[test]
    fn three_predicate_dc() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "p",
            "!(t1.edu == t2.edu & t1.age <= t2.age & t1.edu_num > t2.edu_num)",
            Hardness::Soft,
        )
        .unwrap();
        assert_eq!(dc.predicates.len(), 3);
        assert!(dc.as_fd().is_none());
    }
}
