//! The parallel candidate-scoring substrate.
//!
//! Algorithm 3's inner loop asks, for every candidate value `v` of a cell,
//! the weighted violation penalty `Σ_{φ ∈ Φ_{S[j]}} w_φ · |V(φ, t_i[S[j]]=v
//! | D'_:i)|`. [`ScoreSet`] owns the incremental counters for the active
//! DCs of one sequence position and answers that query **in batch** over a
//! whole candidate set through the counters' `&self` scoring views
//! ([`DcScorer`]), which makes the candidates embarrassingly parallel:
//! with the `parallel` feature (default on) the batch fans out across
//! rayon workers whenever the work estimate says threads pay for
//! themselves.
//!
//! Determinism: scoring is pure (no RNG, no mutation), and results are
//! written back by candidate index, so the parallel path returns
//! bit-identical penalties to the serial path for any thread count — the
//! sampler's output for a fixed seed does not depend on the `parallel`
//! switch.

use kamino_data::Value;

use crate::ast::DenialConstraint;
use crate::incremental::{CandidateRow, CellContext, DcCounter, DcScorer};

/// Minimum estimated work (candidates × prefix rows visited per candidate)
/// before the batch is fanned out across threads. Below this, thread
/// dispatch costs more than the scan itself.
#[cfg(feature = "parallel")]
const MIN_PARALLEL_WORK: usize = 4_096;

/// The incremental counters for the DCs active at one sequence position,
/// plus the batch scoring entry point the sampler drives.
///
/// Each entry pairs the DC's index into the pipeline's DC list (so weights
/// stay aligned) with its counter.
pub struct ScoreSet {
    counters: Vec<(usize, DcCounter)>,
}

impl ScoreSet {
    /// Builds counters for the DCs named by `active` (indices into `dcs`).
    pub fn build(active: &[usize], dcs: &[DenialConstraint]) -> ScoreSet {
        ScoreSet {
            counters: active
                .iter()
                .map(|&l| (l, DcCounter::build(&dcs[l])))
                .collect(),
        }
    }

    /// Whether no DCs are active at this position.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The (dc-index, counter) pairs — used by the sampler's hard-FD and
    /// feasible-band fast paths.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &DcCounter)> {
        self.counters.iter().map(|(l, c)| (*l, c))
    }

    /// Commits a finalized row into every counter.
    pub fn insert(&mut self, cand: &CandidateRow<'_>) {
        for (_, c) in &mut self.counters {
            c.insert(cand);
        }
    }

    /// Removes a previously committed row from every counter (MCMC).
    pub fn remove(&mut self, cand: &CandidateRow<'_>) {
        for (_, c) in &mut self.counters {
            c.remove(cand);
        }
    }

    /// Absorbs another `ScoreSet` built from the **same** active-DC list
    /// over a disjoint row-id range (a shard's prefix). Counters merge
    /// pair-wise, so the result scores exactly as if every row of both
    /// sets had been inserted into one. Shards must be merged in a fixed
    /// (shard-index) order by the caller so any panic messages and debug
    /// assertions fire deterministically; the merged *scores* themselves
    /// are order-independent, since all counter state is additive.
    pub fn merge(&mut self, other: ScoreSet) {
        assert_eq!(
            self.counters.len(),
            other.counters.len(),
            "merging ScoreSets with different active-DC lists"
        );
        for ((l_a, c_a), (l_b, c_b)) in self.counters.iter_mut().zip(other.counters) {
            assert_eq!(
                *l_a, l_b,
                "merging ScoreSets with different active-DC lists"
            );
            c_a.merge(c_b);
        }
    }

    /// Total rows inserted across all counters' prefix indexes (0 when
    /// only unary counters are active — they keep no state).
    pub fn len(&self) -> usize {
        self.counters
            .iter()
            .map(|(_, c)| c.len())
            .max()
            .unwrap_or(0)
    }

    /// The weighted violation penalty of a single hypothesis.
    pub fn penalty(&self, cand: &CandidateRow<'_>, weights: &[f64]) -> f64 {
        penalty_with(&self.scorers(), cand, weights)
    }

    /// Batch scoring: the weighted violation penalty for **every**
    /// candidate value of the cell, in input order.
    ///
    /// `parallel` is a runtime switch on top of the compile-time
    /// `parallel` feature; the penalties returned are identical either
    /// way (see the module docs on determinism).
    pub fn score_candidates(
        &self,
        cell: CellContext<'_>,
        values: &[Value],
        weights: &[f64],
        parallel: bool,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(values.len());
        self.score_candidates_into(cell, values, weights, parallel, &mut out);
        out
    }

    /// [`ScoreSet::score_candidates`] writing into a caller-provided buffer
    /// (cleared first), so a hot sampling loop can reuse one allocation
    /// across cells. Penalties are identical to the allocating form.
    pub fn score_candidates_into(
        &self,
        cell: CellContext<'_>,
        values: &[Value],
        weights: &[f64],
        parallel: bool,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let scorers = self.scorers();
        #[cfg(feature = "parallel")]
        {
            let per_candidate: usize = scorers.iter().map(|(_, s)| s.scan_cost()).sum();
            let work = values.len().saturating_mul(per_candidate.max(1));
            if parallel && work >= MIN_PARALLEL_WORK && rayon::current_num_threads() > 1 {
                out.extend(rayon::par_map_indexed(values.len(), |i| {
                    penalty_with(&scorers, &cell.with(values[i]), weights)
                }));
                return;
            }
        }
        let _ = parallel;
        out.extend(
            values
                .iter()
                .map(|&v| penalty_with(&scorers, &cell.with(v), weights)),
        );
    }

    fn scorers(&self) -> Vec<(usize, DcScorer<'_>)> {
        self.counters
            .iter()
            .map(|(l, c)| (*l, c.scorer()))
            .collect()
    }
}

fn penalty_with(
    scorers: &[(usize, DcScorer<'_>)],
    cand: &CandidateRow<'_>,
    weights: &[f64],
) -> f64 {
    let mut penalty = 0.0;
    for (l, s) in scorers {
        let vio = s.count_new(cand);
        if vio > 0 {
            penalty += weights[*l] * vio as f64;
        }
    }
    penalty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Hardness;
    use crate::parser::parse_dc;
    use kamino_data::{Attribute, Instance, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("a", 4).unwrap(),
            Attribute::integer("x", 0.0, 31.0, 32).unwrap(),
            Attribute::numeric("y", 0.0, 100.0, 10).unwrap(),
        ])
        .unwrap()
    }

    fn dcs(s: &Schema) -> Vec<DenialConstraint> {
        vec![
            parse_dc(s, "fd", "!(t1.a == t2.a & t1.x != t2.x)", Hardness::Hard).unwrap(),
            parse_dc(s, "ord", "!(t1.x > t2.x & t1.y < t2.y)", Hardness::Soft).unwrap(),
            parse_dc(s, "cap", "!(t1.y > 95)", Hardness::Soft).unwrap(),
        ]
    }

    fn filled_instance(s: &Schema, n: usize) -> Instance {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    Value::Cat((i % 4) as u32),
                    Value::Num((i % 4) as f64 * 3.0),
                    Value::Num((i % 50) as f64 * 2.0),
                ]
            })
            .collect();
        Instance::from_rows(s, &rows).unwrap()
    }

    #[test]
    fn batch_equals_per_candidate_serial_and_parallel() {
        let s = schema();
        let all = dcs(&s);
        let weights = [f64::INFINITY, 2.5, 0.7];
        let inst = filled_instance(&s, 200);
        let mut set = ScoreSet::build(&[0, 1, 2], &all);
        for i in 0..199 {
            set.insert(&CandidateRow::committed(&inst, i, 2));
        }
        let cell = CellContext::new(&inst, 199, 2);
        let values: Vec<Value> = (0..100).map(|k| Value::Num(k as f64)).collect();
        let serial = set.score_candidates(cell, &values, &weights, false);
        let parallel = set.score_candidates(cell, &values, &weights, true);
        assert_eq!(serial, parallel, "parallel scoring must be bit-identical");
        for (v, got) in values.iter().zip(&serial) {
            let want = set.penalty(&cell.with(*v), &weights);
            assert!(
                (got - want).abs() == 0.0 || (got.is_infinite() && want.is_infinite()),
                "batch {got} vs single {want}"
            );
        }
    }

    #[test]
    fn insert_remove_roundtrip_keeps_scores() {
        let s = schema();
        let all = dcs(&s);
        let weights = [1.0, 1.0, 1.0];
        let inst = filled_instance(&s, 50);
        let mut set = ScoreSet::build(&[0, 1], &all);
        for i in 0..50 {
            set.insert(&CandidateRow::committed(&inst, i, 2));
        }
        let probe_rows = filled_instance(&s, 51);
        let cell = CellContext::new(&probe_rows, 50, 2);
        let values: Vec<Value> = (0..10).map(|k| Value::Num(k as f64 * 7.0)).collect();
        let before = set.score_candidates(cell, &values, &weights, false);
        let victim = CandidateRow::committed(&inst, 7, 2);
        set.remove(&victim);
        set.insert(&victim);
        let after = set.score_candidates(cell, &values, &weights, false);
        assert_eq!(before, after);
    }

    #[test]
    fn merged_shards_score_like_one_sequential_set() {
        // Build one ScoreSet sequentially over 120 rows, and the same 120
        // rows as three 40-row shards merged in shard order: every scoring
        // query must agree exactly (FD, order-scan, and unary counters).
        let s = schema();
        let all = dcs(&s);
        let weights = [f64::INFINITY, 2.5, 0.7];
        let inst = filled_instance(&s, 121);
        let active = [0usize, 1, 2];

        let mut sequential = ScoreSet::build(&active, &all);
        for i in 0..120 {
            sequential.insert(&CandidateRow::committed(&inst, i, 2));
        }

        let mut merged = ScoreSet::build(&active, &all);
        for shard in 0..3 {
            let mut part = ScoreSet::build(&active, &all);
            for i in (shard * 40)..((shard + 1) * 40) {
                part.insert(&CandidateRow::committed(&inst, i, 2));
            }
            merged.merge(part);
        }
        assert_eq!(merged.len(), sequential.len());

        let cell = CellContext::new(&inst, 120, 2);
        let values: Vec<Value> = (0..60).map(|k| Value::Num(k as f64 * 1.7)).collect();
        let a = sequential.score_candidates(cell, &values, &weights, false);
        let b = merged.score_candidates(cell, &values, &weights, false);
        assert_eq!(a, b, "merged shards must score identically");

        // fast-path queries agree too
        for ((_, ca), (_, cb)) in sequential.iter().zip(merged.iter()) {
            let probe = cell.with(Value::Num(3.0));
            assert_eq!(ca.required_value(&probe), cb.required_value(&probe));
            assert_eq!(ca.feasible_range(&probe, 2), cb.feasible_range(&probe, 2));
        }

        // and mutation keeps working on the merged set (repair/MCMC path)
        let victim = CandidateRow::committed(&inst, 57, 2);
        merged.remove(&victim);
        sequential.remove(&victim);
        merged.insert(&victim);
        sequential.insert(&victim);
        assert_eq!(
            sequential.score_candidates(cell, &values, &weights, false),
            merged.score_candidates(cell, &values, &weights, false)
        );
    }

    #[test]
    #[should_panic(expected = "present in both shards")]
    fn overlapping_shards_panic() {
        let s = schema();
        let all = dcs(&s);
        let inst = filled_instance(&s, 10);
        let mut a = ScoreSet::build(&[1], &all);
        let mut b = ScoreSet::build(&[1], &all);
        a.insert(&CandidateRow::committed(&inst, 3, 2));
        b.insert(&CandidateRow::committed(&inst, 3, 2));
        a.merge(b);
    }

    #[test]
    fn empty_set_scores_zero() {
        let s = schema();
        let all = dcs(&s);
        let set = ScoreSet::build(&[], &all);
        assert!(set.is_empty());
        let inst = filled_instance(&s, 3);
        let cell = CellContext::new(&inst, 0, 2);
        let out = set.score_candidates(cell, &[Value::Num(1.0)], &[], true);
        assert_eq!(out, vec![0.0]);
    }
}
