//! Snapshot codec for denial constraints. A fitted model's DC list (with
//! hardness) is part of its sampling behaviour — Algorithm 3 re-weights
//! candidates by the very same constraints — so snapshots persist the
//! parsed AST rather than source text: attribute references are schema
//! *indices*, immune to name-grammar drift, and `decode_dc` re-validates
//! them against the schema section loaded alongside.

use kamino_data::snapshot::{decode_value, encode_value};
use kamino_data::wire::{ByteReader, ByteWriter, WireError};
use kamino_data::Schema;

use crate::ast::{CmpOp, DenialConstraint, Hardness, Operand, Predicate, TupleRef};

const OPERAND_ATTR: u8 = 0;
const OPERAND_CONST: u8 = 1;

fn encode_operand(op: Operand, w: &mut ByteWriter) {
    match op {
        Operand::Attr { tuple, attr } => {
            w.put_u8(OPERAND_ATTR);
            w.put_u8(match tuple {
                TupleRef::T1 => 0,
                TupleRef::T2 => 1,
            });
            w.put_usize(attr);
        }
        Operand::Const(v) => {
            w.put_u8(OPERAND_CONST);
            encode_value(v, w);
        }
    }
}

fn decode_operand(r: &mut ByteReader<'_>, n_attrs: usize) -> Result<Operand, WireError> {
    match r.u8()? {
        OPERAND_ATTR => {
            let tuple = match r.u8()? {
                0 => TupleRef::T1,
                1 => TupleRef::T2,
                t => return Err(WireError::Malformed(format!("unknown tuple ref {t}"))),
            };
            let attr = r.usize()?;
            if attr >= n_attrs {
                return Err(WireError::Malformed(format!(
                    "attribute index {attr} out of range for {n_attrs}-attribute schema"
                )));
            }
            Ok(Operand::Attr { tuple, attr })
        }
        OPERAND_CONST => Ok(Operand::Const(decode_value(r)?)),
        tag => Err(WireError::Malformed(format!("unknown operand tag {tag}"))),
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from_tag(tag: u8) -> Result<CmpOp, WireError> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(WireError::Malformed(format!("unknown cmp op tag {t}"))),
    })
}

/// Encodes one denial constraint (name, hardness, predicate list).
pub fn encode_dc(dc: &DenialConstraint, w: &mut ByteWriter) {
    w.put_str(&dc.name);
    w.put_u8(match dc.hardness {
        Hardness::Hard => 0,
        Hardness::Soft => 1,
    });
    w.put_u32(dc.predicates.len() as u32);
    for p in &dc.predicates {
        encode_operand(p.lhs, w);
        w.put_u8(cmp_tag(p.op));
        encode_operand(p.rhs, w);
    }
}

/// Decodes a constraint written by [`encode_dc`], validating attribute
/// indices against `schema`.
pub fn decode_dc(r: &mut ByteReader<'_>, schema: &Schema) -> Result<DenialConstraint, WireError> {
    let name = r.string()?;
    let hardness = match r.u8()? {
        0 => Hardness::Hard,
        1 => Hardness::Soft,
        t => return Err(WireError::Malformed(format!("unknown hardness tag {t}"))),
    };
    let n = r.len_prefix()?;
    if n == 0 {
        return Err(WireError::Malformed(format!(
            "DC `{name}` has no predicates"
        )));
    }
    let mut predicates = Vec::with_capacity(n.min(1 << 8));
    for _ in 0..n {
        let lhs = decode_operand(r, schema.len())?;
        let op = cmp_from_tag(r.u8()?)?;
        let rhs = decode_operand(r, schema.len())?;
        predicates.push(Predicate { lhs, op, rhs });
    }
    Ok(DenialConstraint::new(name, predicates, hardness))
}

/// Encodes a DC list.
pub fn encode_dcs(dcs: &[DenialConstraint], w: &mut ByteWriter) {
    w.put_u32(dcs.len() as u32);
    for dc in dcs {
        encode_dc(dc, w);
    }
}

/// Decodes a DC list written by [`encode_dcs`].
pub fn decode_dcs(
    r: &mut ByteReader<'_>,
    schema: &Schema,
) -> Result<Vec<DenialConstraint>, WireError> {
    let n = r.len_prefix()?;
    let mut out = Vec::with_capacity(n.min(1 << 8));
    for _ in 0..n {
        out.push(decode_dc(r, schema)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dc;
    use kamino_data::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::categorical_indexed("b", 4).unwrap(),
            Attribute::numeric("x", 0.0, 9.0, 10).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn parsed_dcs_roundtrip() {
        let s = schema();
        let dcs = vec![
            parse_dc(&s, "fd", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Hard).unwrap(),
            parse_dc(
                &s,
                "ord",
                "!(t1.a == t2.a & t1.x < t2.x & t1.b != t2.b)",
                Hardness::Soft,
            )
            .unwrap(),
            parse_dc(&s, "unary", "!(t1.x > 5)", Hardness::Soft).unwrap(),
        ];
        let mut w = ByteWriter::new();
        encode_dcs(&dcs, &mut w);
        let bytes = w.into_bytes();
        let got = decode_dcs(&mut ByteReader::new(&bytes), &s).unwrap();
        assert_eq!(got, dcs);
    }

    #[test]
    fn out_of_range_attr_rejected() {
        let s = schema();
        let dc = parse_dc(&s, "fd", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Hard).unwrap();
        let mut w = ByteWriter::new();
        encode_dcs(&[dc], &mut w);
        let bytes = w.into_bytes();
        // a one-attribute schema makes every index ≥ 1 invalid
        let tiny = Schema::new(vec![Attribute::categorical_indexed("only", 2).unwrap()]).unwrap();
        assert!(decode_dcs(&mut ByteReader::new(&bytes), &tiny).is_err());
    }
}
