//! Accept–reject sampling (Experiment 6, §7.3.2).
//!
//! The alternative to Algorithm 3's explicit target-distribution
//! construction: draw one value at a time from the model and accept it with
//! probability `exp(−Σ w_φ·vio_φ)`. For soft DCs the accept ratio stays
//! high and this converges quickly; for hard DCs any violation drives the
//! ratio to zero, so the sampler retries up to `max_tries` (the paper uses
//! 300) and then keeps the last draw — which is how AR sampling ends up
//! *producing* violations on hard-DC datasets (the paper measures 0.4% /
//! 37.2% on Adult's two DCs).

use kamino_constraints::{CandidateRow, DcCounter, DenialConstraint};
use kamino_data::stats::sample_weighted;
use kamino_data::{AttrKind, Instance, Quantizer, Schema, Value};
use rand::Rng;

use crate::model::{DataModel, SubModelKind};
use crate::sequence::active_dcs_by_position;

/// Accept–reject sampling configuration.
#[derive(Debug, Clone)]
pub struct ArSampleConfig {
    /// Number of tuples to synthesize.
    pub n: usize,
    /// Maximum draws per cell before keeping the last one (paper: 300).
    pub max_tries: usize,
}

impl ArSampleConfig {
    /// Defaults matching §7.3.2.
    pub fn new(n: usize) -> ArSampleConfig {
        ArSampleConfig { n, max_tries: 300 }
    }
}

/// Synthesizes an instance with accept–reject sampling.
pub fn synthesize_ar<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    dcs: &[DenialConstraint],
    weights: &[f64],
    cfg: &ArSampleConfig,
    rng: &mut R,
) -> Instance {
    assert_eq!(dcs.len(), weights.len(), "one weight per DC");
    assert!(cfg.n > 0, "cannot synthesize an empty instance");
    let n = cfg.n;
    let k = model.sequence.len();
    let mut inst = Instance::zeroed(schema, n);
    let active = active_dcs_by_position(&model.sequence, dcs);

    for (j, active_j) in active.iter().enumerate().take(k) {
        let target = model.sequence[j];
        let mut counters: Vec<(usize, DcCounter)> = active_j
            .iter()
            .map(|&l| (l, DcCounter::build(&dcs[l])))
            .collect();
        for i in 0..n {
            let value = ar_cell(schema, model, j, &inst, i, &counters, weights, cfg, rng);
            inst.set(i, target, value);
            let committed = CandidateRow::committed(&inst, i, target);
            for (_, c) in &mut counters {
                c.insert(&committed);
            }
        }
    }
    inst
}

/// Draws one value from the model (no constraint reweighting).
fn model_draw<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    j: usize,
    inst: &Instance,
    row: usize,
    rng: &mut R,
) -> Value {
    let target = model.sequence[j];
    let q = Quantizer::for_attr(schema.attr(target));
    if j == 0 {
        let b = sample_weighted(&model.first_dist, rng);
        return q.sample_in_bin(b, rng);
    }
    let sm = model.submodel_at(j);
    let ctx: Vec<Value> = model.sequence[..j]
        .iter()
        .map(|&a| inst.value(row, a))
        .collect();
    match (&sm.kind, &schema.attr(target).kind) {
        (SubModelKind::NoisyMarginal { dist }, _) => {
            let b = sample_weighted(dist, rng);
            q.sample_in_bin(b, rng)
        }
        (SubModelKind::Discriminative { .. }, AttrKind::Categorical { .. }) => {
            let p = sm.predict_cat(&model.store, &ctx);
            Value::Cat(sample_weighted(&p, rng) as u32)
        }
        (SubModelKind::Discriminative { .. }, AttrKind::Numeric { .. }) => {
            let (mu, sigma) = sm.predict_num(&model.store, &ctx);
            q.clamp(Value::Num(kamino_dp::normal::normal(
                rng,
                mu,
                sigma.max(1e-9),
            )))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn ar_cell<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    j: usize,
    inst: &Instance,
    row: usize,
    counters: &[(usize, DcCounter)],
    weights: &[f64],
    cfg: &ArSampleConfig,
    rng: &mut R,
) -> Value {
    let target = model.sequence[j];
    let mut last = placeholderless_draw(schema, model, j, inst, row, rng);
    if counters.is_empty() {
        return last;
    }
    for _ in 0..cfg.max_tries {
        let cand = CandidateRow::new(inst, row, target, last);
        let mut penalty = 0.0;
        for (l, c) in counters {
            let vio = c.count_new(&cand);
            if vio > 0 {
                penalty += weights[*l] * vio as f64;
            }
        }
        let accept = (-penalty).exp();
        if accept >= 1.0 || rng.gen::<f64>() < accept {
            return last;
        }
        last = placeholderless_draw(schema, model, j, inst, row, rng);
    }
    // exhausted: keep the last draw even if it violates (paper's behaviour)
    last
}

fn placeholderless_draw<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    j: usize,
    inst: &Instance,
    row: usize,
    rng: &mut R,
) -> Value {
    model_draw(schema, model, j, inst, row, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_model, TrainConfig};
    use crate::weights::HARD_WEIGHT;
    use kamino_constraints::{count_violating_pairs, parse_dc, violation_percentage, Hardness};
    use kamino_data::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::categorical_indexed("b", 3).unwrap(),
        ])
        .unwrap()
    }

    fn toy_instance(s: &Schema, n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = Instance::empty(s);
        for _ in 0..n {
            let a = rng.gen_range(0..3u32);
            inst.push_row(s, &[Value::Cat(a), Value::Cat(a)]).unwrap();
        }
        inst
    }

    fn model(s: &Schema, inst: &Instance, iters: usize) -> DataModel {
        let cfg = TrainConfig {
            sigma_g: 0.0,
            sigma_d: 0.0,
            iters,
            lr: 0.2,
            ..TrainConfig::default()
        };
        train_model(s, inst, &[0, 1], &cfg)
    }

    #[test]
    fn ar_sampling_produces_valid_instances() {
        let s = schema();
        let truth = toy_instance(&s, 200, 1);
        let m = model(&s, &truth, 30);
        let mut rng = StdRng::seed_from_u64(2);
        let out = synthesize_ar(&s, &m, &[], &[], &ArSampleConfig::new(120), &mut rng);
        assert_eq!(out.n_rows(), 120);
        for i in 0..out.n_rows() {
            for j in 0..2 {
                assert!(s.attr(j).validate(out.value(i, j)).is_ok());
            }
        }
    }

    #[test]
    fn ar_reduces_but_may_not_eliminate_hard_violations() {
        // an under-trained model + AR with a small retry budget can leave
        // violations — the paper's headline observation about AR sampling
        let s = schema();
        let truth = toy_instance(&s, 300, 3);
        let m = model(&s, &truth, 5);
        let dcs =
            vec![parse_dc(&s, "fd", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Hard).unwrap()];
        let weights = vec![HARD_WEIGHT];
        let mut rng = StdRng::seed_from_u64(4);
        // unconstrained draw for reference
        let mut blind_cfg = crate::sampler::SampleConfig::new(200);
        blind_cfg.constraint_aware = false;
        let blind = crate::sampler::synthesize(&s, &m, &dcs, &weights, &blind_cfg, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let ar = synthesize_ar(&s, &m, &dcs, &weights, &ArSampleConfig::new(200), &mut rng);
        let blind_pct = violation_percentage(&dcs[0], &blind);
        let ar_pct = violation_percentage(&dcs[0], &ar);
        assert!(
            ar_pct < blind_pct,
            "AR ({ar_pct}%) should improve on unconstrained sampling ({blind_pct}%)"
        );
    }

    #[test]
    fn ar_with_generous_retries_cleans_well_trained_model() {
        let s = schema();
        let truth = toy_instance(&s, 300, 5);
        let m = model(&s, &truth, 100);
        let dcs =
            vec![parse_dc(&s, "fd", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Hard).unwrap()];
        let mut rng = StdRng::seed_from_u64(6);
        let ar = synthesize_ar(
            &s,
            &m,
            &dcs,
            &[HARD_WEIGHT],
            &ArSampleConfig::new(150),
            &mut rng,
        );
        assert_eq!(count_violating_pairs(&dcs[0], &ar), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = schema();
        let truth = toy_instance(&s, 150, 7);
        let m = model(&s, &truth, 20);
        let mut r1 = StdRng::seed_from_u64(8);
        let mut r2 = StdRng::seed_from_u64(8);
        let a = synthesize_ar(&s, &m, &[], &[], &ArSampleConfig::new(80), &mut r1);
        let b = synthesize_ar(&s, &m, &[], &[], &ArSampleConfig::new(80), &mut r2);
        assert_eq!(a, b);
    }
}
