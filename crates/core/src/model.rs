//! The probabilistic data model `M` (§2.3 / Algorithm 2 output).
//!
//! `M` consists of a (noisy) distribution for the first sequence attribute
//! and one discriminative sub-model `M_{S_:j, S[j]}` per remaining
//! attribute: context-attribute embeddings (shared and reused across
//! sub-models in sequential training, per Algorithm 2 lines 7/19),
//! a learned attention combiner, and a categorical or Gaussian output head.
//!
//! For attributes with extremely large domains, §4.3 prescribes falling
//! back to an independent Gaussian-mechanism histogram instead of a
//! discriminative model ("apply Gaussian mechanism to its true
//! distribution, and sample independently without relying on the context
//! attributes") — [`SubModelKind::NoisyMarginal`] implements that fallback,
//! and the privacy accounting in [`crate::params`] charges it as an extra
//! full-rate Gaussian release.

use std::cell::RefCell;

use kamino_data::stats::Standardizer;
use kamino_data::{AttrKind, Schema, Value};
use kamino_nn::layers::EncoderCache;
use kamino_nn::{
    Attention, CategoricalHead, ContinuousEncoder, Embedding, GaussianHead, ParamBlock,
    PerExampleModel, Scratch,
};
use rand::Rng;

/// Per-thread buffer pool for the sub-model hot paths (training
/// forward/backward and sampling-time prediction). Buffers are re-zeroed
/// or fully overwritten before every use, so pooling changes no numeric
/// result — it only removes the per-example/per-cell allocations. Thread
/// locality keeps the microbatch-parallel DP-SGD workers and the sampler's
/// shard threads from contending on a shared pool.
#[derive(Default)]
struct TrainScratch {
    nn: Scratch,
    embs: Vec<Vec<f64>>,
    ctxs: Vec<EmbedCtx>,
    d_embs: Vec<Vec<f64>>,
    v: Vec<f64>,
    dv: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<TrainScratch> = RefCell::new(TrainScratch::default());
}

/// Embeds one attribute's values into `R^dim`.
#[derive(Clone)]
pub enum AttrEmbedder {
    /// Lookup table for categorical codes.
    Cat(Embedding),
    /// Standardize-then-encode for numeric values (`z = Bω(Ax+c)+d`).
    Num {
        /// The nonlinear scalar encoder.
        enc: ContinuousEncoder,
        /// Domain-derived standardizer (data-independent, so it leaks
        /// nothing).
        std: Standardizer,
    },
}

/// Backward context produced by [`EmbeddingStore::embed`].
pub enum EmbedCtx {
    /// The embedded categorical code.
    Cat(u32),
    /// The encoder cache for a numeric value.
    Num(EncoderCache),
}

/// One embedder per schema attribute, all with a common dimension `d`
/// (§2.3: "a unified representation with a fixed dimensionality for each
/// attribute").
pub struct EmbeddingStore {
    /// `None` marks an attribute not materialized in this store — only
    /// produced by [`EmbeddingStore::subset_for`] worker clones, which
    /// never touch those attributes.
    embedders: Vec<Option<AttrEmbedder>>,
    dim: usize,
}

impl Clone for EmbeddingStore {
    fn clone(&self) -> Self {
        EmbeddingStore {
            embedders: self.embedders.clone(),
            dim: self.dim,
        }
    }
}

impl EmbeddingStore {
    /// Fresh embedders for every attribute of `schema`.
    pub fn new<R: Rng + ?Sized>(schema: &Schema, dim: usize, rng: &mut R) -> EmbeddingStore {
        let embedders = schema
            .attrs()
            .iter()
            .map(|attr| match &attr.kind {
                AttrKind::Categorical { labels } => {
                    Some(AttrEmbedder::Cat(Embedding::new(labels.len(), dim, rng)))
                }
                AttrKind::Numeric { min, max, .. } => Some(AttrEmbedder::Num {
                    enc: ContinuousEncoder::new(dim, rng),
                    std: Standardizer::from_range(*min, *max),
                }),
            })
            .collect();
        EmbeddingStore { embedders, dim }
    }

    /// A partial clone carrying only the embedders of `attrs` — what a
    /// microbatch-parallel DP-SGD worker needs (the sub-model's context
    /// attributes plus its target). Accessing any other attribute through
    /// the clone panics, so misuse cannot go unnoticed.
    pub fn subset_for(&self, attrs: impl IntoIterator<Item = usize>) -> EmbeddingStore {
        let mut embedders: Vec<Option<AttrEmbedder>> = vec![None; self.embedders.len()];
        for a in attrs {
            embedders[a] = self.embedders[a].clone();
        }
        EmbeddingStore {
            embedders,
            dim: self.dim,
        }
    }

    #[inline]
    fn emb(&self, attr: usize) -> &AttrEmbedder {
        self.embedders[attr]
            .as_ref()
            .expect("attribute not materialized in this (worker) store")
    }

    #[inline]
    fn emb_mut(&mut self, attr: usize) -> &mut AttrEmbedder {
        self.embedders[attr]
            .as_mut()
            .expect("attribute not materialized in this (worker) store")
    }

    /// Embedding dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The per-attribute embedders (snapshot support). `None` entries mark
    /// attributes not materialized in a worker clone.
    pub fn embedders(&self) -> &[Option<AttrEmbedder>] {
        &self.embedders
    }

    /// Rebuilds a store from persisted embedders (snapshot support).
    pub fn from_parts(embedders: Vec<Option<AttrEmbedder>>, dim: usize) -> EmbeddingStore {
        EmbeddingStore { embedders, dim }
    }

    /// Embeds `v` (a value of attribute `attr`) into `out`.
    pub fn embed(&self, attr: usize, v: Value, out: &mut [f64]) -> EmbedCtx {
        self.embed_pooled(attr, v, out, &mut Scratch::new())
    }

    /// [`EmbeddingStore::embed`] with the numeric encoder's hidden buffer
    /// drawn from `scratch`; retire the returned `EmbedCtx::Num` cache via
    /// [`EncoderCache::recycle`] once backward is done with it.
    pub fn embed_pooled(
        &self,
        attr: usize,
        v: Value,
        out: &mut [f64],
        scratch: &mut Scratch,
    ) -> EmbedCtx {
        match (self.emb(attr), v) {
            (AttrEmbedder::Cat(e), Value::Cat(code)) => {
                out.copy_from_slice(e.forward(code));
                EmbedCtx::Cat(code)
            }
            (AttrEmbedder::Num { enc, std }, Value::Num(x)) => {
                EmbedCtx::Num(enc.forward_pooled(std.forward(x), out, scratch))
            }
            _ => panic!("value kind does not match attribute {attr}'s embedder"),
        }
    }

    /// Backpropagates `dz` through the embedder used in [`Self::embed`].
    pub fn backward(&mut self, attr: usize, ctx: &EmbedCtx, dz: &[f64]) {
        self.backward_pooled(attr, ctx, dz, &mut Scratch::new())
    }

    /// [`EmbeddingStore::backward`] with intermediates pooled in `scratch`.
    pub fn backward_pooled(
        &mut self,
        attr: usize,
        ctx: &EmbedCtx,
        dz: &[f64],
        scratch: &mut Scratch,
    ) {
        match (self.emb_mut(attr), ctx) {
            (AttrEmbedder::Cat(e), EmbedCtx::Cat(code)) => e.backward(*code, dz),
            (AttrEmbedder::Num { enc, .. }, EmbedCtx::Num(cache)) => {
                enc.backward_pooled(cache, dz, scratch)
            }
            _ => panic!("embed context does not match attribute {attr}'s embedder"),
        }
    }

    /// The standardizer of a numeric attribute (panics for categorical).
    pub fn standardizer(&self, attr: usize) -> Standardizer {
        match self.emb(attr) {
            AttrEmbedder::Num { std, .. } => *std,
            AttrEmbedder::Cat(_) => panic!("attribute {attr} is categorical"),
        }
    }

    /// Visits the parameter blocks of one attribute's embedder.
    pub fn visit_attr_blocks(&mut self, attr: usize, f: &mut dyn FnMut(&mut ParamBlock)) {
        match self.emb_mut(attr) {
            AttrEmbedder::Cat(e) => e.visit_blocks(f),
            AttrEmbedder::Num { enc, .. } => enc.visit_blocks(f),
        }
    }
}

/// The output head of a discriminative sub-model.
#[derive(Clone)]
pub enum Head {
    /// Softmax over the categorical target domain.
    Cat(CategoricalHead),
    /// Gaussian (μ, σ) regression for numeric targets (standardized units).
    Num(GaussianHead),
}

/// How a sub-model predicts its target.
#[derive(Clone)]
pub enum SubModelKind {
    /// AimNet-style discriminative model: attention over context
    /// embeddings feeding a head.
    Discriminative {
        /// Attention over the context attributes.
        attention: Attention,
        /// Output head.
        head: Head,
    },
    /// §4.3 extreme-domain fallback: a noisy independent distribution over
    /// the target's (quantized) domain.
    NoisyMarginal {
        /// Post-processed probability distribution.
        dist: Vec<f64>,
    },
}

/// One conditional `Pr(t[A_j] | t[S_:j])`.
#[derive(Clone)]
pub struct SubModel {
    /// Target attribute (schema index).
    pub target: usize,
    /// Context attributes `S_:j` (schema indices, in sequence order).
    pub context: Vec<usize>,
    /// Predictor.
    pub kind: SubModelKind,
    /// A private embedding store when trained in parallel mode (Exp. 10);
    /// `None` means the model uses the shared store.
    pub own_store: Option<EmbeddingStore>,
}

impl SubModel {
    fn context_vector(&self, store: &EmbeddingStore, ctx_values: &[Value]) -> Vec<f64> {
        let SubModelKind::Discriminative { attention, .. } = &self.kind else {
            panic!("context_vector on a noisy-marginal sub-model")
        };
        assert_eq!(
            ctx_values.len(),
            self.context.len(),
            "context arity mismatch"
        );
        let dim = store.dim();
        let m = self.context.len();
        // Sampling calls this once per candidate-scored cell; the pooled
        // buffers keep the prediction path allocation-free apart from the
        // returned vector.
        SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            let TrainScratch { nn, embs, .. } = sc;
            embs.resize_with(m, Vec::new);
            for ((&attr, &val), e) in self.context.iter().zip(ctx_values).zip(embs.iter_mut()) {
                e.clear();
                e.resize(dim, 0.0);
                if let EmbedCtx::Num(cache) = store.embed_pooled(attr, val, e, nn) {
                    cache.recycle(nn);
                }
            }
            let refs: Vec<&[f64]> = embs.iter().map(Vec::as_slice).collect();
            let mut v = vec![0.0; dim];
            let cache = attention.forward_pooled(&refs, &mut v, nn);
            nn.put(cache.alpha);
            v
        })
    }

    /// Class probabilities for a categorical target given context values
    /// (aligned with `self.context`).
    pub fn predict_cat(&self, store: &EmbeddingStore, ctx_values: &[Value]) -> Vec<f64> {
        match &self.kind {
            SubModelKind::NoisyMarginal { dist } => dist.clone(),
            SubModelKind::Discriminative { head, .. } => {
                let Head::Cat(h) = head else {
                    panic!("target is not categorical")
                };
                let store = self.own_store.as_ref().unwrap_or(store);
                let v = self.context_vector(store, ctx_values);
                h.predict(&v)
            }
        }
    }

    /// (μ, σ) in *data units* for a numeric target given context values.
    pub fn predict_num(&self, store: &EmbeddingStore, ctx_values: &[Value]) -> (f64, f64) {
        let SubModelKind::Discriminative { head, .. } = &self.kind else {
            panic!("predict_num on a noisy-marginal sub-model")
        };
        let Head::Num(h) = head else {
            panic!("target is not numeric")
        };
        let store = self.own_store.as_ref().unwrap_or(store);
        let v = self.context_vector(store, ctx_values);
        let (mu_s, sigma_s) = h.predict(&v);
        let std = store.standardizer(self.target);
        (std.inverse(mu_s), sigma_s * std.std)
    }

    /// The learned attention weights over context attributes (uniform at
    /// init; `None` for noisy-marginal sub-models).
    pub fn attention_weights(&self) -> Option<Vec<f64>> {
        match &self.kind {
            SubModelKind::Discriminative { attention, .. } => Some(attention.weights()),
            SubModelKind::NoisyMarginal { .. } => None,
        }
    }
}

/// One training example for a sub-model: context values + target value.
pub struct TrainRow {
    /// Values of the context attributes, aligned with `SubModel::context`.
    pub context: Vec<Value>,
    /// The target attribute's value.
    pub target: Value,
}

/// Mutable view pairing a sub-model with the store it trains against;
/// implements [`PerExampleModel`] for DP-SGD.
pub struct SubModelTrainer<'a> {
    /// The embedding store being trained (shared or model-private).
    pub store: &'a mut EmbeddingStore,
    /// The discriminative sub-model being trained.
    pub sm: &'a mut SubModel,
}

/// Owning counterpart of [`SubModelTrainer`] — the per-thread worker of
/// microbatch-parallel DP-SGD. Each worker starts from a clone of the
/// current parameters and accumulates its microbatch's clipped gradients
/// locally; the optimizer merges the sums in microbatch order, so the
/// update equals the serial one exactly.
pub struct OwnedTrainer {
    /// Clone of the embedding store being trained.
    pub store: EmbeddingStore,
    /// Clone of the sub-model being trained.
    pub sm: SubModel,
}

impl PerExampleModel<TrainRow> for OwnedTrainer {
    fn forward_backward(&mut self, row: &TrainRow) -> f64 {
        SubModelTrainer {
            store: &mut self.store,
            sm: &mut self.sm,
        }
        .forward_backward(row)
    }

    fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        SubModelTrainer {
            store: &mut self.store,
            sm: &mut self.sm,
        }
        .visit_blocks(f)
    }
}

impl PerExampleModel<TrainRow> for SubModelTrainer<'_> {
    fn forward_backward(&mut self, row: &TrainRow) -> f64 {
        let SubModelKind::Discriminative { attention, head } = &mut self.sm.kind else {
            panic!("training a noisy-marginal sub-model")
        };
        let dim = self.store.dim();
        let m = self.sm.context.len();
        // All intermediates come from the per-thread pool; every buffer is
        // zeroed/overwritten before use, so the arithmetic is identical to
        // the allocating formulation — just without the ~4·|context| heap
        // allocations per example.
        SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            let TrainScratch {
                nn,
                embs,
                ctxs,
                d_embs,
                v,
                dv,
            } = sc;
            // embed contexts (owned copies so the store can be mutated later)
            embs.resize_with(m, Vec::new);
            ctxs.clear();
            for ((&attr, &val), e) in self
                .sm
                .context
                .iter()
                .zip(&row.context)
                .zip(embs.iter_mut())
            {
                e.clear();
                e.resize(dim, 0.0);
                ctxs.push(self.store.embed_pooled(attr, val, e, nn));
            }
            let refs: Vec<&[f64]> = embs.iter().map(Vec::as_slice).collect();
            v.clear();
            v.resize(dim, 0.0);
            let att_cache = attention.forward_pooled(&refs, v, nn);
            // head loss + gradient at the context vector
            dv.clear();
            dv.resize(dim, 0.0);
            let loss = match head {
                Head::Cat(h) => h.loss_backward_pooled(v, row.target.cat(), dv, nn),
                Head::Num(h) => {
                    let std = self.store.standardizer(self.sm.target);
                    h.loss_backward(v, std.forward(row.target.num()), dv)
                }
            };
            // attention backward → per-context embedding grads
            d_embs.resize_with(m, Vec::new);
            for de in d_embs.iter_mut() {
                de.clear();
                de.resize(dim, 0.0);
            }
            attention.backward_pooled(&refs, &att_cache, dv, d_embs, nn);
            drop(refs);
            nn.put(att_cache.alpha);
            for ((&attr, ctx), de) in self.sm.context.iter().zip(ctxs.iter()).zip(d_embs.iter()) {
                self.store.backward_pooled(attr, ctx, de, nn);
            }
            // retire the numeric encoder caches back into the pool
            for ctx in ctxs.drain(..) {
                if let EmbedCtx::Num(cache) = ctx {
                    cache.recycle(nn);
                }
            }
            loss
        })
    }

    fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        let SubModelKind::Discriminative { attention, head } = &mut self.sm.kind else {
            panic!("training a noisy-marginal sub-model")
        };
        for &attr in &self.sm.context {
            self.store.visit_attr_blocks(attr, f);
        }
        attention.visit_blocks(f);
        match head {
            Head::Cat(h) => h.visit_blocks(f),
            Head::Num(h) => h.visit_blocks(f),
        }
    }
}

/// The trained probabilistic data model `M`.
pub struct DataModel {
    /// The schema sequence `S` (attribute indices).
    pub sequence: Vec<usize>,
    /// Noisy distribution over the first attribute's (quantized) domain.
    pub first_dist: Vec<f64>,
    /// Shared embedding store (sequential training mode).
    pub store: EmbeddingStore,
    /// Sub-models for `sequence[1..]`, in order.
    pub submodels: Vec<SubModel>,
}

impl DataModel {
    /// The sub-model whose target is sequence position `j` (`j ≥ 1`).
    pub fn submodel_at(&self, j: usize) -> &SubModel {
        &self.submodels[j - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_data::Attribute;
    use kamino_nn::DpSgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::numeric("x", 0.0, 10.0, 5).unwrap(),
            Attribute::categorical_indexed("b", 2).unwrap(),
        ])
        .unwrap()
    }

    fn disc_submodel(
        store: &EmbeddingStore,
        target: usize,
        context: Vec<usize>,
        rng: &mut StdRng,
        schema: &Schema,
    ) -> SubModel {
        let head = match schema.attr(target).kind {
            AttrKind::Categorical { .. } => Head::Cat(CategoricalHead::new(
                store.dim(),
                schema.attr(target).domain_size(),
                rng,
            )),
            AttrKind::Numeric { .. } => Head::Num(GaussianHead::new(store.dim(), rng)),
        };
        SubModel {
            target,
            context: context.clone(),
            kind: SubModelKind::Discriminative {
                attention: Attention::new(context.len(), store.dim()),
                head,
            },
            own_store: None,
        }
    }

    #[test]
    fn embedding_store_embeds_both_kinds() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(0);
        let store = EmbeddingStore::new(&s, 8, &mut rng);
        let mut out = vec![0.0; 8];
        store.embed(0, Value::Cat(2), &mut out);
        assert!(out.iter().any(|&x| x != 0.0));
        store.embed(1, Value::Num(5.0), &mut out);
        assert!(out.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn embedding_kind_mismatch_panics() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(0);
        let store = EmbeddingStore::new(&s, 4, &mut rng);
        let mut out = vec![0.0; 4];
        store.embed(0, Value::Num(1.0), &mut out);
    }

    #[test]
    fn predict_cat_is_distribution() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(1);
        let store = EmbeddingStore::new(&s, 8, &mut rng);
        let sm = disc_submodel(&store, 2, vec![0, 1], &mut rng, &s);
        let p = sm.predict_cat(&store, &[Value::Cat(1), Value::Num(3.0)]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predict_num_destandardizes() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(2);
        let store = EmbeddingStore::new(&s, 8, &mut rng);
        let sm = disc_submodel(&store, 1, vec![0], &mut rng, &s);
        let (mu, sigma) = sm.predict_num(&store, &[Value::Cat(0)]);
        assert!(mu.is_finite());
        assert!(sigma > 0.0);
        // destandardized σ reflects the domain scale (range 10 ⇒ std ≈ 2.9)
        assert!(sigma < 50.0);
    }

    #[test]
    fn noisy_marginal_submodel_predicts_dist() {
        let sm = SubModel {
            target: 0,
            context: vec![],
            kind: SubModelKind::NoisyMarginal {
                dist: vec![0.25, 0.5, 0.25],
            },
            own_store: None,
        };
        let s = schema();
        let mut rng = StdRng::seed_from_u64(3);
        let store = EmbeddingStore::new(&s, 4, &mut rng);
        assert_eq!(sm.predict_cat(&store, &[]), vec![0.25, 0.5, 0.25]);
        assert!(sm.attention_weights().is_none());
    }

    /// End-to-end sub-model learning: b depends deterministically on a;
    /// non-private SGD training must recover the mapping.
    #[test]
    fn submodel_learns_deterministic_mapping() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = EmbeddingStore::new(&s, 8, &mut rng);
        let mut sm = disc_submodel(&store, 2, vec![0, 1], &mut rng, &s);
        let rows: Vec<TrainRow> = (0..60)
            .map(|i| {
                let a = (i % 3) as u32;
                TrainRow {
                    context: vec![Value::Cat(a), Value::Num((i % 10) as f64)],
                    target: Value::Cat(u32::from(a == 1)),
                }
            })
            .collect();
        let cfg = DpSgd::non_private(0.3, rows.len() as f64);
        for _ in 0..150 {
            let mut trainer = SubModelTrainer {
                store: &mut store,
                sm: &mut sm,
            };
            cfg.step(&mut trainer, &rows, &mut rng);
        }
        let p_yes = sm.predict_cat(&store, &[Value::Cat(1), Value::Num(5.0)]);
        let p_no = sm.predict_cat(&store, &[Value::Cat(0), Value::Num(5.0)]);
        assert!(p_yes[1] > 0.85, "P(b=1 | a=1) = {} too low", p_yes[1]);
        assert!(p_no[0] > 0.85, "P(b=0 | a=0) = {} too low", p_no[0]);
    }

    /// Numeric-target sub-model: x depends linearly on a's code.
    #[test]
    fn submodel_learns_numeric_target() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = EmbeddingStore::new(&s, 8, &mut rng);
        let mut sm = disc_submodel(&store, 1, vec![0], &mut rng, &s);
        let rows: Vec<TrainRow> = (0..60)
            .map(|i| {
                let a = (i % 3) as u32;
                TrainRow {
                    context: vec![Value::Cat(a)],
                    target: Value::Num(2.0 + 3.0 * a as f64),
                }
            })
            .collect();
        // clip like the real pipeline: the Gaussian head's μ-gradient
        // scales like 1/σ², so unclipped SGD destabilizes as σ shrinks
        let cfg = DpSgd {
            clip: 1.0,
            noise_multiplier: 0.0,
            lr: 0.1,
            expected_batch: rows.len() as f64,
        };
        for _ in 0..600 {
            let mut trainer = SubModelTrainer {
                store: &mut store,
                sm: &mut sm,
            };
            cfg.step(&mut trainer, &rows, &mut rng);
        }
        for a in 0..3u32 {
            let (mu, _) = sm.predict_num(&store, &[Value::Cat(a)]);
            let want = 2.0 + 3.0 * a as f64;
            assert!((mu - want).abs() < 0.8, "mu(a={a}) = {mu}, want {want}");
        }
    }

    #[test]
    fn own_store_overrides_shared() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(6);
        let store = EmbeddingStore::new(&s, 8, &mut rng);
        let mut sm = disc_submodel(&store, 2, vec![0], &mut rng, &s);
        let private = EmbeddingStore::new(&s, 8, &mut rng);
        sm.own_store = Some(private);
        // prediction must not panic and must use the private store
        let p = sm.predict_cat(&store, &[Value::Cat(0)]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn gradcheck_full_submodel() {
        // finite-difference check through embedder → attention → head
        let s = schema();
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = EmbeddingStore::new(&s, 4, &mut rng);
        let mut sm = disc_submodel(&store, 2, vec![0, 1], &mut rng, &s);
        let row = TrainRow {
            context: vec![Value::Cat(1), Value::Num(7.0)],
            target: Value::Cat(1),
        };
        let mut trainer = SubModelTrainer {
            store: &mut store,
            sm: &mut sm,
        };
        kamino_nn::testutil::finite_diff_check(
            &mut |t: &mut SubModelTrainer<'_>| {
                // loss via a throwaway gradient pass (grads zeroed after)
                let sm_kind_loss = {
                    let SubModelKind::Discriminative { attention, head } = &t.sm.kind else {
                        unreachable!()
                    };
                    let dim = t.store.dim();
                    let mut embs: Vec<Vec<f64>> = Vec::new();
                    for (&attr, &v) in t.sm.context.iter().zip(&row.context) {
                        let mut e = vec![0.0; dim];
                        t.store.embed(attr, v, &mut e);
                        embs.push(e);
                    }
                    let refs: Vec<&[f64]> = embs.iter().map(Vec::as_slice).collect();
                    let mut v = vec![0.0; dim];
                    attention.forward(&refs, &mut v);
                    let Head::Cat(h) = head else { unreachable!() };
                    -h.predict(&v)[1].ln()
                };
                sm_kind_loss
            },
            &mut |t: &mut SubModelTrainer<'_>| {
                t.forward_backward(&row);
            },
            &mut |t, f| t.visit_blocks(f),
            &mut trainer,
        );
    }
}
