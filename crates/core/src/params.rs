//! Privacy-parameter search (Algorithm 6).
//!
//! Given the end-to-end budget (ε, δ) and the model shape, pick
//! `Ψ = {σ_g, σ_d, σ_w, b, T, …}` so the composed RDP cost converts to at
//! most ε at δ (Eqn. 7). Parameters start at their quality-greedy extremes
//! (σ minimal, `T`/`b` maximal) and are backed off in the paper's priority
//! order — decrease `T`, raise `σ_d`, raise `σ_g`, lower `b` — until the
//! accountant fits the budget.
//!
//! Deviations (documented in DESIGN.md):
//! * `σ_w` is calibrated so the single violation-matrix release consumes a
//!   fixed fraction (10%) of ε under the corrected SGM accounting. The
//!   paper's `ε_w = 100` with the classic calibration formula yields
//!   `σ_w ≈ 0.05`, whose RDP cost alone exceeds any practical ε (the
//!   classic formula is only valid for ε < 1 in the first place).
//! * when the paper's parameter caps cannot reach ε (very tight budgets),
//!   the loop keeps escalating `σ_d`/`σ_g` beyond their caps rather than
//!   looping forever — privacy always wins over accuracy.

use kamino_dp::{Budget, RdpAccountant};

/// The searched parameter set Ψ.
#[derive(Debug, Clone)]
pub struct PrivacyParams {
    /// True when ε = ∞: all noise disabled.
    pub non_private: bool,
    /// Histogram-release noise multiplier `σ_g`.
    pub sigma_g: f64,
    /// DP-SGD noise multiplier `σ_d`.
    pub sigma_d: f64,
    /// Expected batch size `b`.
    pub b: usize,
    /// DP-SGD iterations `T` per sub-model.
    pub t: usize,
    /// Per-example clip `C`.
    pub clip: f64,
    /// Learning rate `η`.
    pub lr: f64,
    /// Whether Algorithm 5 runs (weights unknown).
    pub learn_weights: bool,
    /// Violation-matrix noise multiplier `σ_w`.
    pub sigma_w: f64,
    /// Weight-learning sample cap `L_w`.
    pub l_w: usize,
    /// Weight-learning batch `b_w`.
    pub b_w: usize,
    /// Weight-learning iterations `T_w`.
    pub t_w: usize,
    /// The ε actually achieved at the requested δ (≤ the budget).
    pub achieved_epsilon: f64,
}

/// Model-shape inputs to the search (computed from schema + sequence).
#[derive(Debug, Clone, Copy)]
pub struct SearchShape {
    /// Number of tuples `n`.
    pub n: usize,
    /// DP-SGD-trained sub-models (`k−1` minus large-domain fallbacks).
    pub n_sgd_models: usize,
    /// Full-rate Gaussian histogram releases (first attribute + fallbacks).
    pub n_marginal_releases: usize,
    /// Domain size of the first sequence attribute (`|D(S[1])|`).
    pub first_attr_domain: usize,
    /// Whether soft-DC weights must be learned.
    pub weights_unknown: bool,
    /// Harness scale factor multiplying the `T` range (quality knob only —
    /// fewer iterations always costs *less* privacy).
    pub train_scale: f64,
}

fn total_epsilon(p: &PrivacyParams, shape: &SearchShape, delta: f64) -> f64 {
    let mut acc = RdpAccountant::new();
    acc.add_gaussian(p.sigma_g, shape.n_marginal_releases as u64);
    let q = (p.b as f64 / shape.n as f64).min(1.0);
    acc.add_sgm(p.sigma_d, q, (p.t * shape.n_sgd_models) as u64);
    if p.learn_weights {
        let qw = (p.l_w as f64 / shape.n as f64).min(1.0);
        acc.add_sgm(p.sigma_w, qw, 1);
    }
    acc.epsilon(delta)
}

/// Binary-searches the smallest σ such that one SGM release at rate `q`
/// costs at most `target_eps` at `delta`.
pub fn calibrate_sigma(target_eps: f64, delta: f64, q: f64) -> f64 {
    kamino_dp::calibrate_sgm_sigma(target_eps, delta, q, 1)
}

/// Algorithm 6: search a Ψ fitting `budget` for the given model shape.
pub fn search_params(budget: Budget, shape: SearchShape) -> PrivacyParams {
    let scale = shape.train_scale.max(1e-6);
    let b_max = 32usize;
    let b_min = 16usize;
    let t_max = (((5 * shape.n) as f64 / b_min as f64) * scale)
        .ceil()
        .max(1.0) as usize;
    let t_min = ((shape.n as f64 / b_min as f64) * scale).ceil().max(1.0) as usize;

    if budget.is_non_private() {
        return PrivacyParams {
            non_private: true,
            sigma_g: 0.0,
            sigma_d: 0.0,
            b: b_max,
            t: t_max,
            clip: 1.0,
            lr: 0.05,
            learn_weights: shape.weights_unknown,
            sigma_w: 0.0,
            l_w: 100,
            b_w: 1,
            t_w: 100,
            achieved_epsilon: f64::INFINITY,
        };
    }

    let (eps, delta) = (budget.epsilon, budget.delta);
    // line 3 bounds
    let sigma_g_min = (0.1 / shape.first_attr_domain as f64).max(1e-3);
    let sigma_g_max = 4.0 * (1.25f64 / delta).ln().sqrt() / eps;
    let sigma_d_max = 1.5;

    // σ_w: fixed 10% share of ε for the single violation-matrix release.
    let (sigma_w, l_w) = if shape.weights_unknown {
        let qw = (100.0 / shape.n as f64).min(1.0);
        (calibrate_sigma(0.1 * eps, delta, qw), 100)
    } else {
        (0.0, 100)
    };

    let mut p = PrivacyParams {
        non_private: false,
        sigma_g: sigma_g_min,
        sigma_d: 1.1,
        b: b_max,
        t: t_max,
        clip: 1.0,
        lr: 0.05,
        learn_weights: shape.weights_unknown,
        sigma_w,
        l_w,
        b_w: 1,
        t_w: l_w,
        achieved_epsilon: f64::INFINITY,
    };

    // back-off loop, one adjustment per pass in priority order
    loop {
        let current = total_epsilon(&p, &shape, delta);
        if current <= eps {
            p.achieved_epsilon = current;
            return p;
        }
        if p.t > t_min {
            p.t = ((p.t as f64 * 0.7) as usize).max(t_min);
        } else if p.sigma_d < sigma_d_max {
            p.sigma_d = (p.sigma_d + 0.05).min(sigma_d_max);
        } else if p.sigma_g < sigma_g_max {
            p.sigma_g = (p.sigma_g * 2.0).min(sigma_g_max);
        } else if p.b > b_min {
            p.b = b_min;
        } else {
            // escalation beyond the paper's caps so the loop terminates
            p.sigma_d *= 1.25;
            p.sigma_g *= 1.25;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(n: usize) -> SearchShape {
        SearchShape {
            n,
            n_sgd_models: 14,
            n_marginal_releases: 1,
            first_attr_domain: 16,
            weights_unknown: false,
            train_scale: 1.0,
        }
    }

    #[test]
    fn fits_budget_across_epsilons() {
        for &eps in &[0.1, 0.2, 0.4, 0.8, 1.6] {
            let budget = Budget::new(eps, 1e-6);
            let p = search_params(budget, shape(32_561));
            assert!(!p.non_private);
            assert!(
                p.achieved_epsilon <= eps,
                "eps {eps}: achieved {} exceeds budget",
                p.achieved_epsilon
            );
            assert!(p.achieved_epsilon > 0.0);
        }
    }

    #[test]
    fn tighter_budget_means_more_noise_or_fewer_steps() {
        let loose = search_params(Budget::new(1.6, 1e-6), shape(32_561));
        let tight = search_params(Budget::new(0.1, 1e-6), shape(32_561));
        let loose_work = loose.t as f64 / (loose.sigma_d * loose.sigma_g);
        let tight_work = tight.t as f64 / (tight.sigma_d * tight.sigma_g);
        assert!(
            tight_work < loose_work,
            "tight budget should trade steps/noise: {tight_work} vs {loose_work}"
        );
    }

    #[test]
    fn non_private_budget_disables_noise() {
        let p = search_params(Budget::non_private(), shape(1_000));
        assert!(p.non_private);
        assert_eq!(p.sigma_d, 0.0);
        assert_eq!(p.sigma_g, 0.0);
        assert!(p.achieved_epsilon.is_infinite());
    }

    #[test]
    fn weight_learning_share_is_accounted() {
        let mut sh = shape(30_000);
        sh.weights_unknown = true;
        let budget = Budget::new(1.0, 1e-6);
        let p = search_params(budget, sh);
        assert!(p.learn_weights);
        assert!(p.sigma_w > 0.0);
        assert!(p.achieved_epsilon <= 1.0);
        // the σ_w release alone fits the 10% share
        let mut acc = RdpAccountant::new();
        acc.add_sgm(p.sigma_w, 100.0 / 30_000.0, 1);
        assert!(acc.epsilon(1e-6) <= 0.1 + 1e-6);
    }

    #[test]
    fn calibrate_sigma_hits_target() {
        let sigma = calibrate_sigma(0.1, 1e-6, 0.003);
        let mut acc = RdpAccountant::new();
        acc.add_sgm(sigma, 0.003, 1);
        let eps = acc.epsilon(1e-6);
        assert!(eps <= 0.1 + 1e-9, "eps {eps}");
        // and not absurdly over-noised: half the σ should blow the target
        let mut acc2 = RdpAccountant::new();
        acc2.add_sgm(sigma / 2.0, 0.003, 1);
        assert!(acc2.epsilon(1e-6) > 0.1);
    }

    #[test]
    fn train_scale_shrinks_iterations() {
        let full = search_params(Budget::new(1.0, 1e-6), shape(32_561));
        let mut sh = shape(32_561);
        sh.train_scale = 0.05;
        let scaled = search_params(Budget::new(1.0, 1e-6), sh);
        assert!(scaled.t < full.t);
        assert!(scaled.achieved_epsilon <= 1.0);
    }

    #[test]
    fn terminates_on_tiny_budget() {
        let p = search_params(Budget::new(0.05, 1e-9), shape(2_000));
        assert!(p.achieved_epsilon <= 0.05);
    }

    #[test]
    fn more_submodels_cost_more() {
        let small = search_params(Budget::new(1.0, 1e-6), shape(32_561));
        let mut sh = shape(32_561);
        sh.n_sgd_models = 50;
        let big = search_params(Budget::new(1.0, 1e-6), sh);
        // same budget, more models ⇒ the search must back off harder
        let small_work = small.t as f64 / small.sigma_d;
        let big_work = big.t as f64 / big.sigma_d;
        assert!(big_work <= small_work);
    }
}
