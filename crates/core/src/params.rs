//! Privacy-parameter search (Algorithm 6).
//!
//! Given the end-to-end budget (ε, δ) and the model shape, pick
//! `Ψ = {σ_g, σ_d, σ_w, b, T, …}` so the composed RDP cost converts to at
//! most ε at δ (Eqn. 7). The σ's are no longer hand-tuned constants
//! escalated by a back-off loop: for each candidate iteration count `T`
//! the [`BudgetPlanner`] *solves* the per-mechanism σ's of Theorem 1
//! directly, and the search only walks `T` down from its quality-greedy
//! maximum until the planned DP-SGD noise is below the paper's `σ_d` cap
//! (or `T` bottoms out — privacy always wins over accuracy, so the final
//! plan is accepted whatever its σ's).
//!
//! Deviations (documented in DESIGN.md):
//! * `σ_w` is calibrated so the single violation-matrix release consumes a
//!   fixed fraction (10%) of ε under the corrected SGM accounting. The
//!   paper's `ε_w = 100` with the classic calibration formula yields
//!   `σ_w ≈ 0.05`, whose RDP cost alone exceeds any practical ε (the
//!   classic formula is only valid for ε < 1 in the first place).

use kamino_dp::{Budget, BudgetPlanner, RunShape};

/// The searched parameter set Ψ.
#[derive(Debug, Clone)]
pub struct PrivacyParams {
    /// True when ε = ∞: all noise disabled.
    pub non_private: bool,
    /// Histogram-release noise multiplier `σ_g`.
    pub sigma_g: f64,
    /// DP-SGD noise multiplier `σ_d`.
    pub sigma_d: f64,
    /// Expected batch size `b`.
    pub b: usize,
    /// DP-SGD iterations `T` per sub-model.
    pub t: usize,
    /// Per-example clip `C`.
    pub clip: f64,
    /// Learning rate `η`.
    pub lr: f64,
    /// Whether Algorithm 5 runs (weights unknown).
    pub learn_weights: bool,
    /// Violation-matrix noise multiplier `σ_w`.
    pub sigma_w: f64,
    /// Weight-learning sample cap `L_w`.
    pub l_w: usize,
    /// Weight-learning batch `b_w`.
    pub b_w: usize,
    /// Weight-learning iterations `T_w`.
    pub t_w: usize,
    /// The ε actually achieved at the requested δ (≤ the budget).
    pub achieved_epsilon: f64,
}

/// Model-shape inputs to the search (computed from schema + sequence).
#[derive(Debug, Clone, Copy)]
pub struct SearchShape {
    /// Number of tuples `n`.
    pub n: usize,
    /// DP-SGD-trained sub-models (`k−1` minus large-domain fallbacks).
    pub n_sgd_models: usize,
    /// Full-rate Gaussian histogram releases (first attribute + fallbacks).
    pub n_marginal_releases: usize,
    /// Domain size of the first sequence attribute (`|D(S[1])|`).
    pub first_attr_domain: usize,
    /// Whether soft-DC weights must be learned.
    pub weights_unknown: bool,
    /// Harness scale factor multiplying the `T` range (quality knob only —
    /// fewer iterations always costs *less* privacy).
    pub train_scale: f64,
}

/// Binary-searches the smallest σ such that one SGM release at rate `q`
/// costs at most `target_eps` at `delta`.
pub fn calibrate_sigma(target_eps: f64, delta: f64, q: f64) -> f64 {
    kamino_dp::calibrate_sgm_sigma(target_eps, delta, q, 1)
}

/// The paper's cap on DP-SGD noise: above this, gradient signal drowns and
/// it is better to trade iterations away instead.
const SIGMA_D_CAP: f64 = 1.5;

/// Weight-learning sample cap `L_w` (Algorithm 5's default).
const L_W: usize = 100;

/// Algorithm 6: search a Ψ fitting `budget` for the given model shape.
///
/// The σ's come from the [`BudgetPlanner`] (which solves Theorem 1's
/// composition exactly); the search itself only picks `T`, preferring the
/// quality-greedy maximum and backing off while the planned `σ_d` exceeds
/// the paper's cap.
pub fn search_params(budget: Budget, shape: SearchShape) -> PrivacyParams {
    search_params_with_obs(budget, shape, &kamino_obs::ObsHandle::disabled())
}

/// [`search_params`], recording the accepted plan's σ calibrations and
/// composed ε/δ spend on `obs`' budget ledger. Back-off iterations the
/// search discards are not recorded — the ledger reflects what the run
/// actually spends. The returned Ψ is byte-identical to [`search_params`].
pub fn search_params_with_obs(
    budget: Budget,
    shape: SearchShape,
    obs: &kamino_obs::ObsHandle,
) -> PrivacyParams {
    let scale = shape.train_scale.max(1e-6);
    let b = 32usize;
    let b_min = 16usize;
    let t_max = (((5 * shape.n) as f64 / b_min as f64) * scale)
        .ceil()
        .max(1.0) as usize;
    let t_min = ((shape.n as f64 / b_min as f64) * scale).ceil().max(1.0) as usize;

    if budget.is_non_private() {
        return PrivacyParams {
            non_private: true,
            sigma_g: 0.0,
            sigma_d: 0.0,
            b,
            t: t_max,
            clip: 1.0,
            lr: 0.05,
            learn_weights: shape.weights_unknown,
            sigma_w: 0.0,
            l_w: L_W,
            b_w: 1,
            t_w: 100,
            achieved_epsilon: f64::INFINITY,
        };
    }

    let planner = BudgetPlanner::new(budget);
    let run_shape = |t: usize| RunShape {
        n: shape.n,
        histogram_releases: shape.n_marginal_releases as u64,
        sgd_steps: (t * shape.n_sgd_models) as u64,
        batch: b,
        weight_sample: if shape.weights_unknown { L_W } else { 0 },
    };

    let mut t = t_max;
    let mut plan = planner.plan(&run_shape(t));
    while plan.sigma_d > SIGMA_D_CAP && t > t_min {
        t = ((t as f64 * 0.7) as usize).max(t_min);
        plan = planner.plan(&run_shape(t));
    }
    if obs.is_enabled() {
        // replay the accepted plan with the ledger attached; planning is
        // deterministic, so this changes nothing but records everything
        plan = planner.plan_with_obs(&run_shape(t), obs);
    }

    PrivacyParams {
        non_private: false,
        sigma_g: plan.sigma_g,
        sigma_d: plan.sigma_d,
        b,
        t,
        clip: 1.0,
        lr: 0.05,
        learn_weights: shape.weights_unknown,
        sigma_w: plan.sigma_w,
        l_w: L_W,
        b_w: 1,
        t_w: L_W,
        achieved_epsilon: plan.achieved_epsilon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_dp::RdpAccountant;

    fn shape(n: usize) -> SearchShape {
        SearchShape {
            n,
            n_sgd_models: 14,
            n_marginal_releases: 1,
            first_attr_domain: 16,
            weights_unknown: false,
            train_scale: 1.0,
        }
    }

    #[test]
    fn fits_budget_across_epsilons() {
        for &eps in &[0.1, 0.2, 0.4, 0.8, 1.6] {
            let budget = Budget::new(eps, 1e-6);
            let p = search_params(budget, shape(32_561));
            assert!(!p.non_private);
            assert!(
                p.achieved_epsilon <= eps,
                "eps {eps}: achieved {} exceeds budget",
                p.achieved_epsilon
            );
            assert!(p.achieved_epsilon > 0.0);
        }
    }

    #[test]
    fn tighter_budget_means_more_noise_or_fewer_steps() {
        let loose = search_params(Budget::new(1.6, 1e-6), shape(32_561));
        let tight = search_params(Budget::new(0.1, 1e-6), shape(32_561));
        let loose_work = loose.t as f64 / (loose.sigma_d * loose.sigma_g);
        let tight_work = tight.t as f64 / (tight.sigma_d * tight.sigma_g);
        assert!(
            tight_work < loose_work,
            "tight budget should trade steps/noise: {tight_work} vs {loose_work}"
        );
    }

    #[test]
    fn non_private_budget_disables_noise() {
        let p = search_params(Budget::non_private(), shape(1_000));
        assert!(p.non_private);
        assert_eq!(p.sigma_d, 0.0);
        assert_eq!(p.sigma_g, 0.0);
        assert!(p.achieved_epsilon.is_infinite());
    }

    #[test]
    fn weight_learning_share_is_accounted() {
        let mut sh = shape(30_000);
        sh.weights_unknown = true;
        let budget = Budget::new(1.0, 1e-6);
        let p = search_params(budget, sh);
        assert!(p.learn_weights);
        assert!(p.sigma_w > 0.0);
        assert!(p.achieved_epsilon <= 1.0);
        // the σ_w release alone fits the 10% share
        let mut acc = RdpAccountant::new();
        acc.add_sgm(p.sigma_w, 100.0 / 30_000.0, 1);
        assert!(acc.epsilon(1e-6) <= 0.1 + 1e-6);
    }

    #[test]
    fn calibrate_sigma_hits_target() {
        let sigma = calibrate_sigma(0.1, 1e-6, 0.003);
        let mut acc = RdpAccountant::new();
        acc.add_sgm(sigma, 0.003, 1);
        let eps = acc.epsilon(1e-6);
        assert!(eps <= 0.1 + 1e-9, "eps {eps}");
        // and not absurdly over-noised: half the σ should blow the target
        let mut acc2 = RdpAccountant::new();
        acc2.add_sgm(sigma / 2.0, 0.003, 1);
        assert!(acc2.epsilon(1e-6) > 0.1);
    }

    #[test]
    fn train_scale_shrinks_iterations() {
        let full = search_params(Budget::new(1.0, 1e-6), shape(32_561));
        let mut sh = shape(32_561);
        sh.train_scale = 0.05;
        let scaled = search_params(Budget::new(1.0, 1e-6), sh);
        assert!(scaled.t < full.t);
        assert!(scaled.achieved_epsilon <= 1.0);
    }

    #[test]
    fn terminates_on_tiny_budget() {
        let p = search_params(Budget::new(0.05, 1e-9), shape(2_000));
        assert!(p.achieved_epsilon <= 0.05);
    }

    #[test]
    fn more_submodels_cost_more() {
        let small = search_params(Budget::new(1.0, 1e-6), shape(32_561));
        let mut sh = shape(32_561);
        sh.n_sgd_models = 50;
        let big = search_params(Budget::new(1.0, 1e-6), sh);
        // same budget, more models ⇒ the search must back off harder
        let small_work = small.t as f64 / small.sigma_d;
        let big_work = big.t as f64 / big.sigma_d;
        assert!(big_work <= small_work);
    }
}
