//! The end-to-end Kamino pipeline (Algorithm 1).

use std::time::Duration;

use kamino_constraints::{DenialConstraint, Hardness};
use kamino_data::{Instance, Schema};
use kamino_dp::Budget;
use kamino_obs::events::Event;
use kamino_obs::{clock, ObsHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ar_sampler::{synthesize_ar, ArSampleConfig};
use crate::params::{search_params_with_obs, PrivacyParams, SearchShape};
use crate::sampler::{synthesize_timed, SampleConfig, SampleTimings};
use crate::sequence::{random_sequence, sequence_attrs};
use crate::train::{count_marginal_releases, count_sgd_models, train_model, TrainConfig};
use crate::weights::{learn_weights, WeightConfig, HARD_WEIGHT};

/// Configuration for one end-to-end Kamino run. Use
/// [`KaminoConfig::new`] and adjust fields; defaults match the paper's
/// setup at harness scale.
#[derive(Debug, Clone)]
pub struct KaminoConfig {
    /// The privacy budget (ε, δ); [`Budget::non_private`] for ε = ∞.
    pub budget: Budget,
    /// RNG seed — every source of randomness derives from it.
    pub seed: u64,
    /// Embedding dimension `d`.
    pub embed_dim: usize,
    /// Learning rate `η`.
    pub lr: f64,
    /// Candidate-set size `d` for continuous targets.
    pub d_candidates: usize,
    /// MCMC re-sampling amount as a fraction of `n` (`m = ratio·n`,
    /// Experiment 9's x-axis).
    pub mcmc_ratio: f64,
    /// Train sub-models in parallel with private embeddings (Exp. 10).
    pub parallel_training: bool,
    /// Constraint-aware sampling on/off (off = "RandSampling").
    pub constraint_aware_sampling: bool,
    /// Constraint-aware sequencing on/off (off = "RandSequence").
    pub constraint_aware_sequencing: bool,
    /// Hard-FD lookup fast path (Exp. 10).
    pub hard_fd_lookup: bool,
    /// Use accept–reject sampling instead of Algorithm 3 (Exp. 6).
    pub ar_sampling: bool,
    /// Route candidate scoring and DP-SGD gradient microbatches through
    /// the rayon-backed parallel substrate. Purely a performance switch —
    /// outputs are bit-identical to the serial path for a fixed seed
    /// (unlike `parallel_training`, which changes the trained model).
    pub parallel_substrate: bool,
    /// Scales the DP-SGD iteration range of Algorithm 6 (quality knob for
    /// harness runs; always privacy-safe).
    pub train_scale: f64,
    /// Rows to synthesize (`None` = same as the input instance).
    pub output_n: Option<usize>,
    /// Domain-size threshold for the §4.3 noisy-marginal fallback.
    pub large_domain_threshold: usize,
    /// Row shards synthesized concurrently per column pass (see
    /// [`crate::sampler`]'s module docs). `1` is the sequential Algorithm
    /// 3, bit-identical to the pre-sharding sampler; defaults to the
    /// `KAMINO_SHARDS` environment variable when set (the CI matrix uses
    /// it to run the whole suite through the sharded engine), else `1`.
    pub shards: usize,
    /// Observability handle: spans, metrics and the DP budget ledger.
    /// Disabled by default, and strictly off the determinism contract —
    /// never encoded into snapshots or [`KaminoConfig::stable_hash`], and
    /// enabling it changes no RNG stream or output byte.
    pub obs: ObsHandle,
}

impl KaminoConfig {
    /// Defaults for the given budget.
    pub fn new(budget: Budget) -> KaminoConfig {
        KaminoConfig {
            budget,
            seed: 0,
            embed_dim: 16,
            lr: 0.05,
            d_candidates: 10,
            mcmc_ratio: 0.0,
            parallel_training: false,
            constraint_aware_sampling: true,
            constraint_aware_sequencing: true,
            hard_fd_lookup: false,
            ar_sampling: false,
            parallel_substrate: true,
            train_scale: 1.0,
            output_n: None,
            large_domain_threshold: 256,
            shards: shards_from_env(),
            obs: ObsHandle::disabled(),
        }
    }

    /// A stable 64-bit fingerprint of every knob that can change the
    /// fitted model or its deterministic sample stream: FNV-1a over the
    /// config's snapshot encoding (the fields
    /// [`crate::snapshot::encode_config`] persists), with the two
    /// execution-only switches normalized out first — `shards` (a
    /// post-fit engine knob; [`FittedKamino::set_shards`] retunes it on
    /// any loaded session) and `parallel_substrate` (bit-identical to
    /// serial by construction). Snapshot caches (the `kamino-repro`
    /// harness) key on this, so equal hashes mean a cached fit is
    /// interchangeable with a fresh one no matter the host's
    /// `KAMINO_SHARDS` or core count. Note the corpus itself is an input
    /// to the fit, not a config field — cache keys must add it (rows,
    /// generator seed) alongside this hash.
    pub fn stable_hash(&self) -> u64 {
        let mut normalized = self.clone();
        normalized.shards = 1;
        normalized.parallel_substrate = true;
        let mut w = kamino_data::wire::ByteWriter::new();
        crate::snapshot::encode_config(&normalized, &mut w);
        // FNV-1a, 64-bit: tiny, dependency-free, stable across platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in w.into_bytes().iter() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }
}

/// The `KAMINO_SHARDS` default: lets CI (and operators) force every
/// pipeline run through the sharded engine without touching call sites.
fn shards_from_env() -> usize {
    std::env::var("KAMINO_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Wall-clock time per pipeline phase — the series of Figure 7, extended
/// with the sample-side breakdown of Algorithm 3 (fill / cross-shard
/// repair / constrained MCMC). The fit-side fields are measured on every
/// run; the sample-side breakdown accumulates across
/// [`FittedKamino::sample`] calls when the session's
/// [`KaminoConfig::obs`] handle is enabled (with it disabled the sampler
/// performs no clock reads at all).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Algorithm 4 (+ Algorithm 6 parameter search).
    pub sequencing: Duration,
    /// Algorithm 2 (model training).
    pub training: Duration,
    /// Violation matrix + Algorithm 5 (zero when all DCs are hard).
    pub dc_weights: Duration,
    /// Algorithm 3 / accept–reject sampling, end to end.
    pub sampling: Duration,
    /// Sample-side: per-column fill passes (Algorithm 3 lines 4–11).
    pub sample_fill: Duration,
    /// Sample-side: cross-shard repair sweeps (zero on 1-shard runs).
    pub sample_repair: Duration,
    /// Sample-side: constrained MCMC (Algorithm 3 line 12).
    pub sample_mcmc: Duration,
}

impl PhaseTimings {
    /// Total end-to-end time. The sample-side fields are a breakdown of
    /// `sampling`, not an addition to it.
    pub fn total(&self) -> Duration {
        self.sequencing + self.training + self.dc_weights + self.sampling
    }
}

/// Everything a Kamino run produces.
pub struct KaminoReport {
    /// The synthetic instance `D'`.
    pub instance: Instance,
    /// The schema sequence used.
    pub sequence: Vec<usize>,
    /// Final DC weights (aligned with the input DC list).
    pub weights: Vec<f64>,
    /// The privacy parameters Ψ selected by Algorithm 6.
    pub params: PrivacyParams,
    /// Per-phase wall-clock timings (Figure 7).
    pub timings: PhaseTimings,
}

/// A trained synthesis session: everything Algorithm 1 produces *before*
/// sampling (lines 2–5), plus the RNG stream, so sampling can run many
/// times — in batches, with different shard counts — without re-spending
/// the privacy budget. Synthesis from a trained model is post-processing:
/// it never touches the true instance, so every [`FittedKamino::sample`]
/// call is covered by the (ε, δ) spent at fit time.
///
/// Obtained from [`fit_kamino`]; the `kamino` facade wraps it in the
/// `Synthesizer` session API.
pub struct FittedKamino {
    /// The schema sequence used (Algorithm 4's output).
    pub sequence: Vec<usize>,
    /// Final DC weights (aligned with the DC list).
    pub weights: Vec<f64>,
    /// The privacy parameters Ψ selected by the planner-backed Algorithm 6.
    pub params: PrivacyParams,
    /// Wall-clock timings of the fit phases (sampling still zero).
    pub timings: PhaseTimings,
    schema: Schema,
    dcs: Vec<DenialConstraint>,
    model: crate::model::DataModel,
    cfg: KaminoConfig,
    n_input: usize,
    rng: StdRng,
}

/// Runs Algorithm 1's lines 2–5: sequencing → parameter search → model
/// training → weight learning. The returned [`FittedKamino`] samples any
/// number of synthetic instances without further budget cost.
pub fn fit_kamino(
    schema: &Schema,
    instance: &Instance,
    dcs: &[DenialConstraint],
    cfg: &KaminoConfig,
) -> FittedKamino {
    let n = instance.n_rows();
    assert!(n > 0, "cannot synthesize from an empty instance");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4A31);
    let mut timings = PhaseTimings::default();
    let obs = &cfg.obs;
    let _fit_span = obs.span("fit");

    // Line 2: sequencing (Algorithm 4), line 3: parameter search
    // (Algorithm 6). Both are data-independent. Phase timing routes
    // through the obs::clock choke point and is surfaced only under
    // --timings / the obs exporters — never part of a deterministic
    // artifact.
    let phase_span = obs.span("fit.sequencing");
    let t0 = clock::now_nanos();
    let sequence = if cfg.constraint_aware_sequencing {
        sequence_attrs(schema, dcs)
    } else {
        random_sequence(schema, &mut rng)
    };
    let weights_unknown = dcs.iter().any(|dc| dc.hardness == Hardness::Soft);
    let shape = SearchShape {
        n,
        n_sgd_models: count_sgd_models(schema, &sequence, cfg.large_domain_threshold),
        n_marginal_releases: count_marginal_releases(schema, &sequence, cfg.large_domain_threshold),
        first_attr_domain: schema.attr(sequence[0]).domain_size(),
        weights_unknown,
        train_scale: cfg.train_scale,
    };
    let params = search_params_with_obs(cfg.budget, shape, obs);
    timings.sequencing = Duration::from_nanos(clock::now_nanos().saturating_sub(t0));
    drop(phase_span);
    obs.event(Event::Phase {
        name: "fit.sequencing",
        dur_ns: timings.sequencing.as_nanos() as u64,
    });

    // Line 4: TrainModel (Algorithm 2).
    let phase_span = obs.span("fit.training");
    let t0 = clock::now_nanos();
    let train_cfg = TrainConfig {
        embed_dim: cfg.embed_dim,
        lr: cfg.lr,
        batch: params.b,
        iters: params.t,
        clip: params.clip,
        sigma_g: params.sigma_g,
        sigma_d: params.sigma_d,
        parallel: cfg.parallel_training,
        microbatch_parallel: cfg.parallel_substrate,
        large_domain_threshold: cfg.large_domain_threshold,
        seed: cfg.seed,
    };
    let model = train_model(schema, instance, &sequence, &train_cfg);
    timings.training = Duration::from_nanos(clock::now_nanos().saturating_sub(t0));
    drop(phase_span);
    obs.event(Event::Phase {
        name: "fit.training",
        dur_ns: timings.training.as_nanos() as u64,
    });

    // Line 5: LearnWeight (Algorithm 5).
    let phase_span = obs.span("fit.dc_weights");
    let t0 = clock::now_nanos();
    let weights = if weights_unknown {
        let wcfg = WeightConfig {
            l_w: params.l_w,
            sigma_w: params.sigma_w,
            t_w: params.t_w,
            b_w: params.b_w,
            ..WeightConfig::default()
        };
        learn_weights(schema, instance, dcs, &sequence, &wcfg, &mut rng)
    } else {
        vec![HARD_WEIGHT; dcs.len()]
    };
    timings.dc_weights = Duration::from_nanos(clock::now_nanos().saturating_sub(t0));
    drop(phase_span);
    obs.event(Event::Phase {
        name: "fit.dc_weights",
        dur_ns: timings.dc_weights.as_nanos() as u64,
    });

    FittedKamino {
        sequence,
        weights,
        params,
        timings,
        schema: schema.clone(),
        dcs: dcs.to_vec(),
        model,
        cfg: cfg.clone(),
        n_input: n,
        rng,
    }
}

impl FittedKamino {
    /// The ε the fit actually spent at the budget's δ.
    pub fn achieved_epsilon(&self) -> f64 {
        self.params.achieved_epsilon
    }

    /// The DC list the session samples under (snapshot support).
    pub fn dcs(&self) -> &[DenialConstraint] {
        &self.dcs
    }

    /// The trained data model `M` (snapshot support).
    pub fn model(&self) -> &crate::model::DataModel {
        &self.model
    }

    /// The pipeline configuration the session was fitted with (snapshot
    /// support).
    pub fn config(&self) -> &KaminoConfig {
        &self.cfg
    }

    /// The session RNG's cursor — the exact generator state the next
    /// [`FittedKamino::sample`] call will consume. Persisting it is what
    /// makes a reloaded session continue the deterministic sample stream
    /// where the saved one stopped.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Reassembles a session from persisted parts (snapshot support).
    /// `rng_state` positions the sample stream; everything else matches
    /// the fields [`fit_kamino`] produces.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        sequence: Vec<usize>,
        weights: Vec<f64>,
        params: PrivacyParams,
        timings: PhaseTimings,
        schema: Schema,
        dcs: Vec<DenialConstraint>,
        model: crate::model::DataModel,
        cfg: KaminoConfig,
        n_input: usize,
        rng_state: [u64; 4],
    ) -> FittedKamino {
        FittedKamino {
            sequence,
            weights,
            params,
            timings,
            schema,
            dcs,
            model,
            cfg,
            n_input,
            rng: StdRng::from_state(rng_state),
        }
    }

    /// Rewinds (or fast-forwards) the sample stream to a previously
    /// captured [`FittedKamino::rng_state`] cursor. The serving layer
    /// uses this to discard speculatively pre-drawn batches: restoring
    /// the state captured before a draw makes the session behave as if
    /// that draw never happened, keeping pooled and direct sample
    /// streams bit-identical.
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }

    /// The schema this session synthesizes for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows in the true instance the session was fitted on.
    pub fn n_input(&self) -> usize {
        self.n_input
    }

    /// Changes the shard count used by subsequent [`FittedKamino::sample`]
    /// calls. Sharding is an execution knob, not a model property: the
    /// trained model and the privacy spend are untouched, so a serving
    /// layer (or a benchmark) can re-tune it per draw.
    pub fn set_shards(&mut self, shards: usize) {
        assert!(shards >= 1, "at least one shard");
        self.cfg.shards = shards;
    }

    /// Synthesizes `n` rows (Algorithm 3, or the Exp. 6 accept–reject
    /// variant when the config asks for it), advancing the session's RNG
    /// stream. Pure post-processing: spends no additional budget.
    pub fn sample(&mut self, n: usize) -> Instance {
        let obs = self.cfg.obs.clone();
        let enabled = obs.is_enabled();
        let t0 = if enabled { clock::now_nanos() } else { 0 };
        let mut span = obs.span("sample");
        if span.is_active() {
            span.arg("n", n.to_string());
            span.arg("shards", self.cfg.shards.to_string());
        }
        let (inst, breakdown) = if self.cfg.ar_sampling {
            let inst = synthesize_ar(
                &self.schema,
                &self.model,
                &self.dcs,
                &self.weights,
                &ArSampleConfig::new(n),
                &mut self.rng,
            );
            (inst, SampleTimings::default())
        } else {
            let sample_cfg = SampleConfig {
                n,
                d_candidates: self.cfg.d_candidates,
                max_cat_candidates: 64,
                mcmc_resamples: (self.cfg.mcmc_ratio * n as f64).round() as usize,
                constraint_aware: self.cfg.constraint_aware_sampling,
                hard_fd_lookup: self.cfg.hard_fd_lookup,
                parallel: self.cfg.parallel_substrate,
                shards: self.cfg.shards,
                repair_sweeps: 4,
            };
            synthesize_timed(
                &self.schema,
                &self.model,
                &self.dcs,
                &self.weights,
                &sample_cfg,
                &mut self.rng,
                &obs,
            )
        };
        drop(span);
        if enabled {
            self.timings.sample_fill += breakdown.fill;
            self.timings.sample_repair += breakdown.repair;
            self.timings.sample_mcmc += breakdown.mcmc;
            self.timings.sampling += Duration::from_nanos(clock::now_nanos().saturating_sub(t0));
        }
        inst
    }
}

/// Runs Kamino end-to-end (Algorithm 1): sequencing → parameter search →
/// model training → weight learning → constraint-aware sampling.
pub fn run_kamino(
    schema: &Schema,
    instance: &Instance,
    dcs: &[DenialConstraint],
    cfg: &KaminoConfig,
) -> KaminoReport {
    let mut fitted = fit_kamino(schema, instance, dcs, cfg);

    // Line 6: Synthesize. Timed through the obs::clock choke point;
    // surfaced only under --timings, never part of a deterministic
    // artifact.
    let t0 = clock::now_nanos();
    let out_n = cfg.output_n.unwrap_or(fitted.n_input);
    let instance_out = fitted.sample(out_n);
    let mut timings = fitted.timings;
    timings.sampling = Duration::from_nanos(clock::now_nanos().saturating_sub(t0));

    KaminoReport {
        instance: instance_out,
        sequence: fitted.sequence,
        weights: fitted.weights,
        params: fitted.params,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_constraints::violation_percentage;
    use kamino_datasets::{adult_like, br2000_like};

    fn fast_cfg(budget: Budget, seed: u64) -> KaminoConfig {
        let mut cfg = KaminoConfig::new(budget);
        cfg.train_scale = 0.02;
        cfg.embed_dim = 8;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn end_to_end_private_run_preserves_hard_dcs() {
        let d = adult_like(400, 1);
        let cfg = fast_cfg(Budget::new(1.0, 1e-6), 2);
        let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        assert_eq!(report.instance.n_rows(), 400);
        assert!(report.params.achieved_epsilon <= 1.0);
        for dc in &d.dcs {
            let pct = violation_percentage(dc, &report.instance);
            assert_eq!(pct, 0.0, "hard DC {} violated: {pct}%", dc.name);
        }
        // every weight is the hard weight
        assert!(report.weights.iter().all(|w| w.is_infinite()));
    }

    #[test]
    fn soft_dcs_learn_weights_end_to_end() {
        // Soft-DC tracking needs a model that actually learned the
        // concordance structure, so run non-privately at a workable n (the
        // private regime at realistic n is exercised by the bench harness).
        let d = br2000_like(500, 3);
        let mut cfg = fast_cfg(Budget::non_private(), 4);
        cfg.train_scale = 1.0;
        cfg.lr = 0.3;
        let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        assert_eq!(report.weights.len(), 3);
        assert!(
            report.weights.iter().all(|w| w.is_finite()),
            "soft weights must be finite"
        );
        // soft regime: violations allowed but far below the i.i.d. level
        for dc in &d.dcs {
            let pct = violation_percentage(dc, &report.instance);
            assert!(
                pct < 15.0,
                "soft DC {} at {pct}% — far outside the soft regime",
                dc.name
            );
        }
    }

    #[test]
    fn ablation_switches_are_honored() {
        let d = adult_like(250, 5);
        let mut cfg = fast_cfg(Budget::new(1.0, 1e-6), 6);
        cfg.constraint_aware_sequencing = false;
        cfg.constraint_aware_sampling = false;
        let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        // RandBoth still produces a full instance
        assert_eq!(report.instance.n_rows(), 250);
        // the random sequence is still a permutation
        let mut seq = report.sequence.clone();
        seq.sort_unstable();
        assert_eq!(seq, (0..d.schema.len()).collect::<Vec<_>>());
    }

    #[test]
    fn output_n_controls_size() {
        let d = adult_like(200, 7);
        let mut cfg = fast_cfg(Budget::new(1.0, 1e-6), 8);
        cfg.output_n = Some(90);
        let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        assert_eq!(report.instance.n_rows(), 90);
    }

    #[test]
    fn timings_are_populated() {
        let d = adult_like(200, 9);
        let cfg = fast_cfg(Budget::new(1.0, 1e-6), 10);
        let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        assert!(report.timings.training > Duration::ZERO);
        assert!(report.timings.sampling > Duration::ZERO);
        assert!(report.timings.total() >= report.timings.training);
    }

    #[test]
    fn non_private_run_works() {
        let d = adult_like(200, 11);
        let cfg = fast_cfg(Budget::non_private(), 12);
        let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        assert!(report.params.non_private);
        for dc in &d.dcs {
            assert_eq!(violation_percentage(dc, &report.instance), 0.0);
        }
    }

    #[test]
    fn ar_sampling_path_runs() {
        let d = adult_like(200, 13);
        let mut cfg = fast_cfg(Budget::new(1.0, 1e-6), 14);
        cfg.ar_sampling = true;
        let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        assert_eq!(report.instance.n_rows(), 200);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = adult_like(150, 15);
        let cfg = fast_cfg(Budget::new(1.0, 1e-6), 16);
        let a = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        let b = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        assert_eq!(a.instance, b.instance);
    }

    #[test]
    fn stable_hash_tracks_model_affecting_knobs() {
        let a = fast_cfg(Budget::new(1.0, 1e-6), 2);
        let b = fast_cfg(Budget::new(1.0, 1e-6), 2);
        assert_eq!(a.stable_hash(), b.stable_hash(), "equal configs must agree");
        let mut c = fast_cfg(Budget::new(1.0, 1e-6), 3);
        assert_ne!(
            a.stable_hash(),
            c.stable_hash(),
            "seed must change the hash"
        );
        c.seed = 2;
        assert_eq!(a.stable_hash(), c.stable_hash());
        c.budget = Budget::new(0.5, 1e-6);
        assert_ne!(
            a.stable_hash(),
            c.stable_hash(),
            "budget must change the hash"
        );
        // execution-only knobs are normalized out: a cached fit is
        // interchangeable regardless of shard count or substrate switch
        c.budget = Budget::new(1.0, 1e-6);
        c.shards = 8;
        c.parallel_substrate = false;
        assert_eq!(
            a.stable_hash(),
            c.stable_hash(),
            "shards/substrate must not change the hash"
        );
    }

    #[test]
    fn soft_dc_violation_rates_tracked() {
        // Requirement R1: synthetic violation profile ≈ truth profile.
        // With the BR2000-like generator the truth rates are sub-percent;
        // check the synthetic rates stay in a comparable (small) regime.
        let d = br2000_like(500, 17);
        let mut cfg = fast_cfg(Budget::non_private(), 18);
        cfg.train_scale = 1.0;
        cfg.lr = 0.3;
        let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        for dc in &d.dcs {
            let truth = violation_percentage(dc, &d.instance);
            let synth = violation_percentage(dc, &report.instance);
            assert!(
                synth <= (truth + 2.0) * 5.0,
                "DC {}: synth {synth}% vs truth {truth}% — not in the same regime",
                dc.name
            );
        }
    }
}
