//! Constraint-aware database sampling (Algorithm 3).
//!
//! Synthesis walks the schema sequence; for each attribute `S[j]` it fills
//! all `n` cells in tuple order. A candidate value `v` for cell
//! `t_i[S[j]]` is drawn with probability
//!
//! ```text
//! P[v] ∝ p_{v|c} · exp(−Σ_{φ ∈ Φ_{S[j]}} w_φ · |V(φ, t_i[S_:j]=c ∧ t_i[S[j]]=v | D'_:i)|)
//! ```
//!
//! where `p_{v|c}` comes from the learned sub-model and the violation
//! counts from the incremental [`DcCounter`]s. Hard DCs (`w = ∞`) zero the
//! probability of any violating candidate; if *every* candidate violates,
//! the sampler falls back to the candidate with the fewest violations
//! (breaking ties by model probability) rather than sampling uniformly
//! from garbage.
//!
//! Also implemented here:
//! * the constrained MCMC step (line 12): after each column pass, `m`
//!   random cells of that column are re-sampled conditioned on all other
//!   cells, using counter `remove`/`insert`;
//! * the §7.3.6 hard-FD lookup fast path: when the attribute being sampled
//!   is the dependent of a hard FD and the determinant group already
//!   exists, the forced value is copied directly instead of scored;
//! * the "RandSampling" ablation (Experiment 5): `constraint_aware =
//!   false` samples i.i.d. from the model.

use kamino_constraints::{CandidateRow, CellContext, DenialConstraint, ScoreSet};
use kamino_data::stats::sample_weighted;
use kamino_data::{AttrKind, Instance, Quantizer, Schema, Value};
use rand::Rng;

use crate::model::{DataModel, SubModel, SubModelKind};
use crate::sequence::active_dcs_by_position;

/// Sampling configuration (Algorithm 3's `W, L, N` inputs plus ablation
/// switches).
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// Number of tuples to synthesize.
    pub n: usize,
    /// Candidate-set size `d` for continuous targets.
    pub d_candidates: usize,
    /// Cap on candidate values for very large categorical domains (§4.2's
    /// "selected set of values of size d").
    pub max_cat_candidates: usize,
    /// MCMC re-samples `m` per attribute pass (0 disables MCMC).
    pub mcmc_resamples: usize,
    /// When false, samples i.i.d. from the model (RandSampling ablation).
    pub constraint_aware: bool,
    /// Enable the hard-FD lookup fast path (Exp. 10).
    pub hard_fd_lookup: bool,
    /// Route candidate scoring through the rayon-backed parallel
    /// substrate (`constraints::score`). Purely a performance switch: the
    /// sampled output is bit-identical either way.
    pub parallel: bool,
}

impl SampleConfig {
    /// Defaults for synthesizing `n` tuples.
    pub fn new(n: usize) -> SampleConfig {
        SampleConfig {
            n,
            d_candidates: 10,
            max_cat_candidates: 64,
            mcmc_resamples: 0,
            constraint_aware: true,
            hard_fd_lookup: false,
            parallel: true,
        }
    }
}

/// Synthesizes an instance from the trained model (Algorithm 3).
///
/// `weights` is aligned with `dcs`; hard DCs carry
/// [`crate::weights::HARD_WEIGHT`].
pub fn synthesize<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    dcs: &[DenialConstraint],
    weights: &[f64],
    cfg: &SampleConfig,
    rng: &mut R,
) -> Instance {
    assert_eq!(dcs.len(), weights.len(), "one weight per DC");
    assert!(cfg.n > 0, "cannot synthesize an empty instance");
    let n = cfg.n;
    let k = model.sequence.len();
    let mut inst = Instance::zeroed(schema, n);
    let active = active_dcs_by_position(&model.sequence, dcs);

    for (j, active_j) in active.iter().enumerate().take(k) {
        let target = model.sequence[j];
        let mut scores = ScoreSet::build(active_j, dcs);

        for i in 0..n {
            let value = sample_cell(schema, model, j, &inst, i, &scores, weights, cfg, rng);
            inst.set(i, target, value);
            scores.insert(&CandidateRow::committed(&inst, i, target));
        }

        // Constrained MCMC (line 12): re-sample m random cells of this
        // column conditioned on everything else. Each site draw and its
        // candidate draws share one interleaved RNG stream, and every
        // site is re-scored through the same batch substrate as the main
        // pass.
        for _ in 0..cfg.mcmc_resamples {
            let r = rng.gen_range(0..n);
            scores.remove(&CandidateRow::committed(&inst, r, target));
            let value = sample_cell(schema, model, j, &inst, r, &scores, weights, cfg, rng);
            inst.set(r, target, value);
            scores.insert(&CandidateRow::committed(&inst, r, target));
        }
    }
    inst
}

/// Draws one cell value for row `row` at sequence position `j`.
#[allow(clippy::too_many_arguments)]
fn sample_cell<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    j: usize,
    inst: &Instance,
    row: usize,
    scores: &ScoreSet,
    weights: &[f64],
    cfg: &SampleConfig,
    rng: &mut R,
) -> Value {
    let target = model.sequence[j];

    // Hard-FD lookup fast path (§7.3.6): when sampling the dependent of a
    // hard FD whose determinant group already exists and is consistent,
    // copy the forced value.
    if cfg.hard_fd_lookup && cfg.constraint_aware {
        for (l, c) in scores.iter() {
            if weights[l].is_infinite() && c.fd_rhs() == Some(target) {
                let placeholder = placeholder_value(schema, target);
                let probe = CandidateRow::new(inst, row, target, placeholder);
                if let Some(v) = c.required_value(&probe) {
                    return v;
                }
            }
        }
    }

    let mut candidates = candidate_values(schema, model, j, inst, row, cfg, rng);
    if !cfg.constraint_aware || scores.is_empty() {
        let probs: Vec<f64> = candidates.iter().map(|&(_, p)| p).collect();
        return candidates[sample_weighted(&probs, rng)].0;
    }

    // For hard FDs whose dependent is the attribute being sampled, the
    // only violation-free value is the one the determinant group already
    // carries. Continuous candidate sets almost never contain it by
    // chance, so inject it (this is the "selected set of values" of §4.2:
    // candidates the model alone would miss but the constraints demand).
    for (l, c) in scores.iter() {
        if weights[l].is_infinite() && c.fd_rhs() == Some(target) {
            let placeholder = placeholder_value(schema, target);
            let probe = CandidateRow::new(inst, row, target, placeholder);
            if let Some(v) = c.required_value(&probe) {
                if !candidates
                    .iter()
                    .any(|&(cv, _)| cv.compare(v) == std::cmp::Ordering::Equal)
                {
                    let p = candidates.iter().map(|&(_, p)| p).fold(0.0, f64::max);
                    candidates.push((v, p.max(1e-12)));
                }
            }
        }
    }

    // Hard strict-order DCs leave a closed feasible band [lo, hi] for a
    // numeric target; Gaussian candidates land outside it almost surely
    // once the prefix is long, so clamp them in (keeping the model's
    // within-band preferences). This is the order-DC analogue of the FD
    // value injection above.
    if matches!(schema.attr(target).kind, AttrKind::Numeric { .. }) {
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        let mut bounded = false;
        for (l, c) in scores.iter() {
            if !weights[l].is_infinite() {
                continue;
            }
            let placeholder = placeholder_value(schema, target);
            let probe = CandidateRow::new(inst, row, target, placeholder);
            if let Some((l_b, h_b)) = c.feasible_range(&probe, target) {
                lo = lo.max(l_b);
                hi = hi.min(h_b);
                bounded = true;
            }
        }
        if bounded && lo <= hi {
            let integer = matches!(
                schema.attr(target).kind,
                AttrKind::Numeric { integer: true, .. }
            );
            for (v, _) in &mut candidates {
                let clamped = v.num().clamp(lo, hi);
                let adjusted = if integer {
                    let r = clamped.round();
                    if (lo..=hi).contains(&r) {
                        r
                    } else {
                        clamped
                    }
                } else {
                    clamped
                };
                *v = Value::Num(adjusted);
            }
        }
    }

    // Score candidates: P[v] ∝ p_{v|c} · exp(−Σ w_φ·vio_φ). The whole
    // candidate set goes through the batch substrate in one call — the
    // counters' prefix indexes are immutable for the duration, so the
    // penalties can be (and by default are) evaluated concurrently.
    let cell = CellContext::new(inst, row, target);
    let values: Vec<Value> = candidates.iter().map(|&(v, _)| v).collect();
    let penalties = scores.score_candidates(cell, &values, weights, cfg.parallel);
    let mut scored = Vec::with_capacity(candidates.len());
    let mut best_fallback = (f64::INFINITY, f64::NEG_INFINITY, 0usize); // (penalty, p, idx)
    for (idx, (&(_, p), &penalty)) in candidates.iter().zip(&penalties).enumerate() {
        scored.push(p * (-penalty).exp());
        if penalty < best_fallback.0 || (penalty == best_fallback.0 && p > best_fallback.1) {
            best_fallback = (penalty, p, idx);
        }
    }
    let total: f64 = scored.iter().sum();
    if total > 0.0 && total.is_finite() {
        candidates[sample_weighted(&scored, rng)].0
    } else {
        // every candidate violates a hard DC: take the least-violating one
        candidates[best_fallback.2].0
    }
}

/// A schema-conformant placeholder for probing FD counters (the probe only
/// reads determinant attributes, never the target).
fn placeholder_value(schema: &Schema, attr: usize) -> Value {
    match schema.attr(attr).kind {
        AttrKind::Categorical { .. } => Value::Cat(0),
        AttrKind::Numeric { min, .. } => Value::Num(min),
    }
}

/// Builds the candidate set `D(S[j])` with model probabilities.
fn candidate_values<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    j: usize,
    inst: &Instance,
    row: usize,
    cfg: &SampleConfig,
    rng: &mut R,
) -> Vec<(Value, f64)> {
    let target = model.sequence[j];
    let attr = schema.attr(target);
    let q = Quantizer::for_attr(attr);

    // Position 0 draws from the released first-attribute distribution.
    if j == 0 {
        return (0..model.first_dist.len())
            .map(|b| (q.sample_in_bin(b, rng), model.first_dist[b]))
            .collect();
    }

    let sm: &SubModel = model.submodel_at(j);
    let ctx: Vec<Value> = model.sequence[..j]
        .iter()
        .map(|&a| inst.value(row, a))
        .collect();

    match (&sm.kind, &attr.kind) {
        (SubModelKind::NoisyMarginal { dist }, AttrKind::Categorical { .. }) => {
            top_k_candidates(dist, cfg.max_cat_candidates)
                .into_iter()
                .map(|(code, p)| (Value::Cat(code as u32), p))
                .collect()
        }
        (SubModelKind::NoisyMarginal { dist }, AttrKind::Numeric { .. }) => (0..cfg.d_candidates)
            .map(|_| {
                let b = sample_weighted(dist, rng);
                (q.sample_in_bin(b, rng), dist[b])
            })
            .collect(),
        (SubModelKind::Discriminative { .. }, AttrKind::Categorical { .. }) => {
            let p = sm.predict_cat(&model.store, &ctx);
            top_k_candidates(&p, cfg.max_cat_candidates)
                .into_iter()
                .map(|(code, p)| (Value::Cat(code as u32), p))
                .collect()
        }
        (SubModelKind::Discriminative { .. }, AttrKind::Numeric { .. }) => {
            let (mu, sigma) = sm.predict_num(&model.store, &ctx);
            (0..cfg.d_candidates)
                .map(|_| {
                    let raw = kamino_dp::normal::normal(rng, mu, sigma.max(1e-9));
                    let v = q.clamp(Value::Num(raw));
                    // weight ∝ model density at the (clamped) candidate
                    let z = (v.num() - mu) / sigma.max(1e-9);
                    (v, (-0.5 * z * z).exp().max(1e-300))
                })
                .collect()
        }
    }
}

/// The `k` most probable codes with their probabilities (all codes when the
/// domain is small).
fn top_k_candidates(dist: &[f64], k: usize) -> Vec<(usize, f64)> {
    if dist.len() <= k {
        return dist.iter().copied().enumerate().collect();
    }
    let mut indexed: Vec<(usize, f64)> = dist.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
    indexed.truncate(k);
    indexed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_model, TrainConfig};
    use crate::weights::HARD_WEIGHT;
    use kamino_constraints::{count_violating_pairs, parse_dc, Hardness};
    use kamino_data::stats::{histogram, normalize};
    use kamino_data::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::categorical_indexed("b", 3).unwrap(),
            Attribute::numeric("x", 0.0, 10.0, 5).unwrap(),
        ])
        .unwrap()
    }

    /// b == a; x increases with a.
    fn toy_instance(s: &Schema, n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = Instance::empty(s);
        for _ in 0..n {
            let a = rng.gen_range(0..3u32);
            let x = (3.0 * a as f64 + rng.gen::<f64>()).clamp(0.0, 10.0);
            inst.push_row(s, &[Value::Cat(a), Value::Cat(a), Value::Num(x)])
                .unwrap();
        }
        inst
    }

    fn trained_model(s: &Schema, inst: &Instance, iters: usize) -> DataModel {
        let cfg = TrainConfig {
            sigma_g: 0.0,
            sigma_d: 0.0,
            iters,
            lr: 0.2,
            ..TrainConfig::default()
        };
        train_model(s, inst, &[0, 1, 2], &cfg)
    }

    fn fd(s: &Schema) -> DenialConstraint {
        parse_dc(s, "fd", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Hard).unwrap()
    }

    #[test]
    fn synthesizes_right_shape_and_domains() {
        let s = schema();
        let truth = toy_instance(&s, 200, 1);
        let model = trained_model(&s, &truth, 50);
        let mut rng = StdRng::seed_from_u64(2);
        let out = synthesize(&s, &model, &[], &[], &SampleConfig::new(150), &mut rng);
        assert_eq!(out.n_rows(), 150);
        for i in 0..out.n_rows() {
            for j in 0..s.len() {
                assert!(s.attr(j).validate(out.value(i, j)).is_ok());
            }
        }
    }

    #[test]
    fn constraint_aware_sampling_eliminates_fd_violations() {
        let s = schema();
        let truth = toy_instance(&s, 300, 3);
        // deliberately under-train so the raw model makes FD mistakes
        let model = trained_model(&s, &truth, 10);
        let dcs = vec![fd(&s)];
        let weights = vec![HARD_WEIGHT];
        let mut rng = StdRng::seed_from_u64(4);
        let aware = synthesize(
            &s,
            &model,
            &dcs,
            &weights,
            &SampleConfig::new(250),
            &mut rng,
        );
        assert_eq!(
            count_violating_pairs(&dcs[0], &aware),
            0,
            "constraint-aware sampling left hard-FD violations"
        );
        // the ablation arm on the same under-trained model violates
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = SampleConfig::new(250);
        cfg.constraint_aware = false;
        let blind = synthesize(&s, &model, &dcs, &weights, &cfg, &mut rng);
        assert!(
            count_violating_pairs(&dcs[0], &blind) > 0,
            "ablation arm unexpectedly clean — test is vacuous"
        );
    }

    #[test]
    fn hard_fd_lookup_matches_constraint_semantics() {
        let s = schema();
        let truth = toy_instance(&s, 300, 5);
        let model = trained_model(&s, &truth, 10);
        let dcs = vec![fd(&s)];
        let weights = vec![HARD_WEIGHT];
        let mut rng = StdRng::seed_from_u64(6);
        let mut cfg = SampleConfig::new(250);
        cfg.hard_fd_lookup = true;
        let out = synthesize(&s, &model, &dcs, &weights, &cfg, &mut rng);
        assert_eq!(count_violating_pairs(&dcs[0], &out), 0);
    }

    #[test]
    fn soft_weights_permit_some_violations() {
        let s = schema();
        let truth = toy_instance(&s, 300, 7);
        let model = trained_model(&s, &truth, 10);
        let dcs =
            vec![parse_dc(&s, "fd", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Soft).unwrap()];
        let mut rng = StdRng::seed_from_u64(8);
        // near-zero weight ≈ unconstrained; hard weight ⇒ zero violations
        let loose = synthesize(
            &s,
            &model,
            &dcs,
            &[0.001],
            &SampleConfig::new(200),
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(8);
        let strict = synthesize(
            &s,
            &model,
            &dcs,
            &[HARD_WEIGHT],
            &SampleConfig::new(200),
            &mut rng,
        );
        let loose_v = count_violating_pairs(&dcs[0], &loose);
        let strict_v = count_violating_pairs(&dcs[0], &strict);
        assert_eq!(strict_v, 0);
        assert!(
            loose_v > 0,
            "weight 0.001 should behave like no constraint here"
        );
    }

    #[test]
    fn first_attribute_marginal_tracks_model() {
        let s = schema();
        let truth = toy_instance(&s, 400, 9);
        let model = trained_model(&s, &truth, 30);
        let mut rng = StdRng::seed_from_u64(10);
        let out = synthesize(&s, &model, &[], &[], &SampleConfig::new(2_000), &mut rng);
        let got = normalize(&histogram(&s, &out, 0));
        for (g, w) in got.iter().zip(&model.first_dist) {
            assert!(
                (g - w).abs() < 0.06,
                "marginal drift: {got:?} vs {:?}",
                model.first_dist
            );
        }
    }

    #[test]
    fn mcmc_preserves_hard_constraints() {
        let s = schema();
        let truth = toy_instance(&s, 300, 11);
        let model = trained_model(&s, &truth, 10);
        let dcs = vec![fd(&s)];
        let weights = vec![HARD_WEIGHT];
        let mut cfg = SampleConfig::new(150);
        cfg.mcmc_resamples = 300; // 2n re-samples per column
        let mut rng = StdRng::seed_from_u64(12);
        let out = synthesize(&s, &model, &dcs, &weights, &cfg, &mut rng);
        assert_eq!(out.n_rows(), 150);
        assert_eq!(count_violating_pairs(&dcs[0], &out), 0);
    }

    #[test]
    fn unary_dc_respected() {
        let s = schema();
        let truth = toy_instance(&s, 300, 13);
        let model = trained_model(&s, &truth, 30);
        // forbid x > 8 outright
        let dcs = vec![parse_dc(&s, "u", "!(t1.x > 8)", Hardness::Hard).unwrap()];
        let mut rng = StdRng::seed_from_u64(14);
        let out = synthesize(
            &s,
            &model,
            &dcs,
            &[HARD_WEIGHT],
            &SampleConfig::new(300),
            &mut rng,
        );
        for i in 0..out.n_rows() {
            assert!(out.num(i, 2) <= 8.0, "unary DC violated at row {i}");
        }
    }

    #[test]
    fn top_k_candidates_selects_mass() {
        let dist = vec![0.05, 0.4, 0.05, 0.3, 0.2];
        let top = top_k_candidates(&dist, 3);
        let idxs: Vec<usize> = top.iter().map(|&(i, _)| i).collect();
        assert_eq!(idxs, vec![1, 3, 4]);
        // small domains pass through untouched, in order
        let all = top_k_candidates(&dist, 10);
        assert_eq!(all.len(), 5);
        assert_eq!(all[0], (0, 0.05));
    }

    #[test]
    fn deterministic_given_seed() {
        let s = schema();
        let truth = toy_instance(&s, 200, 15);
        let model = trained_model(&s, &truth, 20);
        let dcs = vec![fd(&s)];
        let w = vec![HARD_WEIGHT];
        let mut r1 = StdRng::seed_from_u64(16);
        let mut r2 = StdRng::seed_from_u64(16);
        let a = synthesize(&s, &model, &dcs, &w, &SampleConfig::new(100), &mut r1);
        let b = synthesize(&s, &model, &dcs, &w, &SampleConfig::new(100), &mut r2);
        assert_eq!(a, b);
    }
}
