//! Constraint-aware database sampling (Algorithm 3).
//!
//! Synthesis walks the schema sequence; for each attribute `S[j]` it fills
//! all `n` cells in tuple order. A candidate value `v` for cell
//! `t_i[S[j]]` is drawn with probability
//!
//! ```text
//! P[v] ∝ p_{v|c} · exp(−Σ_{φ ∈ Φ_{S[j]}} w_φ · |V(φ, t_i[S_:j]=c ∧ t_i[S[j]]=v | D'_:i)|)
//! ```
//!
//! where `p_{v|c}` comes from the learned sub-model and the violation
//! counts from the incremental [`DcCounter`]s. Hard DCs (`w = ∞`) zero the
//! probability of any violating candidate; if *every* candidate violates,
//! the sampler falls back to the candidate with the fewest violations
//! (breaking ties by model probability) rather than sampling uniformly
//! from garbage.
//!
//! Also implemented here:
//! * the constrained MCMC step (line 12): after each column pass, `m`
//!   random cells of that column are re-sampled conditioned on all other
//!   cells, using counter `remove`/`insert`;
//! * the §7.3.6 hard-FD lookup fast path: when the attribute being sampled
//!   is the dependent of a hard FD and the determinant group already
//!   exists, the forced value is copied directly instead of scored;
//! * the "RandSampling" ablation (Experiment 5): `constraint_aware =
//!   false` samples i.i.d. from the model.
//!
//! ## Sharded synthesis
//!
//! Algorithm 3 is sequential by construction: cell `i` conditions on the
//! full prefix `D'_:i`, which serializes the row loop. With
//! [`SampleConfig::shards`] ` = S > 1` the row range is split into `S`
//! contiguous shards that run one column pass **concurrently**, each
//! conditioning only on *its own* prefix (rows of earlier shards are
//! invisible to it during the fill). Each shard draws from an independent
//! RNG stream whose seed is taken from the session RNG in shard order, so
//! the output is deterministic for a fixed seed regardless of thread
//! scheduling.
//!
//! Dropping the cross-shard prefix breaks Algorithm 3's sequential
//! guarantee — hard DCs hold *within* each shard but can be violated by
//! cross-shard pairs (two shards can commit the same FD determinant group
//! to different dependents). The column pass therefore ends with a
//! **repair pass**: the per-shard [`ScoreSet`] prefix indexes are merged
//! in shard order (`ScoreSet::merge` — counts are additive, so the merged
//! scorer answers exactly like a sequential fill of all `n` rows), every
//! cell in hard conflict with the merged prefix is opened at once (the
//! rows that remain are pairwise consistent, because a violating pair
//! marks *both* of its rows), and the opened cells are re-sampled one by
//! one against the growing prefix — Algorithm 3's sequential guarantee
//! replayed over exactly the conflicted cells, the same remove/re-sample/
//! insert move as the constrained MCMC step. Because the prefix each
//! re-sample sees is consistent, hard-FD injection (extended during
//! repair with the determinant group's *majority* value when shards
//! disagree) and order-band clamping land violation-free values whenever
//! one exists; [`SampleConfig::repair_sweeps`] bounds the re-check loop
//! for the general scan-DC shapes that carry no such guarantee. Soft-DC
//! drift is left to the regular MCMC re-samples, which also run against
//! the merged scorer.
//!
//! `shards: 1` takes the original sequential code path untouched — its
//! output is bit-for-bit identical to the pre-sharding sampler for any
//! fixed seed.
//!
//! [`DcCounter`]: kamino_constraints::DcCounter

use std::time::Duration;

use kamino_constraints::{CandidateRow, CellContext, DenialConstraint, ScoreSet};
use kamino_data::stats::sample_weighted;
use kamino_data::{AttrKind, Instance, Quantizer, Schema, Value};
use kamino_obs::{clock, ObsHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{DataModel, SubModel, SubModelKind};
use crate::sequence::active_dcs_by_position;

/// Wall-clock breakdown of one synthesis run's per-column phases,
/// accumulated across columns. Only populated when the `obs` handle
/// passed to [`synthesize_timed`] is enabled — with it disabled the
/// sampler performs no clock reads at all, and every field stays zero.
/// Strictly diagnostic: timing never influences the sample stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleTimings {
    /// Per-column fill passes (Algorithm 3 lines 4–11).
    pub fill: Duration,
    /// Cross-shard repair sweeps (zero on 1-shard runs).
    pub repair: Duration,
    /// Constrained MCMC (Algorithm 3 line 12).
    pub mcmc: Duration,
}

/// Runs `f`, timing it into `acc` under a named span when `obs` is
/// enabled; with `obs` disabled this is exactly `f()` — no clock read,
/// no span, no allocation.
fn timed_phase<T>(
    obs: &ObsHandle,
    name: &'static str,
    column: usize,
    acc: &mut Duration,
    f: impl FnOnce() -> T,
) -> T {
    if !obs.is_enabled() {
        return f();
    }
    let mut span = obs.span(name);
    span.arg("column", column.to_string());
    let t0 = clock::now_nanos();
    let out = f();
    *acc += Duration::from_nanos(clock::now_nanos().saturating_sub(t0));
    out
}

/// Documented ceiling (in percent of tuple pairs) for the *FD-cycle
/// residual*: when a hard FD's dependent precedes its determinant in the
/// synthesis sequence (e.g. Tax's `state` before `areacode`, TPC-H's
/// `custkey → nation`), a weakly trained conditional can bind determinant
/// groups to wrong dependents before rare values appear, leaving a small
/// hard-DC violation rate at harness scale even though the mechanism is
/// correct. Observed residuals sit around 2% (up to ≈2.15% across seeds
/// and planner revisions); every DC outside an FD cycle must be exactly
/// clean. Integration tests and the README cite this constant instead of
/// restating the number.
pub const FD_CYCLE_TOLERANCE_PCT: f64 = 2.5;

/// Sampling configuration (Algorithm 3's `W, L, N` inputs plus ablation
/// switches).
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// Number of tuples to synthesize.
    pub n: usize,
    /// Candidate-set size `d` for continuous targets.
    pub d_candidates: usize,
    /// Cap on candidate values for very large categorical domains (§4.2's
    /// "selected set of values of size d").
    pub max_cat_candidates: usize,
    /// MCMC re-samples `m` per attribute pass (0 disables MCMC).
    pub mcmc_resamples: usize,
    /// When false, samples i.i.d. from the model (RandSampling ablation).
    pub constraint_aware: bool,
    /// Enable the hard-FD lookup fast path (Exp. 10).
    pub hard_fd_lookup: bool,
    /// Route candidate scoring through the rayon-backed parallel
    /// substrate (`constraints::score`). Purely a performance switch: the
    /// sampled output is bit-identical either way.
    pub parallel: bool,
    /// Number of row shards synthesized concurrently per column pass.
    /// `1` (the default) is the original sequential Algorithm 3,
    /// bit-identical to the pre-sharding sampler; `S > 1` trades the
    /// cross-shard prefix for parallelism and restores hard-DC
    /// consistency with a repair pass (see the module docs).
    pub shards: usize,
    /// Maximum repair passes per column when `shards > 1`. Each pass
    /// opens every cell in hard conflict with the merged prefix and
    /// re-samples them sequentially; the loop stops as soon as a check
    /// finds no conflicts (one pass suffices for FD- and order-shaped
    /// DCs — see the module docs).
    pub repair_sweeps: usize,
}

impl SampleConfig {
    /// Defaults for synthesizing `n` tuples.
    pub fn new(n: usize) -> SampleConfig {
        SampleConfig {
            n,
            d_candidates: 10,
            max_cat_candidates: 64,
            mcmc_resamples: 0,
            constraint_aware: true,
            hard_fd_lookup: false,
            parallel: true,
            shards: 1,
            repair_sweeps: 4,
        }
    }
}

/// Reusable buffers for one sampling engine's cell loop (a bump-style
/// arena: every buffer is cleared and refilled per cell, never freed), so
/// the `n × k` inner loop is allocation-free in steady state. One arena
/// per sequential run and one per shard thread — arenas are never shared,
/// so no synchronization is involved. Purely a memory-reuse vehicle: no
/// RNG draws, value computations, or iteration orders change, which keeps
/// the sampled output bit-identical to the allocating implementation.
#[derive(Default)]
struct CellArena {
    /// Candidate set `(value, model probability)` for the current cell.
    candidates: Vec<(Value, f64)>,
    /// Candidate values split out for the batch scorer.
    values: Vec<Value>,
    /// Weighted violation penalties, aligned with `values`.
    penalties: Vec<f64>,
    /// Final sampling weights `p · exp(−penalty)` (also reused for the
    /// plain model probabilities on the constraint-unaware path).
    scored: Vec<f64>,
    /// Context-attribute values for the sub-model predictors.
    ctx: Vec<Value>,
    /// Scratch for top-k candidate selection over categorical domains.
    idx_buf: Vec<(usize, f64)>,
}

/// Synthesizes an instance from the trained model (Algorithm 3).
///
/// `weights` is aligned with `dcs`; hard DCs carry
/// [`crate::weights::HARD_WEIGHT`].
pub fn synthesize<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    dcs: &[DenialConstraint],
    weights: &[f64],
    cfg: &SampleConfig,
    rng: &mut R,
) -> Instance {
    synthesize_timed(
        schema,
        model,
        dcs,
        weights,
        cfg,
        rng,
        &ObsHandle::disabled(),
    )
    .0
}

/// [`synthesize`], with per-column fill/repair/MCMC spans and a
/// [`SampleTimings`] breakdown recorded through `obs`. The instance is
/// byte-identical whether or not `obs` is enabled (timing never touches
/// the RNG stream); with `obs` disabled the breakdown stays zero and no
/// clock is read.
pub fn synthesize_timed<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    dcs: &[DenialConstraint],
    weights: &[f64],
    cfg: &SampleConfig,
    rng: &mut R,
    obs: &ObsHandle,
) -> (Instance, SampleTimings) {
    assert_eq!(dcs.len(), weights.len(), "one weight per DC");
    assert!(cfg.n > 0, "cannot synthesize an empty instance");
    let mut timings = SampleTimings::default();
    if cfg.shards > 1 {
        let inst = synthesize_sharded(schema, model, dcs, weights, cfg, rng, obs, &mut timings);
        return (inst, timings);
    }
    let n = cfg.n;
    let k = model.sequence.len();
    let mut inst = Instance::zeroed(schema, n);
    let active = active_dcs_by_position(&model.sequence, dcs);
    let mut arena = CellArena::default();

    for (j, active_j) in active.iter().enumerate().take(k) {
        let target = model.sequence[j];
        let mut scores = ScoreSet::build(active_j, dcs);

        timed_phase(obs, "sample.fill", j, &mut timings.fill, || {
            for i in 0..n {
                let value = sample_cell(
                    schema, model, j, &inst, i, &scores, weights, cfg, false, &mut arena, rng,
                );
                inst.set(i, target, value);
                scores.insert(&CandidateRow::committed(&inst, i, target));
            }
        });

        // Constrained MCMC (line 12): re-sample m random cells of this
        // column conditioned on everything else. Each site draw and its
        // candidate draws share one interleaved RNG stream, and every
        // site is re-scored through the same batch substrate as the main
        // pass.
        timed_phase(obs, "sample.mcmc", j, &mut timings.mcmc, || {
            mcmc_pass(
                schema,
                model,
                j,
                &mut inst,
                &mut scores,
                weights,
                cfg,
                &mut arena,
                rng,
            );
        });
    }
    (inst, timings)
}

/// The constrained MCMC step (Algorithm 3 line 12): `mcmc_resamples`
/// random cells of the current column are re-opened and re-sampled
/// conditioned on everything else. Shared between the sequential and
/// sharded engines so their MCMC semantics can never drift apart.
#[allow(clippy::too_many_arguments)]
fn mcmc_pass<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    j: usize,
    inst: &mut Instance,
    scores: &mut ScoreSet,
    weights: &[f64],
    cfg: &SampleConfig,
    arena: &mut CellArena,
    rng: &mut R,
) {
    let target = model.sequence[j];
    for _ in 0..cfg.mcmc_resamples {
        let r = rng.gen_range(0..cfg.n);
        scores.remove(&CandidateRow::committed(inst, r, target));
        let value = sample_cell(
            schema, model, j, inst, r, scores, weights, cfg, false, arena, rng,
        );
        inst.set(r, target, value);
        scores.insert(&CandidateRow::committed(inst, r, target));
    }
}

/// Contiguous shard bounds partitioning `n` rows into `s` near-equal
/// ranges (the first `n % s` shards get one extra row).
fn shard_bounds(n: usize, s: usize) -> Vec<(usize, usize)> {
    let base = n / s;
    let extra = n % s;
    let mut bounds = Vec::with_capacity(s);
    let mut start = 0;
    for idx in 0..s {
        let len = base + usize::from(idx < extra);
        bounds.push((start, start + len));
        start += len;
    }
    bounds
}

/// Sharded column passes with cross-shard repair (see the module docs).
/// Only reached when `cfg.shards > 1`.
#[allow(clippy::too_many_arguments)]
fn synthesize_sharded<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    dcs: &[DenialConstraint],
    weights: &[f64],
    cfg: &SampleConfig,
    rng: &mut R,
    obs: &ObsHandle,
    timings: &mut SampleTimings,
) -> Instance {
    let n = cfg.n;
    let s_count = cfg.shards.min(n);
    let k = model.sequence.len();
    let mut inst = Instance::zeroed(schema, n);
    let active = active_dcs_by_position(&model.sequence, dcs);
    let bounds = shard_bounds(n, s_count);
    let any_hard = weights.iter().any(|w| w.is_infinite());
    // Arena for the main thread's repair/MCMC re-samples; shard threads
    // build their own (arenas are thread-confined by construction).
    let mut arena = CellArena::default();

    for (j, active_j) in active.iter().enumerate().take(k) {
        let target = model.sequence[j];

        // One independent RNG stream per shard, seeded from the session
        // RNG in shard order: the fill is deterministic for a fixed seed
        // regardless of how the OS schedules the shard threads.
        let seeds: Vec<u64> = (0..s_count).map(|_| rng.gen::<u64>()).collect();

        // Concurrent fill. Shard threads only *read* the shared instance
        // (earlier columns of their own rows); the current column lives in
        // a shard-local buffer plus the shard's own ScoreSet prefix
        // indexes, so no cell written this pass is ever read across
        // shards. The fill phase (threads + shard-order commit/merge) is
        // timed as one unit.
        let mut scores = timed_phase(obs, "sample.fill", j, &mut timings.fill, || {
            let inst_ref = &inst;
            let shard_outputs: Vec<(Vec<Value>, ScoreSet)> = std::thread::scope(|scope| {
                let handles: Vec<_> = bounds
                    .iter()
                    .zip(&seeds)
                    .map(|(&(lo, hi), &seed)| {
                        scope.spawn(move || {
                            let mut shard_rng = StdRng::seed_from_u64(seed);
                            let mut scores = ScoreSet::build(active_j, dcs);
                            let mut shard_arena = CellArena::default();
                            let mut values = Vec::with_capacity(hi - lo);
                            for i in lo..hi {
                                let v = sample_cell(
                                    schema,
                                    model,
                                    j,
                                    inst_ref,
                                    i,
                                    &scores,
                                    weights,
                                    cfg,
                                    false,
                                    &mut shard_arena,
                                    &mut shard_rng,
                                );
                                scores.insert(&CandidateRow::new(inst_ref, i, target, v));
                                values.push(v);
                            }
                            (values, scores)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            // Commit shard buffers and fold the prefix indexes, both in
            // shard order.
            let mut merged: Option<ScoreSet> = None;
            for (&(lo, _), (values, shard_scores)) in bounds.iter().zip(shard_outputs) {
                for (off, v) in values.into_iter().enumerate() {
                    inst.set(lo + off, target, v);
                }
                match merged.as_mut() {
                    Some(m) => m.merge(shard_scores),
                    None => merged = Some(shard_scores),
                }
            }
            merged.expect("at least one shard")
        });

        // Cross-shard repair: each shard is internally consistent, but
        // hard DCs can be violated by cross-shard pairs. Detect every row
        // in conflict with the merged prefix, open all of those cells at
        // once — the rows that remain are pairwise consistent, since any
        // violating pair marks both of its rows as conflicted — and then
        // re-sample the opened cells one by one, each conditioned on the
        // (consistent, growing) prefix. That is exactly Algorithm 3's
        // sequential guarantee replayed over the conflicted cells: FD
        // injection and order-band clamping see a consistent prefix, so
        // each re-insert lands violation-free whenever a consistent value
        // exists. One pass normally suffices; the loop re-checks in case
        // a general scan-DC fallback left residue.
        if cfg.constraint_aware && any_hard && !scores.is_empty() {
            timed_phase(obs, "sample.repair", j, &mut timings.repair, || {
                for _ in 0..cfg.repair_sweeps {
                    let conflicted: Vec<usize> = (0..n)
                        .filter(|&r| {
                            let probe = CandidateRow::committed(&inst, r, target);
                            scores
                                .iter()
                                .any(|(l, c)| weights[l].is_infinite() && c.count_new(&probe) > 0)
                        })
                        .collect();
                    if conflicted.is_empty() {
                        break;
                    }
                    for &r in &conflicted {
                        scores.remove(&CandidateRow::committed(&inst, r, target));
                    }
                    for &r in &conflicted {
                        let v = sample_cell(
                            schema, model, j, &inst, r, &scores, weights, cfg, true, &mut arena,
                            rng,
                        );
                        inst.set(r, target, v);
                        scores.insert(&CandidateRow::committed(&inst, r, target));
                    }
                }
            });
        }

        // Constrained MCMC (Algorithm 3 line 12), against the merged
        // scorer — the exact helper the sequential path runs.
        timed_phase(obs, "sample.mcmc", j, &mut timings.mcmc, || {
            mcmc_pass(
                schema,
                model,
                j,
                &mut inst,
                &mut scores,
                weights,
                cfg,
                &mut arena,
                rng,
            );
        });
    }
    inst
}

/// Draws one cell value for row `row` at sequence position `j`.
///
/// `repair_majority` is set only by the sharded repair pass: hard-FD
/// candidate injection then falls back to the determinant group's
/// *majority* dependent value when the group is inconsistent (a state the
/// sequential fill never produces for hard FDs, but cross-shard conflicts
/// do). It is `false` on every other path so the sequential sampler's
/// output stays bit-identical to the pre-sharding implementation.
#[allow(clippy::too_many_arguments)]
fn sample_cell<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    j: usize,
    inst: &Instance,
    row: usize,
    scores: &ScoreSet,
    weights: &[f64],
    cfg: &SampleConfig,
    repair_majority: bool,
    arena: &mut CellArena,
    rng: &mut R,
) -> Value {
    let target = model.sequence[j];

    // Hard-FD lookup fast path (§7.3.6): when sampling the dependent of a
    // hard FD whose determinant group already exists and is consistent,
    // copy the forced value.
    if cfg.hard_fd_lookup && cfg.constraint_aware {
        for (l, c) in scores.iter() {
            if weights[l].is_infinite() && c.fd_rhs() == Some(target) {
                let placeholder = placeholder_value(schema, target);
                let probe = CandidateRow::new(inst, row, target, placeholder);
                if let Some(v) = c.required_value(&probe) {
                    return v;
                }
            }
        }
    }

    candidate_values(schema, model, j, inst, row, cfg, arena, rng);
    let CellArena {
        candidates,
        values,
        penalties,
        scored,
        ..
    } = arena;
    if !cfg.constraint_aware || scores.is_empty() {
        scored.clear();
        scored.extend(candidates.iter().map(|&(_, p)| p));
        return candidates[sample_weighted(scored, rng)].0;
    }

    // For hard FDs whose dependent is the attribute being sampled, the
    // only violation-free value is the one the determinant group already
    // carries. Continuous candidate sets almost never contain it by
    // chance, so inject it (this is the "selected set of values" of §4.2:
    // candidates the model alone would miss but the constraints demand).
    for (l, c) in scores.iter() {
        if weights[l].is_infinite() && c.fd_rhs() == Some(target) {
            let placeholder = placeholder_value(schema, target);
            let probe = CandidateRow::new(inst, row, target, placeholder);
            let forced = c.required_value(&probe).or_else(|| {
                if repair_majority {
                    c.majority_value(&probe)
                } else {
                    None
                }
            });
            if let Some(v) = forced {
                if !candidates
                    .iter()
                    .any(|&(cv, _)| cv.compare(v) == std::cmp::Ordering::Equal)
                {
                    // kamino-lint: allow(float_fold) -- max accumulator: 0.0 is the identity for max over non-negative values, not a sum seed
                    let p = candidates.iter().map(|&(_, p)| p).fold(0.0, f64::max);
                    candidates.push((v, p.max(1e-12)));
                }
            }
        }
    }

    // Hard strict-order DCs leave a closed feasible band [lo, hi] for a
    // numeric target; Gaussian candidates land outside it almost surely
    // once the prefix is long, so clamp them in (keeping the model's
    // within-band preferences). This is the order-DC analogue of the FD
    // value injection above.
    if matches!(schema.attr(target).kind, AttrKind::Numeric { .. }) {
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        let mut bounded = false;
        for (l, c) in scores.iter() {
            if !weights[l].is_infinite() {
                continue;
            }
            let placeholder = placeholder_value(schema, target);
            let probe = CandidateRow::new(inst, row, target, placeholder);
            if let Some((l_b, h_b)) = c.feasible_range(&probe, target) {
                lo = lo.max(l_b);
                hi = hi.min(h_b);
                bounded = true;
            }
        }
        if bounded && lo <= hi {
            let integer = matches!(
                schema.attr(target).kind,
                AttrKind::Numeric { integer: true, .. }
            );
            for (v, _) in candidates.iter_mut() {
                let clamped = v.num().clamp(lo, hi);
                let adjusted = if integer {
                    let r = clamped.round();
                    if (lo..=hi).contains(&r) {
                        r
                    } else {
                        clamped
                    }
                } else {
                    clamped
                };
                *v = Value::Num(adjusted);
            }
        }
    }

    // Score candidates: P[v] ∝ p_{v|c} · exp(−Σ w_φ·vio_φ). The whole
    // candidate set goes through the batch substrate in one call — the
    // counters' prefix indexes are immutable for the duration, so the
    // penalties can be (and by default are) evaluated concurrently.
    let cell = CellContext::new(inst, row, target);
    values.clear();
    values.extend(candidates.iter().map(|&(v, _)| v));
    scores.score_candidates_into(cell, values, weights, cfg.parallel, penalties);
    scored.clear();
    let mut best_fallback = (f64::INFINITY, f64::NEG_INFINITY, 0usize); // (penalty, p, idx)
    for (idx, (&(_, p), &penalty)) in candidates.iter().zip(penalties.iter()).enumerate() {
        scored.push(p * (-penalty).exp());
        if penalty < best_fallback.0 || (penalty == best_fallback.0 && p > best_fallback.1) {
            best_fallback = (penalty, p, idx);
        }
    }
    let total: f64 = scored.iter().sum();
    if total > 0.0 && total.is_finite() {
        candidates[sample_weighted(scored, rng)].0
    } else {
        // every candidate violates a hard DC: take the least-violating one
        candidates[best_fallback.2].0
    }
}

/// A schema-conformant placeholder for probing FD counters (the probe only
/// reads determinant attributes, never the target).
fn placeholder_value(schema: &Schema, attr: usize) -> Value {
    match schema.attr(attr).kind {
        AttrKind::Categorical { .. } => Value::Cat(0),
        AttrKind::Numeric { min, .. } => Value::Num(min),
    }
}

/// Builds the candidate set `D(S[j])` with model probabilities into
/// `arena.candidates` (cleared first; `arena.ctx`/`arena.idx_buf` serve as
/// scratch). Identical values and probabilities, in identical order, to
/// the old allocating form — candidate construction drives the RNG, so
/// order *is* part of the determinism contract.
#[allow(clippy::too_many_arguments)]
fn candidate_values<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    j: usize,
    inst: &Instance,
    row: usize,
    cfg: &SampleConfig,
    arena: &mut CellArena,
    rng: &mut R,
) {
    let target = model.sequence[j];
    let attr = schema.attr(target);
    let q = Quantizer::for_attr(attr);
    let out = &mut arena.candidates;
    out.clear();

    // Position 0 draws from the released first-attribute distribution.
    if j == 0 {
        out.extend(
            (0..model.first_dist.len()).map(|b| (q.sample_in_bin(b, rng), model.first_dist[b])),
        );
        return;
    }

    let sm: &SubModel = model.submodel_at(j);
    let ctx = &mut arena.ctx;
    ctx.clear();
    ctx.extend(model.sequence[..j].iter().map(|&a| inst.value(row, a)));

    match (&sm.kind, &attr.kind) {
        (SubModelKind::NoisyMarginal { dist }, AttrKind::Categorical { .. }) => {
            top_k_into(dist, cfg.max_cat_candidates, &mut arena.idx_buf);
            out.extend(
                arena
                    .idx_buf
                    .iter()
                    .map(|&(code, p)| (Value::Cat(code as u32), p)),
            );
        }
        (SubModelKind::NoisyMarginal { dist }, AttrKind::Numeric { .. }) => {
            out.extend((0..cfg.d_candidates).map(|_| {
                let b = sample_weighted(dist, rng);
                (q.sample_in_bin(b, rng), dist[b])
            }));
        }
        (SubModelKind::Discriminative { .. }, AttrKind::Categorical { .. }) => {
            let p = sm.predict_cat(&model.store, ctx);
            top_k_into(&p, cfg.max_cat_candidates, &mut arena.idx_buf);
            out.extend(
                arena
                    .idx_buf
                    .iter()
                    .map(|&(code, p)| (Value::Cat(code as u32), p)),
            );
        }
        (SubModelKind::Discriminative { .. }, AttrKind::Numeric { .. }) => {
            let (mu, sigma) = sm.predict_num(&model.store, ctx);
            out.extend((0..cfg.d_candidates).map(|_| {
                let raw = kamino_dp::normal::normal(rng, mu, sigma.max(1e-9));
                let v = q.clamp(Value::Num(raw));
                // weight ∝ model density at the (clamped) candidate
                let z = (v.num() - mu) / sigma.max(1e-9);
                (v, (-0.5 * z * z).exp().max(1e-300))
            }));
        }
    }
}

/// The `k` most probable codes with their probabilities (all codes when
/// the domain is small), written into a reused buffer (cleared first).
/// The sort is stable and keyed only on the input, so buffer reuse cannot
/// change the selection.
fn top_k_into(dist: &[f64], k: usize, out: &mut Vec<(usize, f64)>) {
    out.clear();
    out.extend(dist.iter().copied().enumerate());
    if out.len() > k {
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out.truncate(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_model, TrainConfig};
    use crate::weights::HARD_WEIGHT;
    use kamino_constraints::{count_violating_pairs, parse_dc, Hardness};
    use kamino_data::stats::{histogram, normalize};
    use kamino_data::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::categorical_indexed("b", 3).unwrap(),
            Attribute::numeric("x", 0.0, 10.0, 5).unwrap(),
        ])
        .unwrap()
    }

    /// b == a; x increases with a.
    fn toy_instance(s: &Schema, n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = Instance::empty(s);
        for _ in 0..n {
            let a = rng.gen_range(0..3u32);
            let x = (3.0 * a as f64 + rng.gen::<f64>()).clamp(0.0, 10.0);
            inst.push_row(s, &[Value::Cat(a), Value::Cat(a), Value::Num(x)])
                .unwrap();
        }
        inst
    }

    fn trained_model(s: &Schema, inst: &Instance, iters: usize) -> DataModel {
        let cfg = TrainConfig {
            sigma_g: 0.0,
            sigma_d: 0.0,
            iters,
            lr: 0.2,
            ..TrainConfig::default()
        };
        train_model(s, inst, &[0, 1, 2], &cfg)
    }

    fn fd(s: &Schema) -> DenialConstraint {
        parse_dc(s, "fd", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Hard).unwrap()
    }

    #[test]
    fn synthesizes_right_shape_and_domains() {
        let s = schema();
        let truth = toy_instance(&s, 200, 1);
        let model = trained_model(&s, &truth, 50);
        let mut rng = StdRng::seed_from_u64(2);
        let out = synthesize(&s, &model, &[], &[], &SampleConfig::new(150), &mut rng);
        assert_eq!(out.n_rows(), 150);
        for i in 0..out.n_rows() {
            for j in 0..s.len() {
                assert!(s.attr(j).validate(out.value(i, j)).is_ok());
            }
        }
    }

    #[test]
    fn constraint_aware_sampling_eliminates_fd_violations() {
        let s = schema();
        let truth = toy_instance(&s, 300, 3);
        // deliberately under-train so the raw model makes FD mistakes
        let model = trained_model(&s, &truth, 10);
        let dcs = vec![fd(&s)];
        let weights = vec![HARD_WEIGHT];
        let mut rng = StdRng::seed_from_u64(4);
        let aware = synthesize(
            &s,
            &model,
            &dcs,
            &weights,
            &SampleConfig::new(250),
            &mut rng,
        );
        assert_eq!(
            count_violating_pairs(&dcs[0], &aware),
            0,
            "constraint-aware sampling left hard-FD violations"
        );
        // the ablation arm on the same under-trained model violates
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = SampleConfig::new(250);
        cfg.constraint_aware = false;
        let blind = synthesize(&s, &model, &dcs, &weights, &cfg, &mut rng);
        assert!(
            count_violating_pairs(&dcs[0], &blind) > 0,
            "ablation arm unexpectedly clean — test is vacuous"
        );
    }

    #[test]
    fn hard_fd_lookup_matches_constraint_semantics() {
        let s = schema();
        let truth = toy_instance(&s, 300, 5);
        let model = trained_model(&s, &truth, 10);
        let dcs = vec![fd(&s)];
        let weights = vec![HARD_WEIGHT];
        let mut rng = StdRng::seed_from_u64(6);
        let mut cfg = SampleConfig::new(250);
        cfg.hard_fd_lookup = true;
        let out = synthesize(&s, &model, &dcs, &weights, &cfg, &mut rng);
        assert_eq!(count_violating_pairs(&dcs[0], &out), 0);
    }

    #[test]
    fn soft_weights_permit_some_violations() {
        let s = schema();
        let truth = toy_instance(&s, 300, 7);
        let model = trained_model(&s, &truth, 10);
        let dcs =
            vec![parse_dc(&s, "fd", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Soft).unwrap()];
        let mut rng = StdRng::seed_from_u64(8);
        // near-zero weight ≈ unconstrained; hard weight ⇒ zero violations
        let loose = synthesize(
            &s,
            &model,
            &dcs,
            &[0.001],
            &SampleConfig::new(200),
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(8);
        let strict = synthesize(
            &s,
            &model,
            &dcs,
            &[HARD_WEIGHT],
            &SampleConfig::new(200),
            &mut rng,
        );
        let loose_v = count_violating_pairs(&dcs[0], &loose);
        let strict_v = count_violating_pairs(&dcs[0], &strict);
        assert_eq!(strict_v, 0);
        assert!(
            loose_v > 0,
            "weight 0.001 should behave like no constraint here"
        );
    }

    #[test]
    fn first_attribute_marginal_tracks_model() {
        let s = schema();
        let truth = toy_instance(&s, 400, 9);
        let model = trained_model(&s, &truth, 30);
        let mut rng = StdRng::seed_from_u64(10);
        let out = synthesize(&s, &model, &[], &[], &SampleConfig::new(2_000), &mut rng);
        let got = normalize(&histogram(&s, &out, 0));
        for (g, w) in got.iter().zip(&model.first_dist) {
            assert!(
                (g - w).abs() < 0.06,
                "marginal drift: {got:?} vs {:?}",
                model.first_dist
            );
        }
    }

    #[test]
    fn mcmc_preserves_hard_constraints() {
        let s = schema();
        let truth = toy_instance(&s, 300, 11);
        let model = trained_model(&s, &truth, 10);
        let dcs = vec![fd(&s)];
        let weights = vec![HARD_WEIGHT];
        let mut cfg = SampleConfig::new(150);
        cfg.mcmc_resamples = 300; // 2n re-samples per column
        let mut rng = StdRng::seed_from_u64(12);
        let out = synthesize(&s, &model, &dcs, &weights, &cfg, &mut rng);
        assert_eq!(out.n_rows(), 150);
        assert_eq!(count_violating_pairs(&dcs[0], &out), 0);
    }

    #[test]
    fn unary_dc_respected() {
        let s = schema();
        let truth = toy_instance(&s, 300, 13);
        let model = trained_model(&s, &truth, 30);
        // forbid x > 8 outright
        let dcs = vec![parse_dc(&s, "u", "!(t1.x > 8)", Hardness::Hard).unwrap()];
        let mut rng = StdRng::seed_from_u64(14);
        let out = synthesize(
            &s,
            &model,
            &dcs,
            &[HARD_WEIGHT],
            &SampleConfig::new(300),
            &mut rng,
        );
        for i in 0..out.n_rows() {
            assert!(out.num(i, 2) <= 8.0, "unary DC violated at row {i}");
        }
    }

    #[test]
    fn top_k_candidates_selects_mass() {
        let dist = vec![0.05, 0.4, 0.05, 0.3, 0.2];
        let mut top = Vec::new();
        top_k_into(&dist, 3, &mut top);
        let idxs: Vec<usize> = top.iter().map(|&(i, _)| i).collect();
        assert_eq!(idxs, vec![1, 3, 4]);
        // small domains pass through untouched, in order — reusing the
        // dirty buffer must not leak previous contents
        let mut all = top;
        top_k_into(&dist, 10, &mut all);
        assert_eq!(all.len(), 5);
        assert_eq!(all[0], (0, 0.05));
    }

    #[test]
    fn deterministic_given_seed() {
        let s = schema();
        let truth = toy_instance(&s, 200, 15);
        let model = trained_model(&s, &truth, 20);
        let dcs = vec![fd(&s)];
        let w = vec![HARD_WEIGHT];
        let mut r1 = StdRng::seed_from_u64(16);
        let mut r2 = StdRng::seed_from_u64(16);
        let a = synthesize(&s, &model, &dcs, &w, &SampleConfig::new(100), &mut r1);
        let b = synthesize(&s, &model, &dcs, &w, &SampleConfig::new(100), &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn shard_bounds_partition_exactly() {
        for (n, s) in [(10, 3), (100, 4), (7, 7), (5, 2), (64, 1)] {
            let b = shard_bounds(n, s);
            assert_eq!(b.len(), s);
            assert_eq!(b[0].0, 0);
            assert_eq!(b[s - 1].1, n);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0, "shards must be contiguous");
            }
            let sizes: Vec<usize> = b.iter().map(|&(lo, hi)| hi - lo).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "shards must be near-equal: {sizes:?}");
        }
    }

    #[test]
    fn sharded_synthesis_preserves_hard_fd() {
        let s = schema();
        let truth = toy_instance(&s, 300, 21);
        // under-trained model: without repair, cross-shard FD conflicts
        // are essentially certain
        let model = trained_model(&s, &truth, 10);
        let dcs = vec![fd(&s)];
        let weights = vec![HARD_WEIGHT];
        for shards in [2, 4] {
            let mut cfg = SampleConfig::new(250);
            cfg.shards = shards;
            let mut rng = StdRng::seed_from_u64(22);
            let out = synthesize(&s, &model, &dcs, &weights, &cfg, &mut rng);
            assert_eq!(out.n_rows(), 250);
            assert_eq!(
                count_violating_pairs(&dcs[0], &out),
                0,
                "{shards}-shard synthesis left hard-FD violations after repair"
            );
            for i in 0..out.n_rows() {
                for j in 0..s.len() {
                    assert!(s.attr(j).validate(out.value(i, j)).is_ok());
                }
            }
        }
    }

    #[test]
    fn sharded_repair_actually_fires() {
        // The repair pass must be doing real work: with repair disabled
        // (zero sweeps) the same sharded run leaves cross-shard hard-FD
        // violations — otherwise the test above is vacuous.
        let s = schema();
        let truth = toy_instance(&s, 300, 21);
        let model = trained_model(&s, &truth, 10);
        let dcs = vec![fd(&s)];
        let weights = vec![HARD_WEIGHT];
        let mut cfg = SampleConfig::new(250);
        cfg.shards = 4;
        cfg.repair_sweeps = 0;
        let mut rng = StdRng::seed_from_u64(22);
        let out = synthesize(&s, &model, &dcs, &weights, &cfg, &mut rng);
        assert!(
            count_violating_pairs(&dcs[0], &out) > 0,
            "shards never conflicted — repair test is vacuous"
        );
    }

    #[test]
    fn sharded_deterministic_given_seed() {
        let s = schema();
        let truth = toy_instance(&s, 200, 23);
        let model = trained_model(&s, &truth, 15);
        let dcs = vec![fd(&s)];
        let w = vec![HARD_WEIGHT];
        let mut cfg = SampleConfig::new(120);
        cfg.shards = 3;
        cfg.mcmc_resamples = 40;
        let mut r1 = StdRng::seed_from_u64(24);
        let mut r2 = StdRng::seed_from_u64(24);
        let a = synthesize(&s, &model, &dcs, &w, &cfg, &mut r1);
        let b = synthesize(&s, &model, &dcs, &w, &cfg, &mut r2);
        assert_eq!(a, b, "sharded synthesis must not depend on scheduling");
    }

    #[test]
    fn sharded_respects_unary_and_order_dcs() {
        let s = schema();
        let truth = toy_instance(&s, 300, 25);
        let model = trained_model(&s, &truth, 30);
        let dcs = vec![
            parse_dc(&s, "u", "!(t1.x > 8)", Hardness::Hard).unwrap(),
            parse_dc(&s, "ord", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Hard).unwrap(),
        ];
        let weights = vec![HARD_WEIGHT, HARD_WEIGHT];
        let mut cfg = SampleConfig::new(200);
        cfg.shards = 4;
        let mut rng = StdRng::seed_from_u64(26);
        let out = synthesize(&s, &model, &dcs, &weights, &cfg, &mut rng);
        for i in 0..out.n_rows() {
            assert!(out.num(i, 2) <= 8.0, "unary DC violated at row {i}");
        }
        assert_eq!(count_violating_pairs(&dcs[1], &out), 0);
    }

    /// FNV-1a fingerprint of the sequential sampler's output for a pinned
    /// seed — the `shards: 1` bit-identity guarantee as a regression
    /// test. If `synthesize` ever routes `shards: 1` through a different
    /// code path, or the sequential engine's RNG stream shifts, this hash
    /// moves. (Comparing two shards-1 runs would only prove determinism;
    /// the pin catches a broken routing guard too.)
    #[test]
    fn sequential_output_is_pinned() {
        let s = schema();
        let truth = toy_instance(&s, 200, 31);
        let model = trained_model(&s, &truth, 20);
        let dcs = vec![fd(&s)];
        let w = vec![HARD_WEIGHT];
        let mut cfg = SampleConfig::new(60);
        cfg.mcmc_resamples = 10;
        cfg.shards = 1;
        let mut rng = StdRng::seed_from_u64(32);
        let out = synthesize(&s, &model, &dcs, &w, &cfg, &mut rng);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
        };
        for i in 0..out.n_rows() {
            for j in 0..s.len() {
                match out.value(i, j) {
                    Value::Cat(c) => mix(&c.to_le_bytes()),
                    Value::Num(x) => mix(&x.to_bits().to_le_bytes()),
                }
            }
        }
        assert_eq!(
            h, 0x02bb_d1e8_fced_961c,
            "sequential sampler output drifted: {h:#018x}"
        );
    }

    #[test]
    fn shards_one_config_takes_the_sequential_path() {
        // shards: 1 must be bit-identical to the default sequential
        // sampler (the sharded knobs are inert on that path).
        let s = schema();
        let truth = toy_instance(&s, 200, 27);
        let model = trained_model(&s, &truth, 15);
        let dcs = vec![fd(&s)];
        let w = vec![HARD_WEIGHT];
        let base = SampleConfig::new(100);
        let mut explicit = SampleConfig::new(100);
        explicit.shards = 1;
        explicit.repair_sweeps = 99; // inert when shards == 1
        let mut r1 = StdRng::seed_from_u64(28);
        let mut r2 = StdRng::seed_from_u64(28);
        let a = synthesize(&s, &model, &dcs, &w, &base, &mut r1);
        let b = synthesize(&s, &model, &dcs, &w, &explicit, &mut r2);
        assert_eq!(a, b);
    }
}
