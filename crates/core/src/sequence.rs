//! Constraint-aware attribute sequencing (Algorithm 4).
//!
//! The schema sequence `S` decides which attributes act as context for
//! which targets. The heuristic is instance-independent — it reads only the
//! public schema, domain, and DC set, so it costs no privacy budget: FDs are
//! sorted by the minimal domain size of their determinant, each FD
//! contributes its determinant attributes (sorted by domain size) followed
//! by its dependent, and leftover attributes are appended by ascending
//! domain size (smaller context domains → more accurately learnable
//! sub-models, §4.3).

use kamino_constraints::DenialConstraint;
use kamino_data::Schema;
use rand::seq::SliceRandom;
use rand::Rng;

/// Computes the schema sequence (attribute indices in sampling order).
pub fn sequence_attrs(schema: &Schema, dcs: &[DenialConstraint]) -> Vec<usize> {
    // Σ ← FDs from Φ, sorted by increasing minimal domain size of the LHS.
    let mut fds: Vec<_> = dcs.iter().filter_map(|dc| dc.as_fd()).collect();
    fds.sort_by_key(|fd| {
        fd.lhs
            .iter()
            .map(|&a| schema.attr(a).domain_size())
            .min()
            .unwrap_or(usize::MAX)
    });

    let mut seq: Vec<usize> = Vec::with_capacity(schema.len());
    let mut used = vec![false; schema.len()];
    let push = |seq: &mut Vec<usize>, used: &mut Vec<bool>, a: usize| {
        if !used[a] {
            used[a] = true;
            seq.push(a);
        }
    };
    for fd in &fds {
        let mut lhs = fd.lhs.clone();
        lhs.sort_by_key(|&a| schema.attr(a).domain_size());
        for a in lhs {
            push(&mut seq, &mut used, a);
        }
        push(&mut seq, &mut used, fd.rhs);
    }
    // Remaining attributes by ascending domain size (stable on index).
    let mut rest: Vec<usize> = (0..schema.len()).filter(|&a| !used[a]).collect();
    rest.sort_by_key(|&a| (schema.attr(a).domain_size(), a));
    seq.extend(rest);
    seq
}

/// A uniformly random sequence — the "RandSequence" ablation arm of
/// Experiment 5.
pub fn random_sequence<R: Rng + ?Sized>(schema: &Schema, rng: &mut R) -> Vec<usize> {
    let mut seq: Vec<usize> = (0..schema.len()).collect();
    seq.shuffle(rng);
    seq
}

/// For each sequence position `j`, the indices (into `dcs`) of the DCs that
/// become *active* at `j`: their attribute set `A_φ` is covered by the
/// first `j+1` sequence attributes but not by the first `j` (the paper's
/// `Φ_{A_j}`). Every DC activates at exactly one position.
pub fn active_dcs_by_position(sequence: &[usize], dcs: &[DenialConstraint]) -> Vec<Vec<usize>> {
    let mut pos_of_attr = vec![usize::MAX; sequence.len()];
    for (pos, &a) in sequence.iter().enumerate() {
        pos_of_attr[a] = pos;
    }
    let mut active: Vec<Vec<usize>> = vec![Vec::new(); sequence.len()];
    for (l, dc) in dcs.iter().enumerate() {
        let activation = dc
            .attrs()
            .into_iter()
            .map(|a| pos_of_attr[a])
            .max()
            .expect("a DC references at least one attribute");
        assert!(
            activation != usize::MAX,
            "DC {} references an attribute outside the sequence",
            dc.name
        );
        active[activation].push(l);
    }
    active
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_constraints::{parse_dc, Hardness};
    use kamino_data::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("big", 100).unwrap(), // 0
            Attribute::categorical_indexed("edu", 16).unwrap(),  // 1
            Attribute::categorical_indexed("edu_num", 16).unwrap(), // 2
            Attribute::categorical_indexed("tiny", 2).unwrap(),  // 3
            Attribute::numeric("gain", 0.0, 10.0, 20).unwrap(),  // 4
            Attribute::numeric("loss", 0.0, 10.0, 20).unwrap(),  // 5
        ])
        .unwrap()
    }

    #[test]
    fn fd_lhs_precedes_rhs() {
        let s = schema();
        let dcs = vec![parse_dc(
            &s,
            "fd",
            "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
            Hardness::Hard,
        )
        .unwrap()];
        let seq = sequence_attrs(&s, &dcs);
        let pos = |a: usize| seq.iter().position(|&x| x == a).unwrap();
        assert!(
            pos(1) < pos(2),
            "FD determinant must precede dependent: {seq:?}"
        );
        // FD attributes come before everything else
        assert_eq!(seq[0], 1);
        assert_eq!(seq[1], 2);
    }

    #[test]
    fn rest_sorted_by_domain_size() {
        let s = schema();
        let seq = sequence_attrs(&s, &[]);
        // no FDs: everything ordered by ascending domain size
        assert_eq!(seq, vec![3, 1, 2, 4, 5, 0]);
    }

    #[test]
    fn fds_sorted_by_min_lhs_domain() {
        let s = schema();
        let dcs = vec![
            parse_dc(
                &s,
                "fd_big",
                "!(t1.big == t2.big & t1.gain != t2.gain)",
                Hardness::Hard,
            )
            .unwrap(),
            parse_dc(
                &s,
                "fd_tiny",
                "!(t1.tiny == t2.tiny & t1.loss != t2.loss)",
                Hardness::Hard,
            )
            .unwrap(),
        ];
        let seq = sequence_attrs(&s, &dcs);
        // the FD with the smaller determinant domain (tiny=2) goes first
        assert_eq!(&seq[..2], &[3, 5]);
        assert_eq!(&seq[2..4], &[0, 4]);
    }

    #[test]
    fn non_fd_dcs_do_not_drive_sequencing() {
        let s = schema();
        let dcs = vec![parse_dc(
            &s,
            "ord",
            "!(t1.gain > t2.gain & t1.loss < t2.loss)",
            Hardness::Hard,
        )
        .unwrap()];
        // order DC is not an FD ⇒ same as no-FD ordering
        assert_eq!(sequence_attrs(&s, &dcs), sequence_attrs(&s, &[]));
    }

    #[test]
    fn sequence_is_a_permutation() {
        let s = schema();
        let dcs = vec![
            parse_dc(
                &s,
                "a",
                "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
                Hardness::Hard,
            )
            .unwrap(),
            parse_dc(
                &s,
                "b",
                "!(t1.edu_num == t2.edu_num & t1.edu != t2.edu)",
                Hardness::Hard,
            )
            .unwrap(),
        ];
        let mut seq = sequence_attrs(&s, &dcs);
        seq.sort_unstable();
        assert_eq!(seq, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn random_sequence_is_permutation() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seq = random_sequence(&s, &mut rng);
        seq.sort_unstable();
        assert_eq!(seq, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn activation_positions() {
        let s = schema();
        let dcs = vec![
            parse_dc(
                &s,
                "fd",
                "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
                Hardness::Hard,
            )
            .unwrap(),
            parse_dc(
                &s,
                "ord",
                "!(t1.gain > t2.gain & t1.loss < t2.loss)",
                Hardness::Hard,
            )
            .unwrap(),
            parse_dc(&s, "u", "!(t1.gain > 9)", Hardness::Hard).unwrap(),
        ];
        let seq = sequence_attrs(&s, &dcs); // [1, 2, 3, 4, 5, 0]
        let active = active_dcs_by_position(&seq, &dcs);
        // fd activates once both edu (pos 0) and edu_num (pos 1) are seen
        assert_eq!(active[1], vec![0]);
        // unary gain DC activates at gain's position
        let gain_pos = seq.iter().position(|&a| a == 4).unwrap();
        assert!(active[gain_pos].contains(&2));
        // order DC activates when the later of gain/loss appears
        let loss_pos = seq.iter().position(|&a| a == 5).unwrap();
        assert!(active[gain_pos.max(loss_pos)].contains(&1));
        // each DC activates exactly once
        let total: usize = active.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
    }
}
