//! Snapshot codec for the pipeline layer: the trained [`DataModel`]
//! (embedding stores, attention, heads, noisy marginals), the selected
//! [`PrivacyParams`], the [`KaminoConfig`] and the fit-phase timings all
//! round-trip through the shared wire rules. `kamino-serve` assembles
//! these encodings (plus the schema/DC/RNG sections) into the versioned
//! snapshot file; this module only knows how to turn each piece into
//! bytes and back.

use std::time::Duration;

use kamino_data::snapshot::{decode_standardizer, encode_standardizer};
use kamino_data::wire::{ByteReader, ByteWriter, WireError};
use kamino_dp::snapshot::{decode_budget, encode_budget};
use kamino_nn::snapshot::{
    decode_attention, decode_cat_head, decode_embedding, decode_encoder, decode_gauss_head,
    encode_attention, encode_cat_head, encode_embedding, encode_encoder, encode_gauss_head,
};

use crate::model::{AttrEmbedder, DataModel, EmbeddingStore, Head, SubModel, SubModelKind};
use crate::params::PrivacyParams;
use crate::pipeline::{KaminoConfig, PhaseTimings};

const EMBEDDER_CAT: u8 = 0;
const EMBEDDER_NUM: u8 = 1;
const HEAD_CAT: u8 = 0;
const HEAD_NUM: u8 = 1;
const KIND_DISCRIMINATIVE: u8 = 0;
const KIND_NOISY_MARGINAL: u8 = 1;

fn encode_embedder(e: &AttrEmbedder, w: &mut ByteWriter) {
    match e {
        AttrEmbedder::Cat(emb) => {
            w.put_u8(EMBEDDER_CAT);
            encode_embedding(emb, w);
        }
        AttrEmbedder::Num { enc, std } => {
            w.put_u8(EMBEDDER_NUM);
            encode_encoder(enc, w);
            encode_standardizer(std, w);
        }
    }
}

fn decode_embedder(r: &mut ByteReader<'_>) -> Result<AttrEmbedder, WireError> {
    match r.u8()? {
        EMBEDDER_CAT => Ok(AttrEmbedder::Cat(decode_embedding(r)?)),
        EMBEDDER_NUM => Ok(AttrEmbedder::Num {
            enc: decode_encoder(r)?,
            std: decode_standardizer(r)?,
        }),
        tag => Err(WireError::Malformed(format!("unknown embedder tag {tag}"))),
    }
}

fn encode_store(s: &EmbeddingStore, w: &mut ByteWriter) {
    w.put_usize(s.dim());
    w.put_u32(s.embedders().len() as u32);
    for e in s.embedders() {
        match e {
            None => w.put_u8(0),
            Some(e) => {
                w.put_u8(1);
                encode_embedder(e, w);
            }
        }
    }
}

fn decode_store(r: &mut ByteReader<'_>) -> Result<EmbeddingStore, WireError> {
    let dim = r.usize()?;
    let n = r.len_prefix()?;
    let mut embedders = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        embedders.push(match r.u8()? {
            0 => None,
            1 => Some(decode_embedder(r)?),
            tag => return Err(WireError::Malformed(format!("unknown option tag {tag}"))),
        });
    }
    Ok(EmbeddingStore::from_parts(embedders, dim))
}

fn encode_submodel(sm: &SubModel, w: &mut ByteWriter) {
    w.put_usize(sm.target);
    w.put_usizes(&sm.context);
    match &sm.kind {
        SubModelKind::Discriminative { attention, head } => {
            w.put_u8(KIND_DISCRIMINATIVE);
            encode_attention(attention, w);
            match head {
                Head::Cat(h) => {
                    w.put_u8(HEAD_CAT);
                    encode_cat_head(h, w);
                }
                Head::Num(h) => {
                    w.put_u8(HEAD_NUM);
                    encode_gauss_head(h, w);
                }
            }
        }
        SubModelKind::NoisyMarginal { dist } => {
            w.put_u8(KIND_NOISY_MARGINAL);
            w.put_f64s(dist);
        }
    }
    match &sm.own_store {
        None => w.put_u8(0),
        Some(store) => {
            w.put_u8(1);
            encode_store(store, w);
        }
    }
}

fn decode_submodel(r: &mut ByteReader<'_>) -> Result<SubModel, WireError> {
    let target = r.usize()?;
    let context = r.usizes()?;
    let kind = match r.u8()? {
        KIND_DISCRIMINATIVE => {
            let attention = decode_attention(r)?;
            let head = match r.u8()? {
                HEAD_CAT => Head::Cat(decode_cat_head(r)?),
                HEAD_NUM => Head::Num(decode_gauss_head(r)?),
                tag => return Err(WireError::Malformed(format!("unknown head tag {tag}"))),
            };
            if attention.n_context() != context.len() {
                return Err(WireError::Malformed(format!(
                    "attention arity {} does not match context arity {}",
                    attention.n_context(),
                    context.len()
                )));
            }
            SubModelKind::Discriminative { attention, head }
        }
        KIND_NOISY_MARGINAL => SubModelKind::NoisyMarginal { dist: r.f64s()? },
        tag => return Err(WireError::Malformed(format!("unknown sub-model tag {tag}"))),
    };
    let own_store = match r.u8()? {
        0 => None,
        1 => Some(decode_store(r)?),
        tag => return Err(WireError::Malformed(format!("unknown option tag {tag}"))),
    };
    Ok(SubModel {
        target,
        context,
        kind,
        own_store,
    })
}

/// Encodes the trained probabilistic model `M`.
pub fn encode_model(m: &DataModel, w: &mut ByteWriter) {
    w.put_usizes(&m.sequence);
    w.put_f64s(&m.first_dist);
    encode_store(&m.store, w);
    w.put_u32(m.submodels.len() as u32);
    for sm in &m.submodels {
        encode_submodel(sm, w);
    }
}

/// Decodes a model written by [`encode_model`].
pub fn decode_model(r: &mut ByteReader<'_>) -> Result<DataModel, WireError> {
    let sequence = r.usizes()?;
    let first_dist = r.f64s()?;
    let store = decode_store(r)?;
    let n = r.len_prefix()?;
    if n + 1 != sequence.len() {
        return Err(WireError::Malformed(format!(
            "{n} sub-models for a {}-attribute sequence",
            sequence.len()
        )));
    }
    let mut submodels = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        submodels.push(decode_submodel(r)?);
    }
    Ok(DataModel {
        sequence,
        first_dist,
        store,
        submodels,
    })
}

/// Encodes the selected privacy parameters Ψ.
pub fn encode_params(p: &PrivacyParams, w: &mut ByteWriter) {
    w.put_bool(p.non_private);
    w.put_f64(p.sigma_g);
    w.put_f64(p.sigma_d);
    w.put_usize(p.b);
    w.put_usize(p.t);
    w.put_f64(p.clip);
    w.put_f64(p.lr);
    w.put_bool(p.learn_weights);
    w.put_f64(p.sigma_w);
    w.put_usize(p.l_w);
    w.put_usize(p.b_w);
    w.put_usize(p.t_w);
    w.put_f64(p.achieved_epsilon);
}

/// Decodes parameters written by [`encode_params`].
pub fn decode_params(r: &mut ByteReader<'_>) -> Result<PrivacyParams, WireError> {
    Ok(PrivacyParams {
        non_private: r.bool()?,
        sigma_g: r.f64()?,
        sigma_d: r.f64()?,
        b: r.usize()?,
        t: r.usize()?,
        clip: r.f64()?,
        lr: r.f64()?,
        learn_weights: r.bool()?,
        sigma_w: r.f64()?,
        l_w: r.usize()?,
        b_w: r.usize()?,
        t_w: r.usize()?,
        achieved_epsilon: r.f64()?,
    })
}

/// Encodes the pipeline configuration (budget included).
pub fn encode_config(c: &KaminoConfig, w: &mut ByteWriter) {
    encode_budget(&c.budget, w);
    w.put_u64(c.seed);
    w.put_usize(c.embed_dim);
    w.put_f64(c.lr);
    w.put_usize(c.d_candidates);
    w.put_f64(c.mcmc_ratio);
    w.put_bool(c.parallel_training);
    w.put_bool(c.constraint_aware_sampling);
    w.put_bool(c.constraint_aware_sequencing);
    w.put_bool(c.hard_fd_lookup);
    w.put_bool(c.ar_sampling);
    w.put_bool(c.parallel_substrate);
    w.put_f64(c.train_scale);
    match c.output_n {
        None => w.put_u8(0),
        Some(n) => {
            w.put_u8(1);
            w.put_usize(n);
        }
    }
    w.put_usize(c.large_domain_threshold);
    w.put_usize(c.shards);
}

/// Decodes a configuration written by [`encode_config`].
pub fn decode_config(r: &mut ByteReader<'_>) -> Result<KaminoConfig, WireError> {
    let budget = decode_budget(r)?;
    let mut cfg = KaminoConfig::new(budget);
    cfg.seed = r.u64()?;
    cfg.embed_dim = r.usize()?;
    cfg.lr = r.f64()?;
    cfg.d_candidates = r.usize()?;
    cfg.mcmc_ratio = r.f64()?;
    cfg.parallel_training = r.bool()?;
    cfg.constraint_aware_sampling = r.bool()?;
    cfg.constraint_aware_sequencing = r.bool()?;
    cfg.hard_fd_lookup = r.bool()?;
    cfg.ar_sampling = r.bool()?;
    cfg.parallel_substrate = r.bool()?;
    cfg.train_scale = r.f64()?;
    cfg.output_n = match r.u8()? {
        0 => None,
        1 => Some(r.usize()?),
        tag => return Err(WireError::Malformed(format!("unknown option tag {tag}"))),
    };
    cfg.large_domain_threshold = r.usize()?;
    cfg.shards = r.usize()?;
    Ok(cfg)
}

/// Encodes fit-phase timings as nanosecond counts. The wire layout is
/// frozen at the original four fields so old readers and old snapshots
/// stay compatible; the sample-side breakdown travels separately via
/// [`encode_sample_timings`] (containers put it in an optional section).
pub fn encode_timings(t: &PhaseTimings, w: &mut ByteWriter) {
    for d in [t.sequencing, t.training, t.dc_weights, t.sampling] {
        w.put_u64(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }
}

/// Decodes timings written by [`encode_timings`]; the sample-side
/// breakdown stays zero unless [`decode_sample_timings`] fills it in.
pub fn decode_timings(r: &mut ByteReader<'_>) -> Result<PhaseTimings, WireError> {
    Ok(PhaseTimings {
        sequencing: Duration::from_nanos(r.u64()?),
        training: Duration::from_nanos(r.u64()?),
        dc_weights: Duration::from_nanos(r.u64()?),
        sampling: Duration::from_nanos(r.u64()?),
        ..PhaseTimings::default()
    })
}

/// Encodes the sample-side phase breakdown (fill/repair/MCMC) as
/// nanosecond counts — the payload of the container's optional
/// sample-timings section.
pub fn encode_sample_timings(t: &PhaseTimings, w: &mut ByteWriter) {
    for d in [t.sample_fill, t.sample_repair, t.sample_mcmc] {
        w.put_u64(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }
}

/// Decodes a breakdown written by [`encode_sample_timings`] into an
/// already-decoded [`PhaseTimings`].
pub fn decode_sample_timings(
    r: &mut ByteReader<'_>,
    t: &mut PhaseTimings,
) -> Result<(), WireError> {
    t.sample_fill = Duration::from_nanos(r.u64()?);
    t.sample_repair = Duration::from_nanos(r.u64()?);
    t.sample_mcmc = Duration::from_nanos(r.u64()?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_dp::Budget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_and_config_roundtrip() {
        let p = PrivacyParams {
            non_private: false,
            sigma_g: 1.5,
            sigma_d: 0.7,
            b: 32,
            t: 120,
            clip: 1.0,
            lr: 0.05,
            learn_weights: true,
            sigma_w: 2.0,
            l_w: 100,
            b_w: 1,
            t_w: 100,
            achieved_epsilon: 0.93,
        };
        let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
        cfg.seed = 99;
        cfg.output_n = Some(450);
        cfg.shards = 4;
        let mut w = ByteWriter::new();
        encode_params(&p, &mut w);
        encode_config(&cfg, &mut w);
        encode_timings(
            &PhaseTimings {
                sequencing: Duration::from_millis(2),
                training: Duration::from_millis(300),
                dc_weights: Duration::ZERO,
                sampling: Duration::ZERO,
                ..PhaseTimings::default()
            },
            &mut w,
        );
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let p2 = decode_params(&mut r).unwrap();
        assert_eq!(p2.achieved_epsilon, 0.93);
        assert_eq!((p2.b, p2.t, p2.l_w), (32, 120, 100));
        let cfg2 = decode_config(&mut r).unwrap();
        assert_eq!(cfg2.seed, 99);
        assert_eq!(cfg2.output_n, Some(450));
        assert_eq!(cfg2.shards, 4);
        let t2 = decode_timings(&mut r).unwrap();
        assert_eq!(t2.training, Duration::from_millis(300));
        assert!(r.is_exhausted());
    }

    #[test]
    fn trained_model_roundtrip_predicts_identically() {
        // fit a tiny real model and require bit-identical predictions
        let d = kamino_datasets::adult_like(120, 5);
        let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
        cfg.train_scale = 0.02;
        cfg.embed_dim = 8;
        cfg.seed = 3;
        let fitted = crate::pipeline::fit_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        let model = fitted.model();
        let mut w = ByteWriter::new();
        encode_model(model, &mut w);
        let bytes = w.into_bytes();
        let got = decode_model(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(got.sequence, model.sequence);
        assert_eq!(got.first_dist, model.first_dist);
        assert_eq!(got.submodels.len(), model.submodels.len());
        // spot-check a prediction through each sub-model kind
        let mut rng = StdRng::seed_from_u64(0);
        use rand::Rng;
        for (a, b) in model.submodels.iter().zip(&got.submodels) {
            assert_eq!(a.target, b.target);
            assert_eq!(a.context, b.context);
            let ctx: Vec<kamino_data::Value> = a
                .context
                .iter()
                .map(|&j| match &d.schema.attr(j).kind {
                    kamino_data::AttrKind::Categorical { labels } => {
                        kamino_data::Value::Cat(rng.gen_range(0..labels.len()) as u32)
                    }
                    kamino_data::AttrKind::Numeric { min, max, .. } => {
                        kamino_data::Value::Num(rng.gen_range(*min..*max))
                    }
                })
                .collect();
            if d.schema.attr(a.target).is_categorical() {
                assert_eq!(
                    a.predict_cat(&model.store, &ctx),
                    b.predict_cat(&got.store, &ctx)
                );
            } else if matches!(a.kind, SubModelKind::Discriminative { .. }) {
                assert_eq!(
                    a.predict_num(&model.store, &ctx),
                    b.predict_num(&got.store, &ctx)
                );
            }
        }
    }

    #[test]
    fn submodel_count_mismatch_rejected() {
        let mut w = ByteWriter::new();
        w.put_usizes(&[0, 1, 2]); // 3-attribute sequence
        w.put_f64s(&[0.5, 0.5]);
        // empty store
        w.put_usize(4);
        w.put_u32(0);
        w.put_u32(5); // wrong: needs exactly 2 sub-models
        let bytes = w.into_bytes();
        assert!(decode_model(&mut ByteReader::new(&bytes)).is_err());
    }
}
