//! Probabilistic data-model training (Algorithm 2).
//!
//! The first sequence attribute's (quantized) histogram is released with
//! the Gaussian mechanism (L2 sensitivity √2 — one tuple change moves two
//! counts — matching the paper's `N(0, 2σ_g²)` noise). Each remaining
//! attribute gets a discriminative sub-model trained with DP-SGD at
//! sampling rate `b/n` for `T` iterations; embeddings are saved after each
//! sub-model and reused to initialize the next (Algorithm 2 lines 7/19).
//!
//! Two deviations, both from the paper itself:
//! * attributes with domains larger than `large_domain_threshold` use the
//!   §4.3 extreme-domain fallback (independent noisy histogram);
//! * `parallel` trains sub-models on separate threads with fresh private
//!   embeddings instead of reused ones — the §7.3.6 optimization, which the
//!   paper reports costs ≈0.01 task quality for a 3.5× speedup.

use kamino_data::stats::{histogram, normalize};
use kamino_data::{AttrKind, Instance, Quantizer, Schema, Value};
use kamino_dp::mechanisms::add_gaussian_noise;
use kamino_dp::poisson_sample;
use kamino_nn::{microbatch_parallel_worthwhile, Attention, CategoricalHead, DpSgd, GaussianHead};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{
    DataModel, EmbeddingStore, Head, OwnedTrainer, SubModel, SubModelKind, SubModelTrainer,
    TrainRow,
};

/// Training configuration — the slice of Ψ that Algorithm 2 consumes.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Embedding dimension `d`.
    pub embed_dim: usize,
    /// Learning rate `η`.
    pub lr: f64,
    /// Expected batch size `b`.
    pub batch: usize,
    /// DP-SGD iterations `T` per sub-model.
    pub iters: usize,
    /// Per-example gradient clip `C`.
    pub clip: f64,
    /// Noise multiplier for histogram releases (`σ_g`); 0 disables noise
    /// (non-private mode).
    pub sigma_g: f64,
    /// DP-SGD noise multiplier (`σ_d`); 0 disables noise.
    pub sigma_d: f64,
    /// Train sub-models in parallel with private embeddings (Exp. 10).
    /// This changes the trained model (no embedding reuse across
    /// sub-models); contrast with `microbatch_parallel`.
    pub parallel: bool,
    /// Parallelize per-example gradients inside each DP-SGD step via the
    /// rayon-backed microbatch substrate. Purely a performance switch:
    /// gradient sums are merged in fixed microbatch order, so the trained
    /// model is bit-identical to the serial path.
    pub microbatch_parallel: bool,
    /// Domains larger than this use the §4.3 noisy-marginal fallback.
    pub large_domain_threshold: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            embed_dim: 16,
            lr: 0.05,
            batch: 32,
            iters: 200,
            clip: 1.0,
            sigma_g: 1.0,
            sigma_d: 1.1,
            parallel: false,
            microbatch_parallel: true,
            large_domain_threshold: 256,
            seed: 0,
        }
    }
}

/// Releases attribute `attr`'s histogram with the Gaussian mechanism and
/// post-processes it into a distribution.
fn noisy_distribution(
    schema: &Schema,
    inst: &Instance,
    attr: usize,
    sigma_g: f64,
    rng: &mut StdRng,
) -> Vec<f64> {
    let mut counts = histogram(schema, inst, attr);
    // neighboring instances (one tuple changed) move two counts by 1 ⇒ √2
    add_gaussian_noise(&mut counts, std::f64::consts::SQRT_2, sigma_g, rng);
    normalize(&counts)
}

/// Extracts the training rows (context values + target) for one sub-model.
fn training_rows(
    inst: &Instance,
    context: &[usize],
    target: usize,
    ids: &[usize],
) -> Vec<TrainRow> {
    ids.iter()
        .map(|&i| TrainRow {
            context: context.iter().map(|&a| inst.value(i, a)).collect(),
            target: inst.value(i, target),
        })
        .collect()
}

fn fresh_submodel(
    schema: &Schema,
    store: &EmbeddingStore,
    context: &[usize],
    target: usize,
    rng: &mut StdRng,
) -> SubModel {
    let head = match schema.attr(target).kind {
        AttrKind::Categorical { .. } => Head::Cat(CategoricalHead::new(
            store.dim(),
            schema.attr(target).domain_size(),
            rng,
        )),
        AttrKind::Numeric { .. } => Head::Num(GaussianHead::new(store.dim(), rng)),
    };
    SubModel {
        target,
        context: context.to_vec(),
        kind: SubModelKind::Discriminative {
            attention: Attention::new(context.len(), store.dim()),
            head,
        },
        own_store: None,
    }
}

fn train_one(
    inst: &Instance,
    store: &mut EmbeddingStore,
    sm: &mut SubModel,
    cfg: &TrainConfig,
    n: usize,
    rng: &mut StdRng,
) {
    // Clipping is part of Algorithm 2 regardless of privacy (line 14);
    // only the noise is privacy-specific. It also stabilizes the Gaussian
    // head, whose μ-gradient scales like 1/σ² as σ shrinks.
    let opt = DpSgd {
        clip: cfg.clip,
        noise_multiplier: cfg.sigma_d,
        lr: cfg.lr,
        expected_batch: cfg.batch as f64,
    };
    let rate = (cfg.batch as f64 / n.max(1) as f64).min(1.0);
    let context = sm.context.clone();
    let target = sm.target;
    for _ in 0..cfg.iters {
        let ids = poisson_sample(n, rate, rng);
        let rows = training_rows(inst, &context, target, &ids);
        if cfg.microbatch_parallel && microbatch_parallel_worthwhile(rows.len()) {
            // Per-example gradients fan out across workers, each on a
            // clone of the current parameters; merged in microbatch order
            // the update is bit-identical to the serial step. Workers only
            // touch the context embedders (forward/backward) and the
            // target's standardizer, so the prototype carries just those.
            let proto_store = store.subset_for(context.iter().copied().chain([target]));
            let proto_sm = sm.clone();
            let mut trainer = SubModelTrainer {
                store: &mut *store,
                sm: &mut *sm,
            };
            opt.step_parallel(&mut trainer, &rows, rng, || OwnedTrainer {
                store: proto_store.clone(),
                sm: proto_sm.clone(),
            });
        } else {
            let mut trainer = SubModelTrainer {
                store: &mut *store,
                sm: &mut *sm,
            };
            opt.step(&mut trainer, &rows, rng);
        }
    }
}

/// Trains the full probabilistic data model (Algorithm 2).
pub fn train_model(
    schema: &Schema,
    inst: &Instance,
    sequence: &[usize],
    cfg: &TrainConfig,
) -> DataModel {
    assert_eq!(
        sequence.len(),
        schema.len(),
        "sequence must cover the schema"
    );
    let n = inst.n_rows();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7EA1);
    let mut store = EmbeddingStore::new(schema, cfg.embed_dim, &mut rng);

    // Line 2-4: noisy distribution for the first attribute.
    let first_dist = noisy_distribution(schema, inst, sequence[0], cfg.sigma_g, &mut rng);

    // Lines 6-20: one sub-model per remaining attribute.
    let plan: Vec<(Vec<usize>, usize)> = (1..sequence.len())
        .map(|j| (sequence[..j].to_vec(), sequence[j]))
        .collect();

    let mut submodels: Vec<SubModel> = Vec::with_capacity(plan.len());
    if cfg.parallel {
        // Exp. 10: fresh private embeddings per sub-model, trained on
        // separate threads (no reuse ⇒ independent, embarrassingly parallel).
        let results: Vec<SubModel> = std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .iter()
                .enumerate()
                .map(|(idx, (context, target))| {
                    let store_proto = &store;
                    scope.spawn(move || {
                        let mut trng = StdRng::seed_from_u64(cfg.seed ^ (0xBEE5 + idx as u64));
                        let mut own = store_proto.clone();
                        let mut sm =
                            large_or_disc(schema, inst, &own, context, *target, cfg, &mut trng);
                        if matches!(sm.kind, SubModelKind::Discriminative { .. }) {
                            train_one(inst, &mut own, &mut sm, cfg, n, &mut trng);
                            sm.own_store = Some(own);
                        }
                        sm
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("trainer thread panicked"))
                .collect()
        });
        submodels = results;
    } else {
        for (context, target) in &plan {
            let mut sm = large_or_disc(schema, inst, &store, context, *target, cfg, &mut rng);
            if matches!(sm.kind, SubModelKind::Discriminative { .. }) {
                train_one(inst, &mut store, &mut sm, cfg, n, &mut rng);
            }
            submodels.push(sm);
        }
    }

    DataModel {
        sequence: sequence.to_vec(),
        first_dist,
        store,
        submodels,
    }
}

/// Chooses between the discriminative sub-model and the §4.3 extreme-domain
/// noisy-marginal fallback for `target`.
fn large_or_disc(
    schema: &Schema,
    inst: &Instance,
    store: &EmbeddingStore,
    context: &[usize],
    target: usize,
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> SubModel {
    if schema.attr(target).domain_size() > cfg.large_domain_threshold {
        let dist = noisy_distribution(schema, inst, target, cfg.sigma_g, rng);
        SubModel {
            target,
            context: context.to_vec(),
            kind: SubModelKind::NoisyMarginal { dist },
            own_store: None,
        }
    } else {
        fresh_submodel(schema, store, context, target, rng)
    }
}

/// Number of full-rate Gaussian histogram releases the model will make:
/// one for the first attribute plus one per large-domain fallback target.
/// [`crate::params::search_params`] charges the accountant accordingly.
pub fn count_marginal_releases(
    schema: &Schema,
    sequence: &[usize],
    large_domain_threshold: usize,
) -> usize {
    1 + sequence[1..]
        .iter()
        .filter(|&&a| schema.attr(a).domain_size() > large_domain_threshold)
        .count()
}

/// Number of DP-SGD-trained sub-models (the `k − 1` of Theorem 1 minus the
/// large-domain fallbacks).
pub fn count_sgd_models(
    schema: &Schema,
    sequence: &[usize],
    large_domain_threshold: usize,
) -> usize {
    sequence[1..]
        .iter()
        .filter(|&&a| schema.attr(a).domain_size() <= large_domain_threshold)
        .count()
}

/// Samples one value of the first attribute from the model's noisy
/// distribution (bin draw, then uniform within the bin for numeric
/// domains — Algorithm 3 line 2).
pub fn sample_first_attr<R: Rng + ?Sized>(
    schema: &Schema,
    model: &DataModel,
    rng: &mut R,
) -> Value {
    let attr = model.sequence[0];
    let q = Quantizer::for_attr(schema.attr(attr));
    let bin = kamino_data::stats::sample_weighted(&model.first_dist, rng);
    q.sample_in_bin(bin, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_data::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::categorical_indexed("b", 3).unwrap(),
            Attribute::numeric("x", 0.0, 10.0, 5).unwrap(),
        ])
        .unwrap()
    }

    /// b == a always; x = 3·a + small noise.
    fn toy_instance(schema: &Schema, n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = Instance::empty(schema);
        for _ in 0..n {
            let a = rng.gen_range(0..3u32);
            let x = (3.0 * a as f64 + rng.gen::<f64>() * 0.5).clamp(0.0, 10.0);
            inst.push_row(schema, &[Value::Cat(a), Value::Cat(a), Value::Num(x)])
                .unwrap();
        }
        inst
    }

    fn non_private(iters: usize) -> TrainConfig {
        TrainConfig {
            sigma_g: 0.0,
            sigma_d: 0.0,
            iters,
            lr: 0.2,
            batch: 32,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn first_dist_matches_truth_when_noiseless() {
        let s = schema();
        let inst = toy_instance(&s, 300, 1);
        let model = train_model(&s, &inst, &[0, 1, 2], &non_private(1));
        let truth = normalize(&histogram(&s, &inst, 0));
        for (a, b) in model.first_dist.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn noise_perturbs_first_dist() {
        let s = schema();
        let inst = toy_instance(&s, 300, 1);
        let mut cfg = non_private(1);
        cfg.sigma_g = 5.0;
        let model = train_model(&s, &inst, &[0, 1, 2], &cfg);
        let truth = normalize(&histogram(&s, &inst, 0));
        let dist: f64 = model
            .first_dist
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>();
        assert!(dist > 1e-4, "sigma_g = 5 left the distribution untouched");
        assert!((model.first_dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_private_training_learns_fd() {
        let s = schema();
        let inst = toy_instance(&s, 400, 2);
        let model = train_model(&s, &inst, &[0, 1, 2], &non_private(300));
        // P(b = a | a) must dominate after training
        for a in 0..3u32 {
            let p = model
                .submodel_at(1)
                .predict_cat(&model.store, &[Value::Cat(a)]);
            assert!(
                p[a as usize] > 0.7,
                "P(b={a}|a={a}) = {} too low",
                p[a as usize]
            );
        }
    }

    #[test]
    fn numeric_submodel_tracks_context() {
        let s = schema();
        let inst = toy_instance(&s, 400, 3);
        let model = train_model(&s, &inst, &[0, 1, 2], &non_private(400));
        let (mu0, _) = model
            .submodel_at(2)
            .predict_num(&model.store, &[Value::Cat(0), Value::Cat(0)]);
        let (mu2, _) = model
            .submodel_at(2)
            .predict_num(&model.store, &[Value::Cat(2), Value::Cat(2)]);
        assert!(mu2 > mu0 + 2.0, "x(a=2) = {mu2} not above x(a=0) = {mu0}");
    }

    #[test]
    fn private_training_runs_and_stays_finite() {
        let s = schema();
        let inst = toy_instance(&s, 200, 4);
        let cfg = TrainConfig {
            iters: 30,
            ..TrainConfig::default()
        };
        let model = train_model(&s, &inst, &[0, 1, 2], &cfg);
        let p = model
            .submodel_at(1)
            .predict_cat(&model.store, &[Value::Cat(1)]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_training_produces_private_stores() {
        let s = schema();
        let inst = toy_instance(&s, 200, 5);
        let mut cfg = non_private(50);
        cfg.parallel = true;
        let model = train_model(&s, &inst, &[0, 1, 2], &cfg);
        for sm in &model.submodels {
            assert!(
                sm.own_store.is_some(),
                "parallel training must produce private stores"
            );
        }
        // predictions still work through the private stores
        let p = model
            .submodel_at(1)
            .predict_cat(&model.store, &[Value::Cat(2)]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn large_domain_fallback_used() {
        let s = Schema::new(vec![
            Attribute::categorical_indexed("small", 3).unwrap(),
            Attribute::categorical_indexed("huge", 500).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut inst = Instance::empty(&s);
        for _ in 0..100 {
            inst.push_row(
                &s,
                &[
                    Value::Cat(rng.gen_range(0..3)),
                    Value::Cat(rng.gen_range(0..500)),
                ],
            )
            .unwrap();
        }
        let cfg = non_private(5);
        let model = train_model(&s, &inst, &[0, 1], &cfg);
        assert!(matches!(
            model.submodels[0].kind,
            SubModelKind::NoisyMarginal { .. }
        ));
        assert_eq!(count_marginal_releases(&s, &[0, 1], 256), 2);
        assert_eq!(count_sgd_models(&s, &[0, 1], 256), 0);
    }

    #[test]
    fn release_counting() {
        let s = schema();
        assert_eq!(count_marginal_releases(&s, &[0, 1, 2], 256), 1);
        assert_eq!(count_sgd_models(&s, &[0, 1, 2], 256), 2);
    }

    #[test]
    fn sample_first_attr_respects_domain() {
        let s = schema();
        let inst = toy_instance(&s, 100, 7);
        let model = train_model(&s, &inst, &[2, 0, 1], &non_private(1));
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let v = sample_first_attr(&s, &model, &mut rng);
            let x = v.num();
            assert!((0.0..=10.0).contains(&x));
        }
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let s = schema();
        let inst = toy_instance(&s, 150, 9);
        let m1 = train_model(&s, &inst, &[0, 1, 2], &non_private(20));
        let m2 = train_model(&s, &inst, &[0, 1, 2], &non_private(20));
        let p1 = m1.submodel_at(1).predict_cat(&m1.store, &[Value::Cat(1)]);
        let p2 = m2.submodel_at(1).predict_cat(&m2.store, &[Value::Cat(1)]);
        assert_eq!(p1, p2);
    }
}
