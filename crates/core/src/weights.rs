//! Private learning of DC weights (Algorithm 5).
//!
//! Hard DCs get an infinite weight (a violation zeroes a candidate's
//! sampling probability). Soft-DC weights are learned from a *noisy
//! violation matrix*: Poisson-sample at most `L_w` tuples, compute each
//! sampled tuple's violation count per DC, perturb with
//! `N(0, S_w²·σ_w²)` where `S_w` is Lemma 1's sensitivity, clamp negatives
//! to zero, and run the paper's gradient update on
//! `O = exp(−Σ_l W[l]·V[i][l])`: ascent on `O` moves `W[l]` by
//! `−η·V[i][l]·O`, so constraints observed with many violations end up
//! with small weights and violation-free constraints stay near the
//! initialization ceiling.
//!
//! Two documented deviations, both stabilizations of the same objective:
//! * the update uses violation *rates* (`V[i][l] / (|D̂|−1)` for binary
//!   DCs) instead of raw counts — raw counts reach `L_w − 1 ≈ 99`, which
//!   drives `O` to underflow and freezes the gradient exactly when a
//!   weight most needs to shrink;
//! * the ascent runs on `ln O = −Σ W·V` rather than `O` itself — the same
//!   maximizer, but the gradient (`−V[i][l]`) does not carry the
//!   vanishing `O` factor, so heavily-violated DCs move *fastest* instead
//!   of slowest. Weights are clamped to `[0, w_max]`.

use kamino_constraints::{per_tuple_violations, DenialConstraint, Hardness};
use kamino_data::{Instance, Schema};
use kamino_dp::mechanisms::add_gaussian_noise;
use kamino_dp::sampling::poisson_sample_capped;
use kamino_dp::violation_matrix_sensitivity;
use rand::Rng;

use crate::sequence::active_dcs_by_position;

/// The weight assigned to hard DCs: any violation multiplies a candidate's
/// probability by `exp(−∞) = 0` (violation counts of zero are special-cased
/// so `0·∞` never occurs).
pub const HARD_WEIGHT: f64 = f64::INFINITY;

/// Configuration for Algorithm 5 (the `σ_w, T_w, L_w, b_w` of Ψ).
#[derive(Debug, Clone)]
pub struct WeightConfig {
    /// Sample-size cap `L_w`.
    pub l_w: usize,
    /// Noise multiplier `σ_w` (0 disables noise — ε = ∞ runs).
    pub sigma_w: f64,
    /// Update iterations `T_w` per sequence attribute.
    pub t_w: usize,
    /// Rows sampled per update `b_w`.
    pub b_w: usize,
    /// Update step size.
    pub lr_w: f64,
    /// Initial (and maximal) soft weight.
    pub w_max: f64,
}

impl Default for WeightConfig {
    fn default() -> Self {
        WeightConfig {
            l_w: 100,
            sigma_w: 1.0,
            t_w: 100,
            b_w: 1,
            lr_w: 0.3,
            w_max: 8.0,
        }
    }
}

/// Learns the weight vector `W` aligned with `dcs` (Algorithm 5). Hard DCs
/// receive [`HARD_WEIGHT`]; soft DCs are learned privately. Returns the
/// weights without touching the true instance when every DC is hard (in
/// which case the release is free).
pub fn learn_weights<R: Rng + ?Sized>(
    _schema: &Schema,
    inst: &Instance,
    dcs: &[DenialConstraint],
    sequence: &[usize],
    cfg: &WeightConfig,
    rng: &mut R,
) -> Vec<f64> {
    let mut weights = vec![HARD_WEIGHT; dcs.len()];
    if dcs.iter().all(|dc| dc.hardness == Hardness::Hard) {
        return weights;
    }
    for (l, dc) in dcs.iter().enumerate() {
        if dc.hardness == Hardness::Soft {
            weights[l] = cfg.w_max;
        }
    }

    // Lines 3-4: bounded Poisson sample.
    let n = inst.n_rows();
    let ids = poisson_sample_capped(n, cfg.l_w as f64 / n.max(1) as f64, cfg.l_w, rng);
    if ids.len() < 2 {
        // Too few rows to witness a binary violation; keep initial weights.
        return weights;
    }
    let sample = inst.take_rows(&ids);
    let m = sample.n_rows();

    // Line 5: violation matrix V (m × |Φ|), row-major.
    let mut v = vec![0.0; m * dcs.len()];
    for (l, dc) in dcs.iter().enumerate() {
        for (i, count) in per_tuple_violations(dc, &sample).into_iter().enumerate() {
            v[i * dcs.len() + l] = count as f64;
        }
    }

    // Lines 6-7: Gaussian perturbation at Lemma 1 sensitivity, clamp ≥ 0.
    let n_unary = dcs.iter().filter(|dc| !dc.is_binary()).count();
    let n_binary = dcs.len() - n_unary;
    let s_w = violation_matrix_sensitivity(n_unary, n_binary, cfg.l_w);
    add_gaussian_noise(&mut v, s_w, cfg.sigma_w, rng);
    for x in &mut v {
        *x = x.max(0.0);
    }

    // Normalize to rates (see module docs).
    let pair_scale = (m - 1) as f64;
    let rate = |i: usize, l: usize| -> f64 {
        let raw = v[i * dcs.len() + l];
        if dcs[l].is_binary() {
            (raw / pair_scale).min(1.0)
        } else {
            raw.min(1.0)
        }
    };

    // Lines 8-14: per-attribute update sweeps.
    let active = active_dcs_by_position(sequence, dcs);
    for dcs_here in &active {
        let soft_here: Vec<usize> = dcs_here
            .iter()
            .copied()
            .filter(|&l| dcs[l].hardness == Hardness::Soft)
            .collect();
        if soft_here.is_empty() {
            continue;
        }
        for _ in 0..cfg.t_w {
            for _ in 0..cfg.b_w {
                let i = rng.gen_range(0..m);
                for &l in &soft_here {
                    // ascent on ln O: d(ln O)/dW[l] = −rate
                    weights[l] = (weights[l] - cfg.lr_w * rate(i, l)).clamp(0.0, cfg.w_max);
                }
            }
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::sequence_attrs;
    use kamino_constraints::parse_dc;
    use kamino_data::{Attribute, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("a", 4).unwrap(),
            Attribute::integer("x", 0.0, 20.0, 20).unwrap(),
            Attribute::integer("y", 0.0, 20.0, 20).unwrap(),
        ])
        .unwrap()
    }

    /// `x` and `y` concordant (soft DC rarely violated) when `clean`, or
    /// anti-correlated (violated constantly) otherwise.
    fn instance(schema: &Schema, clean: bool, n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = Instance::empty(schema);
        for _ in 0..n {
            let u: f64 = rng.gen();
            let x = (u * 20.0).floor();
            let y = if clean { x } else { (20.0 - x).floor() };
            inst.push_row(
                schema,
                &[
                    Value::Cat(rng.gen_range(0..4)),
                    Value::Num(x),
                    Value::Num(y),
                ],
            )
            .unwrap();
        }
        inst
    }

    fn soft_dc(schema: &Schema) -> DenialConstraint {
        parse_dc(
            schema,
            "soft",
            "!(t1.x > t2.x & t1.y < t2.y)",
            Hardness::Soft,
        )
        .unwrap()
    }

    fn hard_dc(schema: &Schema) -> DenialConstraint {
        parse_dc(
            schema,
            "hard",
            "!(t1.a == t2.a & t1.x != t2.x)",
            Hardness::Hard,
        )
        .unwrap()
    }

    #[test]
    fn all_hard_short_circuits() {
        let s = schema();
        let inst = instance(&s, true, 50, 1);
        let dcs = vec![hard_dc(&s)];
        let seq = sequence_attrs(&s, &dcs);
        let mut rng = StdRng::seed_from_u64(2);
        let w = learn_weights(&s, &inst, &dcs, &seq, &WeightConfig::default(), &mut rng);
        assert_eq!(w, vec![HARD_WEIGHT]);
    }

    #[test]
    fn hard_dcs_keep_infinite_weight_among_soft() {
        let s = schema();
        let inst = instance(&s, true, 200, 3);
        let dcs = vec![hard_dc(&s), soft_dc(&s)];
        let seq = sequence_attrs(&s, &dcs);
        let mut rng = StdRng::seed_from_u64(4);
        let w = learn_weights(&s, &inst, &dcs, &seq, &WeightConfig::default(), &mut rng);
        assert_eq!(w[0], HARD_WEIGHT);
        assert!(w[1].is_finite());
    }

    #[test]
    fn violated_soft_dc_gets_smaller_weight_than_clean_one() {
        let s = schema();
        let cfg = WeightConfig {
            sigma_w: 0.0,
            ..WeightConfig::default()
        };
        let dcs = vec![soft_dc(&s)];
        let seq = sequence_attrs(&s, &dcs);
        let mut rng = StdRng::seed_from_u64(5);
        let clean = instance(&s, true, 400, 6);
        let w_clean = learn_weights(&s, &clean, &dcs, &seq, &cfg, &mut rng)[0];
        let mut rng = StdRng::seed_from_u64(5);
        let dirty = instance(&s, false, 400, 6);
        let w_dirty = learn_weights(&s, &dirty, &dcs, &seq, &cfg, &mut rng)[0];
        assert!(
            w_dirty < w_clean - 0.5,
            "violated DC weight {w_dirty} not clearly below clean weight {w_clean}"
        );
        assert!(w_dirty >= 0.0);
    }

    #[test]
    fn weights_stay_in_bounds_under_noise() {
        let s = schema();
        let cfg = WeightConfig {
            sigma_w: 3.0,
            ..WeightConfig::default()
        };
        let dcs = vec![soft_dc(&s)];
        let seq = sequence_attrs(&s, &dcs);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = instance(&s, seed % 2 == 0, 300, seed);
            let w = learn_weights(&s, &inst, &dcs, &seq, &cfg, &mut rng)[0];
            assert!(
                (0.0..=cfg.w_max).contains(&w),
                "weight {w} escaped [0, w_max]"
            );
        }
    }

    #[test]
    fn tiny_instances_fall_back_to_initial_weights() {
        let s = schema();
        let inst = instance(&s, true, 1, 9);
        let dcs = vec![soft_dc(&s)];
        let seq = sequence_attrs(&s, &dcs);
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = WeightConfig::default();
        let w = learn_weights(&s, &inst, &dcs, &seq, &cfg, &mut rng);
        assert_eq!(w, vec![cfg.w_max]);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = schema();
        let inst = instance(&s, false, 300, 11);
        let dcs = vec![soft_dc(&s)];
        let seq = sequence_attrs(&s, &dcs);
        let cfg = WeightConfig::default();
        let mut r1 = StdRng::seed_from_u64(12);
        let mut r2 = StdRng::seed_from_u64(12);
        assert_eq!(
            learn_weights(&s, &inst, &dcs, &seq, &cfg, &mut r1),
            learn_weights(&s, &inst, &dcs, &seq, &cfg, &mut r2)
        );
    }
}
