//! Minimal CSV import/export for instances.
//!
//! The format is deliberately simple (comma separator, no quoting — labels
//! containing commas are rejected at write time): it exists so examples and
//! experiment binaries can persist synthetic instances and users can inspect
//! them, not to be a general CSV library.

use std::io::{BufRead, Write};

use crate::error::DataError;
use crate::instance::Instance;
use crate::schema::{AttrKind, Schema};
use crate::value::Value;

/// The CSV header line (newline-terminated), after validating that no
/// attribute name or categorical label contains a comma — the format has
/// no quoting, so such schemas cannot be serialized. Shared by
/// [`write_csv`] and streaming producers (the synthesis server emits the
/// header once, then [`rows_text`] per batch).
pub fn header_line(schema: &Schema) -> Result<String, DataError> {
    for a in schema.attrs() {
        if a.name.contains(',') {
            return Err(DataError::Parse(format!(
                "attribute name `{}` contains a comma",
                a.name
            )));
        }
        if let AttrKind::Categorical { labels } = &a.kind {
            if let Some(bad) = labels.iter().find(|l| l.contains(',')) {
                return Err(DataError::Parse(format!("label `{bad}` contains a comma")));
            }
        }
    }
    let header: Vec<&str> = schema.attrs().iter().map(|a| a.name.as_str()).collect();
    Ok(format!("{}\n", header.join(",")))
}

/// Formats `inst` as CSV data rows (no header), one newline-terminated
/// line per tuple, erroring on out-of-domain categorical codes.
pub fn rows_text(schema: &Schema, inst: &Instance) -> Result<String, DataError> {
    let mut out = String::with_capacity(inst.n_rows() * schema.len() * 8);
    for i in 0..inst.n_rows() {
        for j in 0..schema.len() {
            if j > 0 {
                out.push(',');
            }
            match inst.value(i, j) {
                Value::Cat(c) => {
                    let label = schema
                        .attr(j)
                        .label(c)
                        .ok_or_else(|| DataError::UnknownLabel {
                            attr: schema.attr(j).name.clone(),
                            label: format!("#{c}"),
                        })?;
                    out.push_str(label);
                }
                Value::Num(x) => {
                    out.push_str(&format!("{x}"));
                }
            }
        }
        out.push('\n');
    }
    Ok(out)
}

/// Writes `inst` as CSV with a header row of attribute names.
pub fn write_csv<W: Write>(schema: &Schema, inst: &Instance, out: &mut W) -> Result<(), DataError> {
    out.write_all(header_line(schema)?.as_bytes())?;
    out.write_all(rows_text(schema, inst)?.as_bytes())?;
    Ok(())
}

/// Reads a CSV produced by [`write_csv`] (or hand-written in the same
/// format) into an instance, resolving categorical labels through `schema`.
pub fn read_csv<R: BufRead>(schema: &Schema, input: R) -> Result<Instance, DataError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| DataError::Parse("empty input".into()))?
        .map_err(DataError::from)?;
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    if names.len() != schema.len() {
        return Err(DataError::ArityMismatch {
            expected: schema.len(),
            got: names.len(),
        });
    }
    // Columns may appear in any order; build the permutation.
    let mut perm = Vec::with_capacity(names.len());
    for name in &names {
        perm.push(schema.index_of(name)?);
    }
    let mut inst = Instance::empty(schema);
    let mut row = vec![Value::Num(0.0); schema.len()];
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(DataError::from)?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != schema.len() {
            return Err(DataError::ArityMismatch {
                expected: schema.len(),
                got: cells.len(),
            });
        }
        for (pos, cell) in cells.iter().enumerate() {
            let j = perm[pos];
            let attr = schema.attr(j);
            row[j] = match &attr.kind {
                AttrKind::Categorical { .. } => {
                    Value::Cat(attr.code(cell).ok_or_else(|| DataError::UnknownLabel {
                        attr: attr.name.clone(),
                        label: cell.to_string(),
                    })?)
                }
                AttrKind::Numeric { .. } => Value::Num(cell.parse::<f64>().map_err(|_| {
                    DataError::Parse(format!("line {}: `{cell}` is not numeric", lineno + 2))
                })?),
            };
        }
        inst.push_row(schema, &row)?;
    }
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn toy() -> (Schema, Instance) {
        let s = Schema::new(vec![
            Attribute::categorical("edu", vec!["HS".into(), "BS".into()]).unwrap(),
            Attribute::numeric("gain", 0.0, 100.0, 4).unwrap(),
        ])
        .unwrap();
        let inst = Instance::from_rows(
            &s,
            &[
                vec![Value::Cat(0), Value::Num(12.5)],
                vec![Value::Cat(1), Value::Num(99.0)],
            ],
        )
        .unwrap();
        (s, inst)
    }

    #[test]
    fn roundtrip() {
        let (s, inst) = toy();
        let mut buf = Vec::new();
        write_csv(&s, &inst, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("edu,gain\n"));
        assert!(text.contains("HS,12.5"));
        let back = read_csv(&s, buf.as_slice()).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn read_reordered_columns() {
        let (s, inst) = toy();
        let text = "gain,edu\n12.5,HS\n99,BS\n";
        let back = read_csv(&s, text.as_bytes()).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn read_rejects_unknown_label() {
        let (s, _) = toy();
        let text = "edu,gain\nPhD,1.0\n";
        assert!(matches!(
            read_csv(&s, text.as_bytes()),
            Err(DataError::UnknownLabel { .. })
        ));
    }

    #[test]
    fn read_rejects_bad_number() {
        let (s, _) = toy();
        let text = "edu,gain\nHS,abc\n";
        assert!(matches!(
            read_csv(&s, text.as_bytes()),
            Err(DataError::Parse(_))
        ));
    }

    #[test]
    fn read_rejects_wrong_arity() {
        let (s, _) = toy();
        assert!(read_csv(&s, "edu\nHS\n".as_bytes()).is_err());
        assert!(read_csv(&s, "edu,gain\nHS\n".as_bytes()).is_err());
    }

    #[test]
    fn read_skips_blank_lines() {
        let (s, inst) = toy();
        let text = "edu,gain\nHS,12.5\n\nBS,99\n";
        assert_eq!(read_csv(&s, text.as_bytes()).unwrap(), inst);
    }

    #[test]
    fn write_rejects_comma_label() {
        let s = Schema::new(vec![
            Attribute::categorical("c", vec!["a,b".into()]).unwrap()
        ])
        .unwrap();
        let inst = Instance::zeroed(&s, 1);
        let mut buf = Vec::new();
        assert!(write_csv(&s, &inst, &mut buf).is_err());
    }

    #[test]
    fn read_empty_input_errors() {
        let (s, _) = toy();
        assert!(read_csv(&s, "".as_bytes()).is_err());
    }
}
