//! Mixed-type feature encoding: one-hot categoricals + standardized
//! numerics.
//!
//! The deep baselines (DP-VAE, PATE-GAN) "require the input dataset to be
//! encoded into numeric vectors" (§7.1), and the evaluation classifiers
//! (Metric II) need the same representation. Standardization parameters
//! come from the attribute's declared domain, not the data, so encoding is
//! privacy-free.

use crate::instance::Instance;
use crate::schema::{AttrKind, Schema};
use crate::stats::Standardizer;
use crate::value::Value;

/// Layout segment for one attribute inside the encoded vector.
#[derive(Debug, Clone)]
pub enum Segment {
    /// One-hot block `[offset, offset+card)`.
    Cat {
        /// Start index in the encoded vector.
        offset: usize,
        /// Number of one-hot slots.
        card: usize,
    },
    /// Single standardized slot at `offset`.
    Num {
        /// Index in the encoded vector.
        offset: usize,
        /// Domain-derived standardizer.
        std: Standardizer,
    },
}

/// Encoder/decoder between schema rows and flat numeric vectors.
///
/// ```
/// use kamino_data::{Attribute, Instance, MixedEncoder, Schema, Value};
///
/// let schema = Schema::new(vec![
///     Attribute::categorical_indexed("color", 3).unwrap(),
///     Attribute::numeric("size", 0.0, 10.0, 5).unwrap(),
/// ]).unwrap();
/// let inst = Instance::from_rows(&schema, &[vec![Value::Cat(2), Value::Num(4.0)]]).unwrap();
/// let enc = MixedEncoder::new(&schema);
/// assert_eq!(enc.dim(), 3 + 1); // one-hot block + one standardized slot
/// let v = enc.encode_row(&inst, 0);
/// let row = enc.decode(&schema, &v);
/// assert_eq!(row[0], Value::Cat(2));
/// assert!((row[1].num() - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct MixedEncoder {
    segments: Vec<Segment>,
    dim: usize,
}

impl MixedEncoder {
    /// Builds the encoder for `schema`.
    pub fn new(schema: &Schema) -> MixedEncoder {
        let mut segments = Vec::with_capacity(schema.len());
        let mut offset = 0;
        for attr in schema.attrs() {
            match &attr.kind {
                AttrKind::Categorical { labels } => {
                    segments.push(Segment::Cat {
                        offset,
                        card: labels.len(),
                    });
                    offset += labels.len();
                }
                AttrKind::Numeric { min, max, .. } => {
                    segments.push(Segment::Num {
                        offset,
                        std: Standardizer::from_range(*min, *max),
                    });
                    offset += 1;
                }
            }
        }
        MixedEncoder {
            segments,
            dim: offset,
        }
    }

    /// Encoded vector width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The per-attribute layout.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Encodes row `i` of `inst` into a fresh vector.
    pub fn encode_row(&self, inst: &Instance, i: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        self.encode_row_into(inst, i, &mut out);
        out
    }

    /// Encodes row `i` into `out` (must be `dim()` long).
    pub fn encode_row_into(&self, inst: &Instance, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim);
        out.iter_mut().for_each(|x| *x = 0.0);
        for (j, seg) in self.segments.iter().enumerate() {
            match (seg, inst.value(i, j)) {
                (Segment::Cat { offset, card }, Value::Cat(c)) => {
                    debug_assert!((c as usize) < *card);
                    out[offset + c as usize] = 1.0;
                }
                (Segment::Num { offset, std }, Value::Num(x)) => {
                    out[*offset] = std.forward(x);
                }
                _ => unreachable!("schema/instance kind mismatch"),
            }
        }
    }

    /// Decodes a vector back to schema values: categoricals by argmax over
    /// their one-hot block, numerics by inverse standardization (clamped to
    /// the domain by the caller's schema validation needs — we clamp here
    /// to keep decoded rows always valid).
    pub fn decode(&self, schema: &Schema, v: &[f64]) -> Vec<Value> {
        assert_eq!(v.len(), self.dim);
        self.segments
            .iter()
            .enumerate()
            .map(|(j, seg)| match seg {
                Segment::Cat { offset, card } => {
                    let block = &v[*offset..offset + card];
                    let arg = block
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    Value::Cat(arg as u32)
                }
                Segment::Num { offset, std } => {
                    let raw = std.inverse(v[*offset]);
                    match schema.attr(j).kind {
                        AttrKind::Numeric {
                            min, max, integer, ..
                        } => {
                            let c = raw.clamp(min, max);
                            Value::Num(if integer { c.round() } else { c })
                        }
                        AttrKind::Categorical { .. } => unreachable!(),
                    }
                }
            })
            .collect()
    }
}

impl MixedEncoder {
    /// Like [`MixedEncoder::decode`], but samples categorical blocks from
    /// the softmax of their slots instead of taking the argmax — the decode
    /// used when generating synthetic rows (argmax decoding collapses
    /// categorical diversity).
    pub fn decode_sampled<R: rand::Rng + ?Sized>(
        &self,
        schema: &Schema,
        v: &[f64],
        rng: &mut R,
    ) -> Vec<Value> {
        assert_eq!(v.len(), self.dim);
        self.segments
            .iter()
            .enumerate()
            .map(|(j, seg)| match seg {
                Segment::Cat { offset, card } => {
                    let block = &v[*offset..offset + card];
                    let max = block.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let weights: Vec<f64> = block.iter().map(|&z| (z - max).exp()).collect();
                    Value::Cat(crate::stats::sample_weighted(&weights, rng) as u32)
                }
                Segment::Num { offset, std } => {
                    let raw = std.inverse(v[*offset]);
                    match schema.attr(j).kind {
                        AttrKind::Numeric {
                            min, max, integer, ..
                        } => {
                            let c = raw.clamp(min, max);
                            Value::Num(if integer { c.round() } else { c })
                        }
                        AttrKind::Categorical { .. } => unreachable!(),
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn setup() -> (Schema, MixedEncoder, Instance) {
        let s = Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::numeric("x", 0.0, 10.0, 5).unwrap(),
            Attribute::categorical_indexed("b", 2).unwrap(),
        ])
        .unwrap();
        let enc = MixedEncoder::new(&s);
        let inst = Instance::from_rows(
            &s,
            &[
                vec![Value::Cat(1), Value::Num(10.0), Value::Cat(0)],
                vec![Value::Cat(2), Value::Num(0.0), Value::Cat(1)],
            ],
        )
        .unwrap();
        (s, enc, inst)
    }

    #[test]
    fn layout_and_dim() {
        let (_, enc, _) = setup();
        assert_eq!(enc.dim(), 3 + 1 + 2);
        assert_eq!(enc.segments().len(), 3);
    }

    #[test]
    fn one_hot_encoding() {
        let (_, enc, inst) = setup();
        let v = enc.encode_row(&inst, 0);
        assert_eq!(&v[0..3], &[0.0, 1.0, 0.0]);
        assert_eq!(&v[4..6], &[1.0, 0.0]);
        // standardized numeric is finite and positive (10 is the max)
        assert!(v[3] > 0.0 && v[3].is_finite());
    }

    #[test]
    fn roundtrip_through_decode() {
        let (s, enc, inst) = setup();
        for i in 0..inst.n_rows() {
            let v = enc.encode_row(&inst, i);
            let row = enc.decode(&s, &v);
            assert_eq!(row, inst.row(i), "row {i} failed to roundtrip");
        }
    }

    #[test]
    fn decode_clamps_numeric_to_domain() {
        let (s, enc, _) = setup();
        let mut v = vec![0.0; enc.dim()];
        v[3] = 1e9; // absurd standardized value
        let row = enc.decode(&s, &v);
        assert_eq!(row[1], Value::Num(10.0));
    }

    #[test]
    fn decode_argmax_breaks_soft_onehots() {
        let (s, enc, _) = setup();
        let mut v = vec![0.0; enc.dim()];
        v[0] = 0.2;
        v[1] = 0.1;
        v[2] = 0.9; // strongest slot wins
        let row = enc.decode(&s, &v);
        assert_eq!(row[0], Value::Cat(2));
    }

    #[test]
    fn decode_sampled_respects_strong_logits() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (s, enc, _) = setup();
        let mut v = vec![0.0; enc.dim()];
        v[2] = 30.0; // overwhelming logit for code 2
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let row = enc.decode_sampled(&s, &v, &mut rng);
            assert_eq!(row[0], Value::Cat(2));
        }
    }

    #[test]
    fn decode_sampled_spreads_flat_logits() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (s, enc, _) = setup();
        let v = vec![0.0; enc.dim()];
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let row = enc.decode_sampled(&s, &v, &mut rng);
            let Value::Cat(c) = row[0] else { panic!() };
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "flat logits should hit every code");
    }

    #[test]
    fn integer_attr_decodes_to_integer() {
        let s = Schema::new(vec![Attribute::integer("i", 0.0, 9.0, 10).unwrap()]).unwrap();
        let enc = MixedEncoder::new(&s);
        let mut v = vec![0.0; 1];
        let Segment::Num { std, .. } = &enc.segments()[0] else {
            panic!()
        };
        v[0] = std.forward(4.4);
        let row = enc.decode(&s, &v);
        assert_eq!(row[0], Value::Num(4.0));
    }
}
