//! Error type shared by the data substrate.

use std::fmt;

/// Errors raised while constructing or manipulating schemas and instances.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A categorical label was not part of an attribute's domain.
    UnknownLabel {
        /// Attribute whose domain was violated.
        attr: String,
        /// The offending label.
        label: String,
    },
    /// A value's type did not match the attribute's kind.
    TypeMismatch {
        /// Attribute whose kind was violated.
        attr: String,
        /// The value kind the attribute expects (`"categorical"`/`"numeric"`).
        expected: &'static str,
    },
    /// A row had the wrong number of cells for the schema.
    ArityMismatch {
        /// Number of attributes the schema declares.
        expected: usize,
        /// Number of cells the row actually carried.
        got: usize,
    },
    /// An attribute was declared with an empty or invalid domain.
    InvalidDomain(String),
    /// CSV input could not be parsed.
    Parse(String),
    /// An underlying I/O error (stringified to keep the type `Clone`).
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            DataError::UnknownLabel { attr, label } => {
                write!(
                    f,
                    "label `{label}` is not in the domain of attribute `{attr}`"
                )
            }
            DataError::TypeMismatch { attr, expected } => {
                write!(f, "attribute `{attr}` expects a {expected} value")
            }
            DataError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row has {got} cells but the schema has {expected} attributes"
                )
            }
            DataError::InvalidDomain(msg) => write!(f, "invalid domain: {msg}"),
            DataError::Parse(msg) => write!(f, "parse error: {msg}"),
            DataError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::UnknownAttribute("zip".into());
        assert!(e.to_string().contains("zip"));
        let e = DataError::UnknownLabel {
            attr: "edu".into(),
            label: "PhD2".into(),
        };
        assert!(e.to_string().contains("PhD2") && e.to_string().contains("edu"));
        let e = DataError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
    }
}
