//! Typed columnar database instances.

use crate::error::DataError;
use crate::schema::{AttrKind, Schema};
use crate::value::Value;

/// A single typed column of an [`Instance`].
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Categorical codes.
    Cat(Vec<u32>),
    /// Numeric values.
    Num(Vec<f64>),
}

impl Column {
    /// Number of cells in this column.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Column::Cat(v) => v.len(),
            Column::Num(v) => v.len(),
        }
    }

    /// Whether the column has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell value at `row`.
    #[inline]
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Cat(v) => Value::Cat(v[row]),
            Column::Num(v) => Value::Num(v[row]),
        }
    }

    /// Borrow as categorical codes, panicking for numeric columns.
    #[inline]
    pub fn cat_slice(&self) -> &[u32] {
        match self {
            Column::Cat(v) => v,
            Column::Num(_) => panic!("expected categorical column"),
        }
    }

    /// Borrow as numeric values, panicking for categorical columns.
    #[inline]
    pub fn num_slice(&self) -> &[f64] {
        match self {
            Column::Num(v) => v,
            Column::Cat(_) => panic!("expected numeric column"),
        }
    }
}

/// A database instance: one typed column per schema attribute, all of the
/// same length `n`.
///
/// The instance does not own its [`Schema`]; callers pass the schema
/// alongside it. This keeps instances cheap to clone and lets many instances
/// (true data, synthetic data, bootstrap samples) share one schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    columns: Vec<Column>,
    n_rows: usize,
}

impl Instance {
    /// An empty instance shaped like `schema`.
    pub fn empty(schema: &Schema) -> Instance {
        let columns = schema
            .attrs()
            .iter()
            .map(|a| match a.kind {
                AttrKind::Categorical { .. } => Column::Cat(Vec::new()),
                AttrKind::Numeric { .. } => Column::Num(Vec::new()),
            })
            .collect();
        Instance { columns, n_rows: 0 }
    }

    /// An instance of `n` rows shaped like `schema`, zero-filled
    /// (categorical code 0 / numeric 0.0). Used by samplers that fill
    /// column-by-column.
    pub fn zeroed(schema: &Schema, n: usize) -> Instance {
        let columns = schema
            .attrs()
            .iter()
            .map(|a| match a.kind {
                AttrKind::Categorical { .. } => Column::Cat(vec![0; n]),
                AttrKind::Numeric { .. } => Column::Num(vec![0.0; n]),
            })
            .collect();
        Instance { columns, n_rows: n }
    }

    /// Builds an instance from row-major values, validating every cell
    /// against the schema.
    pub fn from_rows(schema: &Schema, rows: &[Vec<Value>]) -> Result<Instance, DataError> {
        let mut inst = Instance::empty(schema);
        for row in rows {
            inst.push_row(schema, row)?;
        }
        Ok(inst)
    }

    /// Appends one row, validating cells against the schema.
    pub fn push_row(&mut self, schema: &Schema, row: &[Value]) -> Result<(), DataError> {
        if row.len() != schema.len() {
            return Err(DataError::ArityMismatch {
                expected: schema.len(),
                got: row.len(),
            });
        }
        for (j, &v) in row.iter().enumerate() {
            schema.attr(j).validate(v)?;
        }
        for (j, &v) in row.iter().enumerate() {
            match (&mut self.columns[j], v) {
                (Column::Cat(col), Value::Cat(c)) => col.push(c),
                (Column::Num(col), Value::Num(x)) => col.push(x),
                _ => unreachable!("validated above"),
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Number of rows (`n`).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (`k`).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Borrow column `j`.
    #[inline]
    pub fn column(&self, j: usize) -> &Column {
        &self.columns[j]
    }

    /// Cell value at (`row`, `col`).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Categorical code at (`row`, `col`); panics on a numeric column.
    #[inline]
    pub fn cat(&self, row: usize, col: usize) -> u32 {
        self.columns[col].cat_slice()[row]
    }

    /// Numeric value at (`row`, `col`); panics on a categorical column.
    #[inline]
    pub fn num(&self, row: usize, col: usize) -> f64 {
        self.columns[col].num_slice()[row]
    }

    /// Overwrites the cell at (`row`, `col`). Panics if the value kind does
    /// not match the column kind — sampling code always writes
    /// schema-conformant values.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: Value) {
        match (&mut self.columns[col], v) {
            (Column::Cat(c), Value::Cat(x)) => c[row] = x,
            (Column::Num(c), Value::Num(x)) => c[row] = x,
            _ => panic!("value kind does not match column kind"),
        }
    }

    /// Collects row `row` as a vector of values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// A new instance containing only the given row indices (with
    /// repetition allowed — useful for bootstrap samples).
    pub fn take_rows(&self, rows: &[usize]) -> Instance {
        let columns = self
            .columns
            .iter()
            .map(|c| match c {
                Column::Cat(v) => Column::Cat(rows.iter().map(|&r| v[r]).collect()),
                Column::Num(v) => Column::Num(rows.iter().map(|&r| v[r]).collect()),
            })
            .collect();
        Instance {
            columns,
            n_rows: rows.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn toy_schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::numeric("x", 0.0, 10.0, 5).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn push_and_read_rows() {
        let s = toy_schema();
        let mut inst = Instance::empty(&s);
        inst.push_row(&s, &[Value::Cat(1), Value::Num(2.0)])
            .unwrap();
        inst.push_row(&s, &[Value::Cat(2), Value::Num(7.5)])
            .unwrap();
        assert_eq!(inst.n_rows(), 2);
        assert_eq!(inst.n_cols(), 2);
        assert_eq!(inst.cat(0, 0), 1);
        assert_eq!(inst.num(1, 1), 7.5);
        assert_eq!(inst.row(1), vec![Value::Cat(2), Value::Num(7.5)]);
    }

    #[test]
    fn push_row_validates() {
        let s = toy_schema();
        let mut inst = Instance::empty(&s);
        // wrong arity
        assert!(inst.push_row(&s, &[Value::Cat(0)]).is_err());
        // out-of-domain code
        assert!(inst
            .push_row(&s, &[Value::Cat(9), Value::Num(0.0)])
            .is_err());
        // wrong kind
        assert!(inst
            .push_row(&s, &[Value::Num(0.0), Value::Num(0.0)])
            .is_err());
        // failed pushes leave the instance unchanged
        assert_eq!(inst.n_rows(), 0);
        assert!(inst.column(0).is_empty());
    }

    #[test]
    fn zeroed_shape() {
        let s = toy_schema();
        let inst = Instance::zeroed(&s, 4);
        assert_eq!(inst.n_rows(), 4);
        assert_eq!(inst.cat(3, 0), 0);
        assert_eq!(inst.num(3, 1), 0.0);
    }

    #[test]
    fn set_overwrites() {
        let s = toy_schema();
        let mut inst = Instance::zeroed(&s, 2);
        inst.set(1, 0, Value::Cat(2));
        inst.set(0, 1, Value::Num(3.25));
        assert_eq!(inst.cat(1, 0), 2);
        assert_eq!(inst.num(0, 1), 3.25);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn set_wrong_kind_panics() {
        let s = toy_schema();
        let mut inst = Instance::zeroed(&s, 1);
        inst.set(0, 0, Value::Num(1.0));
    }

    #[test]
    fn take_rows_bootstraps() {
        let s = toy_schema();
        let inst = Instance::from_rows(
            &s,
            &[
                vec![Value::Cat(0), Value::Num(0.0)],
                vec![Value::Cat(1), Value::Num(1.0)],
                vec![Value::Cat(2), Value::Num(2.0)],
            ],
        )
        .unwrap();
        let sub = inst.take_rows(&[2, 0, 2]);
        assert_eq!(sub.n_rows(), 3);
        assert_eq!(sub.cat(0, 0), 2);
        assert_eq!(sub.cat(1, 0), 0);
        assert_eq!(sub.num(2, 1), 2.0);
    }

    #[test]
    fn column_accessors() {
        let s = toy_schema();
        let inst = Instance::zeroed(&s, 3);
        assert_eq!(inst.column(0).cat_slice().len(), 3);
        assert_eq!(inst.column(1).num_slice().len(), 3);
        assert_eq!(inst.column(0).value(0), Value::Cat(0));
        assert_eq!(inst.column(1).value(2), Value::Num(0.0));
    }

    #[test]
    #[should_panic(expected = "expected numeric")]
    fn num_slice_on_cat_panics() {
        let s = toy_schema();
        let inst = Instance::zeroed(&s, 1);
        inst.column(0).num_slice();
    }
}
