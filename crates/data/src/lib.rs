//! Relational substrate for the Kamino reproduction.
//!
//! This crate provides the data model every other crate consumes:
//! [`Schema`]/[`Attribute`] descriptions of a single relation, typed
//! columnar [`Instance`]s, per-attribute [`Quantizer`]s used to bridge
//! continuous domains and histogram/marginal machinery, simple statistics
//! ([`stats`]), CSV import/export ([`csv`]), and the byte-level [`wire`]
//! rules plus schema/value codecs ([`snapshot`]) that model snapshots are
//! built from.
//!
//! The paper (§2) considers a single relation `R = {A_1, …, A_k}` with `n`
//! tuples, where each attribute is either categorical (finite label set) or
//! numeric (continuous or integer range). We store instances column-wise:
//! Kamino's sampler (Algorithm 3) fills one attribute at a time across all
//! tuples, and constraint indexes are per-attribute, so columnar layout keeps
//! the hot loops contiguous.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod encode;
pub mod error;
pub mod instance;
pub mod quantize;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod value;
pub mod wire;

pub use encode::MixedEncoder;
pub use error::DataError;
pub use instance::{Column, Instance};
pub use quantize::Quantizer;
pub use schema::{AttrKind, Attribute, Schema};
pub use value::Value;
pub use wire::{ByteReader, ByteWriter, WireError};
