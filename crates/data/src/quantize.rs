//! Quantization of numeric attributes into equal-width bins.
//!
//! Algorithm 2 (line 2) partitions a continuous first attribute into `q`
//! bins before applying the Gaussian mechanism, and Algorithm 3 samples "a
//! bin, then a value from the domain represented by the bin". Marginal
//! queries (Metric III) and the order index in the constraint engine also
//! need a discrete view of numeric attributes. [`Quantizer`] centralizes
//! that mapping.

use rand::Rng;

use crate::schema::{AttrKind, Attribute};
use crate::value::Value;

/// Maps values of one attribute to discrete bins and back.
///
/// For categorical attributes the mapping is the identity on codes; for
/// numeric attributes it is equal-width binning over `[min, max]`.
#[derive(Debug, Clone)]
pub struct Quantizer {
    kind: QKind,
}

#[derive(Debug, Clone)]
enum QKind {
    Cat {
        card: usize,
    },
    Num {
        min: f64,
        max: f64,
        bins: usize,
        integer: bool,
    },
}

impl Quantizer {
    /// Builds the quantizer for `attr`.
    pub fn for_attr(attr: &Attribute) -> Quantizer {
        match &attr.kind {
            AttrKind::Categorical { labels } => Quantizer {
                kind: QKind::Cat { card: labels.len() },
            },
            AttrKind::Numeric {
                min,
                max,
                bins,
                integer,
            } => Quantizer {
                kind: QKind::Num {
                    min: *min,
                    max: *max,
                    bins: *bins,
                    integer: *integer,
                },
            },
        }
    }

    /// Number of bins.
    #[inline]
    pub fn n_bins(&self) -> usize {
        match self.kind {
            QKind::Cat { card } => card,
            QKind::Num { bins, .. } => bins,
        }
    }

    /// Bin index of a value. Numeric values outside `[min, max]` are clamped
    /// into the boundary bins, matching how histogram code treats noisy or
    /// out-of-range synthetic values.
    #[inline]
    pub fn bin(&self, v: Value) -> usize {
        self.bin_checked(v).0
    }

    /// [`Quantizer::bin`] plus an out-of-domain flag. The flag is `true`
    /// exactly when a *categorical* code lies past the declared domain —
    /// an encoding bug in whatever produced the value, which this method
    /// folds into the last bin (never panics, never drops the count).
    /// Numeric values outside `[min, max]` clamp into the boundary bins
    /// with the flag `false`: that is expected behaviour for noisy or
    /// synthetic continuous values, not a domain violation.
    ///
    /// This is the single primitive behind
    /// `stats::histogram_with_clamped`, the baselines' `Discretized`
    /// view, and the eval crate's marginal tables, so every consumer
    /// treats an out-of-domain cell identically: fold, count, carry on.
    #[inline]
    pub fn bin_checked(&self, v: Value) -> (usize, bool) {
        match (&self.kind, v) {
            (QKind::Cat { card }, Value::Cat(c)) => {
                let c = c as usize;
                (c.min(card - 1), c >= *card)
            }
            (QKind::Num { min, max, bins, .. }, Value::Num(x)) => {
                if !x.is_finite() {
                    return (0, false);
                }
                let t = (x - min) / (max - min);
                let b = (t * *bins as f64).floor() as isize;
                (b.clamp(0, *bins as isize - 1) as usize, false)
            }
            _ => panic!("value kind does not match quantizer kind"),
        }
    }

    /// A representative value for `bin` (bin midpoint for numeric, the code
    /// itself for categorical).
    pub fn representative(&self, bin: usize) -> Value {
        match &self.kind {
            QKind::Cat { card } => Value::Cat(bin.min(card - 1) as u32),
            QKind::Num {
                min,
                max,
                bins,
                integer,
            } => {
                let w = (max - min) / *bins as f64;
                let mid = min + (bin as f64 + 0.5) * w;
                Value::Num(if *integer { mid.round() } else { mid })
            }
        }
    }

    /// Samples a uniform value within `bin` (Algorithm 3 line 2: "sample a
    /// bin, and randomly take a value from the domain represented by the
    /// bin").
    pub fn sample_in_bin<R: Rng + ?Sized>(&self, bin: usize, rng: &mut R) -> Value {
        match &self.kind {
            QKind::Cat { card } => Value::Cat(bin.min(card - 1) as u32),
            QKind::Num {
                min,
                max,
                bins,
                integer,
            } => {
                let w = (max - min) / *bins as f64;
                let lo = min + bin as f64 * w;
                let x = lo + rng.gen::<f64>() * w;
                Value::Num(if *integer {
                    x.round().clamp(*min, *max)
                } else {
                    x
                })
            }
        }
    }

    /// Clamps (and for integer attributes rounds) a numeric value into the
    /// attribute domain; identity for categorical quantizers.
    pub fn clamp(&self, v: Value) -> Value {
        match (&self.kind, v) {
            (
                QKind::Num {
                    min, max, integer, ..
                },
                Value::Num(x),
            ) => {
                let c = x.clamp(*min, *max);
                Value::Num(if *integer { c.round() } else { c })
            }
            _ => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn num_q() -> Quantizer {
        Quantizer::for_attr(&Attribute::numeric("x", 0.0, 10.0, 5).unwrap())
    }

    #[test]
    fn numeric_binning_is_equal_width() {
        let q = num_q();
        assert_eq!(q.n_bins(), 5);
        assert_eq!(q.bin(Value::Num(0.0)), 0);
        assert_eq!(q.bin(Value::Num(1.99)), 0);
        assert_eq!(q.bin(Value::Num(2.0)), 1);
        assert_eq!(q.bin(Value::Num(9.99)), 4);
        // the max value lands in the last bin, not a phantom 6th bin
        assert_eq!(q.bin(Value::Num(10.0)), 4);
    }

    #[test]
    fn out_of_range_clamps_to_boundary_bins() {
        let q = num_q();
        assert_eq!(q.bin(Value::Num(-3.0)), 0);
        assert_eq!(q.bin(Value::Num(42.0)), 4);
        assert_eq!(q.bin(Value::Num(f64::NAN)), 0);
    }

    #[test]
    fn representative_is_bin_midpoint() {
        let q = num_q();
        assert_eq!(q.representative(0), Value::Num(1.0));
        assert_eq!(q.representative(4), Value::Num(9.0));
    }

    #[test]
    fn integer_representative_rounds() {
        let q = Quantizer::for_attr(&Attribute::integer("x", 0.0, 9.0, 3).unwrap());
        for b in 0..3 {
            let Value::Num(x) = q.representative(b) else {
                panic!()
            };
            assert_eq!(x, x.round());
        }
    }

    #[test]
    fn sample_in_bin_stays_in_bin() {
        let q = num_q();
        let mut rng = StdRng::seed_from_u64(7);
        for bin in 0..5 {
            for _ in 0..50 {
                let v = q.sample_in_bin(bin, &mut rng);
                assert_eq!(q.bin(v), bin, "sampled {v} escaped bin {bin}");
            }
        }
    }

    #[test]
    fn categorical_quantizer_is_identity() {
        let q = Quantizer::for_attr(&Attribute::categorical_indexed("c", 4).unwrap());
        assert_eq!(q.n_bins(), 4);
        assert_eq!(q.bin(Value::Cat(2)), 2);
        assert_eq!(q.representative(2), Value::Cat(2));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(q.sample_in_bin(3, &mut rng), Value::Cat(3));
    }

    #[test]
    fn bin_checked_flags_only_categorical_overflow() {
        let qc = Quantizer::for_attr(&Attribute::categorical_indexed("c", 3).unwrap());
        assert_eq!(qc.bin_checked(Value::Cat(2)), (2, false));
        // out-of-domain code: folded into the last bin, flagged
        assert_eq!(qc.bin_checked(Value::Cat(9)), (2, true));
        // numeric out-of-range clamps without flagging — expected behaviour
        let qn = num_q();
        assert_eq!(qn.bin_checked(Value::Num(42.0)), (4, false));
        assert_eq!(qn.bin_checked(Value::Num(-1.0)), (0, false));
        assert_eq!(qn.bin_checked(Value::Num(f64::NAN)), (0, false));
    }

    #[test]
    fn clamp_respects_domain() {
        let q = num_q();
        assert_eq!(q.clamp(Value::Num(-5.0)), Value::Num(0.0));
        assert_eq!(q.clamp(Value::Num(15.0)), Value::Num(10.0));
        assert_eq!(q.clamp(Value::Num(3.5)), Value::Num(3.5));
        let qi = Quantizer::for_attr(&Attribute::integer("x", 0.0, 9.0, 3).unwrap());
        assert_eq!(qi.clamp(Value::Num(4.4)), Value::Num(4.0));
    }
}
