//! Schema and attribute descriptions.

use std::collections::HashMap;

use crate::error::DataError;
use crate::value::Value;

/// The kind (type + domain) of an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrKind {
    /// Finite label set; values are stored as `u32` codes indexing `labels`.
    Categorical {
        /// Human-readable labels in code order.
        labels: Vec<String>,
    },
    /// Numeric range `[min, max]`, quantized into `bins` equal-width bins
    /// whenever a discrete view is needed (first-attribute histograms,
    /// marginal queries, order indexes).
    Numeric {
        /// Inclusive lower bound of the domain.
        min: f64,
        /// Inclusive upper bound of the domain.
        max: f64,
        /// Number of quantization bins (the paper's `q`).
        bins: usize,
        /// Whether sampled values should be rounded to integers.
        integer: bool,
    },
}

/// A named attribute of the relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name (unique within a [`Schema`]).
    pub name: String,
    /// Type and domain of the attribute.
    pub kind: AttrKind,
}

impl Attribute {
    /// Creates a categorical attribute from a list of labels.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidDomain`] when `labels` is empty or
    /// contains duplicates.
    pub fn categorical<S: Into<String>>(
        name: S,
        labels: Vec<String>,
    ) -> Result<Attribute, DataError> {
        let name = name.into();
        if labels.is_empty() {
            return Err(DataError::InvalidDomain(format!(
                "attribute `{name}` has no labels"
            )));
        }
        let mut seen = std::collections::HashSet::with_capacity(labels.len());
        for l in &labels {
            if !seen.insert(l.as_str()) {
                return Err(DataError::InvalidDomain(format!(
                    "attribute `{name}` has duplicate label `{l}`"
                )));
            }
        }
        Ok(Attribute {
            name,
            kind: AttrKind::Categorical { labels },
        })
    }

    /// Convenience constructor: categorical attribute with labels `0..card`
    /// rendered as `v0, v1, …`.
    pub fn categorical_indexed<S: Into<String>>(
        name: S,
        card: usize,
    ) -> Result<Attribute, DataError> {
        let labels = (0..card).map(|i| format!("v{i}")).collect();
        Attribute::categorical(name, labels)
    }

    /// Creates a continuous numeric attribute on `[min, max]` with `bins`
    /// quantization bins.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidDomain`] when the range is empty/NaN or
    /// `bins == 0`.
    pub fn numeric<S: Into<String>>(
        name: S,
        min: f64,
        max: f64,
        bins: usize,
    ) -> Result<Attribute, DataError> {
        Self::numeric_inner(name.into(), min, max, bins, false)
    }

    /// Creates an integer-valued numeric attribute on `[min, max]`.
    pub fn integer<S: Into<String>>(
        name: S,
        min: f64,
        max: f64,
        bins: usize,
    ) -> Result<Attribute, DataError> {
        Self::numeric_inner(name.into(), min, max, bins, true)
    }

    fn numeric_inner(
        name: String,
        min: f64,
        max: f64,
        bins: usize,
        integer: bool,
    ) -> Result<Attribute, DataError> {
        if !(min.is_finite() && max.is_finite()) || min >= max {
            return Err(DataError::InvalidDomain(format!(
                "attribute `{name}` has invalid numeric range [{min}, {max}]"
            )));
        }
        if bins == 0 {
            return Err(DataError::InvalidDomain(format!(
                "attribute `{name}` has zero bins"
            )));
        }
        Ok(Attribute {
            name,
            kind: AttrKind::Numeric {
                min,
                max,
                bins,
                integer,
            },
        })
    }

    /// Whether this attribute is categorical.
    #[inline]
    pub fn is_categorical(&self) -> bool {
        matches!(self.kind, AttrKind::Categorical { .. })
    }

    /// The discrete domain size: label count for categorical attributes,
    /// quantization bin count for numeric ones. This is the `|D(A)|` the
    /// paper's sequencing heuristic (Algorithm 4) sorts by.
    #[inline]
    pub fn domain_size(&self) -> usize {
        match &self.kind {
            AttrKind::Categorical { labels } => labels.len(),
            AttrKind::Numeric { bins, .. } => *bins,
        }
    }

    /// Label for a categorical code, if this attribute is categorical and
    /// the code is in range.
    pub fn label(&self, code: u32) -> Option<&str> {
        match &self.kind {
            AttrKind::Categorical { labels } => labels.get(code as usize).map(String::as_str),
            AttrKind::Numeric { .. } => None,
        }
    }

    /// Code for a categorical label.
    pub fn code(&self, label: &str) -> Option<u32> {
        match &self.kind {
            AttrKind::Categorical { labels } => {
                labels.iter().position(|l| l == label).map(|i| i as u32)
            }
            AttrKind::Numeric { .. } => None,
        }
    }

    /// Validates that `v` belongs to this attribute's domain.
    pub fn validate(&self, v: Value) -> Result<(), DataError> {
        match (&self.kind, v) {
            (AttrKind::Categorical { labels }, Value::Cat(c)) => {
                if (c as usize) < labels.len() {
                    Ok(())
                } else {
                    Err(DataError::UnknownLabel {
                        attr: self.name.clone(),
                        label: format!("#{c}"),
                    })
                }
            }
            (AttrKind::Numeric { .. }, Value::Num(x)) if x.is_finite() => Ok(()),
            (AttrKind::Categorical { .. }, Value::Num(_)) => Err(DataError::TypeMismatch {
                attr: self.name.clone(),
                expected: "categorical",
            }),
            (AttrKind::Numeric { .. }, _) => Err(DataError::TypeMismatch {
                attr: self.name.clone(),
                expected: "numeric",
            }),
        }
    }
}

/// A relation schema: an ordered list of attributes with unique names.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attrs: Vec<Attribute>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from attributes.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidDomain`] on duplicate attribute names or
    /// an empty attribute list.
    pub fn new(attrs: Vec<Attribute>) -> Result<Schema, DataError> {
        if attrs.is_empty() {
            return Err(DataError::InvalidDomain("schema has no attributes".into()));
        }
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            if by_name.insert(a.name.clone(), i).is_some() {
                return Err(DataError::InvalidDomain(format!(
                    "duplicate attribute name `{}`",
                    a.name
                )));
            }
        }
        Ok(Schema { attrs, by_name })
    }

    /// Number of attributes (the paper's `k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema is empty (never true for a constructed schema).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute at position `i`.
    #[inline]
    pub fn attr(&self, i: usize) -> &Attribute {
        &self.attrs[i]
    }

    /// All attributes in schema order.
    #[inline]
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Index of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, DataError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// The log₂ of the full domain size `Π |D(A_j)|`, the quantity Table 1
    /// reports as "Domain size" (≈ 2^52 for Adult etc.).
    pub fn log2_domain_size(&self) -> f64 {
        self.attrs
            .iter()
            .map(|a| (a.domain_size() as f64).log2())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Schema {
        Schema::new(vec![
            Attribute::categorical("edu", vec!["HS".into(), "BS".into(), "MS".into()]).unwrap(),
            Attribute::integer("edu_num", 1.0, 16.0, 16).unwrap(),
            Attribute::numeric("cap_gain", 0.0, 10000.0, 20).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn schema_lookup_and_sizes() {
        let s = toy();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("edu_num").unwrap(), 1);
        assert!(s.index_of("nope").is_err());
        assert_eq!(s.attr(0).domain_size(), 3);
        assert_eq!(s.attr(1).domain_size(), 16);
        assert_eq!(s.attr(2).domain_size(), 20);
        let expect = (3f64).log2() + (16f64).log2() + (20f64).log2();
        assert!((s.log2_domain_size() - expect).abs() < 1e-12);
    }

    #[test]
    fn duplicate_names_rejected() {
        let a = Attribute::categorical_indexed("x", 2).unwrap();
        let b = Attribute::categorical_indexed("x", 3).unwrap();
        assert!(Schema::new(vec![a, b]).is_err());
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(Schema::new(vec![]).is_err());
    }

    #[test]
    fn categorical_domain_validation() {
        let a = Attribute::categorical("c", vec!["a".into(), "b".into()]).unwrap();
        assert!(a.validate(Value::Cat(1)).is_ok());
        assert!(a.validate(Value::Cat(2)).is_err());
        assert!(a.validate(Value::Num(0.0)).is_err());
        assert_eq!(a.label(1), Some("b"));
        assert_eq!(a.code("a"), Some(0));
        assert_eq!(a.code("zzz"), None);
    }

    #[test]
    fn numeric_domain_validation() {
        let a = Attribute::numeric("x", 0.0, 1.0, 4).unwrap();
        assert!(a.validate(Value::Num(0.5)).is_ok());
        assert!(a.validate(Value::Num(f64::NAN)).is_err());
        assert!(a.validate(Value::Cat(0)).is_err());
        assert_eq!(a.label(0), None);
    }

    #[test]
    fn invalid_domains_rejected() {
        assert!(Attribute::categorical("c", vec![]).is_err());
        assert!(Attribute::categorical("c", vec!["a".into(), "a".into()]).is_err());
        assert!(Attribute::numeric("x", 1.0, 1.0, 4).is_err());
        assert!(Attribute::numeric("x", 0.0, 1.0, 0).is_err());
        assert!(Attribute::numeric("x", f64::NAN, 1.0, 3).is_err());
    }

    #[test]
    fn indexed_labels() {
        let a = Attribute::categorical_indexed("c", 3).unwrap();
        assert_eq!(a.label(2), Some("v2"));
        assert_eq!(a.domain_size(), 3);
    }
}
