//! Snapshot codec for the data layer: [`Schema`], [`Value`] and
//! [`Standardizer`] round-trip through the [`crate::wire`] rules. The
//! quantizers and encoders the pipeline uses are pure functions of the
//! schema's declared domains, so persisting the schema persists them too.

use crate::stats::Standardizer;
use crate::wire::{ByteReader, ByteWriter, WireError};
use crate::{AttrKind, Attribute, Schema, Value};

const KIND_CATEGORICAL: u8 = 0;
const KIND_NUMERIC: u8 = 1;

const VALUE_CAT: u8 = 0;
const VALUE_NUM: u8 = 1;

/// Encodes a schema (attribute order, names, full domains).
pub fn encode_schema(schema: &Schema, w: &mut ByteWriter) {
    w.put_u32(schema.len() as u32);
    for attr in schema.attrs() {
        w.put_str(&attr.name);
        match &attr.kind {
            AttrKind::Categorical { labels } => {
                w.put_u8(KIND_CATEGORICAL);
                w.put_u32(labels.len() as u32);
                for l in labels {
                    w.put_str(l);
                }
            }
            AttrKind::Numeric {
                min,
                max,
                bins,
                integer,
            } => {
                w.put_u8(KIND_NUMERIC);
                w.put_f64(*min);
                w.put_f64(*max);
                w.put_usize(*bins);
                w.put_bool(*integer);
            }
        }
    }
}

/// Decodes a schema written by [`encode_schema`], re-validating domains
/// through the ordinary [`Schema::new`] constructor.
pub fn decode_schema(r: &mut ByteReader<'_>) -> Result<Schema, WireError> {
    let n = r.u32()? as usize;
    let mut attrs = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let name = r.string()?;
        let kind = match r.u8()? {
            KIND_CATEGORICAL => {
                let n_labels = r.len_prefix()?;
                let mut labels = Vec::with_capacity(n_labels.min(1 << 12));
                for _ in 0..n_labels {
                    labels.push(r.string()?);
                }
                AttrKind::Categorical { labels }
            }
            KIND_NUMERIC => AttrKind::Numeric {
                min: r.f64()?,
                max: r.f64()?,
                bins: r.usize()?,
                integer: r.bool()?,
            },
            tag => return Err(WireError::Malformed(format!("unknown attr kind tag {tag}"))),
        };
        attrs.push(Attribute { name, kind });
    }
    Schema::new(attrs).map_err(|e| WireError::Malformed(format!("invalid schema: {e}")))
}

/// Encodes a single value (tagged categorical code or numeric).
pub fn encode_value(v: Value, w: &mut ByteWriter) {
    match v {
        Value::Cat(c) => {
            w.put_u8(VALUE_CAT);
            w.put_u32(c);
        }
        Value::Num(x) => {
            w.put_u8(VALUE_NUM);
            w.put_f64(x);
        }
    }
}

/// Decodes a value written by [`encode_value`].
pub fn decode_value(r: &mut ByteReader<'_>) -> Result<Value, WireError> {
    match r.u8()? {
        VALUE_CAT => Ok(Value::Cat(r.u32()?)),
        VALUE_NUM => Ok(Value::Num(r.f64()?)),
        tag => Err(WireError::Malformed(format!("unknown value tag {tag}"))),
    }
}

/// Encodes a standardizer (two floats).
pub fn encode_standardizer(s: &Standardizer, w: &mut ByteWriter) {
    w.put_f64(s.mean);
    w.put_f64(s.std);
}

/// Decodes a standardizer written by [`encode_standardizer`].
pub fn decode_standardizer(r: &mut ByteReader<'_>) -> Result<Standardizer, WireError> {
    Ok(Standardizer {
        mean: r.f64()?,
        std: r.f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("edu", vec!["HS".into(), "BS".into(), "MS".into()]).unwrap(),
            Attribute::integer("age", 17.0, 90.0, 16).unwrap(),
            Attribute::numeric("gain", 0.0, 10_000.0, 20).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn schema_roundtrip() {
        let s = schema();
        let mut w = ByteWriter::new();
        encode_schema(&s, &mut w);
        let bytes = w.into_bytes();
        let got = decode_schema(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(got, s);
    }

    #[test]
    fn value_and_standardizer_roundtrip() {
        let mut w = ByteWriter::new();
        encode_value(Value::Cat(7), &mut w);
        encode_value(Value::Num(-1.5), &mut w);
        encode_standardizer(
            &Standardizer {
                mean: 3.25,
                std: 0.5,
            },
            &mut w,
        );
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_value(&mut r).unwrap(), Value::Cat(7));
        assert_eq!(decode_value(&mut r).unwrap(), Value::Num(-1.5));
        let std = decode_standardizer(&mut r).unwrap();
        assert_eq!((std.mean, std.std), (3.25, 0.5));
    }

    #[test]
    fn corrupt_tag_is_rejected() {
        let mut w = ByteWriter::new();
        encode_schema(&schema(), &mut w);
        let mut bytes = w.into_bytes();
        // attribute count is fine, but flip the first kind tag to garbage
        let tag_pos = 4 + 4 + 3 + 1 - 1; // count + name len + "edu" + tag
        bytes[tag_pos] = 99;
        assert!(decode_schema(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn duplicate_attr_names_fail_revalidation() {
        let mut w = ByteWriter::new();
        // hand-encode two attributes with the same name
        w.put_u32(2);
        for _ in 0..2 {
            w.put_str("dup");
            w.put_u8(super::KIND_NUMERIC);
            w.put_f64(0.0);
            w.put_f64(1.0);
            w.put_usize(4);
            w.put_bool(false);
        }
        let bytes = w.into_bytes();
        assert!(decode_schema(&mut ByteReader::new(&bytes)).is_err());
    }
}
