//! Column statistics: histograms, standardization, categorical sampling.

use rand::Rng;

use crate::instance::{Column, Instance};
use crate::quantize::Quantizer;
use crate::schema::Schema;

/// [`histogram_with_clamped`]'s output: bin counts plus how many values
/// fell outside the declared domain.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramCounts {
    /// Counts of values per quantization bin.
    pub counts: Vec<f64>,
    /// Categorical codes outside the declared domain, folded into the
    /// last bin (saturating — though in practice any nonzero value is an
    /// encoding bug upstream).
    pub clamped: u64,
}

/// Counts of values per quantization bin for attribute `attr` — the `H` of
/// Algorithm 2 line 2 (before noise is added) — together with a count of
/// out-of-domain categorical codes. A code past the declared domain is an
/// encoding bug in the caller: folding it silently into the last bin (the
/// old behaviour) corrupts the released M1 histogram, so callers on
/// private paths should inspect [`HistogramCounts::clamped`].
pub fn histogram_with_clamped(schema: &Schema, inst: &Instance, attr: usize) -> HistogramCounts {
    let q = Quantizer::for_attr(schema.attr(attr));
    let mut counts = vec![0.0; q.n_bins()];
    let mut clamped: u64 = 0;
    match inst.column(attr) {
        Column::Cat(v) => {
            for &c in v {
                let (bin, out_of_domain) = q.bin_checked(crate::Value::Cat(c));
                if out_of_domain {
                    clamped = clamped.saturating_add(1);
                }
                counts[bin] += 1.0;
            }
        }
        Column::Num(v) => {
            for &x in v {
                counts[q.bin(crate::Value::Num(x))] += 1.0;
            }
        }
    }
    HistogramCounts { counts, clamped }
}

/// [`histogram_with_clamped`] without the clamp diagnostics. Debug builds
/// assert that no categorical code fell outside the domain — surfacing the
/// encoding bug at its source instead of corrupting the histogram.
pub fn histogram(schema: &Schema, inst: &Instance, attr: usize) -> Vec<f64> {
    let h = histogram_with_clamped(schema, inst, attr);
    debug_assert_eq!(
        h.clamped, 0,
        "attribute {attr}: {} categorical codes outside the declared domain \
         were folded into the last bin — encoding bug upstream",
        h.clamped
    );
    h.counts
}

/// Normalizes nonnegative weights into a probability distribution. All-zero
/// (or fully clipped) inputs fall back to uniform, which is how the paper's
/// post-processing treats fully-noised-out histograms.
pub fn normalize(weights: &[f64]) -> Vec<f64> {
    let clipped: Vec<f64> = weights.iter().map(|&w| w.max(0.0)).collect();
    let total: f64 = clipped.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        let u = 1.0 / clipped.len() as f64;
        return vec![u; clipped.len()];
    }
    clipped.iter().map(|&w| w / total).collect()
}

/// Samples an index from an (unnormalized, nonnegative) weight vector.
/// All-zero weights fall back to uniform. Every sampler in the workspace
/// (Algorithm 3's reweighted draw, baselines, generators) funnels through
/// this.
pub fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().map(|&w| w.max(0.0)).sum();
    if total <= 0.0 || !total.is_finite() {
        return rng.gen_range(0..weights.len());
    }
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        let w = w.max(0.0);
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Mean and standard deviation of one numeric column, used to standardize
/// continuous inputs for the tuple-embedding encoder (§2.3: "standardizes
/// each dimension to zero mean and unit variance").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Standardizer {
    /// Column mean.
    pub mean: f64,
    /// Column standard deviation (floored at a small epsilon so constant
    /// columns do not divide by zero).
    pub std: f64,
}

impl Standardizer {
    /// Fits standardization parameters on a numeric column.
    pub fn fit(values: &[f64]) -> Standardizer {
        if values.is_empty() {
            return Standardizer {
                mean: 0.0,
                std: 1.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Standardizer {
            mean,
            std: var.sqrt().max(1e-9),
        }
    }

    /// Fits from the attribute's declared domain rather than the data; this
    /// is what private code paths use so that standardization itself leaks
    /// nothing (the domain is public input).
    pub fn from_range(min: f64, max: f64) -> Standardizer {
        let mean = 0.5 * (min + max);
        // uniform-distribution std over the range
        let std = ((max - min) * (max - min) / 12.0).sqrt().max(1e-9);
        Standardizer { mean, std }
    }

    /// Standardizes one value.
    #[inline]
    pub fn forward(&self, x: f64) -> f64 {
        (x - self.mean) / self.std
    }

    /// Inverts standardization.
    #[inline]
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use crate::Value;

    #[test]
    fn histogram_counts_categorical() {
        let s = Schema::new(vec![Attribute::categorical_indexed("c", 3).unwrap()]).unwrap();
        let inst = Instance::from_rows(
            &s,
            &[
                vec![Value::Cat(0)],
                vec![Value::Cat(2)],
                vec![Value::Cat(2)],
            ],
        )
        .unwrap();
        assert_eq!(histogram(&s, &inst, 0), vec![1.0, 0.0, 2.0]);
    }

    #[test]
    fn histogram_counts_numeric_bins() {
        let s = Schema::new(vec![Attribute::numeric("x", 0.0, 10.0, 2).unwrap()]).unwrap();
        let inst = Instance::from_rows(
            &s,
            &[
                vec![Value::Num(1.0)],
                vec![Value::Num(6.0)],
                vec![Value::Num(9.0)],
            ],
        )
        .unwrap();
        assert_eq!(histogram(&s, &inst, 0), vec![1.0, 2.0]);
    }

    #[test]
    fn histogram_reports_out_of_domain_codes() {
        let s = Schema::new(vec![Attribute::categorical_indexed("c", 3).unwrap()]).unwrap();
        // bypass row validation by writing the raw code directly
        let mut inst =
            Instance::from_rows(&s, &[vec![Value::Cat(0)], vec![Value::Cat(1)]]).unwrap();
        inst.set(1, 0, Value::Cat(7)); // out of domain
        let h = histogram_with_clamped(&s, &inst, 0);
        assert_eq!(h.clamped, 1);
        assert_eq!(h.counts, vec![1.0, 0.0, 1.0]);
        // in-domain data reports zero clamps
        let clean = Instance::from_rows(&s, &[vec![Value::Cat(2)]]).unwrap();
        assert_eq!(histogram_with_clamped(&s, &clean, 0).clamped, 0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "outside the declared domain")
    )]
    fn histogram_asserts_on_out_of_domain_codes() {
        let s = Schema::new(vec![Attribute::categorical_indexed("c", 3).unwrap()]).unwrap();
        let mut inst = Instance::from_rows(&s, &[vec![Value::Cat(0)]]).unwrap();
        inst.set(0, 0, Value::Cat(9));
        let counts = histogram(&s, &inst, 0);
        // release builds: still folded (saturating), not lost
        assert_eq!(counts.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn normalize_clips_negatives_and_sums_to_one() {
        let p = normalize(&[3.0, -2.0, 1.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalize_all_zero_falls_back_to_uniform() {
        let p = normalize(&[-1.0, -5.0, 0.0, -0.2]);
        for &x in &p {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn standardizer_fit_roundtrips() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        let st = Standardizer::fit(&vals);
        assert!((st.mean - 2.5).abs() < 1e-12);
        for &x in &vals {
            assert!((st.inverse(st.forward(x)) - x).abs() < 1e-9);
        }
        // standardized values have ~zero mean
        let m: f64 = vals.iter().map(|&x| st.forward(x)).sum::<f64>() / 4.0;
        assert!(m.abs() < 1e-12);
    }

    #[test]
    fn standardizer_constant_column_does_not_blow_up() {
        let st = Standardizer::fit(&[5.0, 5.0, 5.0]);
        assert!(st.forward(5.0).is_finite());
    }

    #[test]
    fn standardizer_from_range_is_data_independent() {
        let st = Standardizer::from_range(0.0, 12.0);
        assert!((st.mean - 6.0).abs() < 1e-12);
        assert!((st.std - (12.0f64 * 12.0 / 12.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn standardizer_empty_input() {
        let st = Standardizer::fit(&[]);
        assert_eq!(st.mean, 0.0);
        assert_eq!(st.std, 1.0);
    }

    #[test]
    fn sample_weighted_respects_weights() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[sample_weighted(&weights, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn sample_weighted_degenerate_inputs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        // all-zero weights fall back to uniform over all indices
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[sample_weighted(&[0.0, 0.0, 0.0], &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // negative weights are treated as zero
        for _ in 0..100 {
            assert_ne!(sample_weighted(&[-5.0, 1.0], &mut rng), 0);
        }
        // single-element vector
        assert_eq!(sample_weighted(&[0.4], &mut rng), 0);
    }
}
