//! Cell values.

use std::cmp::Ordering;
use std::fmt;

/// A single cell value: either a categorical code (an index into the
/// attribute's label list) or a numeric value.
///
/// Categorical values are stored as `u32` codes rather than strings so that
/// instances stay compact and comparisons in the constraint engine are
/// branch-cheap. The mapping between codes and human-readable labels lives in
/// [`crate::Attribute`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Categorical code (index into the attribute's label list).
    Cat(u32),
    /// Numeric value (continuous or integer-valued).
    Num(f64),
}

impl Value {
    /// Returns the categorical code, panicking if this is a numeric value.
    ///
    /// Intended for hot paths where the schema guarantees the type; use
    /// [`Value::as_cat`] when the type is not statically known.
    #[inline]
    pub fn cat(self) -> u32 {
        match self {
            Value::Cat(c) => c,
            Value::Num(v) => panic!("expected categorical value, got numeric {v}"),
        }
    }

    /// Returns the numeric value, panicking if this is a categorical code.
    #[inline]
    pub fn num(self) -> f64 {
        match self {
            Value::Num(v) => v,
            Value::Cat(c) => panic!("expected numeric value, got categorical code {c}"),
        }
    }

    /// Returns the categorical code if this is a categorical value.
    #[inline]
    pub fn as_cat(self) -> Option<u32> {
        match self {
            Value::Cat(c) => Some(c),
            Value::Num(_) => None,
        }
    }

    /// Returns the numeric value if this is a numeric value.
    #[inline]
    pub fn as_num(self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(v),
            Value::Cat(_) => None,
        }
    }

    /// Total order used by the constraint engine's comparison predicates.
    ///
    /// Values of different kinds are never produced for the same attribute,
    /// so cross-kind comparisons are a logic error and return `None` only via
    /// NaN; categorical codes compare by code. NaN numeric values compare as
    /// equal to themselves and greater than everything else (total order via
    /// `f64::total_cmp`).
    #[inline]
    pub fn compare(self, other: Value) -> Ordering {
        match (self, other) {
            (Value::Cat(a), Value::Cat(b)) => a.cmp(&b),
            (Value::Num(a), Value::Num(b)) => a.total_cmp(&b),
            (Value::Cat(_), Value::Num(_)) | (Value::Num(_), Value::Cat(_)) => {
                panic!("cannot compare categorical and numeric values")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Cat(c) => write!(f, "#{c}"),
            Value::Num(v) => write!(f, "{v}"),
        }
    }
}

impl From<u32> for Value {
    fn from(c: u32) -> Self {
        Value::Cat(c)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Value::Cat(3).cat(), 3);
        assert_eq!(Value::Num(2.5).num(), 2.5);
        assert_eq!(Value::Cat(3).as_num(), None);
        assert_eq!(Value::Num(2.5).as_cat(), None);
        assert_eq!(Value::from(7u32), Value::Cat(7));
        assert_eq!(Value::from(1.5f64), Value::Num(1.5));
    }

    #[test]
    #[should_panic(expected = "expected categorical")]
    fn cat_on_num_panics() {
        Value::Num(1.0).cat();
    }

    #[test]
    #[should_panic(expected = "expected numeric")]
    fn num_on_cat_panics() {
        Value::Cat(1).num();
    }

    #[test]
    fn compare_orders_within_kind() {
        assert_eq!(Value::Cat(1).compare(Value::Cat(2)), Ordering::Less);
        assert_eq!(Value::Num(3.0).compare(Value::Num(3.0)), Ordering::Equal);
        assert_eq!(Value::Num(4.0).compare(Value::Num(-1.0)), Ordering::Greater);
    }

    #[test]
    #[should_panic(expected = "cannot compare")]
    fn compare_across_kinds_panics() {
        Value::Cat(0).compare(Value::Num(0.0));
    }

    #[test]
    fn nan_has_total_order() {
        let nan = Value::Num(f64::NAN);
        assert_eq!(nan.compare(nan), Ordering::Equal);
        assert_eq!(nan.compare(Value::Num(1.0)), Ordering::Greater);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Cat(2).to_string(), "#2");
        assert_eq!(Value::Num(1.5).to_string(), "1.5");
    }
}
