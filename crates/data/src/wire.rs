//! Byte-level primitives shared by the model-snapshot codecs.
//!
//! Every crate that persists part of a fitted model (schema here, plan
//! σ's in `kamino-dp`, weight tensors in `kamino-nn`, the assembled
//! sections in `kamino-serve`) encodes through this module, so the wire
//! rules live in exactly one place:
//!
//! * **fixed endianness** — all integers and floats are little-endian;
//!   `f64` travels as its IEEE-754 bit pattern, so NaN payloads and ±∞
//!   (hard-DC weights, non-private ε) round-trip bit-exactly;
//! * **length-prefixed containers** — strings and vectors carry a `u32`
//!   length, bounded by [`MAX_CONTAINER_LEN`] so a corrupted length can
//!   never trigger a multi-gigabyte allocation;
//! * **checked reads** — [`ByteReader`] returns [`WireError`] instead of
//!   panicking, which the snapshot loader surfaces as a corrupt-file
//!   error.
//!
//! [`crc32`] implements the IEEE CRC-32 every snapshot section is sealed
//! with.

use std::fmt;

/// Upper bound on any length prefix (strings, vectors, tables). Fitted
/// models are a few MB at most; 256 Mi entries is far beyond any valid
/// snapshot and small enough to fail fast on garbage.
pub const MAX_CONTAINER_LEN: u32 = 1 << 28;

/// Decoding failure: the bytes do not follow the wire rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes remained than the read required.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// A tag or length had no valid interpretation.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} left"
                )
            }
            WireError::Malformed(msg) => write!(f, "malformed input: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Growable little-endian byte sink.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (fixed width across platforms).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its little-endian IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        assert!(bytes.len() <= MAX_CONTAINER_LEN as usize, "blob too large");
        self.put_u32(bytes.len() as u32);
        self.put_raw(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        assert!(vs.len() <= MAX_CONTAINER_LEN as usize, "vector too large");
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Writes a length-prefixed `usize` slice (as `u64`s).
    pub fn put_usizes(&mut self, vs: &[usize]) {
        assert!(vs.len() <= MAX_CONTAINER_LEN as usize, "vector too large");
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_usize(v);
        }
    }
}

/// Checked little-endian cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader has consumed every byte.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (rejecting anything but 0/1 — a corruption tell).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Malformed(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` written by [`ByteWriter::put_usize`].
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed(format!("usize overflow: {v}")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a container length prefix, bounded by [`MAX_CONTAINER_LEN`].
    pub fn len_prefix(&mut self) -> Result<usize, WireError> {
        let n = self.u32()?;
        if n > MAX_CONTAINER_LEN {
            return Err(WireError::Malformed(format!(
                "container length {n} too large"
            )));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.len_prefix()?;
        self.take(n)
    }

    /// Reads exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.len_prefix()?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usizes(&mut self) -> Result<Vec<usize>, WireError> {
        let n = self.len_prefix()?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(self.usize()?);
        }
        Ok(out)
    }
}

/// IEEE CRC-32 (polynomial `0xEDB88320`), the per-section checksum of the
/// snapshot format. Table-driven; the table is built on first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_usize(12345);
        w.put_f64(-0.125);
        w.put_f64(f64::INFINITY);
        w.put_f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.f64().unwrap().is_infinite());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.is_exhausted());
    }

    #[test]
    fn container_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_str("schéma");
        w.put_f64s(&[1.0, -2.5, f64::NEG_INFINITY]);
        w.put_usizes(&[0, 9, 81]);
        w.put_bytes(b"raw");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.string().unwrap(), "schéma");
        assert_eq!(r.f64s().unwrap(), vec![1.0, -2.5, f64::NEG_INFINITY]);
        assert_eq!(r.usizes().unwrap(), vec![0, 9, 81]);
        assert_eq!(r.bytes().unwrap(), b"raw");
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.u64(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn bogus_lengths_and_bools_rejected() {
        // length prefix far beyond MAX_CONTAINER_LEN
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            ByteReader::new(&bytes).len_prefix(),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            ByteReader::new(&[2u8]).bool(),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn crc32_known_vector() {
        // the classic check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
