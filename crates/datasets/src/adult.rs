//! Adult-like census data (Table 1 row 1): 15 mixed-type attributes,
//! two hard DCs.
//!
//! * φ₁ᵃ `¬(t1.education = t2.education ∧ t1.education_num ≠ t2.education_num)`
//!   — holds exactly because both columns derive from one latent education
//!   level.
//! * φ₂ᵃ `¬(t1.capital_gain > t2.capital_gain ∧ t1.capital_loss < t2.capital_loss)`
//!   — holds exactly because `capital_loss` is a nondecreasing deterministic
//!   function of `capital_gain`.
//!
//! The remaining attributes carry the correlations the paper's downstream
//! tasks rely on: income depends on education/age/hours/sex, occupation on
//! education, marital status on age, and so on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kamino_constraints::{parse_dc, DenialConstraint, Hardness};
use kamino_data::stats::sample_weighted;
use kamino_data::{Attribute, Instance, Schema, Value};
use kamino_dp::normal::normal;

use crate::Dataset;

const EDUCATIONS: [&str; 16] = [
    "Preschool",
    "1st-4th",
    "5th-6th",
    "7th-8th",
    "9th",
    "10th",
    "11th",
    "12th",
    "HS-grad",
    "Some-college",
    "Assoc-voc",
    "Assoc-acdm",
    "Bachelors",
    "Masters",
    "Prof-school",
    "Doctorate",
];

const WORKCLASSES: [&str; 8] = [
    "Private",
    "Self-emp-not-inc",
    "Self-emp-inc",
    "Federal-gov",
    "Local-gov",
    "State-gov",
    "Without-pay",
    "Never-worked",
];

const MARITALS: [&str; 7] = [
    "Married-civ-spouse",
    "Divorced",
    "Never-married",
    "Separated",
    "Widowed",
    "Married-spouse-absent",
    "Married-AF-spouse",
];

const OCCUPATIONS: [&str; 14] = [
    "Tech-support",
    "Craft-repair",
    "Other-service",
    "Sales",
    "Exec-managerial",
    "Prof-specialty",
    "Handlers-cleaners",
    "Machine-op-inspct",
    "Adm-clerical",
    "Farming-fishing",
    "Transport-moving",
    "Priv-house-serv",
    "Protective-serv",
    "Armed-Forces",
];

const RELATIONSHIPS: [&str; 6] = [
    "Wife",
    "Own-child",
    "Husband",
    "Not-in-family",
    "Other-relative",
    "Unmarried",
];

const RACES: [&str; 5] = [
    "White",
    "Asian-Pac-Islander",
    "Amer-Indian-Eskimo",
    "Other",
    "Black",
];

/// Builds the Adult-like schema (shared with tests and benches).
pub fn adult_schema() -> Schema {
    let cat = |name: &str, labels: &[&str]| {
        Attribute::categorical(name, labels.iter().map(|s| s.to_string()).collect()).unwrap()
    };
    Schema::new(vec![
        Attribute::integer("age", 17.0, 90.0, 15).unwrap(),
        cat("workclass", &WORKCLASSES),
        Attribute::numeric("fnlwgt", 1e4, 1.5e6, 20).unwrap(),
        cat("education", &EDUCATIONS),
        Attribute::integer("education_num", 1.0, 16.0, 16).unwrap(),
        cat("marital_status", &MARITALS),
        cat("occupation", &OCCUPATIONS),
        cat("relationship", &RELATIONSHIPS),
        cat("race", &RACES),
        cat("sex", &["Female", "Male"]),
        Attribute::numeric("capital_gain", 0.0, 99_999.0, 20).unwrap(),
        Attribute::numeric("capital_loss", 0.0, 20_000.0, 20).unwrap(),
        Attribute::integer("hours_per_week", 1.0, 99.0, 15).unwrap(),
        Attribute::categorical_indexed("native_country", 20).unwrap(),
        cat("income", &["<=50K", ">50K"]),
    ])
    .unwrap()
}

/// The two hard DCs of Table 1 for Adult.
pub fn adult_dcs(schema: &Schema) -> Vec<DenialConstraint> {
    vec![
        parse_dc(
            schema,
            "phi_a1",
            "!(t1.education == t2.education & t1.education_num != t2.education_num)",
            Hardness::Hard,
        )
        .unwrap(),
        parse_dc(
            schema,
            "phi_a2",
            "!(t1.capital_gain > t2.capital_gain & t1.capital_loss < t2.capital_loss)",
            Hardness::Hard,
        )
        .unwrap(),
    ]
}

/// `capital_loss` as a nondecreasing deterministic function of
/// `capital_gain`, which makes φ₂ᵃ hold exactly.
fn capital_loss_of(gain: f64) -> f64 {
    if gain <= 2_000.0 {
        0.0
    } else {
        (0.15 * (gain - 2_000.0)).min(20_000.0).round()
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Generates an Adult-like instance of `n` rows.
pub fn adult_like(n: usize, seed: u64) -> Dataset {
    let schema = adult_schema();
    // kamino-lint: allow(raw_rng) -- seeded corpus generator runs upstream of any DP mechanism
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAD01);
    let mut inst = Instance::empty(&schema);

    // skewed education-level prior (HS-grad / Some-college heavy)
    let edu_weights: [f64; 16] = [
        0.2, 0.5, 1.0, 2.0, 1.6, 2.8, 3.6, 1.3, 32.0, 22.0, 4.2, 3.2, 16.0, 5.4, 1.8, 1.2,
    ];

    let mut row: Vec<Value> = Vec::with_capacity(schema.len());
    for _ in 0..n {
        let edu = sample_weighted(&edu_weights, &mut rng);
        let edu_num = edu as f64 + 1.0;
        let age = normal(&mut rng, 38.5, 13.5).round().clamp(17.0, 90.0);
        let sex = usize::from(rng.gen::<f64>() < 0.67); // 1 = Male
        let race = sample_weighted(&[85.0, 3.0, 1.0, 1.0, 10.0], &mut rng);
        let country = sample_weighted(
            &(0..20)
                .map(|i| 1.0 / (i as f64 + 1.0).powf(1.6))
                .collect::<Vec<_>>(),
            &mut rng,
        );
        // marital status skews with age
        let marital = if age < 26.0 {
            sample_weighted(&[6.0, 2.0, 86.0, 2.0, 0.2, 2.0, 0.3], &mut rng)
        } else {
            sample_weighted(&[52.0, 15.0, 18.0, 4.0, 4.0, 5.0, 0.3], &mut rng)
        };
        // relationship follows marital status
        let relationship = match marital {
            0 | 6 => {
                if sex == 1 {
                    2 // Husband
                } else {
                    0 // Wife
                }
            }
            2 => sample_weighted(&[0.0, 45.0, 0.0, 35.0, 8.0, 12.0], &mut rng),
            _ => sample_weighted(&[0.0, 10.0, 0.0, 50.0, 10.0, 30.0], &mut rng),
        };
        // occupation skews with education level
        let occupation = if edu >= 12 {
            sample_weighted(
                &[
                    8.0, 3.0, 3.0, 10.0, 25.0, 32.0, 1.0, 1.0, 7.0, 1.0, 2.0, 0.3, 2.0, 0.2,
                ],
                &mut rng,
            )
        } else {
            sample_weighted(
                &[
                    3.0, 16.0, 14.0, 11.0, 7.0, 4.0, 7.0, 9.0, 13.0, 4.0, 7.0, 1.0, 3.0, 0.3,
                ],
                &mut rng,
            )
        };
        let workclass = sample_weighted(&[70.0, 8.0, 3.5, 3.0, 6.5, 4.0, 0.1, 0.05], &mut rng);
        let hours = normal(&mut rng, 40.0 + if edu >= 12 { 4.0 } else { 0.0 }, 11.0)
            .round()
            .clamp(1.0, 99.0);
        // income: the planted signal the classification task recovers
        let logit = 0.55 * (edu_num - 9.5)
            + 0.035 * (age - 38.0)
            + 0.04 * (hours - 40.0)
            + if sex == 1 { 0.7 } else { 0.0 }
            + if marital == 0 { 1.1 } else { -0.6 }
            - 1.4;
        let income = usize::from(rng.gen::<f64>() < sigmoid(logit));
        // capital gain: zero-inflated, heavier for high earners
        let gain_p = 0.05 + 0.12 * income as f64;
        let gain = if rng.gen::<f64>() < gain_p {
            normal(&mut rng, 8.6, 0.9)
                .exp()
                .clamp(0.0, 99_999.0)
                .round()
        } else {
            0.0
        };
        let loss = capital_loss_of(gain);
        let fnlwgt = normal(&mut rng, 11.8, 0.45).exp().clamp(1e4, 1.5e6);

        row.clear();
        row.extend_from_slice(&[
            Value::Num(age),
            Value::Cat(workclass as u32),
            Value::Num(fnlwgt),
            Value::Cat(edu as u32),
            Value::Num(edu_num),
            Value::Cat(marital as u32),
            Value::Cat(occupation as u32),
            Value::Cat(relationship as u32),
            Value::Cat(race as u32),
            Value::Cat(sex as u32),
            Value::Num(gain),
            Value::Num(loss),
            Value::Num(hours),
            Value::Cat(country as u32),
            Value::Cat(income as u32),
        ]);
        inst.push_row(&schema, &row)
            .expect("generator emits schema-conformant rows");
    }

    let dcs = adult_dcs(&schema);
    Dataset {
        name: "adult".into(),
        schema,
        instance: inst,
        dcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_constraints::violation_percentage;

    #[test]
    fn shape_matches_table1() {
        let d = adult_like(300, 7);
        assert_eq!(d.schema.len(), 15);
        assert_eq!(d.instance.n_rows(), 300);
        assert_eq!(d.dcs.len(), 2);
        // Table 1: domain size ≈ 2^52; ours is within a few powers of two
        let log2 = d.schema.log2_domain_size();
        assert!((40.0..60.0).contains(&log2), "log2 domain size {log2}");
    }

    #[test]
    fn hard_dcs_hold_exactly() {
        let d = adult_like(500, 11);
        for dc in &d.dcs {
            assert_eq!(
                violation_percentage(dc, &d.instance),
                0.0,
                "hard DC {} violated in truth",
                dc.name
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = adult_like(100, 3);
        let b = adult_like(100, 3);
        assert_eq!(a.instance, b.instance);
        let c = adult_like(100, 4);
        assert_ne!(a.instance, c.instance);
    }

    #[test]
    fn education_fd_is_functional() {
        let d = adult_like(400, 5);
        let edu = d.schema.index_of("education").unwrap();
        let edu_num = d.schema.index_of("education_num").unwrap();
        let mut seen = std::collections::BTreeMap::new();
        for i in 0..d.instance.n_rows() {
            let e = d.instance.cat(i, edu);
            let en = d.instance.num(i, edu_num);
            let prev = seen.insert(e, en);
            if let Some(p) = prev {
                assert_eq!(p, en, "education {e} maps to two education_nums");
            }
        }
    }

    #[test]
    fn income_correlates_with_education() {
        let d = adult_like(4000, 13);
        let edu_num = d.schema.index_of("education_num").unwrap();
        let income = d.schema.index_of("income").unwrap();
        let (mut hi_sum, mut hi_n, mut lo_sum, mut lo_n) = (0.0, 0, 0.0, 0);
        for i in 0..d.instance.n_rows() {
            let en = d.instance.num(i, edu_num);
            if d.instance.cat(i, income) == 1 {
                hi_sum += en;
                hi_n += 1;
            } else {
                lo_sum += en;
                lo_n += 1;
            }
        }
        assert!(hi_n > 100, "positive class too rare: {hi_n}");
        assert!(
            hi_sum / hi_n as f64 > lo_sum / lo_n as f64 + 1.0,
            "education/income correlation missing"
        );
    }

    #[test]
    fn capital_columns_within_domain() {
        let d = adult_like(500, 19);
        let g = d.schema.index_of("capital_gain").unwrap();
        let l = d.schema.index_of("capital_loss").unwrap();
        for i in 0..d.instance.n_rows() {
            let gain = d.instance.num(i, g);
            let loss = d.instance.num(i, l);
            assert!((0.0..=99_999.0).contains(&gain));
            assert!((0.0..=20_000.0).contains(&loss));
            assert_eq!(loss, capital_loss_of(gain));
        }
    }

    #[test]
    fn capital_loss_function_is_monotone() {
        let mut prev = 0.0;
        for g in 0..1000 {
            let loss = capital_loss_of(g as f64 * 100.0);
            assert!(loss >= prev);
            prev = loss;
        }
    }
}
