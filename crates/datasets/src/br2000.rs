//! BR2000-like survey data (Table 1 row 2): 14 small-domain attributes and
//! three *soft* DCs whose truth violation rates are small but nonzero
//! (the paper's Table 2 reports 0.4% / 0.9% / 0.5%).
//!
//! All ordinal attributes derive from one latent score `u` plus noise, so
//! pairs are mostly concordant and the soft order DCs hold approximately.
//! The noise scales below were tuned so truth violation rates land in the
//! paper's sub-percent regime (asserted in tests).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kamino_constraints::{parse_dc, DenialConstraint, Hardness};
use kamino_data::{Attribute, Instance, Schema, Value};
use kamino_dp::normal::normal;

use crate::Dataset;

/// Builds the BR2000-like schema: seven binary attributes (`a1`, `a2`,
/// `a4`, `a6`–`a9`), three small categoricals (`a10`, `a12`, `a14`) and
/// four small ordinal integers (`a3`, `a5`, `a11`, `a13`).
pub fn br2000_schema() -> Schema {
    Schema::new(vec![
        Attribute::categorical_indexed("a1", 2).unwrap(),
        Attribute::categorical_indexed("a2", 2).unwrap(),
        Attribute::integer("a3", 0.0, 15.0, 16).unwrap(),
        Attribute::categorical_indexed("a4", 2).unwrap(),
        Attribute::integer("a5", 0.0, 15.0, 16).unwrap(),
        Attribute::categorical_indexed("a6", 2).unwrap(),
        Attribute::categorical_indexed("a7", 2).unwrap(),
        Attribute::categorical_indexed("a8", 2).unwrap(),
        Attribute::categorical_indexed("a9", 2).unwrap(),
        Attribute::categorical_indexed("a10", 3).unwrap(),
        Attribute::integer("a11", 0.0, 11.0, 12).unwrap(),
        Attribute::categorical_indexed("a12", 4).unwrap(),
        Attribute::integer("a13", 0.0, 9.0, 10).unwrap(),
        Attribute::categorical_indexed("a14", 4).unwrap(),
    ])
    .unwrap()
}

/// The three soft DCs of Table 1 for BR2000 (weights unknown — Kamino
/// learns them with Algorithm 5).
pub fn br2000_dcs(schema: &Schema) -> Vec<DenialConstraint> {
    vec![
        parse_dc(
            schema,
            "phi_b1",
            "!(t1.a13 == t2.a13 & t1.a11 < t2.a11 & t1.a3 > t2.a3)",
            Hardness::Soft,
        )
        .unwrap(),
        parse_dc(
            schema,
            "phi_b2",
            "!(t1.a12 != t2.a12 & t1.a13 <= t2.a13 & t1.a5 >= t2.a5)",
            Hardness::Soft,
        )
        .unwrap(),
        parse_dc(
            schema,
            "phi_b3",
            "!(t1.a5 <= t2.a5 & t1.a3 > t2.a3 & t1.a12 != t2.a12 & t1.a11 > t2.a11)",
            Hardness::Soft,
        )
        .unwrap(),
    ]
}

fn ordinal(u: f64, noise: f64, card: usize, rng: &mut StdRng) -> f64 {
    let v = (u + normal(rng, 0.0, noise)).clamp(0.0, 0.999_999);
    (v * card as f64).floor()
}

/// Generates a BR2000-like instance of `n` rows.
pub fn br2000_like(n: usize, seed: u64) -> Dataset {
    let schema = br2000_schema();
    // kamino-lint: allow(raw_rng) -- seeded corpus generator runs upstream of any DP mechanism
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB2000);
    let mut inst = Instance::empty(&schema);
    let mut row: Vec<Value> = Vec::with_capacity(schema.len());
    for _ in 0..n {
        let u: f64 = rng.gen();
        // a12 strongly tracks u (quartiles) so that cross-quartile pairs are
        // mostly concordant on (a13, a5); slight flip noise keeps it soft.
        let mut a12 = (u * 4.0).floor().min(3.0) as u32;
        if rng.gen::<f64>() < 0.03 {
            a12 = rng.gen_range(0..4);
        }
        let a3 = ordinal(u, 0.035, 16, &mut rng);
        let a5 = ordinal(u, 0.035, 16, &mut rng);
        let a11 = ordinal(u, 0.04, 12, &mut rng);
        let a13 = ordinal(u, 0.04, 10, &mut rng);
        let bin = |th: f64, rng: &mut StdRng| -> u32 { u32::from(u + normal(rng, 0.0, 0.25) > th) };
        let a10 = ordinal(u, 0.3, 3, &mut rng) as u32;
        let a14 = ordinal(u, 0.3, 4, &mut rng) as u32;
        row.clear();
        row.extend_from_slice(&[
            Value::Cat(bin(0.3, &mut rng)),
            Value::Cat(bin(0.5, &mut rng)),
            Value::Num(a3),
            Value::Cat(bin(0.7, &mut rng)),
            Value::Num(a5),
            Value::Cat(bin(0.4, &mut rng)),
            Value::Cat(bin(0.6, &mut rng)),
            Value::Cat(bin(0.5, &mut rng)),
            Value::Cat(bin(0.45, &mut rng)),
            Value::Cat(a10),
            Value::Num(a11),
            Value::Cat(a12),
            Value::Num(a13),
            Value::Cat(a14),
        ]);
        inst.push_row(&schema, &row)
            .expect("generator emits schema-conformant rows");
    }
    let dcs = br2000_dcs(&schema);
    Dataset {
        name: "br2000".into(),
        schema,
        instance: inst,
        dcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_constraints::violation_percentage;

    #[test]
    fn shape_matches_table1() {
        let d = br2000_like(200, 1);
        assert_eq!(d.schema.len(), 14);
        assert_eq!(d.dcs.len(), 3);
        assert_eq!(d.instance.n_rows(), 200);
        for dc in &d.dcs {
            assert_eq!(dc.hardness, Hardness::Soft);
        }
    }

    #[test]
    fn soft_dcs_have_small_nonzero_truth_rates() {
        let d = br2000_like(2000, 5);
        for dc in &d.dcs {
            let pct = violation_percentage(dc, &d.instance);
            assert!(
                (0.0..6.0).contains(&pct),
                "{}: truth violation {pct}% outside the soft regime",
                dc.name
            );
        }
        // at least one DC must actually be violated (they are soft)
        let any = d
            .dcs
            .iter()
            .any(|dc| violation_percentage(dc, &d.instance) > 0.0);
        assert!(
            any,
            "all soft DCs hold exactly — generator lost its softness"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(br2000_like(150, 9).instance, br2000_like(150, 9).instance);
    }

    #[test]
    fn ordinals_concordant_with_latent() {
        // a3 and a5 both track u, so they must be strongly positively
        // correlated with each other.
        let d = br2000_like(3000, 2);
        let a3 = d.schema.index_of("a3").unwrap();
        let a5 = d.schema.index_of("a5").unwrap();
        let n = d.instance.n_rows();
        let m3: f64 = (0..n).map(|i| d.instance.num(i, a3)).sum::<f64>() / n as f64;
        let m5: f64 = (0..n).map(|i| d.instance.num(i, a5)).sum::<f64>() / n as f64;
        let mut cov = 0.0;
        let mut v3 = 0.0;
        let mut v5 = 0.0;
        for i in 0..n {
            let x = d.instance.num(i, a3) - m3;
            let y = d.instance.num(i, a5) - m5;
            cov += x * y;
            v3 += x * x;
            v5 += y * y;
        }
        let corr = cov / (v3.sqrt() * v5.sqrt());
        assert!(corr > 0.9, "a3/a5 correlation {corr} too weak");
    }

    #[test]
    fn domains_respected() {
        let d = br2000_like(500, 3);
        for i in 0..d.instance.n_rows() {
            for (j, attr) in d.schema.attrs().iter().enumerate() {
                assert!(attr.validate(d.instance.value(i, j)).is_ok());
            }
        }
    }
}
