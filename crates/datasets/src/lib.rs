//! Seeded synthetic generators for the paper's four evaluation datasets.
//!
//! The originals (UCI Adult, BR2000, the Tax benchmark, a TPC-H join) are
//! not redistributable inside this repository, so each generator plants the
//! *structure the experiments measure*: the schema shape and mixed data
//! types of Table 1, the exact denial constraints of Table 1 (hard DCs hold
//! exactly; soft DCs hold with small truth violation rates like the paper's
//! Table 2 "Truth" column), and strong attribute correlations for the
//! classification/marginal tasks. See DESIGN.md §3 for the substitution
//! rationale.
//!
//! All generators are deterministic given `(n, seed)`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adult;
pub mod br2000;
pub mod tax;
pub mod tpch;

use kamino_constraints::DenialConstraint;
use kamino_data::{Instance, Schema};

pub use adult::adult_like;
pub use br2000::br2000_like;
pub use tax::{tax_like, tax_like_scaled};
pub use tpch::tpch_like;

/// A generated dataset: schema + instance + the DC set of Table 1.
pub struct Dataset {
    /// Dataset name (`adult`, `br2000`, `tax`, `tpch`).
    pub name: String,
    /// Relation schema.
    pub schema: Schema,
    /// The "true" database instance `D*`.
    pub instance: Instance,
    /// The denial constraints Φ with their hardness.
    pub dcs: Vec<DenialConstraint>,
}

impl Dataset {
    /// Metric I on the true instance: `(dc name, % violating tuple pairs)`.
    pub fn truth_violations(&self) -> Vec<(String, f64)> {
        self.dcs
            .iter()
            .map(|dc| {
                (
                    dc.name.clone(),
                    kamino_constraints::violation_percentage(dc, &self.instance),
                )
            })
            .collect()
    }
}

/// The four corpora of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corpus {
    /// Census-like data with an education FD and a capital order DC.
    Adult,
    /// Small-domain survey data with three *soft* DCs.
    Br2000,
    /// Tax records with chained large-domain FDs and an order DC.
    Tax,
    /// A TPC-H Orders⋈Customer⋈Nation join with key-induced FDs.
    TpcH,
}

impl Corpus {
    /// Generates the corpus at `n` rows with the given seed.
    pub fn generate(self, n: usize, seed: u64) -> Dataset {
        match self {
            Corpus::Adult => adult_like(n, seed),
            Corpus::Br2000 => br2000_like(n, seed),
            Corpus::Tax => tax_like(n, seed),
            Corpus::TpcH => tpch_like(n, seed),
        }
    }

    /// The paper-scale row count from Table 1.
    pub fn paper_n(self) -> usize {
        match self {
            Corpus::Adult => 32_561,
            Corpus::Br2000 => 38_000,
            Corpus::Tax => 30_000,
            Corpus::TpcH => 20_000,
        }
    }

    /// All four corpora in the paper's presentation order.
    pub fn all() -> [Corpus; 4] {
        [Corpus::Adult, Corpus::Br2000, Corpus::Tax, Corpus::TpcH]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Corpus::Adult => "Adult",
            Corpus::Br2000 => "BR2000",
            Corpus::Tax => "Tax",
            Corpus::TpcH => "TPC-H",
        }
    }

    /// The lowercase identifier the generator writes into
    /// [`Dataset::name`] — the key machine-readable output (cache files,
    /// result cells) is indexed by. [`Corpus::generate`] is tested to
    /// agree with this.
    pub fn id(self) -> &'static str {
        match self {
            Corpus::Adult => "adult",
            Corpus::Br2000 => "br2000",
            Corpus::Tax => "tax",
            Corpus::TpcH => "tpch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_metadata() {
        assert_eq!(Corpus::Adult.paper_n(), 32_561);
        assert_eq!(Corpus::all().len(), 4);
        assert_eq!(Corpus::Tax.name(), "Tax");
    }

    #[test]
    fn generate_dispatches() {
        for c in Corpus::all() {
            let d = c.generate(50, 1);
            assert_eq!(d.instance.n_rows(), 50);
            assert!(!d.dcs.is_empty());
            assert_eq!(d.name, c.id(), "generator name must match Corpus::id");
        }
    }
}
