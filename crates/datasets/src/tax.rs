//! Tax-like records (Table 1 row 3): 12 attributes, six hard DCs — the
//! chained geography FDs (`zip → city`, `zip → state`, `areacode → state`),
//! two exemption FDs conditioned on state, and the salary/rate order DC.
//!
//! The paper's Tax dataset stresses very large domains (zip ≈ 2¹⁵); the
//! default here scales zip down for harness budgets but
//! [`tax_like_scaled`] accepts any zip count (the paper's §4.3 "extreme
//! domain" discussion is exercised in benches by raising it).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kamino_constraints::{parse_dc, DenialConstraint, Hardness};
use kamino_data::stats::sample_weighted;
use kamino_data::{Attribute, Instance, Schema, Value};
use kamino_dp::normal::normal;

use crate::Dataset;

const N_STATES: usize = 20;
const CITIES_PER_STATE: usize = 6;
const AREACODES_PER_STATE: usize = 2;

/// Builds the Tax-like schema with `n_zips` zip codes.
pub fn tax_schema(n_zips: usize) -> Schema {
    assert!(n_zips >= N_STATES, "need at least one zip per state");
    Schema::new(vec![
        Attribute::categorical("gender", vec!["F".into(), "M".into()]).unwrap(),
        Attribute::categorical_indexed("areacode", N_STATES * AREACODES_PER_STATE).unwrap(),
        Attribute::categorical_indexed("city", N_STATES * CITIES_PER_STATE).unwrap(),
        Attribute::categorical_indexed("state", N_STATES).unwrap(),
        Attribute::categorical_indexed("zip", n_zips).unwrap(),
        Attribute::categorical(
            "marital",
            vec![
                "single".into(),
                "married".into(),
                "divorced".into(),
                "widowed".into(),
            ],
        )
        .unwrap(),
        Attribute::categorical("has_child", vec!["no".into(), "yes".into()]).unwrap(),
        Attribute::numeric("salary", 5_000.0, 500_000.0, 20).unwrap(),
        Attribute::numeric("rate", 0.0, 10.0, 20).unwrap(),
        Attribute::numeric("single_exemp", 0.0, 5_000.0, 10).unwrap(),
        Attribute::numeric("child_exemp", 0.0, 5_000.0, 10).unwrap(),
        Attribute::integer("age", 18.0, 90.0, 15).unwrap(),
    ])
    .unwrap()
}

/// The six hard DCs of Table 1 for Tax.
pub fn tax_dcs(schema: &Schema) -> Vec<DenialConstraint> {
    let dc = |name: &str, text: &str| parse_dc(schema, name, text, Hardness::Hard).unwrap();
    vec![
        dc("phi_t1", "!(t1.zip == t2.zip & t1.city != t2.city)"),
        dc("phi_t2", "!(t1.areacode == t2.areacode & t1.state != t2.state)"),
        dc("phi_t3", "!(t1.zip == t2.zip & t1.state != t2.state)"),
        dc(
            "phi_t4",
            "!(t1.state == t2.state & t1.has_child == t2.has_child & t1.child_exemp != t2.child_exemp)",
        ),
        dc(
            "phi_t5",
            "!(t1.state == t2.state & t1.marital == t2.marital & t1.single_exemp != t2.single_exemp)",
        ),
        dc("phi_t6", "!(t1.state == t2.state & t1.salary > t2.salary & t1.rate < t2.rate)"),
    ]
}

/// The state a zip code belongs to (round-robin assignment).
fn state_of_zip(zip: usize) -> usize {
    zip % N_STATES
}

/// The city a zip code belongs to (within its state).
fn city_of_zip(zip: usize) -> usize {
    state_of_zip(zip) * CITIES_PER_STATE + (zip / N_STATES) % CITIES_PER_STATE
}

/// Deterministic child exemption per (state, has_child) — FD φ₄ᵗ.
fn child_exemp_of(state: usize, has_child: usize) -> f64 {
    if has_child == 1 {
        1_000.0 + 50.0 * state as f64
    } else {
        0.0
    }
}

/// Deterministic single exemption per (state, marital) — FD φ₅ᵗ.
fn single_exemp_of(state: usize, marital: usize) -> f64 {
    match marital {
        0 => 500.0 + 30.0 * state as f64,
        1 => 0.0,
        2 => 250.0 + 20.0 * state as f64,
        _ => 100.0 + 10.0 * state as f64,
    }
}

/// Deterministic, per-state nondecreasing tax rate — makes φ₆ᵗ exact.
fn rate_of(state: usize, salary: f64) -> f64 {
    let base = 1.0 + 0.1 * state as f64;
    let progressive = 6.0 * (salary / 500_000.0).sqrt();
    ((base + progressive) * 10.0).round() / 10.0 // quantize to one decimal
}

/// Generates a Tax-like instance with the default zip-domain scale (400).
pub fn tax_like(n: usize, seed: u64) -> Dataset {
    tax_like_scaled(n, seed, 400)
}

/// Generates a Tax-like instance with `n_zips` zip codes.
pub fn tax_like_scaled(n: usize, seed: u64, n_zips: usize) -> Dataset {
    let schema = tax_schema(n_zips);
    // kamino-lint: allow(raw_rng) -- seeded corpus generator runs upstream of any DP mechanism
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A50);
    let mut inst = Instance::empty(&schema);
    // Zipf-ish popularity over zips so FD groups have realistic skew.
    let zip_weights: Vec<f64> = (0..n_zips)
        .map(|i| 1.0 / (i as f64 + 1.0).powf(0.8))
        .collect();
    let mut row: Vec<Value> = Vec::with_capacity(schema.len());
    for _ in 0..n {
        let zip = sample_weighted(&zip_weights, &mut rng);
        let state = state_of_zip(zip);
        let city = city_of_zip(zip);
        let areacode = state * AREACODES_PER_STATE + usize::from(rng.gen::<f64>() < 0.4);
        let gender = u32::from(rng.gen::<f64>() < 0.5);
        let age = normal(&mut rng, 45.0, 14.0).round().clamp(18.0, 90.0);
        let marital = if age < 28.0 {
            sample_weighted(&[75.0, 20.0, 4.0, 1.0], &mut rng)
        } else {
            sample_weighted(&[22.0, 55.0, 16.0, 7.0], &mut rng)
        };
        let has_child = usize::from(rng.gen::<f64>() < if marital == 1 { 0.65 } else { 0.25 });
        // salary grows with age, lognormal spread
        let salary = (normal(&mut rng, 10.7 + 0.008 * (age - 45.0), 0.5))
            .exp()
            .clamp(5_000.0, 500_000.0)
            .round();
        let rate = rate_of(state, salary);
        row.clear();
        row.extend_from_slice(&[
            Value::Cat(gender),
            Value::Cat(areacode as u32),
            Value::Cat(city as u32),
            Value::Cat(state as u32),
            Value::Cat(zip as u32),
            Value::Cat(marital as u32),
            Value::Cat(has_child as u32),
            Value::Num(salary),
            Value::Num(rate),
            Value::Num(single_exemp_of(state, marital)),
            Value::Num(child_exemp_of(state, has_child)),
            Value::Num(age),
        ]);
        inst.push_row(&schema, &row)
            .expect("generator emits schema-conformant rows");
    }
    let dcs = tax_dcs(&schema);
    Dataset {
        name: "tax".into(),
        schema,
        instance: inst,
        dcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_constraints::violation_percentage;

    #[test]
    fn shape_matches_table1() {
        let d = tax_like(200, 1);
        assert_eq!(d.schema.len(), 12);
        assert_eq!(d.dcs.len(), 6);
        assert_eq!(d.instance.n_rows(), 200);
    }

    #[test]
    fn all_six_hard_dcs_hold() {
        let d = tax_like(800, 3);
        for dc in &d.dcs {
            assert_eq!(
                violation_percentage(dc, &d.instance),
                0.0,
                "hard DC {} violated in truth",
                dc.name
            );
        }
    }

    #[test]
    fn rate_is_monotone_per_state() {
        for state in 0..N_STATES {
            let mut prev = 0.0;
            for s in (5_000..500_000).step_by(10_000) {
                let r = rate_of(state, s as f64);
                assert!(r >= prev, "state {state}: rate decreased at salary {s}");
                prev = r;
            }
        }
    }

    #[test]
    fn geography_maps_are_functions() {
        for zip in 0..2000 {
            let s = state_of_zip(zip);
            assert!(s < N_STATES);
            let c = city_of_zip(zip);
            // city belongs to the zip's state
            assert_eq!(c / CITIES_PER_STATE, s);
        }
    }

    #[test]
    fn scaled_zip_domain() {
        let d = tax_like_scaled(300, 2, 1_000);
        let zip_attr = d.schema.index_of("zip").unwrap();
        assert_eq!(d.schema.attr(zip_attr).domain_size(), 1_000);
        for dc in &d.dcs {
            assert_eq!(violation_percentage(dc, &d.instance), 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(tax_like(100, 8).instance, tax_like(100, 8).instance);
    }

    #[test]
    #[should_panic(expected = "at least one zip")]
    fn rejects_too_few_zips() {
        tax_schema(3);
    }
}
