//! TPC-H-like join (Table 1 row 4): Orders ⋈ Customer ⋈ Nation flattened
//! to 9 attributes, with the four FD-shaped hard DCs induced by the
//! key/foreign-key constraints (`custkey → nationkey/mktsegment/n_name`,
//! `n_name → regionkey`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kamino_constraints::{parse_dc, DenialConstraint, Hardness};
use kamino_data::stats::sample_weighted;
use kamino_data::{Attribute, Instance, Schema, Value};
use kamino_dp::normal::normal;

use crate::Dataset;

const N_NATIONS: usize = 25;

/// Builds the TPC-H-like schema for `n_customers` distinct customers.
pub fn tpch_schema(n_customers: usize) -> Schema {
    Schema::new(vec![
        Attribute::categorical_indexed("c_custkey", n_customers).unwrap(),
        Attribute::categorical_indexed("c_nationkey", N_NATIONS).unwrap(),
        Attribute::categorical(
            "c_mktsegment",
            [
                "AUTOMOBILE",
                "BUILDING",
                "FURNITURE",
                "MACHINERY",
                "HOUSEHOLD",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        )
        .unwrap(),
        Attribute::categorical_indexed("n_name", N_NATIONS).unwrap(),
        Attribute::categorical_indexed("n_regionkey", 5).unwrap(),
        Attribute::categorical("o_orderstatus", vec!["F".into(), "O".into(), "P".into()]).unwrap(),
        Attribute::numeric("o_totalprice", 900.0, 500_000.0, 20).unwrap(),
        Attribute::integer("o_orderdate", 0.0, 2_405.0, 20).unwrap(),
        Attribute::categorical(
            "o_orderpriority",
            ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        )
        .unwrap(),
    ])
    .unwrap()
}

/// The four hard DCs of Table 1 for TPC-H.
pub fn tpch_dcs(schema: &Schema) -> Vec<DenialConstraint> {
    let dc = |name: &str, text: &str| parse_dc(schema, name, text, Hardness::Hard).unwrap();
    vec![
        dc(
            "phi_h1",
            "!(t1.c_custkey == t2.c_custkey & t1.c_nationkey != t2.c_nationkey)",
        ),
        dc(
            "phi_h2",
            "!(t1.c_custkey == t2.c_custkey & t1.c_mktsegment != t2.c_mktsegment)",
        ),
        dc(
            "phi_h3",
            "!(t1.c_custkey == t2.c_custkey & t1.n_name != t2.n_name)",
        ),
        dc(
            "phi_h4",
            "!(t1.n_name == t2.n_name & t1.n_regionkey != t2.n_regionkey)",
        ),
    ]
}

/// Fixed nation → region map (5 nations per region, like TPC-H).
fn region_of_nation(nation: usize) -> usize {
    nation % 5
}

/// Generates a TPC-H-like instance of `n` order rows over `max(40, n/10)`
/// customers.
pub fn tpch_like(n: usize, seed: u64) -> Dataset {
    let n_customers = (n / 10).max(40);
    let schema = tpch_schema(n_customers);
    // kamino-lint: allow(raw_rng) -- seeded corpus generator runs upstream of any DP mechanism
    let mut rng = StdRng::seed_from_u64(seed ^ 0x79C8);

    // customer master table: custkey → (nation, segment)
    let customers: Vec<(u32, u32)> = (0..n_customers)
        .map(|_| {
            let nation = rng.gen_range(0..N_NATIONS) as u32;
            let segment = sample_weighted(&[22.0, 21.0, 20.0, 19.0, 18.0], &mut rng) as u32;
            (nation, segment)
        })
        .collect();
    // Zipf-ish order volume per customer
    let cust_weights: Vec<f64> = (0..n_customers)
        .map(|i| 1.0 / (i as f64 + 1.0).powf(0.6))
        .collect();

    let mut inst = Instance::empty(&schema);
    let mut row: Vec<Value> = Vec::with_capacity(schema.len());
    for _ in 0..n {
        let ck = sample_weighted(&cust_weights, &mut rng);
        let (nation, segment) = customers[ck];
        let status = sample_weighted(&[48.0, 48.0, 4.0], &mut rng) as u32;
        let price = normal(&mut rng, 11.2, 0.7)
            .exp()
            .clamp(900.0, 500_000.0)
            .round();
        let date = rng.gen_range(0..=2_405) as f64;
        // urgent orders skew toward recent dates (a learnable correlation)
        let priority = if date > 2_000.0 {
            sample_weighted(&[30.0, 25.0, 20.0, 13.0, 12.0], &mut rng) as u32
        } else {
            sample_weighted(&[18.0, 19.0, 21.0, 21.0, 21.0], &mut rng) as u32
        };
        row.clear();
        row.extend_from_slice(&[
            Value::Cat(ck as u32),
            Value::Cat(nation),
            Value::Cat(segment),
            Value::Cat(nation), // n_name is 1:1 with nationkey
            Value::Cat(region_of_nation(nation as usize) as u32),
            Value::Cat(status),
            Value::Num(price),
            Value::Num(date),
            Value::Cat(priority),
        ]);
        inst.push_row(&schema, &row)
            .expect("generator emits schema-conformant rows");
    }
    let dcs = tpch_dcs(&schema);
    Dataset {
        name: "tpch".into(),
        schema,
        instance: inst,
        dcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_constraints::violation_percentage;

    #[test]
    fn shape_matches_table1() {
        let d = tpch_like(300, 1);
        assert_eq!(d.schema.len(), 9);
        assert_eq!(d.dcs.len(), 4);
        assert_eq!(d.instance.n_rows(), 300);
    }

    #[test]
    fn key_induced_fds_hold() {
        let d = tpch_like(600, 2);
        for dc in &d.dcs {
            assert_eq!(
                violation_percentage(dc, &d.instance),
                0.0,
                "hard DC {} violated in truth",
                dc.name
            );
        }
    }

    #[test]
    fn customer_reuse_creates_fd_groups() {
        // FDs only constrain anything when keys repeat; verify the Zipf
        // skew actually produces repeated customers.
        let d = tpch_like(500, 3);
        let ck = d.schema.index_of("c_custkey").unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..d.instance.n_rows() {
            *counts.entry(d.instance.cat(i, ck)).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max >= 5, "most frequent customer has only {max} orders");
    }

    #[test]
    fn nation_region_map_consistent() {
        let d = tpch_like(300, 4);
        let nn = d.schema.index_of("n_name").unwrap();
        let nr = d.schema.index_of("n_regionkey").unwrap();
        for i in 0..d.instance.n_rows() {
            assert_eq!(
                d.instance.cat(i, nr) as usize,
                region_of_nation(d.instance.cat(i, nn) as usize)
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(tpch_like(120, 6).instance, tpch_like(120, 6).instance);
    }
}
