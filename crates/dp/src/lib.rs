//! Differential-privacy substrate for the Kamino reproduction.
//!
//! Provides everything §2.4 and §6 of the paper rely on:
//! * [`normal`] — a hand-rolled Box–Muller standard-normal sampler (the
//!   allowed crate set does not include `rand_distr`),
//! * [`mechanisms`] — the Gaussian mechanism (with the classic
//!   `σ ≥ √(2 ln(1.25/δ))/ε` calibration) and the Laplace mechanism
//!   (used by the PrivBayes baseline),
//! * [`rdp`] — a Rényi-DP accountant implementing the Sampled Gaussian
//!   Mechanism bound of Mironov et al. (2019), RDP composition, and the
//!   RDP→(ε, δ) conversion of the paper's Eqn. (7),
//! * [`sensitivity`] — L2 sensitivities, including Lemma 1's violation
//!   matrix bound,
//! * [`sampling`] — Poisson subsampling shared by DP-SGD and Algorithm 5,
//! * [`planner`] — the [`BudgetPlanner`]: solves per-mechanism σ's for
//!   Theorem 1's three-way composition (M1 histogram, M2 DP-SGD, M3
//!   weights) under one (ε, δ) budget, replacing hand-tuned constants.
//!
//! Note on the paper's Lemma 2: as printed, the binomial sum carries
//! `exp((α²−α)/2σ²)` independent of the summation index, which collapses to
//! the unsampled Gaussian cost and ignores privacy amplification — a typo.
//! We implement the standard bound with `exp(k(k−1)/2σ²)` inside the sum.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mechanisms;
pub mod normal;
pub mod planner;
pub mod rdp;
pub mod sampling;
pub mod sensitivity;
pub mod snapshot;

pub use mechanisms::{add_gaussian_noise, add_laplace_noise, gaussian_sigma};
pub use normal::standard_normal;
pub use planner::{
    composed_epsilon, mechanism, spend_fingerprint, BudgetPlan, BudgetPlanner, RunShape,
};
pub use rdp::{
    calibrate_sgm_sigma, conversion_floor, gaussian_rdp, sgm_rdp, try_calibrate_sgm_sigma,
    CalibrationError, RdpAccountant,
};
pub use sampling::poisson_sample;
pub use sensitivity::violation_matrix_sensitivity;

/// An (ε, δ) differential-privacy budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// The ε parameter (multiplicative bound).
    pub epsilon: f64,
    /// The δ parameter (additive slack).
    pub delta: f64,
}

impl Budget {
    /// Creates a budget, panicking on non-positive ε or δ outside (0, 1).
    pub fn new(epsilon: f64, delta: f64) -> Budget {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        Budget { epsilon, delta }
    }

    /// An effectively unbounded budget, used for the paper's ε = ∞
    /// (non-private) runs in Figure 6.
    pub fn non_private() -> Budget {
        Budget {
            epsilon: f64::INFINITY,
            delta: 1e-6,
        }
    }

    /// Whether this budget disables privacy noise (ε = ∞).
    pub fn is_non_private(&self) -> bool {
        self.epsilon.is_infinite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_validation() {
        let b = Budget::new(1.0, 1e-6);
        assert_eq!(b.epsilon, 1.0);
        assert!(!b.is_non_private());
        assert!(Budget::non_private().is_non_private());
    }

    #[test]
    fn infinite_budget_is_allowed() {
        let b = Budget::new(f64::INFINITY, 1e-6);
        assert!(b.is_non_private());
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        Budget::new(0.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        Budget::new(1.0, 1.5);
    }
}
