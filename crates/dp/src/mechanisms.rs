//! The Gaussian and Laplace mechanisms.

use rand::Rng;

use crate::normal::standard_normal;

/// Gaussian-mechanism calibration for a sensitivity-1 query (§2.4).
///
/// For `ε ∈ (0, 1)` this is the classic `σ ≥ √(2 ln(1.25/δ))/ε` bound —
/// the formula Algorithm 6 uses to seed `σ_w` and bound `σ_g`. The classic
/// theorem is only *valid* for ε < 1: its proof breaks down at ε ≥ 1 and
/// the formula then returns a σ too small to actually deliver (ε, δ)-DP.
/// Budgets with ε ≥ 1 are therefore routed through RDP-based calibration
/// ([`crate::rdp::calibrate_sgm_sigma`] at sampling rate 1), which is
/// sound for every ε.
pub fn gaussian_sigma(epsilon: f64, delta: f64) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    if epsilon < 1.0 {
        (2.0 * (1.25 / delta).ln()).sqrt() / epsilon
    } else {
        crate::rdp::calibrate_sgm_sigma(epsilon, delta, 1.0, 1)
    }
}

/// Adds `N(0, (sensitivity·σ)²)` noise to each component in place — the
/// Gaussian mechanism applied to a vector-valued query with L2 sensitivity
/// `sensitivity` and noise multiplier `sigma`.
pub fn add_gaussian_noise<R: Rng + ?Sized>(
    values: &mut [f64],
    sensitivity: f64,
    sigma: f64,
    rng: &mut R,
) {
    assert!(
        sensitivity >= 0.0 && sigma >= 0.0,
        "noise parameters must be nonnegative"
    );
    let std = sensitivity * sigma;
    if std == 0.0 {
        return;
    }
    for v in values {
        *v += std * standard_normal(rng);
    }
}

/// Adds `Laplace(0, scale)` noise to each component in place. For a query
/// with L1 sensitivity `s`, `scale = s/ε` gives (ε, 0)-DP. Used by the
/// PrivBayes baseline, which follows its paper's Laplace-noised marginals.
pub fn add_laplace_noise<R: Rng + ?Sized>(values: &mut [f64], scale: f64, rng: &mut R) {
    assert!(scale >= 0.0, "scale must be nonnegative");
    if scale == 0.0 {
        return;
    }
    for v in values {
        // inverse-CDF sampling: u ∈ (-0.5, 0.5)
        let u: f64 = rng.gen::<f64>() - 0.5;
        *v -= scale * u.signum() * (1.0 - 2.0 * u.abs()).ln_1p_workaround();
    }
}

/// `ln(1+x)` helper; stabilizes Laplace inverse-CDF sampling near u = ±0.5.
trait Ln1pWorkaround {
    fn ln_1p_workaround(self) -> f64;
}

impl Ln1pWorkaround for f64 {
    #[inline]
    fn ln_1p_workaround(self) -> f64 {
        // self = 1 − 2|u| ∈ (0, 1]; ln of it directly is fine, but route
        // through ln_1p for the near-zero region to keep precision.
        if self > 0.5 {
            self.ln()
        } else {
            (self - 1.0).ln_1p()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigma_matches_closed_form_below_one() {
        let s = gaussian_sigma(0.5, 1e-6);
        let expect = (2.0f64 * (1.25e6f64).ln()).sqrt() / 0.5;
        assert!((s - expect).abs() < 1e-12);
        // tighter budget ⇒ more noise
        assert!(gaussian_sigma(0.25, 1e-6) > s);
        assert!(gaussian_sigma(0.5, 1e-9) > s);
    }

    #[test]
    fn sigma_at_large_epsilon_is_rdp_sound() {
        use crate::rdp::RdpAccountant;
        for &eps in &[1.0, 2.0, 5.0] {
            let s = gaussian_sigma(eps, 1e-6);
            // the returned σ actually delivers (ε, δ)-DP under the
            // accountant's conversion...
            let mut acc = RdpAccountant::new();
            acc.add_gaussian(s, 1);
            assert!(
                acc.epsilon(1e-6) <= eps + 1e-9,
                "eps {eps}: sigma {s} under-noised"
            );
            // ...while the classic closed form, invalid here, claims a
            // smaller σ that blows the budget for ε comfortably above 1
            let classic = (2.0f64 * (1.25e6f64).ln()).sqrt() / eps;
            if eps >= 2.0 {
                let mut acc2 = RdpAccountant::new();
                acc2.add_gaussian(classic, 1);
                assert!(
                    acc2.epsilon(1e-6) > eps,
                    "eps {eps}: classic formula unexpectedly sufficient"
                );
            }
        }
        // monotone within the RDP regime, and the seam jump (the RDP
        // conversion is slightly more conservative than the classic
        // analysis near ε = 1) stays small
        assert!(gaussian_sigma(1.0, 1e-6) > gaussian_sigma(1.5, 1e-6));
        let seam = gaussian_sigma(1.0, 1e-6) / gaussian_sigma(0.999, 1e-6);
        assert!((0.9..1.1).contains(&seam), "seam ratio {seam}");
    }

    #[test]
    fn gaussian_noise_statistics() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut values = vec![0.0; n];
        add_gaussian_noise(&mut values, 2.0, 1.5, &mut rng);
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05);
        assert!(
            (var - 9.0).abs() < 0.2,
            "variance {var}, expected (2·1.5)² = 9"
        );
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut values = vec![1.0, 2.0, 3.0];
        add_gaussian_noise(&mut values, 1.0, 0.0, &mut rng);
        assert_eq!(values, vec![1.0, 2.0, 3.0]);
        add_laplace_noise(&mut values, 0.0, &mut rng);
        assert_eq!(values, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn laplace_noise_statistics() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 200_000;
        let scale = 2.0;
        let mut values = vec![0.0; n];
        add_laplace_noise(&mut values, scale, &mut rng);
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05);
        // Laplace variance = 2·scale²
        assert!((var - 8.0).abs() < 0.3, "variance {var}, expected 8");
        // median of |x| should be ln(2)·scale ≈ 1.386
        let mut abs: Vec<f64> = values.iter().map(|v| v.abs()).collect();
        abs.sort_by(f64::total_cmp);
        let median = abs[n / 2];
        assert!((median - 2.0 * std::f64::consts::LN_2).abs() < 0.05);
    }

    #[test]
    fn laplace_samples_finite() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut values = vec![0.0; 100_000];
        add_laplace_noise(&mut values, 1.0, &mut rng);
        assert!(values.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn sigma_rejects_bad_epsilon() {
        gaussian_sigma(-1.0, 1e-6);
    }
}
