//! Standard-normal sampling via the Box–Muller transform.
//!
//! The allowed dependency set excludes `rand_distr`, so Gaussian noise is
//! generated here and statistically tested below.

use rand::Rng;

/// Draws one sample from `N(0, 1)`.
///
/// Uses the basic (trigonometric) Box–Muller transform. The second variate
/// of each pair is discarded for simplicity — noise generation is nowhere
/// near the profile of this codebase (violation counting and training are),
/// and statelessness keeps the API trivially thread-safe.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1]: guard against ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws one sample from `N(mean, std²)`.
#[inline]
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.02, "variance {var} too far from 1");
    }

    #[test]
    fn standard_normal_tail_mass() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let beyond_2: usize = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count();
        // P(|Z| > 2) ≈ 0.0455
        let frac = beyond_2 as f64 / n as f64;
        assert!((frac - 0.0455).abs() < 0.005, "two-sigma tail mass {frac}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..100_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 5.0).abs() < 0.03);
        assert!((var - 4.0).abs() < 0.1);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn all_samples_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100_000).all(|_| standard_normal(&mut rng).is_finite()));
    }
}
