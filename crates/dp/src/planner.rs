//! Unified privacy-budget planning for Theorem 1's composition.
//!
//! Kamino's end-to-end guarantee composes three mechanisms under one
//! (ε, δ) budget: `M1` — full-rate Gaussian histogram releases for the
//! first sequence attribute and the §4.3 large-domain fallbacks; `M2` —
//! `T·(k−1)` DP-SGD steps, each a Sampled Gaussian Mechanism at rate
//! `b/n`; `M3` — one SGM release of the violation matrix at rate `L_w/n`.
//! Historically each mechanism's σ was a hand-tuned constant escalated by
//! Algorithm 6's back-off loop; [`BudgetPlanner`] instead *solves* for the
//! per-mechanism σ's:
//!
//! 1. `σ_w` is calibrated to a fixed share (default 10%) of ε — the single
//!    violation-matrix release is cheap and its quality is insensitive to
//!    small share changes, so it is planned first and held fixed;
//! 2. `σ_g` and `σ_d` are seeded by per-mechanism calibration at nominal
//!    shares of ε (these only set their *ratio*), then a single global
//!    scale `s` on `(σ_g, σ_d)` is bisected so the **composed** RDP cost —
//!    all three mechanisms on one [`RdpAccountant`] — converts to the
//!    largest ε' ≤ ε the grid admits.
//!
//! Step 2 is what makes the plan tight: per-mechanism calibration triple-
//! counts the `ln(1/δ)/(α−1)` conversion overhead, so summing three
//! individually-fitted ε shares would leave budget on the table. The
//! bisection recovers it. The composed ε can never go below the grid's
//! [`conversion_floor`]; budgets at or under the floor (plus the fixed
//! `σ_w` cost) are rejected loudly.

use kamino_obs::events::Event;
use kamino_obs::ObsHandle;

use crate::rdp::{conversion_floor, try_calibrate_sgm_sigma, RdpAccountant};
use crate::Budget;

/// Mechanism ids used across the budget-ledger event stream and the
/// `kamino_dp_*` metric labels.
pub mod mechanism {
    /// `M1`: full-rate Gaussian histogram releases.
    pub const M1: &str = "m1_histogram";
    /// `M2`: DP-SGD (Sampled Gaussian Mechanism per step).
    pub const M2: &str = "m2_dpsgd";
    /// `M3`: the single violation-matrix release.
    pub const M3: &str = "m3_weights";
    /// The composed three-way total.
    pub const COMPOSED: &str = "composed";
}

/// The shape of one end-to-end run — everything the accountant needs to
/// know about Theorem 1's composition besides the σ's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunShape {
    /// Number of tuples `n` in the true instance.
    pub n: usize,
    /// Full-rate Gaussian histogram releases (first attribute + §4.3
    /// large-domain fallbacks) — the `M1` count.
    pub histogram_releases: u64,
    /// Total DP-SGD steps across all sub-models (`T·(k−1)` less fallbacks)
    /// — the `M2` count.
    pub sgd_steps: u64,
    /// Expected DP-SGD batch size `b` (`M2` samples at rate `b/n`).
    pub batch: usize,
    /// Weight-learning sample cap `L_w`; 0 when all DCs are hard and `M3`
    /// never runs.
    pub weight_sample: usize,
}

impl RunShape {
    /// `M2`'s sampling rate `b/n`, clamped to [0, 1].
    pub fn sgd_rate(&self) -> f64 {
        (self.batch as f64 / self.n.max(1) as f64).min(1.0)
    }

    /// `M3`'s sampling rate `L_w/n`, clamped to [0, 1].
    pub fn weight_rate(&self) -> f64 {
        (self.weight_sample as f64 / self.n.max(1) as f64).min(1.0)
    }
}

/// The planner's output: per-mechanism noise multipliers whose composed
/// RDP cost fits the requested budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetPlan {
    /// Histogram-release noise multiplier (`M1`).
    pub sigma_g: f64,
    /// DP-SGD noise multiplier (`M2`).
    pub sigma_d: f64,
    /// Violation-matrix noise multiplier (`M3`; 0 when `M3` never runs).
    pub sigma_w: f64,
    /// The ε the composed plan actually converts to at the budget's δ —
    /// always ≤ the requested ε (∞ for non-private plans).
    pub achieved_epsilon: f64,
}

impl BudgetPlan {
    /// Stable fingerprint of the executed spend:
    /// [`spend_fingerprint`] over this plan's σ's and achieved ε.
    /// Serving's durable ledger stores it in each `FitCommit` so a
    /// replayed ledger can be cross-checked against the model's
    /// persisted parameters.
    pub fn fingerprint(&self) -> u64 {
        spend_fingerprint(
            self.sigma_g,
            self.sigma_d,
            self.sigma_w,
            self.achieved_epsilon,
        )
    }
}

/// FNV-1a over the exact bit patterns of a plan's noise multipliers and
/// achieved ε. Two spends fingerprint equal iff every σ and the
/// composed ε are bit-identical — the same equality the determinism
/// contract holds snapshots to, so a fingerprint recorded at commit
/// time keeps matching the plan reconstructed from a reloaded model.
pub fn spend_fingerprint(sigma_g: f64, sigma_d: f64, sigma_w: f64, epsilon: f64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [sigma_g, sigma_d, sigma_w, epsilon] {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Replays a plan against a fresh accountant: the composed (ε, δ)
/// conversion of `M1 + M2 + M3` under `plan`'s σ's. This is the round-trip
/// the planner's guarantee is stated in — tests and the `Synthesizer`
/// session assert `composed_epsilon(..) ≤ ε` through it.
pub fn composed_epsilon(shape: &RunShape, plan: &BudgetPlan, delta: f64) -> f64 {
    let mut acc = RdpAccountant::new();
    if shape.histogram_releases > 0 && plan.sigma_g > 0.0 {
        acc.add_gaussian(plan.sigma_g, shape.histogram_releases);
    }
    if shape.sgd_steps > 0 && plan.sigma_d > 0.0 {
        acc.add_sgm(plan.sigma_d, shape.sgd_rate(), shape.sgd_steps);
    }
    if shape.weight_sample > 0 && plan.sigma_w > 0.0 {
        acc.add_sgm(plan.sigma_w, shape.weight_rate(), 1);
    }
    acc.epsilon(delta)
}

/// Solves per-mechanism σ's for Theorem 1's three-way composition under
/// one (ε, δ) budget. See the module docs for the algorithm.
///
/// ```
/// use kamino_dp::{Budget, BudgetPlanner, RunShape, composed_epsilon};
///
/// let shape = RunShape {
///     n: 32_561,
///     histogram_releases: 1,
///     sgd_steps: 20_000,
///     batch: 32,
///     weight_sample: 100,
/// };
/// let planner = BudgetPlanner::new(Budget::new(1.0, 1e-6));
/// let plan = planner.plan(&shape);
/// let eps = composed_epsilon(&shape, &plan, 1e-6);
/// assert!(eps <= 1.0 && eps > 0.9, "plan not tight: {eps}");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BudgetPlanner {
    budget: Budget,
    /// Fixed ε share of the single `M3` release (when it runs).
    weight_share: f64,
    /// Nominal ε share seeding `σ_g`'s ratio against `σ_d`.
    histogram_share: f64,
}

impl BudgetPlanner {
    /// A planner with the default shares: 10% of ε to `M3` when weights
    /// are learned, 15% seeding `M1` against `M2` (the shares only fix
    /// ratios — the bisection makes the composed plan tight regardless).
    pub fn new(budget: Budget) -> BudgetPlanner {
        BudgetPlanner {
            budget,
            weight_share: 0.10,
            histogram_share: 0.15,
        }
    }

    /// Overrides the fixed `M3` share.
    pub fn with_weight_share(mut self, share: f64) -> BudgetPlanner {
        assert!((0.0..1.0).contains(&share), "share must be in [0, 1)");
        self.weight_share = share;
        self
    }

    /// The budget this planner fits.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Plans σ's for `shape`. Panics when the budget is infeasible — ε at
    /// or below the grid's conversion floor (plus the fixed `M3` cost) —
    /// since silently returning a non-fitting plan would fake a guarantee.
    pub fn plan(&self, shape: &RunShape) -> BudgetPlan {
        self.plan_with_obs(shape, &ObsHandle::disabled())
    }

    /// [`Self::plan`], with every σ calibration and the composed ε/δ
    /// spend recorded on `obs`' budget ledger (events plus
    /// `kamino_dp_sigma`/`kamino_dp_epsilon` gauges and a
    /// `kamino_dp_plans_total` counter). Planning itself is byte-identical
    /// whether or not `obs` is enabled.
    pub fn plan_with_obs(&self, shape: &RunShape, obs: &ObsHandle) -> BudgetPlan {
        let plan = self.plan_inner(shape, obs);
        if obs.is_enabled() {
            let delta = self.budget.delta;
            for (mech, sigma) in [
                (mechanism::M1, plan.sigma_g),
                (mechanism::M2, plan.sigma_d),
                (mechanism::M3, plan.sigma_w),
            ] {
                if sigma > 0.0 {
                    obs.event(Event::BudgetSpend {
                        mechanism: mech,
                        sigma,
                        composed_epsilon: plan.achieved_epsilon,
                        delta,
                    });
                    obs.counter("kamino_dp_spends_total", &[("mechanism", mech)])
                        .inc();
                    obs.gauge("kamino_dp_sigma", &[("mechanism", mech)])
                        .set(sigma);
                }
            }
            obs.event(Event::BudgetSpend {
                mechanism: mechanism::COMPOSED,
                sigma: 0.0,
                composed_epsilon: plan.achieved_epsilon,
                delta,
            });
            obs.gauge("kamino_dp_epsilon", &[("kind", "achieved")])
                .set(plan.achieved_epsilon);
            obs.gauge("kamino_dp_epsilon", &[("kind", "budget")])
                .set(self.budget.epsilon);
            obs.gauge("kamino_dp_delta", &[]).set(delta);
            obs.counter("kamino_dp_plans_total", &[]).inc();
        }
        plan
    }

    fn plan_inner(&self, shape: &RunShape, obs: &ObsHandle) -> BudgetPlan {
        assert!(shape.n > 0, "run shape needs at least one tuple");
        if self.budget.is_non_private() {
            return BudgetPlan {
                sigma_g: 0.0,
                sigma_d: 0.0,
                sigma_w: 0.0,
                achieved_epsilon: f64::INFINITY,
            };
        }
        let (eps, delta) = (self.budget.epsilon, self.budget.delta);
        let floor = conversion_floor(delta);
        assert!(
            eps > floor,
            "budget epsilon {eps} is at or below the RDP conversion floor {floor} at delta {delta}"
        );

        // M3 first, at its fixed share (never rescaled afterwards — see
        // module docs). Targets below the floor are relaxed to just above
        // it: the release then costs ≈ the floor, and the bisection
        // absorbs that cost when fitting M1/M2.
        let sigma_w = if shape.weight_sample > 0 {
            let target = (self.weight_share * eps).max(1.05 * floor);
            let sigma = try_calibrate_sgm_sigma(target, delta, shape.weight_rate(), 1)
                .expect("relaxed M3 target is above the floor by construction");
            obs.event(Event::BudgetCalibration {
                mechanism: mechanism::M3,
                sigma,
                epsilon_share: target,
            });
            sigma
        } else {
            0.0
        };

        // Seed σ_g : σ_d ratios by per-mechanism calibration at nominal
        // shares (relaxed to stay feasible); only the ratio matters.
        let g_share = if shape.sgd_steps > 0 {
            self.histogram_share
        } else {
            1.0 - self.weight_share
        };
        let d_share = (1.0 - g_share - self.weight_share).max(0.05);
        let seed_sigma = |share: f64, q: f64, count: u64| -> f64 {
            let target = (share * eps).max(1.05 * floor);
            try_calibrate_sgm_sigma(target, delta, q, count)
                .expect("relaxed seed target is above the floor by construction")
        };
        let sigma_g_hat = if shape.histogram_releases > 0 {
            let sigma = seed_sigma(g_share, 1.0, shape.histogram_releases);
            obs.event(Event::BudgetCalibration {
                mechanism: mechanism::M1,
                sigma,
                epsilon_share: g_share * eps,
            });
            sigma
        } else {
            0.0
        };
        let sigma_d_hat = if shape.sgd_steps > 0 {
            let sigma = seed_sigma(d_share, shape.sgd_rate(), shape.sgd_steps);
            obs.event(Event::BudgetCalibration {
                mechanism: mechanism::M2,
                sigma,
                epsilon_share: d_share * eps,
            });
            sigma
        } else {
            0.0
        };

        // Bisect the global scale s on (σ_g, σ_d): composed ε is strictly
        // decreasing in s, so find the smallest s whose composed cost fits.
        let plan_at = |s: f64| BudgetPlan {
            sigma_g: sigma_g_hat * s,
            sigma_d: sigma_d_hat * s,
            sigma_w,
            achieved_epsilon: f64::NAN,
        };
        let eps_of = |s: f64| composed_epsilon(shape, &plan_at(s), delta);

        let mut hi = 1.0;
        let mut grow = 0;
        while eps_of(hi) > eps {
            hi *= 2.0;
            grow += 1;
            assert!(
                grow < 60,
                "budget epsilon {eps} infeasible for this shape at delta {delta}: \
                 composed cost cannot be pushed under the budget \
                 (conversion floor {floor} plus the fixed weight-release share)"
            );
        }
        let mut lo = hi * 0.5;
        while lo > 1e-9 && eps_of(lo) <= eps {
            hi = lo;
            lo *= 0.5;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if eps_of(mid) > eps {
                lo = mid;
            } else {
                hi = mid;
            }
        }

        let mut plan = plan_at(hi);
        plan.achieved_epsilon = composed_epsilon(shape, &plan, delta);
        debug_assert!(plan.achieved_epsilon <= eps + 1e-9);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> RunShape {
        RunShape {
            n: 32_561,
            histogram_releases: 1,
            sgd_steps: 28_000,
            batch: 32,
            weight_sample: 100,
        }
    }

    #[test]
    fn plan_fits_and_is_tight_across_budgets() {
        for &eps in &[0.1, 0.5, 1.0, 2.0, 8.0] {
            let planner = BudgetPlanner::new(Budget::new(eps, 1e-6));
            let plan = planner.plan(&shape());
            let achieved = composed_epsilon(&shape(), &plan, 1e-6);
            assert!(achieved <= eps + 1e-9, "eps {eps}: achieved {achieved}");
            assert!(
                achieved > 0.95 * eps,
                "eps {eps}: achieved {achieved} leaves budget on the table"
            );
            assert!((plan.achieved_epsilon - achieved).abs() < 1e-12);
            assert!(plan.sigma_g > 0.0 && plan.sigma_d > 0.0 && plan.sigma_w > 0.0);
        }
    }

    #[test]
    fn loose_budgets_get_small_sigmas() {
        // The regime the pinned lo = 0.3 bracket used to hide: a loose
        // total budget must produce σ's well under the old bracket floor,
        // not silently over-noise.
        let planner = BudgetPlanner::new(Budget::new(50.0, 1e-6));
        let mut sh = shape();
        sh.sgd_steps = 0;
        sh.weight_sample = 0;
        let plan = planner.plan(&sh);
        assert!(plan.sigma_g < 0.3, "sigma_g {} over-noised", plan.sigma_g);
        let achieved = composed_epsilon(&sh, &plan, 1e-6);
        assert!(achieved <= 50.0 && achieved > 25.0, "achieved {achieved}");
    }

    #[test]
    fn tighter_budget_means_more_noise() {
        let loose = BudgetPlanner::new(Budget::new(2.0, 1e-6)).plan(&shape());
        let tight = BudgetPlanner::new(Budget::new(0.2, 1e-6)).plan(&shape());
        assert!(tight.sigma_g > loose.sigma_g);
        assert!(tight.sigma_d > loose.sigma_d);
        assert!(tight.sigma_w > loose.sigma_w);
    }

    #[test]
    fn weight_share_is_respected() {
        let planner = BudgetPlanner::new(Budget::new(1.0, 1e-6));
        let plan = planner.plan(&shape());
        let mut acc = RdpAccountant::new();
        acc.add_sgm(plan.sigma_w, shape().weight_rate(), 1);
        assert!(acc.epsilon(1e-6) <= 0.1 + 1e-9, "M3 exceeds its 10% share");
    }

    #[test]
    fn hard_only_runs_skip_m3() {
        let mut sh = shape();
        sh.weight_sample = 0;
        let plan = BudgetPlanner::new(Budget::new(1.0, 1e-6)).plan(&sh);
        assert_eq!(plan.sigma_w, 0.0);
        assert!(composed_epsilon(&sh, &plan, 1e-6) <= 1.0);
    }

    #[test]
    fn non_private_plan_is_noiseless() {
        let plan = BudgetPlanner::new(Budget::non_private()).plan(&shape());
        assert_eq!(plan.sigma_g, 0.0);
        assert_eq!(plan.sigma_d, 0.0);
        assert!(plan.achieved_epsilon.is_infinite());
    }

    #[test]
    fn more_steps_cost_more_noise() {
        let small = BudgetPlanner::new(Budget::new(1.0, 1e-6)).plan(&shape());
        let mut sh = shape();
        sh.sgd_steps *= 10;
        let big = BudgetPlanner::new(Budget::new(1.0, 1e-6)).plan(&sh);
        assert!(big.sigma_d > small.sigma_d);
    }

    #[test]
    fn near_floor_budget_still_plans() {
        // δ = 1e-9 ⇒ floor ≈ 0.0405; ε = 0.05 sits just above it.
        let plan = BudgetPlanner::new(Budget::new(0.05, 1e-9)).plan(&RunShape {
            n: 2_000,
            histogram_releases: 1,
            sgd_steps: 500,
            batch: 16,
            weight_sample: 0,
        });
        assert!(plan.achieved_epsilon <= 0.05);
        assert!(plan.sigma_d > 10.0, "near-floor plan must be very noisy");
    }

    #[test]
    #[should_panic(expected = "conversion floor")]
    fn sub_floor_budget_panics() {
        BudgetPlanner::new(Budget::new(0.01, 1e-6)).plan(&shape());
    }

    #[test]
    fn ledger_records_every_mechanism_and_matches_silent_plan() {
        let planner = BudgetPlanner::new(Budget::new(1.0, 1e-6));
        let obs = ObsHandle::enabled();
        let plan = planner.plan_with_obs(&shape(), &obs);
        // the ledger must not perturb the plan itself
        assert_eq!(plan, planner.plan(&shape()));

        let events = obs.events();
        let calibrated: Vec<&str> = events
            .iter()
            .filter_map(|r| match &r.event {
                Event::BudgetCalibration { mechanism, .. } => Some(*mechanism),
                _ => None,
            })
            .collect();
        assert_eq!(
            calibrated,
            vec![mechanism::M3, mechanism::M1, mechanism::M2]
        );
        let spends: Vec<&str> = events
            .iter()
            .filter_map(|r| match &r.event {
                Event::BudgetSpend { mechanism, .. } => Some(*mechanism),
                _ => None,
            })
            .collect();
        assert_eq!(
            spends,
            vec![
                mechanism::M1,
                mechanism::M2,
                mechanism::M3,
                mechanism::COMPOSED
            ]
        );
        for r in &events {
            if let Event::BudgetSpend {
                composed_epsilon, ..
            } = r.event
            {
                assert!((composed_epsilon - plan.achieved_epsilon).abs() < 1e-12);
            }
        }
        let prom = obs.render_prometheus();
        assert!(prom.contains("kamino_dp_plans_total 1"));
        assert!(prom.contains("kamino_dp_sigma{mechanism=\"m2_dpsgd\"}"));
        assert!(prom.contains("kamino_dp_epsilon{kind=\"achieved\"}"));
    }

    #[test]
    fn spend_fingerprint_separates_plans_bit_exactly() {
        let a = BudgetPlan {
            sigma_g: 1.5,
            sigma_d: 0.9,
            sigma_w: 0.0,
            achieved_epsilon: 0.97,
        };
        assert_eq!(a.fingerprint(), a.fingerprint());
        let mut b = a;
        b.sigma_d = f64::from_bits(a.sigma_d.to_bits() + 1); // one ulp
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.fingerprint(),
            spend_fingerprint(1.5, 0.9, 0.0, 0.97),
            "method and free function must agree"
        );
    }
}
