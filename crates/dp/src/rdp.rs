//! Rényi differential privacy accounting (§6 of the paper).
//!
//! Kamino composes three mechanisms (Theorem 1): a full-rate Gaussian
//! release for the first attribute's histogram (`M1`), `T·(k−1)` steps of
//! DP-SGD — each a Sampled Gaussian Mechanism at rate `b/n` (`M2`), and one
//! SGM release of the violation matrix at rate `L_w/n` (`M3`). The total
//! RDP cost at each order α is the sum of the per-step costs; Eqn. (7)
//! converts to (ε, δ) by minimizing `R(α) + ln(1/δ)/(α−1)` over α.

/// Integer Rényi orders the accountant tracks. The SGM bound below is the
/// integer-α binomial form; the grid spans the range useful for
/// ε ∈ [0.05, 20] at δ ≥ 1e-9 (small α for loose budgets, large α for
/// tight ones).
pub const ALPHA_GRID: [u64; 23] = [
    2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 64, 96, 128, 256, 512,
];

/// RDP of the (unsampled) Gaussian mechanism at order α: `α / (2σ²)`.
pub fn gaussian_rdp(alpha: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    assert!(alpha > 1.0, "alpha must exceed 1");
    alpha / (2.0 * sigma * sigma)
}

/// RDP of the Sampled Gaussian Mechanism at integer order α with sampling
/// rate `q` and noise multiplier `σ` (Mironov, Talwar, Zhang 2019):
///
/// ```text
/// R(α) = 1/(α−1) · ln Σ_{k=0}^{α} C(α,k) (1−q)^{α−k} q^k e^{k(k−1)/(2σ²)}
/// ```
///
/// Evaluated in log-space (log-sum-exp) so large α and small q stay stable.
/// `q = 0` costs nothing; `q = 1` reduces exactly to [`gaussian_rdp`].
///
/// The paper's Lemma 2 prints `e^{(α²−α)/(2σ²)}` inside the sum — constant
/// in `k`, which would erase the subsampling amplification; this is the
/// corrected standard bound (see DESIGN.md).
pub fn sgm_rdp(alpha: u64, sigma: f64, q: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    assert!((0.0..=1.0).contains(&q), "sampling rate must be in [0, 1]");
    assert!(alpha >= 2, "alpha must be an integer ≥ 2");
    if q == 0.0 {
        return 0.0;
    }
    if q == 1.0 {
        return gaussian_rdp(alpha as f64, sigma);
    }
    let a = alpha as f64;
    let ln_q = q.ln();
    let ln_1mq = (-q).ln_1p();
    let inv_2s2 = 1.0 / (2.0 * sigma * sigma);
    // log-sum-exp over k = 0..=α
    let mut max_term = f64::NEG_INFINITY;
    let mut terms = Vec::with_capacity(alpha as usize + 1);
    let mut ln_binom = 0.0; // ln C(α, 0)
    for k in 0..=alpha {
        if k > 0 {
            // C(α,k) = C(α,k−1)·(α−k+1)/k
            ln_binom += ((a - k as f64 + 1.0) / k as f64).ln();
        }
        let kf = k as f64;
        let t = ln_binom + (a - kf) * ln_1mq + kf * ln_q + kf * (kf - 1.0) * inv_2s2;
        max_term = max_term.max(t);
        terms.push(t);
    }
    let sum: f64 = terms.iter().map(|t| (t - max_term).exp()).sum();
    (max_term + sum.ln()) / (a - 1.0)
}

/// Accumulates RDP costs across adaptive mechanisms over [`ALPHA_GRID`] and
/// converts to (ε, δ) via Eqn. (7).
///
/// ```
/// use kamino_dp::RdpAccountant;
///
/// // a DP-SGD run: 2,000 steps at sampling rate 1/1000, σ = 1.1,
/// // composed with one full-rate histogram release at σ = 8
/// let mut acc = RdpAccountant::new();
/// acc.add_sgm(1.1, 0.001, 2_000);
/// acc.add_gaussian(8.0, 1);
/// let eps = acc.epsilon(1e-6);
/// assert!(eps > 0.0 && eps < 2.0, "eps = {eps}");
/// ```
#[derive(Debug, Clone)]
pub struct RdpAccountant {
    costs: [f64; ALPHA_GRID.len()],
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl RdpAccountant {
    /// An accountant with zero spent cost.
    pub fn new() -> RdpAccountant {
        RdpAccountant {
            costs: [0.0; ALPHA_GRID.len()],
        }
    }

    /// Composes `count` releases of an unsampled Gaussian mechanism with
    /// noise multiplier `sigma`.
    pub fn add_gaussian(&mut self, sigma: f64, count: u64) {
        for (i, &alpha) in ALPHA_GRID.iter().enumerate() {
            self.costs[i] += count as f64 * gaussian_rdp(alpha as f64, sigma);
        }
    }

    /// Composes `count` SGM releases with noise multiplier `sigma` and
    /// sampling rate `q` (e.g. `T·(k−1)` DP-SGD steps at rate `b/n`).
    pub fn add_sgm(&mut self, sigma: f64, q: f64, count: u64) {
        for (i, &alpha) in ALPHA_GRID.iter().enumerate() {
            self.costs[i] += count as f64 * sgm_rdp(alpha, sigma, q);
        }
    }

    /// Total RDP cost at grid index `i` (test hook).
    pub fn cost_at(&self, i: usize) -> f64 {
        self.costs[i]
    }

    /// The (ε, δ) guarantee implied by the accumulated cost:
    /// `ε(δ) = min_α [R(α) + ln(1/δ)/(α−1)]` (Eqn. 7).
    pub fn epsilon(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let ln_inv_delta = (1.0 / delta).ln();
        ALPHA_GRID
            .iter()
            .enumerate()
            .map(|(i, &alpha)| self.costs[i] + ln_inv_delta / (alpha as f64 - 1.0))
            .fold(f64::INFINITY, f64::min)
    }
}

/// The smallest ε the grid's RDP→(ε, δ) conversion can express at `delta`
/// — `ln(1/δ)/(α_max − 1)` (Eqn. 7 with zero accumulated cost). No amount
/// of noise pushes a mechanism's converted ε below this, so calibration
/// targets at or under the floor are infeasible.
pub fn conversion_floor(delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    (1.0 / delta).ln() / (ALPHA_GRID[ALPHA_GRID.len() - 1] as f64 - 1.0)
}

/// A calibration target that no noise multiplier can meet (it sits at or
/// below [`conversion_floor`], or past the search cap).
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationError {
    /// The infeasible (ε, δ) target.
    pub target_eps: f64,
    /// δ the target was requested at.
    pub delta: f64,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no noise multiplier meets epsilon {} at delta {}: the RDP \
             conversion floor is {} (Eqn. 7 over the integer alpha grid)",
            self.target_eps,
            self.delta,
            conversion_floor(self.delta)
        )
    }
}

impl std::error::Error for CalibrationError {}

/// Binary-searches the smallest noise multiplier σ such that `count` SGM
/// releases at sampling rate `q` cost at most `target_eps` at `delta`
/// (`q = 1` calibrates plain Gaussian releases). Used by Algorithm 6, the
/// [`crate::planner::BudgetPlanner`], and the baselines to fit their
/// budgets.
///
/// Panics when the target is infeasible (below the grid's
/// [`conversion_floor`]); use [`try_calibrate_sgm_sigma`] to handle that
/// case gracefully.
pub fn calibrate_sgm_sigma(target_eps: f64, delta: f64, q: f64, count: u64) -> f64 {
    match try_calibrate_sgm_sigma(target_eps, delta, q, count) {
        Ok(sigma) => sigma,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`calibrate_sgm_sigma`]: `Err` when no σ can meet the
/// target instead of silently returning a non-fitting multiplier.
pub fn try_calibrate_sgm_sigma(
    target_eps: f64,
    delta: f64,
    q: f64,
    count: u64,
) -> Result<f64, CalibrationError> {
    assert!(
        target_eps > 0.0 && target_eps.is_finite(),
        "target epsilon must be positive"
    );
    let eps_of = |sigma: f64| {
        let mut acc = RdpAccountant::new();
        acc.add_sgm(sigma, q, count);
        acc.epsilon(delta)
    };
    // Upper bracket: grow until the budget fits. ε(σ) is decreasing in σ
    // but bounded below by the conversion floor, so a cap that never fits
    // means the target is infeasible — error out rather than silently
    // returning a σ that does not meet the budget.
    let mut hi = 2.0;
    while eps_of(hi) > target_eps {
        hi *= 2.0;
        if hi > 1e7 {
            return Err(CalibrationError { target_eps, delta });
        }
    }
    // Lower bracket: shrink until it *overshoots* the target. Pinning
    // `lo = 0.3` silently over-noised loose budgets whose true σ* < 0.3
    // (the search would converge to ≈ lo instead of σ*).
    let mut lo = hi.min(0.3);
    while lo > 1e-9 && eps_of(lo) <= target_eps {
        hi = lo;
        lo *= 0.5;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if eps_of(mid) > target_eps {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_sigma_fits_and_is_tight() {
        for &(eps, q, count) in &[(1.0, 1.0, 1u64), (0.5, 0.01, 500), (2.0, 0.001, 2000)] {
            let sigma = calibrate_sgm_sigma(eps, 1e-6, q, count);
            let mut acc = RdpAccountant::new();
            acc.add_sgm(sigma, q, count);
            assert!(acc.epsilon(1e-6) <= eps + 1e-9);
            let mut acc2 = RdpAccountant::new();
            acc2.add_sgm(sigma * 0.7, q, count);
            assert!(acc2.epsilon(1e-6) > eps, "calibration is far from tight");
        }
    }

    #[test]
    fn loose_budget_calibration_is_tight_not_pinned() {
        // The old search pinned lo = 0.3: any target loose enough that
        // σ* < 0.3 silently came back as σ ≈ 0.3, over-noising the release.
        for &(eps, q, count) in &[(50.0, 1.0, 1u64), (30.0, 1.0, 1), (200.0, 1.0, 8)] {
            let sigma = calibrate_sgm_sigma(eps, 1e-6, q, count);
            assert!(
                sigma < 0.3,
                "eps {eps}: sigma {sigma} stuck at the old lo bracket"
            );
            let mut acc = RdpAccountant::new();
            acc.add_sgm(sigma, q, count);
            assert!(
                acc.epsilon(1e-6) <= eps + 1e-9,
                "calibrated sigma does not fit"
            );
            let mut acc2 = RdpAccountant::new();
            acc2.add_sgm(sigma * 0.7, q, count);
            assert!(
                acc2.epsilon(1e-6) > eps,
                "eps {eps}: calibration is far from tight"
            );
        }
    }

    #[test]
    fn infeasible_target_errors_instead_of_lying() {
        // Below the conversion floor no σ fits; the old code fell out of
        // the doubling loop at the 1e7 cap and returned a σ that does NOT
        // meet the target.
        let floor = conversion_floor(1e-6);
        assert!((floor - (1e6f64).ln() / 511.0).abs() < 1e-12);
        let err = try_calibrate_sgm_sigma(floor * 0.5, 1e-6, 1.0, 1).unwrap_err();
        assert_eq!(err.target_eps, floor * 0.5);
        // and just above the floor it still succeeds (with a huge σ)
        let sigma = calibrate_sgm_sigma(floor * 1.05, 1e-6, 1.0, 1).max(1.0);
        let mut acc = RdpAccountant::new();
        acc.add_sgm(sigma, 1.0, 1);
        assert!(acc.epsilon(1e-6) <= floor * 1.05 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "conversion floor")]
    fn infeasible_target_panics_in_strict_form() {
        calibrate_sgm_sigma(1e-4, 1e-6, 1.0, 1);
    }

    #[test]
    fn gaussian_rdp_closed_form() {
        assert!((gaussian_rdp(2.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((gaussian_rdp(10.0, 2.0) - 10.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn sgm_q1_equals_gaussian() {
        for &alpha in &[2u64, 5, 16, 64] {
            for &sigma in &[0.7, 1.1, 3.0] {
                let a = sgm_rdp(alpha, sigma, 1.0);
                let b = gaussian_rdp(alpha as f64, sigma);
                assert!(
                    (a - b).abs() < 1e-9,
                    "alpha={alpha} sigma={sigma}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn sgm_q0_is_free() {
        assert_eq!(sgm_rdp(8, 1.1, 0.0), 0.0);
    }

    #[test]
    fn sgm_amplification_is_dramatic_at_small_q() {
        // Subsampling at q = 1/1000 must cost far less than the full-rate
        // mechanism — this is the property the paper's printed Lemma 2
        // formula would destroy.
        let full = gaussian_rdp(16.0, 1.1);
        let sampled = sgm_rdp(16, 1.1, 0.001);
        assert!(
            sampled < full / 100.0,
            "amplification too weak: sampled {sampled} vs full {full}"
        );
    }

    #[test]
    fn sgm_monotone_in_q_and_sigma() {
        let base = sgm_rdp(8, 1.1, 0.01);
        assert!(sgm_rdp(8, 1.1, 0.05) > base, "more sampling must cost more");
        assert!(sgm_rdp(8, 2.0, 0.01) < base, "more noise must cost less");
    }

    #[test]
    fn sgm_small_q_quadratic_regime() {
        // For small q and moderate α, R(α) ≈ q²·α·(e^{1/σ²}−1)-ish: halving
        // q should cut cost by ~4×. Check the ratio is close to quadratic.
        let r1 = sgm_rdp(4, 1.5, 0.02);
        let r2 = sgm_rdp(4, 1.5, 0.01);
        let ratio = r1 / r2;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio} not ≈ 4");
    }

    #[test]
    fn sgm_stable_at_large_alpha() {
        let r = sgm_rdp(512, 1.1, 0.001);
        assert!(r.is_finite() && r > 0.0);
    }

    #[test]
    fn accountant_composes_linearly() {
        let mut acc = RdpAccountant::new();
        acc.add_sgm(1.1, 0.01, 100);
        let mut acc2 = RdpAccountant::new();
        for _ in 0..100 {
            acc2.add_sgm(1.1, 0.01, 1);
        }
        for i in 0..ALPHA_GRID.len() {
            assert!((acc.cost_at(i) - acc2.cost_at(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn epsilon_conversion_gaussian_sanity() {
        // One Gaussian release at the classic calibration for (1, 1e-6)
        // must satisfy ε ≤ ~1 under RDP conversion (RDP is tight-ish here;
        // allow it to be within 15% above 1.0 since the classic calibration
        // and the RDP conversion are different analyses).
        let sigma = crate::mechanisms::gaussian_sigma(1.0, 1e-6);
        let mut acc = RdpAccountant::new();
        acc.add_gaussian(sigma, 1);
        let eps = acc.epsilon(1e-6);
        assert!(eps < 1.15, "eps {eps} unexpectedly large for sigma {sigma}");
        assert!(eps > 0.2, "eps {eps} implausibly small");
    }

    #[test]
    fn epsilon_decreases_with_delta_relaxation() {
        let mut acc = RdpAccountant::new();
        acc.add_sgm(1.1, 0.01, 1000);
        assert!(acc.epsilon(1e-5) < acc.epsilon(1e-9));
    }

    #[test]
    fn dpsgd_regime_epsilon_plausible() {
        // A standard DP-SGD run: n = 32561, b = 32 (q ≈ 0.000983), σ = 1.1,
        // T = 5000 steps. Published accountants put ε(1e-6) for this regime
        // in the low single digits; assert the right ballpark.
        let mut acc = RdpAccountant::new();
        acc.add_sgm(1.1, 32.0 / 32561.0, 5000);
        let eps = acc.epsilon(1e-6);
        assert!(
            eps > 0.3 && eps < 3.0,
            "eps {eps} outside plausible DP-SGD range"
        );
    }

    #[test]
    fn more_steps_cost_more_epsilon() {
        let mut a = RdpAccountant::new();
        a.add_sgm(1.1, 0.001, 1000);
        let mut b = RdpAccountant::new();
        b.add_sgm(1.1, 0.001, 4000);
        assert!(b.epsilon(1e-6) > a.epsilon(1e-6));
    }

    #[test]
    fn empty_accountant_epsilon_small() {
        let acc = RdpAccountant::new();
        // only the conversion overhead ln(1/δ)/(α−1) at the largest α
        let eps = acc.epsilon(1e-6);
        let expect = (1e6f64).ln() / 511.0;
        assert!((eps - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn sgm_rejects_alpha_one() {
        sgm_rdp(1, 1.0, 0.5);
    }
}
