//! Poisson subsampling.
//!
//! DP-SGD (Algorithm 2 line 12) samples each training row independently
//! with probability `b/n`, and Algorithm 5 (line 3) samples rows with
//! probability `L_w/n`. Poisson sampling is what the Sampled Gaussian
//! Mechanism analysis in [`crate::rdp`] assumes, so both code paths share
//! this helper.

use rand::Rng;

/// Returns the indices of a Poisson subsample of `0..n`, each index
/// included independently with probability `rate` (clamped to [0, 1]).
pub fn poisson_sample<R: Rng + ?Sized>(n: usize, rate: f64, rng: &mut R) -> Vec<usize> {
    let rate = rate.clamp(0.0, 1.0);
    if rate == 0.0 {
        return Vec::new();
    }
    if rate == 1.0 {
        return (0..n).collect();
    }
    let mut out = Vec::with_capacity((n as f64 * rate * 1.5) as usize + 4);
    for i in 0..n {
        if rng.gen::<f64>() < rate {
            out.push(i);
        }
    }
    out
}

/// Poisson-samples and then crops to at most `cap` indices by uniformly
/// dropping the excess (Algorithm 5 line 4: "Drop tuples from the sample if
/// |D̂| > L_w"). Cropping is post-processing of the subsample, so the
/// SGM sensitivity bound computed for `cap` still applies.
pub fn poisson_sample_capped<R: Rng + ?Sized>(
    n: usize,
    rate: f64,
    cap: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut sample = poisson_sample(n, rate, rng);
    while sample.len() > cap {
        let drop = rng.gen_range(0..sample.len());
        sample.swap_remove(drop);
    }
    sample.sort_unstable();
    sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expected_sample_size() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 50_000;
        let rate = 0.01;
        let total: usize = (0..20)
            .map(|_| poisson_sample(n, rate, &mut rng).len())
            .sum();
        let mean = total as f64 / 20.0;
        assert!(
            (mean - 500.0).abs() < 50.0,
            "mean sample size {mean}, expected ≈ 500"
        );
    }

    #[test]
    fn edge_rates() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(poisson_sample(100, 0.0, &mut rng).is_empty());
        assert_eq!(poisson_sample(100, 1.0, &mut rng).len(), 100);
        // rates outside [0,1] clamp rather than panic
        assert_eq!(poisson_sample(10, 2.0, &mut rng).len(), 10);
        assert!(poisson_sample(10, -1.0, &mut rng).is_empty());
    }

    #[test]
    fn indices_are_sorted_and_unique() {
        let mut rng = StdRng::seed_from_u64(23);
        let s = poisson_sample(10_000, 0.05, &mut rng);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 10_000));
    }

    #[test]
    fn capped_sampling_respects_cap() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let s = poisson_sample_capped(1000, 0.5, 100, &mut rng);
            assert!(s.len() <= 100);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn capped_sampling_no_crop_when_small() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let uncapped = poisson_sample(1000, 0.01, &mut a);
        let capped = poisson_sample_capped(1000, 0.01, 1000, &mut b);
        assert_eq!(uncapped, capped);
    }
}
