//! L2 sensitivity bounds.

/// Lemma 1 of the paper: the L2 sensitivity of the violation matrix over a
/// size-`l_w` sample, for a DC set with `n_unary` unary and `n_binary`
/// binary DCs:
///
/// ```text
/// S_w = |φ_u| + |φ_b| · √(L_w² − L_w)
/// ```
///
/// Changing one tuple changes a unary DC's violation count by at most 1,
/// while for a binary DC the differing tuple may newly violate against all
/// other `L_w − 1` rows (contributing `(L_w−1)²` to its own entry and 1 to
/// each partner's), giving `√((L_w−1)² + (L_w−1)) = √(L_w² − L_w)` per
/// binary DC.
pub fn violation_matrix_sensitivity(n_unary: usize, n_binary: usize, l_w: usize) -> f64 {
    assert!(l_w >= 1, "sample size must be at least 1");
    let l = l_w as f64;
    n_unary as f64 + n_binary as f64 * (l * l - l).sqrt()
}

/// L2 norm of a flat vector — the quantity DP-SGD clips (Algorithm 2
/// line 14 clips each per-example gradient to norm `C`).
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Scales `v` in place so its L2 norm is at most `c` (the paper's
/// `ḡ ← g / max(1, ‖g‖₂/C)`). Returns the pre-clip norm.
pub fn clip_l2(v: &mut [f64], c: f64) -> f64 {
    assert!(c > 0.0, "clip threshold must be positive");
    let norm = l2_norm(v);
    if norm > c {
        let scale = c / norm;
        for x in v {
            *x *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_closed_form() {
        // |φ_u| = 1, |φ_b| = 2, L_w = 100 ⇒ 1 + 2·√9900
        let s = violation_matrix_sensitivity(1, 2, 100);
        assert!((s - (1.0 + 2.0 * (9900.0f64).sqrt())).abs() < 1e-9);
    }

    #[test]
    fn lemma1_unary_only() {
        assert_eq!(violation_matrix_sensitivity(3, 0, 100), 3.0);
    }

    #[test]
    fn lemma1_degenerate_sample() {
        // a single-row sample cannot create binary violations
        assert_eq!(violation_matrix_sensitivity(0, 5, 1), 0.0);
    }

    #[test]
    fn lemma1_monotone_in_sample_size() {
        assert!(violation_matrix_sensitivity(0, 1, 200) > violation_matrix_sensitivity(0, 1, 100));
    }

    #[test]
    fn l2_norm_and_clip() {
        let mut v = vec![3.0, 4.0];
        assert_eq!(l2_norm(&v), 5.0);
        let pre = clip_l2(&mut v, 1.0);
        assert_eq!(pre, 5.0);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-12);
        // direction preserved
        assert!((v[0] / v[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn clip_noop_below_threshold() {
        let mut v = vec![0.3, 0.4];
        clip_l2(&mut v, 1.0);
        assert_eq!(v, vec![0.3, 0.4]);
    }

    #[test]
    fn clip_zero_vector() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(clip_l2(&mut v, 1.0), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }
}
