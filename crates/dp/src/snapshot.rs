//! Snapshot codec for the privacy layer: [`Budget`] and [`BudgetPlan`]
//! round-trip through the shared wire rules. A persisted model must carry
//! its budget and solved σ's so a loaded session reports the *original*
//! achieved ε — reloading spends nothing (sampling is post-processing),
//! and re-planning could silently drift if planner defaults ever change.

use kamino_data::wire::{ByteReader, ByteWriter, WireError};

use crate::planner::BudgetPlan;
use crate::Budget;

/// Encodes a budget. ε = ∞ (non-private) survives as the IEEE bit
/// pattern.
pub fn encode_budget(b: &Budget, w: &mut ByteWriter) {
    w.put_f64(b.epsilon);
    w.put_f64(b.delta);
}

/// Decodes a budget written by [`encode_budget`], re-validating the
/// (ε, δ) ranges the constructors enforce.
pub fn decode_budget(r: &mut ByteReader<'_>) -> Result<Budget, WireError> {
    let epsilon = r.f64()?;
    let delta = r.f64()?;
    if epsilon.is_nan() || epsilon <= 0.0 {
        return Err(WireError::Malformed(format!("invalid epsilon {epsilon}")));
    }
    if delta.is_nan() || delta <= 0.0 || delta >= 1.0 {
        return Err(WireError::Malformed(format!("invalid delta {delta}")));
    }
    Ok(Budget { epsilon, delta })
}

/// Encodes a solved plan (per-mechanism σ's + achieved ε).
pub fn encode_plan(p: &BudgetPlan, w: &mut ByteWriter) {
    w.put_f64(p.sigma_g);
    w.put_f64(p.sigma_d);
    w.put_f64(p.sigma_w);
    w.put_f64(p.achieved_epsilon);
}

/// Decodes a plan written by [`encode_plan`].
pub fn decode_plan(r: &mut ByteReader<'_>) -> Result<BudgetPlan, WireError> {
    Ok(BudgetPlan {
        sigma_g: r.f64()?,
        sigma_d: r.f64()?,
        sigma_w: r.f64()?,
        achieved_epsilon: r.f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_roundtrip_including_non_private() {
        for b in [Budget::new(1.0, 1e-6), Budget::non_private()] {
            let mut w = ByteWriter::new();
            encode_budget(&b, &mut w);
            let bytes = w.into_bytes();
            let got = decode_budget(&mut ByteReader::new(&bytes)).unwrap();
            assert_eq!(got.epsilon.to_bits(), b.epsilon.to_bits());
            assert_eq!(got.delta, b.delta);
        }
    }

    #[test]
    fn corrupt_budget_rejected() {
        let mut w = ByteWriter::new();
        w.put_f64(-1.0); // negative ε
        w.put_f64(1e-6);
        let bytes = w.into_bytes();
        assert!(decode_budget(&mut ByteReader::new(&bytes)).is_err());
        let mut w = ByteWriter::new();
        w.put_f64(1.0);
        w.put_f64(2.0); // δ out of range
        let bytes = w.into_bytes();
        assert!(decode_budget(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn plan_roundtrip() {
        let p = BudgetPlan {
            sigma_g: 1.25,
            sigma_d: 0.8,
            sigma_w: 0.0,
            achieved_epsilon: 0.97,
        };
        let mut w = ByteWriter::new();
        encode_plan(&p, &mut w);
        let bytes = w.into_bytes();
        let got = decode_plan(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(
            (got.sigma_g, got.sigma_d, got.sigma_w, got.achieved_epsilon),
            (1.25, 0.8, 0.0, 0.97)
        );
    }
}
