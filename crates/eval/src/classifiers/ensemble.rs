//! Tree ensembles: RandomForest, Bagging, AdaBoost, GradientBoost, and the
//! XGBoost-lite variant.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::tree::{RegressionTree, TreeParams};
use super::{majority, Classifier};

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

fn bootstrap(n: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

fn take<T: Clone>(items: &[T], idx: &[usize]) -> Vec<T> {
    idx.iter().map(|&i| items[i].clone()).collect()
}

/// Random forest: bootstrapped trees with per-split feature subsampling,
/// majority vote over leaf probabilities.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth parameters (feature subsample filled from √d).
    pub params: TreeParams,
    trees: Vec<RegressionTree>,
    fallback: bool,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest {
            n_trees: 15,
            params: TreeParams {
                max_depth: 8,
                ..Default::default()
            },
            trees: Vec::new(),
            fallback: false,
        }
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RandomForest"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool], seed: u64) {
        self.fallback = majority(y);
        self.trees.clear();
        let d = x.first().map_or(1, Vec::len);
        let mut params = self.params;
        params.feature_subsample = Some(((d as f64).sqrt().ceil() as usize).max(1));
        let target: Vec<f64> = y.iter().map(|&b| f64::from(b)).collect();
        // kamino-lint: allow(raw_rng) -- fixed-seed evaluation model; post-processing of already-released data
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF05E57);
        for t in 0..self.n_trees {
            let idx = bootstrap(x.len(), &mut rng);
            let bx = take(x, &idx);
            let bt = take(&target, &idx);
            let w = vec![1.0; bx.len()];
            self.trees.push(RegressionTree::fit(
                &bx,
                &bt,
                &w,
                &params,
                seed ^ (t as u64 * 77),
            ));
        }
    }

    fn predict_one(&self, x: &[f64]) -> bool {
        if self.trees.is_empty() {
            return self.fallback;
        }
        let mean: f64 =
            self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64;
        mean > 0.5
    }
}

/// Bagging: bootstrapped full-feature trees.
#[derive(Debug, Clone)]
pub struct Bagging {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth parameters.
    pub params: TreeParams,
    trees: Vec<RegressionTree>,
    fallback: bool,
}

impl Default for Bagging {
    fn default() -> Self {
        Bagging {
            n_trees: 10,
            params: TreeParams::default(),
            trees: Vec::new(),
            fallback: false,
        }
    }
}

impl Classifier for Bagging {
    fn name(&self) -> &'static str {
        "Bagging"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool], seed: u64) {
        self.fallback = majority(y);
        self.trees.clear();
        let target: Vec<f64> = y.iter().map(|&b| f64::from(b)).collect();
        // kamino-lint: allow(raw_rng) -- fixed-seed evaluation model; post-processing of already-released data
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA66);
        for t in 0..self.n_trees {
            let idx = bootstrap(x.len(), &mut rng);
            let bx = take(x, &idx);
            let bt = take(&target, &idx);
            let w = vec![1.0; bx.len()];
            self.trees.push(RegressionTree::fit(
                &bx,
                &bt,
                &w,
                &self.params,
                seed ^ (t as u64 * 131),
            ));
        }
    }

    fn predict_one(&self, x: &[f64]) -> bool {
        if self.trees.is_empty() {
            return self.fallback;
        }
        let mean: f64 =
            self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64;
        mean > 0.5
    }
}

/// Discrete AdaBoost over decision stumps.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    /// Boosting rounds.
    pub rounds: usize,
    stumps: Vec<(RegressionTree, f64)>, // (stump, alpha)
    fallback: bool,
}

impl Default for AdaBoost {
    fn default() -> Self {
        AdaBoost {
            rounds: 30,
            stumps: Vec::new(),
            fallback: false,
        }
    }
}

impl Classifier for AdaBoost {
    fn name(&self) -> &'static str {
        "AdaBoost"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool], seed: u64) {
        self.fallback = majority(y);
        self.stumps.clear();
        let n = x.len();
        let target: Vec<f64> = y.iter().map(|&b| f64::from(b)).collect();
        let mut w = vec![1.0 / n as f64; n];
        let stump_params = TreeParams {
            max_depth: 1,
            min_split: 2,
            ..Default::default()
        };
        for round in 0..self.rounds {
            let stump =
                RegressionTree::fit(x, &target, &w, &stump_params, seed ^ (round as u64 * 193));
            let pred: Vec<bool> = x.iter().map(|xi| stump.predict(xi) > 0.5).collect();
            let err: f64 = w
                .iter()
                .zip(pred.iter().zip(y))
                .filter(|(_, (p, t))| p != t)
                .map(|(wi, _)| wi)
                .sum();
            let err = err.clamp(1e-10, 1.0 - 1e-10);
            if err >= 0.5 {
                break; // weak learner no better than chance
            }
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            for i in 0..n {
                let agree = pred[i] == y[i];
                w[i] *= if agree { (-alpha).exp() } else { alpha.exp() };
            }
            let total: f64 = w.iter().sum();
            w.iter_mut().for_each(|wi| *wi /= total);
            self.stumps.push((stump, alpha));
        }
    }

    fn predict_one(&self, x: &[f64]) -> bool {
        if self.stumps.is_empty() {
            return self.fallback;
        }
        let score: f64 = self
            .stumps
            .iter()
            .map(|(s, alpha)| alpha * if s.predict(x) > 0.5 { 1.0 } else { -1.0 })
            .sum();
        score > 0.0
    }
}

/// Gradient boosting with logistic loss: trees fit pseudo-residuals
/// `y − σ(F)`, leaves predict the mean residual, shrunk by `shrinkage`.
#[derive(Debug, Clone)]
pub struct GradientBoost {
    /// Boosting rounds.
    pub rounds: usize,
    /// Shrinkage (learning rate).
    pub shrinkage: f64,
    /// Tree depth per round.
    pub depth: usize,
    base: f64,
    trees: Vec<RegressionTree>,
}

impl Default for GradientBoost {
    fn default() -> Self {
        GradientBoost {
            rounds: 30,
            shrinkage: 0.3,
            depth: 3,
            base: 0.0,
            trees: Vec::new(),
        }
    }
}

impl GradientBoost {
    fn raw_score(&self, x: &[f64]) -> f64 {
        self.base + self.shrinkage * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }
}

impl Classifier for GradientBoost {
    fn name(&self) -> &'static str {
        "GradientBoost"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool], seed: u64) {
        self.trees.clear();
        let n = x.len();
        let pos = y.iter().filter(|&&b| b).count() as f64;
        let p0 = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        self.base = (p0 / (1.0 - p0)).ln();
        let mut f: Vec<f64> = vec![self.base; n];
        let params = TreeParams {
            max_depth: self.depth,
            ..Default::default()
        };
        let w = vec![1.0; n];
        for round in 0..self.rounds {
            let residual: Vec<f64> = (0..n).map(|i| f64::from(y[i]) - sigmoid(f[i])).collect();
            let tree = RegressionTree::fit(x, &residual, &w, &params, seed ^ (round as u64 * 389));
            for i in 0..n {
                f[i] += self.shrinkage * tree.predict(&x[i]);
            }
            self.trees.push(tree);
        }
    }

    fn predict_one(&self, x: &[f64]) -> bool {
        self.raw_score(x) > 0.0
    }
}

/// XGBoost-lite: gradient boosting where each leaf takes the Newton step
/// `Σg / (Σh + λ)` (g = residual, h = σ(F)(1−σ(F))) with L2 leaf
/// regularization λ — the core of the XGBoost objective.
#[derive(Debug, Clone)]
pub struct XgbLite {
    /// Boosting rounds.
    pub rounds: usize,
    /// Shrinkage.
    pub shrinkage: f64,
    /// Tree depth.
    pub depth: usize,
    /// L2 leaf regularization λ.
    pub lambda: f64,
    base: f64,
    trees: Vec<RegressionTree>,
}

impl Default for XgbLite {
    fn default() -> Self {
        XgbLite {
            rounds: 30,
            shrinkage: 0.3,
            depth: 3,
            lambda: 1.0,
            base: 0.0,
            trees: Vec::new(),
        }
    }
}

impl Classifier for XgbLite {
    fn name(&self) -> &'static str {
        "XGBoost"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool], seed: u64) {
        self.trees.clear();
        let n = x.len();
        let pos = y.iter().filter(|&&b| b).count() as f64;
        let p0 = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        self.base = (p0 / (1.0 - p0)).ln();
        let mut f: Vec<f64> = vec![self.base; n];
        let params = TreeParams {
            max_depth: self.depth,
            ..Default::default()
        };
        let w = vec![1.0; n];
        for round in 0..self.rounds {
            let grad: Vec<f64> = (0..n).map(|i| f64::from(y[i]) - sigmoid(f[i])).collect();
            let hess: Vec<f64> = (0..n)
                .map(|i| {
                    let p = sigmoid(f[i]);
                    (p * (1.0 - p)).max(1e-9)
                })
                .collect();
            let lambda = self.lambda;
            let leaf = |idx: &[usize]| {
                let g: f64 = idx.iter().map(|&i| grad[i]).sum();
                let h: f64 = idx.iter().map(|&i| hess[i]).sum();
                g / (h + lambda)
            };
            let tree = RegressionTree::fit_with_leaf(
                x,
                &grad,
                &w,
                &params,
                seed ^ (round as u64 * 593),
                &leaf,
            );
            for i in 0..n {
                f[i] += self.shrinkage * tree.predict(&x[i]);
            }
            self.trees.push(tree);
        }
    }

    fn predict_one(&self, x: &[f64]) -> bool {
        let score =
            self.base + self.shrinkage * self.trees.iter().map(|t| t.predict(x)).sum::<f64>();
        score > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{blobs, train_accuracy, xor};
    use super::*;

    #[test]
    fn forest_beats_chance_on_xor() {
        let (x, y) = xor(300, 1);
        assert!(train_accuracy(&mut RandomForest::default(), &x, &y) > 0.9);
    }

    #[test]
    fn bagging_learns_blobs() {
        let (x, y) = blobs(200, 2);
        assert!(train_accuracy(&mut Bagging::default(), &x, &y) > 0.95);
    }

    #[test]
    fn adaboost_combines_stumps() {
        // a single stump cannot get XOR above ~0.5; boosting stumps...
        // also cannot (XOR needs interaction), but blobs with overlap work
        let (x, y) = blobs(300, 3);
        assert!(train_accuracy(&mut AdaBoost::default(), &x, &y) > 0.93);
        // and boosting must beat a single stump on a two-signal problem:
        // y = x0 > 0 XOR-free composite with unequal strength
        let x2: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![f64::from(i % 2 == 0), f64::from(i % 4 < 2)])
            .collect();
        let y2: Vec<bool> = (0..200).map(|i| (i % 2 == 0) && (i % 4 < 2)).collect();
        let acc = train_accuracy(&mut AdaBoost::default(), &x2, &y2);
        assert!(acc > 0.95, "adaboost on conjunction: {acc}");
    }

    #[test]
    fn gradient_boost_solves_xor() {
        let (x, y) = xor(300, 4);
        assert!(train_accuracy(&mut GradientBoost::default(), &x, &y) > 0.9);
    }

    #[test]
    fn xgb_lite_solves_xor_and_regularizes() {
        let (x, y) = xor(300, 5);
        assert!(train_accuracy(&mut XgbLite::default(), &x, &y) > 0.9);
        // extreme λ shrinks every leaf toward zero ⇒ predictions revert to
        // the base rate
        let mut heavy = XgbLite {
            lambda: 1e9,
            ..Default::default()
        };
        heavy.fit(&x, &y, 0);
        let base_only = x
            .iter()
            .all(|xi| heavy.predict_one(xi) == (heavy.base > 0.0));
        assert!(
            base_only,
            "infinite regularization should freeze the ensemble"
        );
    }

    #[test]
    fn ensembles_deterministic_given_seed() {
        let (x, y) = blobs(100, 6);
        let mut a = RandomForest::default();
        let mut b = RandomForest::default();
        a.fit(&x, &y, 9);
        b.fit(&x, &y, 9);
        for xi in &x {
            assert_eq!(a.predict_one(xi), b.predict_one(xi));
        }
    }
}
