//! Logistic regression (full-batch gradient descent with L2 weight decay).

use super::Classifier;

/// L2-regularized logistic regression.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 penalty.
    pub l2: f64,
    weights: Vec<f64>,
    bias: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            epochs: 200,
            lr: 0.5,
            l2: 1e-4,
            weights: Vec::new(),
            bias: 0.0,
        }
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    fn logit(&self, x: &[f64]) -> f64 {
        self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "LogisticRegression"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool], _seed: u64) {
        assert_eq!(x.len(), y.len());
        let d = x.first().map_or(0, Vec::len);
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let n = x.len() as f64;
        let mut gw = vec![0.0; d];
        for _ in 0..self.epochs {
            gw.iter_mut().for_each(|g| *g = 0.0);
            let mut gb = 0.0;
            for (xi, &yi) in x.iter().zip(y) {
                let err = sigmoid(self.logit(xi)) - f64::from(yi);
                for (g, v) in gw.iter_mut().zip(xi) {
                    *g += err * v;
                }
                gb += err;
            }
            for (w, g) in self.weights.iter_mut().zip(&gw) {
                *w -= self.lr * (g / n + self.l2 * *w);
            }
            self.bias -= self.lr * gb / n;
        }
    }

    fn predict_one(&self, x: &[f64]) -> bool {
        self.logit(x) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{blobs, train_accuracy};
    use super::*;

    #[test]
    fn learns_blobs() {
        let (x, y) = blobs(200, 1);
        let mut c = LogisticRegression::default();
        assert!(train_accuracy(&mut c, &x, &y) > 0.95);
    }

    #[test]
    fn weight_signs_match_signal() {
        // y = x[0] > 0: weight 0 should become positive
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![if i % 2 == 0 { 1.0 } else { -1.0 }, 0.3])
            .collect();
        let y: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let mut c = LogisticRegression::default();
        c.fit(&x, &y, 0);
        assert!(c.weights[0] > 0.5);
        assert!(
            c.weights[1].abs() < 0.3,
            "irrelevant feature got weight {}",
            c.weights[1]
        );
    }

    #[test]
    fn regularization_shrinks_weights() {
        let (x, y) = blobs(100, 2);
        let mut light = LogisticRegression {
            l2: 0.0,
            ..Default::default()
        };
        light.fit(&x, &y, 0);
        let mut heavy = LogisticRegression {
            l2: 0.5,
            ..Default::default()
        };
        heavy.fit(&x, &y, 0);
        let norm = |c: &LogisticRegression| c.weights.iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&heavy) < norm(&light));
    }
}
