//! The nine classification models of Metric II.
//!
//! §7.1: "We consider 9 classification models (LogisticRegression,
//! AdaBoost, GradientBoost, XGBoost, RandomForest, BernoulliNB,
//! DecisionTree, Bagging, and MLP)." Each is implemented from scratch on
//! the mixed one-hot/standardized feature encoding; XGBoost is an
//! "XGBoost-lite": gradient boosting with Newton leaf values and L2 leaf
//! regularization, which is the core of that system's objective.

pub mod ensemble;
pub mod linear;
pub mod naive_bayes;
pub mod neural;
pub mod tree;

pub use ensemble::{AdaBoost, Bagging, GradientBoost, RandomForest, XgbLite};
pub use linear::LogisticRegression;
pub use naive_bayes::BernoulliNb;
pub use neural::MlpClassifier;
pub use tree::DecisionTree;

/// A binary classifier over dense feature vectors.
pub trait Classifier {
    /// Model name as the paper lists it.
    fn name(&self) -> &'static str;
    /// Fits on features `x` and labels `y` (deterministic given `seed`).
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool], seed: u64);
    /// Predicts one example.
    fn predict_one(&self, x: &[f64]) -> bool;
    /// Predicts a batch.
    fn predict(&self, xs: &[Vec<f64>]) -> Vec<bool> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }
}

/// The paper's nine models with their default configurations.
pub fn standard_nine() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(LogisticRegression::default()),
        Box::new(AdaBoost::default()),
        Box::new(GradientBoost::default()),
        Box::new(XgbLite::default()),
        Box::new(RandomForest::default()),
        Box::new(BernoulliNb::default()),
        Box::new(DecisionTree::default()),
        Box::new(Bagging::default()),
        Box::new(MlpClassifier::default()),
    ]
}

/// Majority label — the fallback when a training set is single-class.
pub(crate) fn majority(y: &[bool]) -> bool {
    let pos = y.iter().filter(|&&b| b).count();
    pos * 2 >= y.len()
}

#[cfg(test)]
pub(crate) mod testutil {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A linearly separable two-blob dataset.
    pub fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let pos = i % 2 == 0;
            let cx = if pos { 1.5 } else { -1.5 };
            x.push(vec![
                cx + rng.gen::<f64>() - 0.5,
                cx + rng.gen::<f64>() - 0.5,
            ]);
            y.push(pos);
        }
        (x, y)
    }

    /// XOR-style dataset that linear models cannot solve.
    pub fn xor(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.gen::<bool>();
            let b = rng.gen::<bool>();
            let jitter = |v: bool, rng: &mut StdRng| {
                (if v { 1.0 } else { 0.0 }) + (rng.gen::<f64>() - 0.5) * 0.4
            };
            x.push(vec![jitter(a, &mut rng), jitter(b, &mut rng)]);
            y.push(a != b);
        }
        (x, y)
    }

    pub fn train_accuracy(c: &mut dyn super::Classifier, x: &[Vec<f64>], y: &[bool]) -> f64 {
        c.fit(x, y, 7);
        let pred = c.predict(x);
        crate::metrics::accuracy(&pred, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_the_paper_nine() {
        let names: Vec<&str> = standard_nine().iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "LogisticRegression",
                "AdaBoost",
                "GradientBoost",
                "XGBoost",
                "RandomForest",
                "BernoulliNB",
                "DecisionTree",
                "Bagging",
                "MLP"
            ]
        );
    }

    #[test]
    fn every_model_learns_separable_blobs() {
        let (x, y) = testutil::blobs(200, 1);
        for mut c in standard_nine() {
            let acc = testutil::train_accuracy(c.as_mut(), &x, &y);
            assert!(
                acc > 0.9,
                "{} only reached {acc} on separable blobs",
                c.name()
            );
        }
    }

    #[test]
    fn nonlinear_models_solve_xor() {
        let (x, y) = testutil::xor(300, 2);
        for name in [
            "DecisionTree",
            "RandomForest",
            "GradientBoost",
            "XGBoost",
            "MLP",
        ] {
            let mut c = standard_nine()
                .into_iter()
                .find(|c| c.name() == name)
                .unwrap();
            let acc = testutil::train_accuracy(c.as_mut(), &x, &y);
            assert!(acc > 0.85, "{name} only reached {acc} on XOR");
        }
    }

    #[test]
    fn single_class_training_degrades_gracefully() {
        let x = vec![vec![0.0, 1.0]; 20];
        let y = vec![true; 20];
        for mut c in standard_nine() {
            c.fit(&x, &y, 3);
            assert!(
                c.predict_one(&[0.0, 1.0]),
                "{} failed on single-class data",
                c.name()
            );
        }
    }

    #[test]
    fn majority_helper() {
        assert!(majority(&[true, true, false]));
        assert!(!majority(&[false, false, true]));
        assert!(majority(&[true, false])); // tie → positive
    }
}
