//! Bernoulli naive Bayes.
//!
//! Features are binarized at `threshold` (one-hot slots become their own
//! indicator; standardized numerics become "above threshold"); per-class
//! Bernoulli likelihoods use Laplace smoothing.

use super::{majority, Classifier};

/// Bernoulli naive Bayes with Laplace smoothing.
#[derive(Debug, Clone)]
pub struct BernoulliNb {
    /// Binarization threshold on feature values.
    pub threshold: f64,
    /// Laplace smoothing constant.
    pub alpha: f64,
    log_prior: [f64; 2],
    /// `log_p[c][j]` = log P(feature j on | class c); paired with the
    /// complement for the off state.
    log_p_on: Vec<[f64; 2]>,
    log_p_off: Vec<[f64; 2]>,
    fallback: bool,
    fitted: bool,
}

impl Default for BernoulliNb {
    fn default() -> Self {
        BernoulliNb {
            threshold: 0.5,
            alpha: 1.0,
            log_prior: [0.0; 2],
            log_p_on: Vec::new(),
            log_p_off: Vec::new(),
            fallback: false,
            fitted: false,
        }
    }
}

impl Classifier for BernoulliNb {
    fn name(&self) -> &'static str {
        "BernoulliNB"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool], _seed: u64) {
        assert_eq!(x.len(), y.len());
        let d = x.first().map_or(0, Vec::len);
        let n_pos = y.iter().filter(|&&b| b).count();
        let n_neg = y.len() - n_pos;
        self.fitted = true;
        if n_pos == 0 || n_neg == 0 {
            self.fallback = majority(y);
            self.log_p_on.clear();
            return;
        }
        let counts = [n_neg as f64, n_pos as f64];
        self.log_prior = [
            counts[0].ln() - (y.len() as f64).ln(),
            counts[1].ln() - (y.len() as f64).ln(),
        ];
        let mut on = vec![[0.0f64; 2]; d];
        for (xi, &yi) in x.iter().zip(y) {
            let c = usize::from(yi);
            for (j, &v) in xi.iter().enumerate() {
                if v > self.threshold {
                    on[j][c] += 1.0;
                }
            }
        }
        self.log_p_on = (0..d)
            .map(|j| {
                [
                    ((on[j][0] + self.alpha) / (counts[0] + 2.0 * self.alpha)).ln(),
                    ((on[j][1] + self.alpha) / (counts[1] + 2.0 * self.alpha)).ln(),
                ]
            })
            .collect();
        self.log_p_off = (0..d)
            .map(|j| {
                [
                    ((counts[0] - on[j][0] + self.alpha) / (counts[0] + 2.0 * self.alpha)).ln(),
                    ((counts[1] - on[j][1] + self.alpha) / (counts[1] + 2.0 * self.alpha)).ln(),
                ]
            })
            .collect();
    }

    fn predict_one(&self, x: &[f64]) -> bool {
        assert!(self.fitted, "predict before fit");
        if self.log_p_on.is_empty() {
            return self.fallback;
        }
        let mut score = [self.log_prior[0], self.log_prior[1]];
        for (j, &v) in x.iter().enumerate() {
            let table = if v > self.threshold {
                &self.log_p_on
            } else {
                &self.log_p_off
            };
            score[0] += table[j][0];
            score[1] += table[j][1];
        }
        score[1] > score[0]
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{blobs, train_accuracy};
    use super::*;

    #[test]
    fn learns_indicator_features() {
        // y = feature 0 is on
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![f64::from(i % 2 == 0), f64::from(i % 3 == 0)])
            .collect();
        let y: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let mut c = BernoulliNb::default();
        c.fit(&x, &y, 0);
        assert!(c.predict_one(&[1.0, 0.0]));
        assert!(!c.predict_one(&[0.0, 0.0]));
    }

    #[test]
    fn works_on_blobs_after_binarization() {
        let (x, y) = blobs(200, 3);
        let mut c = BernoulliNb {
            threshold: 0.0,
            ..Default::default()
        };
        assert!(train_accuracy(&mut c, &x, &y) > 0.9);
    }

    #[test]
    fn single_class_fallback() {
        let x = vec![vec![1.0]; 5];
        let mut c = BernoulliNb::default();
        c.fit(&x, &[false; 5], 0);
        assert!(!c.predict_one(&[1.0]));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        BernoulliNb::default().predict_one(&[0.0]);
    }
}
