//! MLP classifier on the shared neural substrate.

use kamino_nn::mlp::MlpCache;
use kamino_nn::{loss, Mlp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{majority, Classifier};

/// A one-hidden-layer MLP trained with minibatch SGD on BCE loss.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    net: Option<Mlp>,
    fallback: bool,
}

impl Default for MlpClassifier {
    fn default() -> Self {
        MlpClassifier {
            hidden: 16,
            epochs: 40,
            batch: 16,
            lr: 0.3,
            net: None,
            fallback: false,
        }
    }
}

impl Classifier for MlpClassifier {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool], seed: u64) {
        self.fallback = majority(y);
        let d = x.first().map_or(1, Vec::len);
        // kamino-lint: allow(raw_rng) -- fixed-seed evaluation model; post-processing of already-released data
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3177);
        let mut net = Mlp::new(&[d, self.hidden, 1], &mut rng);
        let n = x.len();
        for _ in 0..self.epochs {
            for _ in 0..n.div_ceil(self.batch) {
                net.visit_blocks(&mut |b| b.zero_grad());
                let mut count = 0;
                for _ in 0..self.batch {
                    let i = rng.gen_range(0..n);
                    let mut cache = MlpCache::default();
                    let out = net.forward(&x[i], &mut cache);
                    let (_, dlogit) = loss::bce_with_logit(out[0], f64::from(y[i]));
                    net.backward(&cache, &[dlogit]);
                    count += 1;
                }
                let scale = self.lr / count as f64;
                net.visit_blocks(&mut |b| {
                    for i in 0..b.len() {
                        b.values[i] -= scale * b.grads[i];
                    }
                });
            }
        }
        self.net = Some(net);
    }

    fn predict_one(&self, x: &[f64]) -> bool {
        match &self.net {
            Some(net) => net.infer(x)[0] > 0.0,
            None => self.fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{blobs, train_accuracy, xor};
    use super::*;

    #[test]
    fn learns_blobs_and_xor() {
        let (x, y) = blobs(200, 1);
        assert!(train_accuracy(&mut MlpClassifier::default(), &x, &y) > 0.95);
        let (x, y) = xor(300, 2);
        let mut big = MlpClassifier {
            epochs: 120,
            ..Default::default()
        };
        assert!(train_accuracy(&mut big, &x, &y) > 0.85);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(100, 3);
        let mut a = MlpClassifier::default();
        let mut b = MlpClassifier::default();
        a.fit(&x, &y, 5);
        b.fit(&x, &y, 5);
        for xi in &x {
            assert_eq!(a.predict_one(xi), b.predict_one(xi));
        }
    }
}
