//! Regression trees (CART) and the decision-tree classifier.
//!
//! One tree implementation serves four of the nine models: it fits
//! weighted real-valued targets by variance reduction, which for {0,1}
//! targets is exactly Gini-style impurity splitting. The ensembles
//! ([`super::ensemble`]) reuse it for bootstrapped classification trees
//! (forest/bagging) and residual regression (boosting).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::{majority, Classifier};

/// Tree growth hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_split: usize,
    /// Features considered per split (`None` = all).
    pub feature_subsample: Option<usize>,
    /// Maximum candidate thresholds per feature.
    pub max_thresholds: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_split: 4,
            feature_subsample: None,
            max_thresholds: 16,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    root: Node,
}

impl RegressionTree {
    /// Fits weighted targets by recursive variance-reduction splitting.
    /// `leaf_value` computes the prediction of a leaf from the indices it
    /// holds (boosting overrides this with Newton steps).
    pub fn fit_with_leaf<F>(
        x: &[Vec<f64>],
        target: &[f64],
        weight: &[f64],
        params: &TreeParams,
        seed: u64,
        leaf_value: &F,
    ) -> RegressionTree
    where
        F: Fn(&[usize]) -> f64,
    {
        assert_eq!(x.len(), target.len());
        assert_eq!(x.len(), weight.len());
        assert!(!x.is_empty(), "cannot fit a tree on no data");
        let idx: Vec<usize> = (0..x.len()).collect();
        // kamino-lint: allow(raw_rng) -- fixed-seed evaluation model; post-processing of already-released data
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7EEE);
        let root = grow(x, target, weight, &idx, params, 0, &mut rng, leaf_value);
        RegressionTree { root }
    }

    /// Fits with weighted-mean leaves.
    pub fn fit(
        x: &[Vec<f64>],
        target: &[f64],
        weight: &[f64],
        params: &TreeParams,
        seed: u64,
    ) -> RegressionTree {
        let leaf = |idx: &[usize]| weighted_mean(target, weight, idx);
        Self::fit_with_leaf(x, target, weight, params, seed, &leaf)
    }

    /// Predicted value for one example.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of leaves (test/diagnostic hook).
    pub fn n_leaves(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

fn weighted_mean(target: &[f64], weight: &[f64], idx: &[usize]) -> f64 {
    let mut sw = 0.0;
    let mut swv = 0.0;
    for &i in idx {
        sw += weight[i];
        swv += weight[i] * target[i];
    }
    if sw > 0.0 {
        swv / sw
    } else {
        0.0
    }
}

/// Weighted sum of squared deviations from the mean over `idx`.
fn impurity(target: &[f64], weight: &[f64], idx: &[usize]) -> f64 {
    let mean = weighted_mean(target, weight, idx);
    idx.iter()
        .map(|&i| weight[i] * (target[i] - mean) * (target[i] - mean))
        .sum()
}

#[allow(clippy::too_many_arguments)]
fn grow<F>(
    x: &[Vec<f64>],
    target: &[f64],
    weight: &[f64],
    idx: &[usize],
    params: &TreeParams,
    depth: usize,
    rng: &mut StdRng,
    leaf_value: &F,
) -> Node
where
    F: Fn(&[usize]) -> f64,
{
    if depth >= params.max_depth || idx.len() < params.min_split {
        return Node::Leaf(leaf_value(idx));
    }
    let parent_impurity = impurity(target, weight, idx);
    if parent_impurity <= 1e-12 {
        return Node::Leaf(leaf_value(idx));
    }
    let d = x[0].len();
    let mut features: Vec<usize> = (0..d).collect();
    if let Some(m) = params.feature_subsample {
        features.shuffle(rng);
        features.truncate(m.max(1).min(d));
    }
    let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
    let mut vals: Vec<f64> = Vec::with_capacity(idx.len());
    for &f in &features {
        vals.clear();
        vals.extend(idx.iter().map(|&i| x[i][f]));
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        let step = (vals.len() / params.max_thresholds).max(1);
        for w in vals.windows(2).step_by(step) {
            let threshold = 0.5 * (w[0] + w[1]);
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in idx {
                if x[i][f] <= threshold {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let score = impurity(target, weight, &left) + impurity(target, weight, &right);
            if best.is_none_or(|(b, _, _)| score < b) {
                best = Some((score, f, threshold));
            }
        }
    }
    let Some((score, feature, threshold)) = best else {
        return Node::Leaf(leaf_value(idx));
    };
    if score >= parent_impurity - 1e-12 {
        return Node::Leaf(leaf_value(idx));
    }
    let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
    for &i in idx {
        if x[i][feature] <= threshold {
            left_idx.push(i);
        } else {
            right_idx.push(i);
        }
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(grow(
            x,
            target,
            weight,
            &left_idx,
            params,
            depth + 1,
            rng,
            leaf_value,
        )),
        right: Box::new(grow(
            x,
            target,
            weight,
            &right_idx,
            params,
            depth + 1,
            rng,
            leaf_value,
        )),
    }
}

/// The single decision-tree classifier of the nine-model roster.
#[derive(Debug, Clone, Default)]
pub struct DecisionTree {
    /// Growth parameters.
    pub params: TreeParams,
    tree: Option<RegressionTree>,
    fallback: bool,
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "DecisionTree"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool], seed: u64) {
        self.fallback = majority(y);
        let target: Vec<f64> = y.iter().map(|&b| f64::from(b)).collect();
        let weight = vec![1.0; y.len()];
        self.tree = Some(RegressionTree::fit(x, &target, &weight, &self.params, seed));
    }

    fn predict_one(&self, x: &[f64]) -> bool {
        match &self.tree {
            Some(t) => t.predict(x) > 0.5,
            None => self.fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{blobs, train_accuracy, xor};
    use super::*;

    #[test]
    fn regression_tree_fits_step_function() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let t: Vec<f64> = (0..50).map(|i| if i < 25 { 1.0 } else { 5.0 }).collect();
        let w = vec![1.0; 50];
        let tree = RegressionTree::fit(&x, &t, &w, &TreeParams::default(), 0);
        assert!((tree.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[40.0]) - 5.0).abs() < 1e-9);
        assert_eq!(tree.n_leaves(), 2);
    }

    #[test]
    fn weights_shift_leaf_means() {
        let x = vec![vec![0.0], vec![0.0]];
        let t = vec![0.0, 10.0];
        // weight everything on the second target
        let tree = RegressionTree::fit(&x, &t, &[0.0, 1.0], &TreeParams::default(), 0);
        assert!((tree.predict(&[0.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_respected() {
        let (x, y) = xor(200, 1);
        let t: Vec<f64> = y.iter().map(|&b| f64::from(b)).collect();
        let w = vec![1.0; y.len()];
        let stump = RegressionTree::fit(
            &x,
            &t,
            &w,
            &TreeParams {
                max_depth: 1,
                ..Default::default()
            },
            0,
        );
        assert!(stump.n_leaves() <= 2);
    }

    #[test]
    fn classifier_solves_blobs_and_xor() {
        let (x, y) = blobs(200, 2);
        assert!(train_accuracy(&mut DecisionTree::default(), &x, &y) > 0.95);
        let (x, y) = xor(300, 3);
        assert!(train_accuracy(&mut DecisionTree::default(), &x, &y) > 0.9);
    }

    #[test]
    fn pure_nodes_stop_splitting() {
        let x = vec![vec![0.0]; 10];
        let t = vec![1.0; 10];
        let w = vec![1.0; 10];
        let tree = RegressionTree::fit(&x, &t, &w, &TreeParams::default(), 0);
        assert_eq!(tree.n_leaves(), 1);
    }
}
