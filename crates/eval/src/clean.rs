//! Post-hoc constraint repair — the "cleaned" arm of Figure 1.
//!
//! The paper applies HoloClean to fix the violations baseline synthesizers
//! leave behind, then shows the repaired data scores *worse* on both tasks:
//! repair restores consistency by rewriting cells, which collapses the very
//! distributions the tasks need. This module reproduces that repair with
//! the two rules the evaluation DCs require:
//!
//! * **FD repair**: group rows by the determinant and overwrite the
//!   dependent with the group's majority value;
//! * **strict-order repair**: within each equality group, reassign the
//!   second order attribute's *multiset of values* so it is concordant
//!   (or anti-concordant, per the operators) with the first — marginals
//!   survive, joint structure does not.
//!
//! Other DC shapes are left untouched (the paper's evaluation DCs are all
//! FD- or order-shaped).

use std::cmp::Ordering;
use std::collections::BTreeMap;

use kamino_constraints::{CmpOp, DenialConstraint};
use kamino_data::{Instance, Schema, Value};

/// Applies majority-FD and order repairs for every DC, returning the
/// repaired instance.
pub fn repair(schema: &Schema, inst: &Instance, dcs: &[DenialConstraint]) -> Instance {
    let mut out = inst.clone();
    for dc in dcs {
        if let Some(fd) = dc.as_fd() {
            repair_fd(&mut out, &fd.lhs, fd.rhs);
        } else if let Some(so) = dc.as_strict_order() {
            repair_order(schema, &mut out, &so.eq_attrs, so.a, so.b);
        }
    }
    out
}

fn key_of(inst: &Instance, row: usize, attrs: &[usize]) -> Vec<u64> {
    // keys never mix kinds within one attribute, so no cross-kind tag
    attrs
        .iter()
        .map(|&a| match inst.value(row, a) {
            Value::Cat(c) => c as u64,
            Value::Num(x) => (if x == 0.0 { 0.0 } else { x }).to_bits(),
        })
        .collect()
}

/// Majority-vote FD repair.
fn repair_fd(inst: &mut Instance, lhs: &[usize], rhs: usize) {
    let n = inst.n_rows();
    // group → dependent value key → (count, representative value)
    let mut groups: BTreeMap<Vec<u64>, BTreeMap<u64, (usize, Value)>> = BTreeMap::new();
    for i in 0..n {
        let key = key_of(inst, i, lhs);
        let v = inst.value(i, rhs);
        let vk = key_of(inst, i, &[rhs])[0];
        groups.entry(key).or_default().entry(vk).or_insert((0, v)).0 += 1;
    }
    let majority: BTreeMap<Vec<u64>, Value> = groups
        .into_iter()
        .map(|(k, by_v)| {
            let (_, &(_, v)) = by_v
                .iter()
                .max_by_key(|&(_, &(c, _))| c)
                .expect("non-empty group");
            (k, v)
        })
        .collect();
    for i in 0..n {
        let key = key_of(inst, i, lhs);
        inst.set(i, rhs, majority[&key]);
    }
}

/// Order repair: within each equality group, sort rows by attribute `a` and
/// reassign attribute `b`'s multiset so pairs are concordant
/// (`(>, ≥ requires) …`) per the operator combination. Ties in `a` receive
/// `b` values in an arbitrary but deterministic order (strict operators
/// never fire on ties).
fn repair_order(
    _schema: &Schema,
    inst: &mut Instance,
    eq_attrs: &[usize],
    (attr_a, op_a): (usize, CmpOp),
    (attr_b, op_b): (usize, CmpOp),
) {
    // violation fires when the larger-a row's b is op-related; concordant
    // assignment fixes ¬(A↑ ∧ B↓); anti-concordant fixes ¬(A↑ ∧ B↑)
    let concordant = match (op_a, op_b) {
        (CmpOp::Gt, CmpOp::Lt) | (CmpOp::Lt, CmpOp::Gt) => true,
        (CmpOp::Gt, CmpOp::Gt) | (CmpOp::Lt, CmpOp::Lt) => false,
        _ => unreachable!("as_strict_order only admits strict ops"),
    };
    let n = inst.n_rows();
    let mut groups: BTreeMap<Vec<u64>, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        groups.entry(key_of(inst, i, eq_attrs)).or_default().push(i);
    }
    for rows in groups.values() {
        let mut by_a: Vec<usize> = rows.clone();
        by_a.sort_by(|&i, &j| {
            inst.value(i, attr_a)
                .compare(inst.value(j, attr_a))
                .then(Ordering::Equal)
        });
        let mut b_values: Vec<Value> = rows.iter().map(|&i| inst.value(i, attr_b)).collect();
        b_values.sort_by(|x, y| x.compare(*y));
        if !concordant {
            b_values.reverse();
        }
        for (&row, v) in by_a.iter().zip(b_values) {
            inst.set(row, attr_b, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_constraints::{count_violating_pairs, parse_dc, violation_percentage, Hardness};
    use kamino_data::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("edu", 3).unwrap(),
            Attribute::integer("edu_num", 0.0, 16.0, 16).unwrap(),
            Attribute::numeric("gain", 0.0, 100.0, 10).unwrap(),
            Attribute::numeric("loss", 0.0, 100.0, 10).unwrap(),
        ])
        .unwrap()
    }

    fn inst(s: &Schema, rows: &[(u32, f64, f64, f64)]) -> Instance {
        Instance::from_rows(
            s,
            &rows
                .iter()
                .map(|&(e, en, g, l)| {
                    vec![Value::Cat(e), Value::Num(en), Value::Num(g), Value::Num(l)]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn fd_repair_majority_vote() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "fd",
            "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
            Hardness::Hard,
        )
        .unwrap();
        let d = inst(
            &s,
            &[
                (0, 10.0, 0.0, 0.0),
                (0, 10.0, 0.0, 0.0),
                (0, 12.0, 0.0, 0.0), // minority → rewritten to 10
                (1, 5.0, 0.0, 0.0),
            ],
        );
        let fixed = repair(&s, &d, std::slice::from_ref(&dc));
        assert_eq!(count_violating_pairs(&dc, &fixed), 0);
        assert_eq!(fixed.num(2, 1), 10.0);
        assert_eq!(fixed.num(3, 1), 5.0, "other groups untouched");
    }

    #[test]
    fn order_repair_makes_concordant() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "ord",
            "!(t1.gain > t2.gain & t1.loss < t2.loss)",
            Hardness::Hard,
        )
        .unwrap();
        let d = inst(
            &s,
            &[
                (0, 0.0, 10.0, 1.0),
                (0, 0.0, 50.0, 0.5), // big gain, small loss: discordant
                (0, 0.0, 30.0, 9.0),
            ],
        );
        assert!(count_violating_pairs(&dc, &d) > 0);
        let fixed = repair(&s, &d, std::slice::from_ref(&dc));
        assert_eq!(count_violating_pairs(&dc, &fixed), 0);
        // the loss *marginal* is preserved (same multiset)
        let mut before: Vec<f64> = (0..3).map(|i| d.num(i, 3)).collect();
        let mut after: Vec<f64> = (0..3).map(|i| fixed.num(i, 3)).collect();
        before.sort_by(f64::total_cmp);
        after.sort_by(f64::total_cmp);
        assert_eq!(before, after);
    }

    #[test]
    fn repair_degrades_joint_structure() {
        // the Figure 1 phenomenon in miniature: repair zeroes violations
        // but rewrites cells, so the joint (edu_num, gain) distribution
        // moves even though no DC touches gain
        let s = schema();
        let dc = parse_dc(
            &s,
            "fd",
            "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
            Hardness::Hard,
        )
        .unwrap();
        let d = inst(
            &s,
            &[
                (0, 10.0, 90.0, 0.0),
                (0, 12.0, 10.0, 0.0),
                (0, 10.0, 85.0, 0.0),
            ],
        );
        let fixed = repair(&s, &d, std::slice::from_ref(&dc));
        assert_eq!(violation_percentage(&dc, &fixed), 0.0);
        // row 1's edu_num was rewritten 12 → 10, breaking its pairing with
        // the low gain value
        assert_eq!(fixed.num(1, 1), 10.0);
    }

    #[test]
    fn eq_grouped_order_repair_stays_within_groups() {
        let s = schema();
        let dc = parse_dc(
            &s,
            "grp",
            "!(t1.edu == t2.edu & t1.gain > t2.gain & t1.loss < t2.loss)",
            Hardness::Hard,
        )
        .unwrap();
        let d = inst(
            &s,
            &[
                (0, 0.0, 10.0, 9.0),
                (0, 0.0, 50.0, 1.0), // discordant within edu=0
                (1, 0.0, 99.0, 0.1), // alone in edu=1: untouched
            ],
        );
        let fixed = repair(&s, &d, std::slice::from_ref(&dc));
        assert_eq!(count_violating_pairs(&dc, &fixed), 0);
        assert_eq!(fixed.num(2, 3), 0.1);
    }

    #[test]
    fn unknown_shapes_left_alone() {
        let s = schema();
        let dc = parse_dc(&s, "u", "!(t1.gain > 90)", Hardness::Hard).unwrap();
        let d = inst(&s, &[(0, 0.0, 95.0, 0.0)]);
        let fixed = repair(&s, &d, &[dc]);
        assert_eq!(fixed, d);
    }
}
