//! Evaluation stack for the paper's three utility metrics (§7.1).
//!
//! * **Metric I — DC violations**: percentage of violating tuple pairs per
//!   DC ([`violations`], thin wrapper over the constraint engine).
//! * **Metric II — model training**: for every attribute, binarize it into
//!   a label, train nine classifiers on (70% of) the synthetic data, and
//!   test on (the same 30% of) the true data; report mean accuracy and F1
//!   ([`tasks`], [`classifiers`]).
//! * **Metric III — α-way marginals**: total variation distance between
//!   true and synthetic marginals over every attribute (1-way) and
//!   attribute pair (2-way) ([`marginals`]).
//!
//! [`clean`] implements the FD/order-DC repair used by Figure 1's
//! "cleaned" arm — the demonstration that post-hoc repair restores
//! consistency at the cost of utility.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classifiers;
pub mod clean;
pub mod marginals;
pub mod metrics;
pub mod tasks;
pub mod violations;

pub use clean::repair;
pub use marginals::{marginal_tvd, tvd_all_pairs, tvd_all_singles};
pub use metrics::{accuracy, f1_score};
pub use tasks::{evaluate_classification, ClassificationSummary};
pub use violations::violation_table;
