//! α-way marginal queries and total variation distance (Metric III).
//!
//! For an attribute set `A`, the marginal `h : D → R^{|D(A)|}` is the
//! normalized contingency table over the (quantized) domain of `A`. The
//! paper reports `max_{a ∈ D(A)} |h(D')[a] − h(D*)[a]|` per attribute set
//! and box-plots the distribution over sets.

use std::collections::BTreeMap;

use kamino_data::{Instance, Quantizer, Schema};

/// Normalized marginal over an attribute set, keyed by the mixed-radix
/// code of the quantized cell. Out-of-domain categorical codes fold into
/// the last bin via [`Quantizer::bin_checked`] — the shared
/// `histogram_with_clamped` semantics, so a malformed synthetic cell
/// scores the same here as in the baselines' `Discretized` view instead
/// of panicking in debug builds.
fn marginal(schema: &Schema, inst: &Instance, attrs: &[usize]) -> BTreeMap<u64, f64> {
    assert!(!attrs.is_empty(), "marginal needs at least one attribute");
    let quantizers: Vec<Quantizer> = attrs
        .iter()
        .map(|&a| Quantizer::for_attr(schema.attr(a)))
        .collect();
    let mut counts: BTreeMap<u64, f64> = BTreeMap::new();
    let n = inst.n_rows();
    if n == 0 {
        return counts;
    }
    for i in 0..n {
        let mut key = 0u64;
        for (q, &a) in quantizers.iter().zip(attrs) {
            let (bin, _out_of_domain) = q.bin_checked(inst.value(i, a));
            key = key * q.n_bins() as u64 + bin as u64;
        }
        *counts.entry(key).or_insert(0.0) += 1.0;
    }
    let total = n as f64;
    counts.values_mut().for_each(|v| *v /= total);
    counts
}

/// Metric III for one attribute set: `max_a |h(D')[a] − h(D*)[a]|`.
pub fn marginal_tvd(schema: &Schema, truth: &Instance, synth: &Instance, attrs: &[usize]) -> f64 {
    let ht = marginal(schema, truth, attrs);
    let hs = marginal(schema, synth, attrs);
    let mut max_diff = 0.0f64;
    for (key, &pt) in &ht {
        let ps = hs.get(key).copied().unwrap_or(0.0);
        max_diff = max_diff.max((pt - ps).abs());
    }
    for (key, &ps) in &hs {
        if !ht.contains_key(key) {
            max_diff = max_diff.max(ps);
        }
    }
    max_diff
}

/// 1-way TVDs for every attribute, in schema order.
pub fn tvd_all_singles(schema: &Schema, truth: &Instance, synth: &Instance) -> Vec<f64> {
    (0..schema.len())
        .map(|a| marginal_tvd(schema, truth, synth, &[a]))
        .collect()
}

/// 2-way TVDs for every unordered attribute pair.
pub fn tvd_all_pairs(schema: &Schema, truth: &Instance, synth: &Instance) -> Vec<f64> {
    let k = schema.len();
    let mut out = Vec::with_capacity(k * (k - 1) / 2);
    for a in 0..k {
        for b in (a + 1)..k {
            out.push(marginal_tvd(schema, truth, synth, &[a, b]));
        }
    }
    out
}

/// Summary statistics the paper's box plots show: (mean, min, max).
pub fn summarize(values: &[f64]) -> (f64, f64, f64) {
    assert!(!values.is_empty());
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_data::{Attribute, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical_indexed("a", 3).unwrap(),
            Attribute::numeric("x", 0.0, 10.0, 5).unwrap(),
        ])
        .unwrap()
    }

    fn inst(s: &Schema, rows: &[(u32, f64)]) -> Instance {
        Instance::from_rows(
            s,
            &rows
                .iter()
                .map(|&(a, x)| vec![Value::Cat(a), Value::Num(x)])
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn identical_instances_have_zero_tvd() {
        let s = schema();
        let d = inst(&s, &[(0, 1.0), (1, 5.0), (2, 9.0), (0, 3.0)]);
        assert_eq!(marginal_tvd(&s, &d, &d, &[0]), 0.0);
        assert_eq!(marginal_tvd(&s, &d, &d, &[0, 1]), 0.0);
        assert!(tvd_all_singles(&s, &d, &d).iter().all(|&v| v == 0.0));
        assert!(tvd_all_pairs(&s, &d, &d).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn disjoint_supports_have_tvd_one() {
        let s = schema();
        let d1 = inst(&s, &[(0, 1.0), (0, 1.0)]);
        let d2 = inst(&s, &[(1, 9.0), (1, 9.0)]);
        assert_eq!(marginal_tvd(&s, &d1, &d2, &[0]), 1.0);
    }

    #[test]
    fn max_diff_semantics() {
        let s = schema();
        // truth: a uniform over {0,1}; synth: 3/4 on 0
        let t = inst(&s, &[(0, 0.0), (1, 0.0), (0, 0.0), (1, 0.0)]);
        let y = inst(&s, &[(0, 0.0), (0, 0.0), (0, 0.0), (1, 0.0)]);
        assert!((marginal_tvd(&s, &t, &y, &[0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn two_way_detects_broken_correlation() {
        let s = schema();
        // truth: a and x perfectly correlated; synth: same marginals but
        // anti-correlated
        let t = inst(&s, &[(0, 1.0), (2, 9.0), (0, 1.0), (2, 9.0)]);
        let y = inst(&s, &[(0, 9.0), (2, 1.0), (0, 9.0), (2, 1.0)]);
        // 1-way on `a` agrees exactly
        assert_eq!(marginal_tvd(&s, &t, &y, &[0]), 0.0);
        // 2-way sees the swap
        assert!((marginal_tvd(&s, &t, &y, &[0, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pair_count() {
        let s = schema();
        let d = inst(&s, &[(0, 1.0)]);
        assert_eq!(tvd_all_pairs(&s, &d, &d).len(), 1);
        assert_eq!(tvd_all_singles(&s, &d, &d).len(), 2);
    }

    #[test]
    fn summarize_stats() {
        let (mean, min, max) = summarize(&[0.1, 0.2, 0.6]);
        assert!((mean - 0.3).abs() < 1e-12);
        assert_eq!(min, 0.1);
        assert_eq!(max, 0.6);
    }
}
