//! Binary classification metrics.

/// Fraction of correct predictions.
pub fn accuracy(pred: &[bool], truth: &[bool]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty(), "empty evaluation set");
    let correct = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / pred.len() as f64
}

/// F1 score of the positive class: harmonic mean of precision and recall.
/// Returns 0 when the positive class is absent from both predictions and
/// truth (the scikit-learn `zero_division=0` convention the paper's
/// tooling uses).
pub fn f1_score(pred: &[bool], truth: &[bool]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    let tp = pred.iter().zip(truth).filter(|(&p, &t)| p && t).count() as f64;
    let fp = pred.iter().zip(truth).filter(|(&p, &t)| p && !t).count() as f64;
    let fn_ = pred.iter().zip(truth).filter(|(&p, &t)| !p && t).count() as f64;
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fn_);
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(
            accuracy(&[true, false, true], &[true, true, true]),
            2.0 / 3.0
        );
        assert_eq!(accuracy(&[false], &[false]), 1.0);
    }

    #[test]
    fn f1_perfect_and_degenerate() {
        assert_eq!(f1_score(&[true, false], &[true, false]), 1.0);
        // no positives anywhere
        assert_eq!(f1_score(&[false, false], &[false, false]), 0.0);
        // predicted positives but none true
        assert_eq!(f1_score(&[true, true], &[false, false]), 0.0);
    }

    #[test]
    fn f1_matches_hand_computation() {
        // tp=1, fp=1, fn=1 ⇒ p=0.5, r=0.5, f1=0.5
        let pred = [true, true, false, false];
        let truth = [true, false, true, false];
        assert!((f1_score(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn accuracy_rejects_empty() {
        accuracy(&[], &[]);
    }
}
