//! Metric II: the classification-task harness (§7.1).
//!
//! "On every single attribute of a dataset, we train all models to classify
//! one binary label … using all other attributes as features. The quality
//! of the learning task on one attribute is represented by the average of
//! all models. … Each model is trained using 70% of the synthetic database
//! instance, and evaluate the accuracy and F1 using the same 30% of the
//! true database instance."
//!
//! Binarization (the paper's "income is more than 50k or not, age is senior
//! or not" style labels) is mechanized as: categorical attributes predict
//! "equals the true data's modal value"; numeric attributes predict "above
//! the true data's median". Thresholds come from the true data so every
//! method is scored against the same labels.

use kamino_data::encode::Segment;
use kamino_data::{AttrKind, Instance, MixedEncoder, Schema, Value};

use crate::classifiers::{standard_nine, Classifier};
use crate::metrics::{accuracy, f1_score};

/// Result for one target attribute: metrics averaged over the model roster.
#[derive(Debug, Clone)]
pub struct AttrTaskResult {
    /// Target attribute index.
    pub attr: usize,
    /// Target attribute name.
    pub name: String,
    /// Mean accuracy over models.
    pub accuracy: f64,
    /// Mean F1 over models.
    pub f1: f64,
}

/// Metric II summary across all attributes.
#[derive(Debug, Clone)]
pub struct ClassificationSummary {
    /// Per-attribute results in schema order.
    pub per_attribute: Vec<AttrTaskResult>,
}

impl ClassificationSummary {
    /// Mean accuracy over attributes (the paper's headline number).
    pub fn mean_accuracy(&self) -> f64 {
        self.per_attribute.iter().map(|r| r.accuracy).sum::<f64>() / self.per_attribute.len() as f64
    }

    /// Mean F1 over attributes.
    pub fn mean_f1(&self) -> f64 {
        self.per_attribute.iter().map(|r| r.f1).sum::<f64>() / self.per_attribute.len() as f64
    }
}

/// Binarization rule for attribute `attr`, derived from the true data.
enum LabelRule {
    /// Categorical: value equals the modal code.
    ModalValue(u32),
    /// Numeric: value strictly above the true median.
    AboveMedian(f64),
}

impl LabelRule {
    fn from_truth(schema: &Schema, truth: &Instance, attr: usize) -> LabelRule {
        match schema.attr(attr).kind {
            AttrKind::Categorical { .. } => {
                let mut counts = vec![0usize; schema.attr(attr).domain_size()];
                for i in 0..truth.n_rows() {
                    counts[truth.cat(i, attr) as usize] += 1;
                }
                let modal = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, c)| *c)
                    .map(|(i, _)| i as u32)
                    .unwrap_or(0);
                LabelRule::ModalValue(modal)
            }
            AttrKind::Numeric { .. } => {
                let mut vals: Vec<f64> = (0..truth.n_rows()).map(|i| truth.num(i, attr)).collect();
                vals.sort_by(f64::total_cmp);
                let median = vals[vals.len() / 2];
                LabelRule::AboveMedian(median)
            }
        }
    }

    fn label(&self, v: Value) -> bool {
        match (self, v) {
            (LabelRule::ModalValue(m), Value::Cat(c)) => c == *m,
            (LabelRule::AboveMedian(t), Value::Num(x)) => x > *t,
            _ => unreachable!("label rule/value kind mismatch"),
        }
    }
}

/// Encodes the feature matrix for target `attr`: the full mixed encoding
/// with the target's own segment removed.
fn features_without(
    enc: &MixedEncoder,
    inst: &Instance,
    rows: &[usize],
    attr: usize,
) -> Vec<Vec<f64>> {
    let (drop_start, drop_len) = match enc.segments()[attr] {
        Segment::Cat { offset, card } => (offset, card),
        Segment::Num { offset, .. } => (offset, 1),
    };
    rows.iter()
        .map(|&i| {
            let full = enc.encode_row(inst, i);
            let mut v = Vec::with_capacity(full.len() - drop_len);
            v.extend_from_slice(&full[..drop_start]);
            v.extend_from_slice(&full[drop_start + drop_len..]);
            v
        })
        .collect()
}

/// Runs Metric II with the standard nine models.
pub fn evaluate_classification(
    schema: &Schema,
    truth: &Instance,
    synth: &Instance,
    seed: u64,
) -> ClassificationSummary {
    evaluate_classification_with(schema, truth, synth, seed, standard_nine)
}

/// Runs Metric II with a custom model roster (the benches use a reduced
/// roster at tight time budgets).
pub fn evaluate_classification_with<F>(
    schema: &Schema,
    truth: &Instance,
    synth: &Instance,
    seed: u64,
    roster: F,
) -> ClassificationSummary
where
    F: Fn() -> Vec<Box<dyn Classifier>>,
{
    assert!(
        truth.n_rows() >= 10,
        "need at least 10 true rows to test on"
    );
    assert!(
        synth.n_rows() >= 10,
        "need at least 10 synthetic rows to train on"
    );
    let enc = MixedEncoder::new(schema);
    // deterministic splits: first 70% of synth trains, last 30% of truth
    // tests ("the same 30%" across methods)
    let train_rows: Vec<usize> = (0..(synth.n_rows() * 7 / 10)).collect();
    let test_rows: Vec<usize> = ((truth.n_rows() * 7 / 10)..truth.n_rows()).collect();

    let per_attribute = (0..schema.len())
        .map(|attr| {
            let rule = LabelRule::from_truth(schema, truth, attr);
            let x_train = features_without(&enc, synth, &train_rows, attr);
            let y_train: Vec<bool> = train_rows
                .iter()
                .map(|&i| rule.label(synth.value(i, attr)))
                .collect();
            let x_test = features_without(&enc, truth, &test_rows, attr);
            let y_test: Vec<bool> = test_rows
                .iter()
                .map(|&i| rule.label(truth.value(i, attr)))
                .collect();

            let mut acc_sum = 0.0;
            let mut f1_sum = 0.0;
            let models = roster();
            let n_models = models.len();
            for (m, mut model) in models.into_iter().enumerate() {
                model.fit(&x_train, &y_train, seed ^ (m as u64 * 1009 + attr as u64));
                let pred = model.predict(&x_test);
                acc_sum += accuracy(&pred, &y_test);
                f1_sum += f1_score(&pred, &y_test);
            }
            AttrTaskResult {
                attr,
                name: schema.attr(attr).name.clone(),
                accuracy: acc_sum / n_models as f64,
                f1: f1_sum / n_models as f64,
            }
        })
        .collect();
    ClassificationSummary { per_attribute }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_data::Attribute;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// b == a, x = code(a): everything predicts everything.
    fn correlated(n: usize, seed: u64) -> (Schema, Instance) {
        let s = Schema::new(vec![
            Attribute::categorical_indexed("a", 2).unwrap(),
            Attribute::categorical_indexed("b", 2).unwrap(),
            Attribute::numeric("x", 0.0, 1.0, 4).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = Instance::empty(&s);
        for _ in 0..n {
            let a = u32::from(rng.gen::<bool>());
            inst.push_row(&s, &[Value::Cat(a), Value::Cat(a), Value::Num(a as f64)])
                .unwrap();
        }
        (s, inst)
    }

    /// Same schema, fully independent columns.
    fn scrambled(n: usize, seed: u64) -> Instance {
        let (s, _) = correlated(1, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = Instance::empty(&s);
        for _ in 0..n {
            inst.push_row(
                &s,
                &[
                    Value::Cat(u32::from(rng.gen::<bool>())),
                    Value::Cat(u32::from(rng.gen::<bool>())),
                    Value::Num(rng.gen::<f64>()),
                ],
            )
            .unwrap();
        }
        inst
    }

    fn tiny_roster() -> Vec<Box<dyn Classifier>> {
        vec![
            Box::new(crate::classifiers::LogisticRegression::default()),
            Box::new(crate::classifiers::DecisionTree::default()),
        ]
    }

    #[test]
    fn truth_on_truth_scores_high() {
        let (s, truth) = correlated(200, 5);
        let summary = evaluate_classification_with(&s, &truth, &truth, 2, tiny_roster);
        assert_eq!(summary.per_attribute.len(), 3);
        assert!(
            summary.mean_accuracy() > 0.95,
            "perfectly predictable data scored {}",
            summary.mean_accuracy()
        );
        assert!(summary.mean_f1() > 0.9);
    }

    #[test]
    fn good_synthetic_beats_scrambled_synthetic() {
        let (s, truth) = correlated(300, 3);
        let (_, good_synth) = correlated(300, 4);
        let bad_synth = scrambled(300, 5);
        let good = evaluate_classification_with(&s, &truth, &good_synth, 6, tiny_roster);
        let bad = evaluate_classification_with(&s, &truth, &bad_synth, 6, tiny_roster);
        assert!(
            good.mean_accuracy() > bad.mean_accuracy() + 0.15,
            "good {} vs bad {}",
            good.mean_accuracy(),
            bad.mean_accuracy()
        );
    }

    #[test]
    fn per_attribute_names_line_up() {
        let (s, truth) = correlated(100, 7);
        let summary = evaluate_classification_with(&s, &truth, &truth, 8, tiny_roster);
        let names: Vec<&str> = summary
            .per_attribute
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "x"]);
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn rejects_tiny_inputs() {
        let (s, truth) = correlated(5, 9);
        evaluate_classification_with(&s, &truth, &truth, 0, tiny_roster);
    }
}
