//! Metric I: per-DC violation table.

use kamino_constraints::{violation_percentage, DenialConstraint};
use kamino_data::Instance;

/// `(dc name, % violating tuple pairs)` for every DC — the rows of Table 2.
pub fn violation_table(dcs: &[DenialConstraint], inst: &Instance) -> Vec<(String, f64)> {
    dcs.iter()
        .map(|dc| (dc.name.clone(), violation_percentage(dc, inst)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_constraints::{parse_dc, Hardness};
    use kamino_data::{Attribute, Schema, Value};

    #[test]
    fn table_lists_every_dc() {
        let s = Schema::new(vec![
            Attribute::categorical_indexed("a", 2).unwrap(),
            Attribute::categorical_indexed("b", 2).unwrap(),
        ])
        .unwrap();
        let dcs =
            vec![parse_dc(&s, "fd", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Hard).unwrap()];
        let inst = Instance::from_rows(
            &s,
            &[
                vec![Value::Cat(0), Value::Cat(0)],
                vec![Value::Cat(0), Value::Cat(1)],
            ],
        )
        .unwrap();
        let table = violation_table(&dcs, &inst);
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].0, "fd");
        assert_eq!(table[0].1, 100.0);
    }
}
