//! Walks a source tree, runs every rule, applies suppression pragmas,
//! and returns findings in a deterministic order.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{check_file, twin_drift, RawFinding};
use crate::source::FileCtx;

/// A fully attributed finding, after pragma resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id.
    pub rule: String,
    /// Path relative to the scan root, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
    /// `Some(reason)` when an `allow` pragma suppressed the finding.
    pub suppressed: Option<String>,
}

/// Result of linting a tree.
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Pragma-suppressed findings with their reasons, same order.
    pub suppressed: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Per-rule counts of unsuppressed findings (deterministic order).
    pub fn rule_counts(&self) -> BTreeMap<&str, usize> {
        let mut counts = BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.rule.as_str()).or_insert(0) += 1;
        }
        counts
    }
}

/// Directories never scanned: build output, vendored shims (external
/// idiom, not under the workspace contracts), VCS metadata, and the
/// lint's own fixture corpus of seeded violations.
fn skip_dir(rel: &str) -> bool {
    rel == "target"
        || rel == "vendor"
        || rel.starts_with("target/")
        || rel.starts_with("vendor/")
        || rel.starts_with(".")
        || rel == "crates/lint/tests/fixtures"
        || rel.starts_with("crates/lint/tests/fixtures/")
}

/// Collect every `.rs` file under `root` (sorted, so every downstream
/// artifact is deterministic), skipping `skip_dir` trees.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let rel = rel_path(root, &path);
            if path.is_dir() {
                if !skip_dir(&rel) {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint every `.rs` file under `root`.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    let files = collect_files(root)?;
    let mut ctxs = Vec::with_capacity(files.len());
    for path in &files {
        let src = fs::read_to_string(path)?;
        ctxs.push(FileCtx::new(rel_path(root, path), src));
    }
    Ok(lint_contexts(ctxs))
}

/// Lint pre-built contexts (the test harness path).
pub fn lint_contexts(ctxs: Vec<FileCtx>) -> Report {
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed: Vec<Finding> = Vec::new();

    fn place(
        findings: &mut Vec<Finding>,
        suppressed: &mut Vec<Finding>,
        ctx: &FileCtx,
        raw: RawFinding,
    ) {
        let reason = ctx
            .pragmas
            .iter()
            .find(|p| p.applies_to_line == raw.line && p.rules.iter().any(|r| r == raw.rule))
            .map(|p| p.reason.clone());
        let finding = Finding {
            rule: raw.rule.to_string(),
            file: ctx.rel_path.clone(),
            line: raw.line,
            col: raw.col,
            message: raw.message,
            hint: raw.hint,
            suppressed: reason,
        };
        if finding.suppressed.is_some() {
            suppressed.push(finding);
        } else {
            findings.push(finding);
        }
    }

    for ctx in &ctxs {
        for raw in check_file(ctx) {
            place(&mut findings, &mut suppressed, ctx, raw);
        }
        // malformed pragmas are findings themselves, never suppressible
        for bp in &ctx.bad_pragmas {
            findings.push(Finding {
                rule: "bad_pragma".into(),
                file: ctx.rel_path.clone(),
                line: bp.line,
                col: bp.col,
                message: bp.message.clone(),
                hint: "write `// kamino-lint: allow(rule_id) -- reason` with a real reason".into(),
                suppressed: None,
            });
        }
    }
    for (fi, raw) in twin_drift(&ctxs) {
        place(&mut findings, &mut suppressed, &ctxs[fi], raw);
    }

    let key = |f: &Finding| (f.file.clone(), f.line, f.col, f.rule.clone());
    findings.sort_by_key(key);
    suppressed.sort_by_key(key);
    Report {
        findings,
        suppressed,
        files_scanned: ctxs.len(),
    }
}

/// Find the workspace root by walking up from `start` until a directory
/// holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
