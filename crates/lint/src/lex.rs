//! A token-level Rust lexer.
//!
//! Just enough of the language to walk real source reliably: nested block
//! comments, all the string flavors (`"…"`, `b"…"`, `c"…"`, raw strings
//! with any `#` count), char literals vs. lifetimes, raw identifiers,
//! numeric literals with suffixes, and `::` as a single token. Everything
//! the rules match on is a token — a `HashMap` inside a string or comment
//! never fires a rule.
//!
//! The lexer never fails: bytes it cannot classify become one-character
//! [`TokKind::Punct`] tokens, so a pathological file degrades to noisy
//! tokens rather than a crash.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A character or byte-character literal: `'x'`, `b'\n'`.
    Char,
    /// Any string literal: plain, byte, C, or raw with `#` fences.
    Str,
    /// A numeric literal, including suffixes: `0.0f64`, `0x1f`, `1e-9`.
    Num,
    /// Punctuation. Multi-character `::` is one token; everything else is
    /// a single character.
    Punct,
    /// A `// …` comment (doc comments included), text without newline.
    LineComment,
    /// A `/* … */` comment, nesting respected.
    BlockComment,
}

/// One lexed token: kind plus source span and 1-based position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in characters) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Lex `src` into tokens. Comments are kept in the stream (the pragma
/// scanner needs them); whitespace is dropped.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Lexer<'s> {
        Lexer {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one character (not byte), keeping line/col honest.
    fn bump(&mut self) {
        let b = self.bytes[self.pos];
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.pos += 1;
        } else {
            // skip the whole UTF-8 sequence as one column
            let mut n = 1;
            while self.pos + n < self.bytes.len() && (self.bytes[self.pos + n] & 0xC0) == 0x80 {
                n += 1;
            }
            self.col += 1;
            self.pos += n;
        }
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.bump();
                    }
                    self.emit(TokKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment();
                    self.emit(TokKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.string_body();
                    self.emit(TokKind::Str, start, line, col);
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    self.emit(kind, start, line, col);
                }
                b'0'..=b'9' => {
                    self.number();
                    self.emit(TokKind::Num, start, line, col);
                }
                _ if is_ident_start(b) || b >= 0x80 => {
                    // might be a string prefix (r"", br#""#, b'', c"") —
                    // check before committing to an identifier
                    if let Some(kind) = self.try_prefixed_literal() {
                        self.emit(kind, start, line, col);
                    } else {
                        self.ident();
                        self.emit(TokKind::Ident, start, line, col);
                    }
                }
                b':' if self.peek(1) == b':' => {
                    self.bump();
                    self.bump();
                    self.emit(TokKind::Punct, start, line, col);
                }
                _ => {
                    self.bump();
                    self.emit(TokKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// `/* … */` with nesting; leaves pos past the final `*/` (or at EOF
    /// for an unterminated comment).
    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
    }

    /// Body of a `"…"` string starting at the opening quote.
    fn string_body(&mut self) {
        self.bump(); // opening '"'
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Raw string starting at `r`/`br`/`cr`; the caller verified shape.
    fn raw_string(&mut self, prefix_len: usize) {
        for _ in 0..prefix_len {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.pos < self.bytes.len() && self.bytes[self.pos] == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening '"'
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                // need `hashes` following '#'s to close
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                self.bump();
                if ok {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    /// At a `'`: decide char literal vs lifetime.
    fn char_or_lifetime(&mut self) -> TokKind {
        // a char literal closes with ' after one (possibly escaped or
        // multi-byte) character; a lifetime never closes
        let next = self.peek(1);
        if next == b'\\' {
            // escaped char literal: '\n', '\u{…}', '\''
            self.bump(); // '
            self.bump(); // backslash
            if self.pos < self.bytes.len() {
                self.bump(); // escape head (covers 'u' of \u{…})
            }
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.bump();
            }
            if self.pos < self.bytes.len() {
                self.bump(); // closing '
            }
            return TokKind::Char;
        }
        if is_ident_start(next) {
            // 'a' is a char only if a ' immediately follows one ident
            // char; otherwise it's a lifetime ('a, 'static, '_)
            if self.peek(2) == b'\'' {
                self.bump();
                self.bump();
                self.bump();
                return TokKind::Char;
            }
            self.bump(); // '
            while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                self.bump();
            }
            return TokKind::Lifetime;
        }
        // non-identifier char: ' ', '0'..'9' handled here too ('3'), plus
        // any multi-byte character ('é')
        self.bump(); // '
        if self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
            self.bump(); // the character
        }
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b'\'' {
            self.bump();
        }
        TokKind::Char
    }

    /// Numeric literal: int/float, radix prefixes, `_` separators,
    /// exponents, type suffixes. `1..5` stops before the range; `1.max()`
    /// stops before the method call.
    fn number(&mut self) {
        if self.bytes[self.pos] == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump();
            self.bump();
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
            {
                self.bump();
            }
            return;
        }
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_digit() || self.bytes[self.pos] == b'_')
        {
            self.bump();
        }
        // fractional part: a '.' not followed by another '.' (range) or an
        // identifier start (method call / field access)
        if self.pos < self.bytes.len()
            && self.bytes[self.pos] == b'.'
            && self.peek(1) != b'.'
            && !is_ident_start(self.peek(1))
        {
            self.bump();
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos].is_ascii_digit() || self.bytes[self.pos] == b'_')
            {
                self.bump();
            }
        }
        // exponent
        if self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'e' | b'E')
            && (self.peek(1).is_ascii_digit()
                || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
        {
            self.bump();
            if matches!(self.bytes[self.pos], b'+' | b'-') {
                self.bump();
            }
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                self.bump();
            }
        }
        // type suffix (f64, u32, usize, …)
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.bump();
        }
    }

    /// If the cursor sits on a string/char prefix (`r"`, `r#"`, `br"`,
    /// `b"`, `c"`, `cr"`, `b'`), lex the whole literal and report its
    /// kind; otherwise leave the cursor alone.
    fn try_prefixed_literal(&mut self) -> Option<TokKind> {
        let rest = &self.bytes[self.pos..];
        let prefix_len = match rest {
            [b'b', b'r', ..] | [b'c', b'r', ..] => 2,
            [b'r', ..] | [b'b', ..] | [b'c', ..] => 1,
            _ => return None,
        };
        let has_r = rest[prefix_len - 1] == b'r';
        let mut i = prefix_len;
        if has_r {
            while i < rest.len() && rest[i] == b'#' {
                i += 1;
            }
            if i < rest.len() && rest[i] == b'"' {
                self.raw_string(prefix_len);
                return Some(TokKind::Str);
            }
            // `r#ident` raw identifier: only for bare `r`
            if prefix_len == 1 && i == 1 + 1 && i < rest.len() && is_ident_start(rest[i]) {
                self.bump(); // r
                self.bump(); // #
                self.ident();
                return Some(TokKind::Ident);
            }
            return None;
        }
        // b"…" / c"…" / b'…'
        if rest.get(prefix_len) == Some(&b'"') {
            self.bump(); // prefix
            self.string_body();
            return Some(TokKind::Str);
        }
        if rest[0] == b'b' && rest.get(prefix_len) == Some(&b'\'') {
            self.bump(); // b
            self.char_or_lifetime();
            return Some(TokKind::Char);
        }
        None
    }

    fn ident(&mut self) {
        while self.pos < self.bytes.len()
            && (is_ident_continue(self.bytes[self.pos]) || self.bytes[self.pos] >= 0x80)
        {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when a numeric literal token spells floating-point zero without a
/// sign: `0.0`, `0.`, `0.00f64`, `0f64`, `0_f32`, `0e0`. Integer zero
/// (`0`, `0usize`) is not a float and does not count.
pub fn is_zero_float_literal(text: &str) -> bool {
    let mut mantissa = text;
    // strip a type suffix if present
    let floaty_suffix = if let Some(p) = text.find(['f', 'F']) {
        mantissa = text[..p].trim_end_matches('_');
        text[p..].eq_ignore_ascii_case("f32") || text[p..].eq_ignore_ascii_case("f64")
    } else {
        false
    };
    // drop an exponent — it cannot change zero-ness, but its presence
    // makes the literal a float even without a dot (`0e0`)
    let mut had_exponent = false;
    if let Some(p) = mantissa.find(['e', 'E']) {
        mantissa = &mantissa[..p];
        had_exponent = true;
    }
    let has_dot = mantissa.contains('.');
    if !has_dot && !floaty_suffix && !had_exponent {
        return false;
    }
    !mantissa.is_empty() && mantissa.chars().all(|c| c == '0' || c == '.' || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let k = kinds("fn main() {}");
        assert_eq!(k[0], (TokKind::Ident, "fn".into()));
        assert_eq!(k[1], (TokKind::Ident, "main".into()));
        assert_eq!(k[2].0, TokKind::Punct);
    }

    #[test]
    fn path_sep_is_one_token() {
        let k = kinds("std::time::Instant");
        assert_eq!(
            k.iter().map(|(_, t)| t.as_str()).collect::<Vec<_>>(),
            vec!["std", "::", "time", "::", "Instant"]
        );
    }

    #[test]
    fn nested_block_comments() {
        let k = kinds("/* a /* b */ c */ x");
        assert_eq!(k.len(), 2);
        assert_eq!(k[0].0, TokKind::BlockComment);
        assert_eq!(k[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let k = kinds(r####"let s = r#"has "quotes" and // HashMap"#;"####);
        let strs: Vec<_> = k.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("HashMap"));
        // and HashMap never surfaced as an identifier
        assert!(!k
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "HashMap"));
    }

    #[test]
    fn char_vs_lifetime() {
        let k = kinds("let c: char = 'a'; fn f<'a>(x: &'a str) {} let n = '\\n';");
        let chars = k.iter().filter(|(k, _)| *k == TokKind::Char).count();
        let lifetimes: Vec<_> = k
            .iter()
            .filter(|(k, t)| *k == TokKind::Lifetime && t == "'a")
            .collect();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes.len(), 2);
    }

    #[test]
    fn numbers_and_ranges() {
        let k = kinds("0..10 0.5 0.0f64 1e-9 0x1f 1.max(2)");
        let nums: Vec<_> = k
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            nums,
            vec!["0", "10", "0.5", "0.0f64", "1e-9", "0x1f", "1", "2"]
        );
    }

    #[test]
    fn zero_float_detection() {
        for yes in ["0.0", "0.", "0.00", "0.0f64", "0f64", "0_f32", "0.0e0"] {
            assert!(is_zero_float_literal(yes), "{yes}");
        }
        for no in ["0", "0usize", "1.0", "0.1", "0x0", "10.0"] {
            assert!(!is_zero_float_literal(no), "{no}");
        }
    }

    #[test]
    fn line_and_col_positions() {
        let src = "ab\n  cd";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn byte_and_c_strings() {
        let k = kinds(r##"b"bytes" c"cstr" b'\n' br"raw""##);
        let strs = k.iter().filter(|(kk, _)| *kk == TokKind::Str).count();
        assert_eq!(strs, 3);
        assert_eq!(k.iter().filter(|(kk, _)| *kk == TokKind::Char).count(), 1);
    }

    #[test]
    fn raw_ident() {
        let k = kinds("let r#match = 1;");
        assert!(k
            .iter()
            .any(|(kk, t)| *kk == TokKind::Ident && t == "r#match"));
    }
}
