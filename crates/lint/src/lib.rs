//! `kamino-lint` — the workspace contract checker.
//!
//! Kamino's correctness story rests on two contracts that unit tests can
//! only probe point-wise: **bit-identical determinism** (fixed seed ⇒
//! identical artifacts — the basis of snapshot resume, the repro cache,
//! and every parity twin) and **privacy discipline** (all randomness
//! flows through planner-accounted mechanisms). This crate enforces the
//! hazard classes statically, at review time: a token-level Rust lexer
//! ([`lex`]) feeds a rule engine ([`rules`], [`engine`]) that walks every
//! workspace `.rs` file and reports findings with `file:line:col`, a rule
//! id, and a fix hint.
//!
//! Justified sites are suppressed per-site with a documented reason:
//!
//! ```text
//! // kamino-lint: allow(rule_id) -- why this site is exempt
//! ```
//!
//! See ARCHITECTURE.md "Static analysis & contract enforcement" for the
//! rule table and the rule ↔ contract mapping.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod lex;
pub mod report;
pub mod rules;
pub mod source;

pub use engine::{lint_tree, Finding, Report};
