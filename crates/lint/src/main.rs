//! The `kamino-lint` binary.
//!
//! ```text
//! kamino-lint [--json] [--root PATH] [--quiet]
//! ```
//!
//! Walks the workspace (auto-detected from the current directory unless
//! `--root` is given), runs every contract rule, and prints findings —
//! human-readable by default, byte-deterministic JSON under `--json`.
//! Exits 0 when clean, 1 on any unsuppressed finding, 2 on usage or I/O
//! errors.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use kamino_lint::engine::{find_workspace_root, lint_tree};
use kamino_lint::report::{render_human, render_json};

fn main() -> ExitCode {
    let mut json = false;
    let mut quiet = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("kamino-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: kamino-lint [--json] [--root PATH] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("kamino-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("kamino-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "kamino-lint: no workspace root found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kamino-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", render_json(&report));
    } else if !quiet {
        print!("{}", render_human(&report));
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
