//! Rendering: human-readable text and byte-deterministic JSON.
//!
//! The JSON writer mirrors `bench_report`'s discipline — keys in sorted
//! (BTreeMap) order, no timestamps, no float formatting surprises — so
//! two runs over the same tree are byte-identical.

use crate::engine::{Finding, Report};

/// Human output: one block per finding plus a summary line.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n    hint: {}\n",
            f.file, f.line, f.col, f.rule, f.message, f.hint
        ));
    }
    let counts = report.rule_counts();
    if !counts.is_empty() {
        out.push('\n');
        for (rule, n) in &counts {
            out.push_str(&format!("  {rule}: {n}\n"));
        }
    }
    out.push_str(&format!(
        "{} finding(s), {} suppressed, {} file(s) scanned\n",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned
    ));
    out
}

/// Deterministic JSON document for `--json`.
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"findings\": [");
    write_findings(&mut out, &report.findings, false);
    out.push_str("],\n");
    out.push_str("  \"rules\": {");
    let counts = report.rule_counts();
    let mut first = true;
    for (rule, n) in &counts {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{rule}\": {n}"));
    }
    out.push_str("},\n");
    out.push_str("  \"summary\": {");
    out.push_str(&format!(
        "\"files_scanned\": {}, \"findings\": {}, \"suppressed\": {}",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len()
    ));
    out.push_str("},\n");
    out.push_str("  \"suppressed\": [");
    write_findings(&mut out, &report.suppressed, true);
    out.push_str("],\n");
    out.push_str("  \"version\": 1\n");
    out.push_str("}\n");
    out
}

fn write_findings(out: &mut String, findings: &[Finding], with_reason: bool) {
    if findings.is_empty() {
        return;
    }
    out.push('\n');
    for (i, f) in findings.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"col\": {}, \"file\": {}, \"hint\": {}, \"line\": {}, \"message\": {}",
            f.col,
            json_str(&f.file),
            json_str(&f.hint),
            f.line,
            json_str(&f.message)
        ));
        if with_reason {
            out.push_str(&format!(
                ", \"reason\": {}",
                json_str(f.suppressed.as_deref().unwrap_or(""))
            ));
        }
        out.push_str(&format!(", \"rule\": {}", json_str(&f.rule)));
        out.push('}');
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ");
}

/// Minimal JSON string escape (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Finding;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                rule: "hash_order".into(),
                file: "crates/eval/src/x.rs".into(),
                line: 3,
                col: 7,
                message: "a \"quoted\" message".into(),
                hint: "fix it".into(),
                suppressed: None,
            }],
            suppressed: vec![],
            files_scanned: 1,
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let r = sample();
        let a = render_json(&r);
        let b = render_json(&r);
        assert_eq!(a, b);
        assert!(a.contains("\\\"quoted\\\""));
        assert!(a.contains("\"version\": 1"));
    }

    #[test]
    fn human_mentions_rule_and_hint() {
        let text = render_human(&sample());
        assert!(text.contains("[hash_order]"));
        assert!(text.contains("hint: fix it"));
        assert!(text.contains("1 finding(s)"));
    }
}
