//! The contract rules.
//!
//! Each rule is a token-pattern detector for a hazard class this codebase
//! has actually fought (see ARCHITECTURE.md "Static analysis & contract
//! enforcement" for the rule ↔ contract mapping). Rules are heuristic by
//! design: they over-approximate, and justified sites carry a
//! `// kamino-lint: allow(rule) -- reason` pragma so every exemption is
//! documented at the site.

use crate::lex::{is_zero_float_literal, TokKind};
use crate::source::{FileCtx, FileKind};

/// Every rule id the engine knows, including the engine-level pragma
/// validator. Sorted; used to validate pragmas and `--json` rule counts.
pub const RULE_IDS: &[&str] = &[
    "bad_pragma",
    "bare_instant",
    "float_fold",
    "hash_order",
    "missing_lint_header",
    "panic_in_serve",
    "raw_rng",
    "twin_drift",
    "unflushed_write",
    "unordered_reduce",
    "wall_clock",
];

/// Crates whose artifacts (reports, HTTP responses, generated corpora,
/// bench JSON) must be byte-stable: hash iteration order is banned there.
const OUTPUT_CRATES: &[&str] = &["bench", "datasets", "eval", "serve"];

/// Crates allowed to construct RNG streams: `dp` owns the
/// planner-registered mechanisms, `core` owns the per-shard seeded
/// sample/train streams and the snapshot RNG cursor.
const RNG_CRATES: &[&str] = &["core", "dp"];

/// One reported (pre-suppression) rule hit.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Rule id, one of [`RULE_IDS`].
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

/// Run every per-file rule against one file.
pub fn check_file(ctx: &FileCtx) -> Vec<RawFinding> {
    let mut out = Vec::new();
    hash_order(ctx, &mut out);
    wall_clock(ctx, &mut out);
    bare_instant(ctx, &mut out);
    raw_rng(ctx, &mut out);
    float_fold(ctx, &mut out);
    unordered_reduce(ctx, &mut out);
    panic_in_serve(ctx, &mut out);
    unflushed_write(ctx, &mut out);
    missing_lint_header(ctx, &mut out);
    out
}

/// Text of the `ci`-th code token (comment-free view).
fn t(ctx: &FileCtx, ci: usize) -> &str {
    ctx.tokens[ctx.code[ci]].text(&ctx.src)
}

fn pos(ctx: &FileCtx, ci: usize) -> (u32, u32) {
    let tok = &ctx.tokens[ctx.code[ci]];
    (tok.line, tok.col)
}

/// `hash_order`: `HashMap`/`HashSet` anywhere in an output-producing
/// crate (tests included — hash order makes tests flaky too).
fn hash_order(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if !OUTPUT_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for ci in 0..ctx.code.len() {
        let txt = t(ctx, ci);
        if txt == "HashMap" || txt == "HashSet" {
            let (line, col) = pos(ctx, ci);
            out.push(RawFinding {
                rule: "hash_order",
                line,
                col,
                message: format!(
                    "`{txt}` in output-producing crate `{}`: iteration order varies per process, breaking byte-stable artifacts",
                    ctx.crate_name
                ),
                hint: "use BTreeMap/BTreeSet, or sort entries before anything order-sensitive"
                    .into(),
            });
        }
    }
}

/// `wall_clock`: `Instant::now()` / `SystemTime` reads outside tests and
/// benches. Timing-producing modules annotate each site.
fn wall_clock(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if matches!(ctx.kind, FileKind::TestDir | FileKind::Bench) {
        return;
    }
    let n = ctx.code.len();
    for ci in 0..n {
        if ctx.is_test_code(ci) {
            continue;
        }
        let txt = t(ctx, ci);
        let hit =
            (txt == "Instant" && ci + 2 < n && t(ctx, ci + 1) == "::" && t(ctx, ci + 2) == "now")
                || txt == "SystemTime";
        if hit {
            let (line, col) = pos(ctx, ci);
            out.push(RawFinding {
                rule: "wall_clock",
                line,
                col,
                message: "wall-clock read in deterministic-contract code: timestamps leaking into artifacts break byte-identical re-runs".into(),
                hint: "keep timing behind a --timings gate and out of default artifacts; annotate gated sites with a reason".into(),
            });
        }
    }
}

/// `bare_instant`: any `Instant::now()` / `SystemTime` read outside
/// tests and benches, in *every* crate. Distinct from [`wall_clock`]
/// (which is about timestamps reaching artifacts): this rule funnels all
/// timing through `kamino_obs::clock`, the workspace's single choke
/// point, so "does observability read the clock?" stays auditable at one
/// site. Both rules fire on a raw read; `kamino_obs::clock` itself
/// carries the one dual pragma.
fn bare_instant(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if matches!(ctx.kind, FileKind::TestDir | FileKind::Bench) {
        return;
    }
    let n = ctx.code.len();
    for ci in 0..n {
        if ctx.is_test_code(ci) {
            continue;
        }
        let txt = t(ctx, ci);
        let hit =
            (txt == "Instant" && ci + 2 < n && t(ctx, ci + 1) == "::" && t(ctx, ci + 2) == "now")
                || txt == "SystemTime";
        if hit {
            let (line, col) = pos(ctx, ci);
            out.push(RawFinding {
                rule: "bare_instant",
                line,
                col,
                message: "raw clock read bypasses the kamino_obs::clock choke point, making observability's clock usage unauditable".into(),
                hint: "call kamino_obs::clock::now_nanos()/secs_since() instead; the choke point itself holds the single allow pragma".into(),
            });
        }
    }
}

/// `raw_rng`: RNG construction outside `kamino-dp`'s planner-registered
/// mechanisms and `kamino-core`'s per-shard seeded streams. Entropy-based
/// sources are flagged everywhere, even in tests.
fn raw_rng(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let n = ctx.code.len();
    for ci in 0..n {
        let txt = t(ctx, ci);
        let is_call = ci + 1 < n && t(ctx, ci + 1) == "(";
        if matches!(txt, "thread_rng" | "from_entropy" | "OsRng") {
            let (line, col) = pos(ctx, ci);
            out.push(RawFinding {
                rule: "raw_rng",
                line,
                col,
                message: format!(
                    "`{txt}`: entropy-seeded randomness is never planner-accounted and breaks fixed-seed determinism"
                ),
                hint: "derive every stream from the session seed via kamino-dp mechanisms or per-shard seeded streams".into(),
            });
            continue;
        }
        if matches!(txt, "from_seed" | "seed_from_u64" | "from_state")
            && is_call
            && !matches!(ctx.kind, FileKind::TestDir | FileKind::Bench)
            && !ctx.is_test_code(ci)
            && !RNG_CRATES.contains(&ctx.crate_name.as_str())
        {
            let (line, col) = pos(ctx, ci);
            out.push(RawFinding {
                rule: "raw_rng",
                line,
                col,
                message: format!(
                    "RNG constructed via `{txt}` outside kamino-dp/kamino-core: ad-hoc streams bypass the budget planner's accounting",
                    ),
                hint: "take the stream from the session (planner-registered mechanism or per-shard seed); annotate justified harness/baseline streams with a reason".into(),
            });
        }
    }
}

/// `float_fold`: an `f64` fold accumulator seeded with literal `+0.0`.
/// The fold identity for float sums is `-0.0` (the PR 5 parity-bug
/// class); max/min folds annotate instead.
fn float_fold(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let n = ctx.code.len();
    for ci in 0..n.saturating_sub(2) {
        if t(ctx, ci) == "fold" && t(ctx, ci + 1) == "(" {
            let lit = &ctx.tokens[ctx.code[ci + 2]];
            if lit.kind == TokKind::Num && is_zero_float_literal(lit.text(&ctx.src)) {
                let (line, col) = (lit.line, lit.col);
                out.push(RawFinding {
                    rule: "float_fold",
                    line,
                    col,
                    message: "float fold accumulator starts at +0.0: the sum fold identity is -0.0, and the +0.0 seed silently breaks tiled/serial bit-parity".into(),
                    hint: "seed sums with -0.0 (matching `Sum for f64`); for max/min folds annotate the site with a reason".into(),
                });
            }
        }
    }
}

/// `unordered_reduce`: pushing/extending a shared locked collection —
/// arrival order under concurrent scheduling is nondeterministic.
fn unordered_reduce(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let n = ctx.code.len();
    for ci in 0..n {
        if !(t(ctx, ci) == "lock" && ci + 2 < n && t(ctx, ci + 1) == "(" && t(ctx, ci + 2) == ")") {
            continue;
        }
        // walk the rest of the expression chain: .unwrap()/.expect(…)
        // wrappers, then look for an order-sensitive append
        let mut j = ci + 3;
        loop {
            if j + 1 >= n || t(ctx, j) != "." {
                break;
            }
            let name = t(ctx, j + 1);
            if matches!(name, "unwrap" | "expect") {
                // skip past the call's parentheses
                let mut k = j + 2;
                let mut depth = 0usize;
                while k < n {
                    match t(ctx, k) {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = k + 1;
                continue;
            }
            if matches!(name, "push" | "extend") {
                let (line, col) = pos(ctx, j + 1);
                out.push(RawFinding {
                    rule: "unordered_reduce",
                    line,
                    col,
                    message: format!(
                        "`.lock().{name}(..)`: appends to a shared locked collection land in scheduling order, which is not deterministic",
                    ),
                    hint: "collect into per-worker or index-addressed slots and merge in a fixed order (see ScoreSet::merge / the repro matrix slots)".into(),
                });
            }
            break;
        }
    }
}

/// `panic_in_serve`: `unwrap`/`expect`/`panic!` in `kamino-serve`
/// non-test code. `lock().unwrap()` (poison propagation) is exempt.
fn panic_in_serve(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if ctx.crate_name != "serve" || matches!(ctx.kind, FileKind::TestDir | FileKind::Bench) {
        return;
    }
    let n = ctx.code.len();
    for ci in 0..n {
        if ctx.is_test_code(ci) {
            continue;
        }
        let txt = t(ctx, ci);
        let preceded_by_lock = ci >= 4
            && t(ctx, ci - 1) == "."
            && t(ctx, ci - 2) == ")"
            && t(ctx, ci - 3) == "("
            && t(ctx, ci - 4) == "lock";
        let hit = match txt {
            "panic" => ci + 1 < n && t(ctx, ci + 1) == "!",
            "unwrap" => {
                ci + 2 < n
                    && t(ctx, ci + 1) == "("
                    && t(ctx, ci + 2) == ")"
                    && ci >= 1
                    && t(ctx, ci - 1) == "."
                    && !preceded_by_lock
            }
            "expect" => {
                // Option/Result::expect takes a &str message; a non-string
                // argument means some other method named `expect`
                ci + 2 < n
                    && t(ctx, ci + 1) == "("
                    && ctx.tokens[ctx.code[ci + 2]].kind == TokKind::Str
                    && !preceded_by_lock
            }
            _ => false,
        };
        if hit {
            let (line, col) = pos(ctx, ci);
            out.push(RawFinding {
                rule: "panic_in_serve",
                line,
                col,
                message: format!(
                    "`{txt}` on a serving path: a panic tears down the request thread and can poison shared model state",
                ),
                hint: "map the error to an HTTP status instead (lock().unwrap() poison propagation is exempt); annotate justified sites with a reason".into(),
            });
        }
    }
}

/// How many code tokens after a `File::create` the rule scans for a
/// `sync_all` before declaring the write unflushed. The scan stops early
/// at the next `fn` so a sync in the following function never gets
/// credited.
const SYNC_WINDOW: usize = 80;

/// `unflushed_write`: persistence writes in `kamino-serve` that bypass
/// the `serve::durable` fsync/rename protocol. `fs::write` has no handle
/// to sync; a `File::create` with no `sync_all` in the statements that
/// follow leaves bytes in the page cache that a crash can drop, exactly
/// the torn-snapshot class the atomic installer exists to prevent.
fn unflushed_write(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    if ctx.crate_name != "serve" || matches!(ctx.kind, FileKind::TestDir | FileKind::Bench) {
        return;
    }
    let n = ctx.code.len();
    for ci in 0..n {
        if ctx.is_test_code(ci) {
            continue;
        }
        let path_call = |what: &str| {
            t(ctx, ci) == what
                && ci + 3 < n
                && t(ctx, ci + 1) == "::"
                && t(ctx, ci + 2) == if what == "fs" { "write" } else { "create" }
                && t(ctx, ci + 3) == "("
        };
        let (hit, message) = if path_call("fs") {
            (
                true,
                "`fs::write` on a serve persistence path: the convenience writer has no handle to fsync, so a crash can drop or tear the file",
            )
        } else if path_call("File") {
            let mut synced = false;
            let mut j = ci + 4;
            let end = (ci + SYNC_WINDOW).min(n);
            while j < end {
                match t(ctx, j) {
                    "sync_all" => {
                        synced = true;
                        break;
                    }
                    "fn" => break,
                    _ => {}
                }
                j += 1;
            }
            (
                !synced,
                "`File::create` on a serve persistence path with no `sync_all` before the function ends: unsynced bytes sit in the page cache a crash can drop",
            )
        } else {
            (false, "")
        };
        if hit {
            let (line, col) = pos(ctx, ci);
            out.push(RawFinding {
                rule: "unflushed_write",
                line,
                col,
                message: message.into(),
                hint: "route the write through serve::durable::write_atomic (write-tmp, fsync, rename, fsync dir), or sync_all the handle; annotate best-effort debug artifacts with a reason".into(),
            });
        }
    }
}

/// `missing_lint_header`: every crate root must carry
/// `#![warn(missing_docs)]` and `#![forbid(unsafe_code)]`.
fn missing_lint_header(ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let is_crate_root = ctx.rel_path == "src/lib.rs"
        || (ctx.rel_path.starts_with("crates/") && ctx.rel_path.ends_with("/src/lib.rs"));
    if !is_crate_root {
        return;
    }
    let mut has_docs = false;
    let mut has_unsafe = false;
    let n = ctx.code.len();
    let mut ci = 0;
    while ci + 2 < n {
        if t(ctx, ci) == "#" && t(ctx, ci + 1) == "!" && t(ctx, ci + 2) == "[" {
            let mut idents = Vec::new();
            let mut j = ci + 2;
            let mut depth = 0usize;
            while j < n {
                match t(ctx, j) {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    other => idents.push(other.to_string()),
                }
                j += 1;
            }
            let has = |s: &str| idents.iter().any(|i| i == s);
            if has("warn") && has("missing_docs") {
                has_docs = true;
            }
            if has("forbid") && has("unsafe_code") {
                has_unsafe = true;
            }
            ci = j + 1;
            continue;
        }
        ci += 1;
    }
    for (ok, attr) in [
        (has_docs, "#![warn(missing_docs)]"),
        (has_unsafe, "#![forbid(unsafe_code)]"),
    ] {
        if !ok {
            out.push(RawFinding {
                rule: "missing_lint_header",
                line: 1,
                col: 1,
                message: format!("crate root lacks `{attr}`"),
                hint: "add the inner attribute below the crate docs; every workspace crate carries both".into(),
            });
        }
    }
}

/// `twin_drift`: a workspace-level pass. Every `*_ref`/`*_reference`
/// function (and `*Ref` struct) defined in library code must be
/// referenced from at least one test or bench — unexercised parity twins
/// rot silently.
pub fn twin_drift(files: &[FileCtx]) -> Vec<(usize, RawFinding)> {
    // pass 1: definitions in non-test library code
    struct Twin {
        name: String,
        file_idx: usize,
        line: u32,
        col: u32,
    }
    let mut twins: Vec<Twin> = Vec::new();
    for (fi, ctx) in files.iter().enumerate() {
        if !matches!(ctx.kind, FileKind::Lib) {
            continue;
        }
        let n = ctx.code.len();
        for ci in 0..n.saturating_sub(1) {
            if ctx.is_test_code(ci) {
                continue;
            }
            let kw = t(ctx, ci);
            let name = t(ctx, ci + 1);
            let is_twin = (kw == "fn" && (name.ends_with("_ref") || name.ends_with("_reference")))
                || (kw == "struct" && name.ends_with("Ref"));
            if is_twin {
                let (line, col) = pos(ctx, ci + 1);
                twins.push(Twin {
                    name: name.to_string(),
                    file_idx: fi,
                    line,
                    col,
                });
            }
        }
    }
    if twins.is_empty() {
        return Vec::new();
    }
    // pass 2: references from test or bench code anywhere in the tree
    let mut used = vec![false; twins.len()];
    for ctx in files {
        let whole_file_counts = matches!(ctx.kind, FileKind::TestDir | FileKind::Bench);
        for ci in 0..ctx.code.len() {
            if !whole_file_counts && !ctx.is_test_code(ci) {
                continue;
            }
            let txt = t(ctx, ci);
            for (wi, twin) in twins.iter().enumerate() {
                if !used[wi] && twin.name == txt {
                    used[wi] = true;
                }
            }
        }
    }
    twins
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(twin, _)| {
            (
                twin.file_idx,
                RawFinding {
                    rule: "twin_drift",
                    line: twin.line,
                    col: twin.col,
                    message: format!(
                        "reference twin `{}` is not exercised by any test or bench; an unchecked twin stops guaranteeing parity",
                        twin.name
                    ),
                    hint: "add a parity test or bench pairing the twin with its optimized path, or delete the twin".into(),
                },
            )
        })
        .collect()
}
