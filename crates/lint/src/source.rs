//! Per-file context the rules run against: crate attribution, target
//! kind, `#[cfg(test)]`/`#[test]` region map, and suppression pragmas.
//!
//! # Pragma syntax
//!
//! ```text
//! // kamino-lint: allow(rule_id) -- reason the site is exempt
//! // kamino-lint: allow(rule_a, rule_b) -- one reason for both
//! ```
//!
//! The reason is mandatory — a pragma without `-- reason` is itself
//! reported (rule id `bad_pragma`), as is one naming an unknown rule. A
//! pragma suppresses matching findings on its own line; when the comment
//! stands alone on its line, it suppresses the following line instead.

use crate::lex::{lex, TokKind, Token};
use crate::rules::RULE_IDS;

/// Which kind of target a file belongs to, by path convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/**`, excluding `src/bin`).
    Lib,
    /// Binary source (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/**`).
    TestDir,
    /// Benchmarks (`benches/**`).
    Bench,
    /// Examples (`examples/**`).
    Example,
}

/// A parsed suppression pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rules the pragma suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification after `--`.
    pub reason: String,
    /// Line the suppression applies to (the pragma's own line, or the
    /// next line for a stand-alone comment).
    pub applies_to_line: u32,
    /// Line the pragma itself sits on.
    pub line: u32,
    /// Column of the comment token.
    pub col: u32,
}

/// A malformed pragma (missing reason, unknown rule, bad syntax).
#[derive(Debug, Clone)]
pub struct BadPragma {
    /// What is wrong with it.
    pub message: String,
    /// Line of the comment token.
    pub line: u32,
    /// Column of the comment token.
    pub col: u32,
}

/// Everything a rule needs to know about one source file.
pub struct FileCtx {
    /// Path relative to the scan root, with forward slashes.
    pub rel_path: String,
    /// Crate the file belongs to (`eval`, `serve`, …; the facade and its
    /// root-level tests/examples are `kamino`).
    pub crate_name: String,
    /// Target kind by path convention.
    pub kind: FileKind,
    /// Full source text.
    pub src: String,
    /// Lexed tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indexes into `tokens` of non-comment tokens, in order. Rules match
    /// against this view so comments never split a pattern.
    pub code: Vec<usize>,
    /// `in_test[i]` is true when `tokens[i]` sits inside a
    /// `#[cfg(test)]` item or `#[test]` function.
    pub in_test: Vec<bool>,
    /// Well-formed suppression pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas, reported as findings by the engine.
    pub bad_pragmas: Vec<BadPragma>,
}

impl FileCtx {
    /// Lex and classify one file.
    pub fn new(rel_path: String, src: String) -> FileCtx {
        let crate_name = crate_of(&rel_path);
        let kind = kind_of(&rel_path);
        let tokens = lex(&src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let in_test = test_regions(&tokens, &code, &src);
        let (pragmas, bad_pragmas) = scan_pragmas(&tokens, &src);
        FileCtx {
            rel_path,
            crate_name,
            kind,
            src,
            tokens,
            code,
            in_test,
            pragmas,
            bad_pragmas,
        }
    }

    /// Text of the `i`-th token.
    pub fn text(&self, tok: &Token) -> &str {
        tok.text(&self.src)
    }

    /// True when the `code`-view position `ci` is inside test code (or
    /// the whole file is a test/bench target).
    pub fn is_test_code(&self, ci: usize) -> bool {
        matches!(self.kind, FileKind::TestDir) || self.in_test[self.code[ci]]
    }
}

/// Crate a path belongs to. `crates/<name>/…` → `<name>`; everything at
/// the repository root (facade `src/`, `tests/`, `examples/`) → `kamino`.
fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("kamino").to_string(),
        _ => "kamino".to_string(),
    }
}

fn kind_of(rel_path: &str) -> FileKind {
    let p = rel_path;
    if p.contains("/tests/") || p.starts_with("tests/") {
        FileKind::TestDir
    } else if p.contains("/benches/") || p.starts_with("benches/") {
        FileKind::Bench
    } else if p.contains("/examples/") || p.starts_with("examples/") {
        FileKind::Example
    } else if p.contains("/src/bin/") || p.ends_with("/main.rs") || p == "src/main.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Mark tokens covered by `#[cfg(test)]` items and `#[test]`/
/// `#[bench]`-attributed functions. Works on the comment-free view, then
/// paints the full token range of each region.
fn test_regions(tokens: &[Token], code: &[usize], src: &str) -> Vec<bool> {
    let mut marked = vec![false; tokens.len()];
    let n = code.len();
    let txt = |ci: usize| tokens[code[ci]].text(src);
    let mut ci = 0;
    while ci < n {
        if txt(ci) == "#" && ci + 1 < n && txt(ci + 1) == "[" {
            // parse the attribute content up to the matching ']'
            let mut depth = 0usize;
            let mut j = ci + 1;
            let mut is_test_attr = false;
            let mut saw_cfg = false;
            while j < n {
                match txt(j) {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "cfg" if depth == 1 => saw_cfg = true,
                    // `#[test]` directly, or `test` anywhere inside a
                    // `cfg(…)` condition (covers all(test, …))
                    "test" if depth == 1 || saw_cfg => is_test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test_attr && j < n {
                // skip any further attributes, then paint the item: up to
                // the close of its first brace block, or the first `;` at
                // depth 0 (e.g. `#[cfg(test)] use …;`)
                let region_start = code[ci];
                let mut k = j + 1;
                while k + 1 < n && txt(k) == "#" && txt(k + 1) == "[" {
                    let mut d = 0usize;
                    k += 1;
                    while k < n {
                        match txt(k) {
                            "[" | "(" => d += 1,
                            "]" | ")" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                let mut brace_depth = 0usize;
                let mut entered = false;
                while k < n {
                    match txt(k) {
                        "{" => {
                            brace_depth += 1;
                            entered = true;
                        }
                        "}" => {
                            brace_depth = brace_depth.saturating_sub(1);
                            if entered && brace_depth == 0 {
                                break;
                            }
                        }
                        ";" if !entered => break,
                        _ => {}
                    }
                    k += 1;
                }
                let region_end = if k < n { code[k] } else { tokens.len() - 1 };
                for slot in marked.iter_mut().take(region_end + 1).skip(region_start) {
                    *slot = true;
                }
                ci = k + 1;
                continue;
            }
            ci = j + 1;
            continue;
        }
        ci += 1;
    }
    marked
}

/// Pull `kamino-lint:` pragmas out of the comment tokens.
fn scan_pragmas(tokens: &[Token], src: &str) -> (Vec<Pragma>, Vec<BadPragma>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for tok in tokens {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        let body = tok.text(src).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("kamino-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(inner) = rest.strip_prefix("allow") else {
            bad.push(BadPragma {
                message: format!("unrecognized kamino-lint pragma `{rest}` (expected `allow(rule, …) -- reason`)"),
                line: tok.line,
                col: tok.col,
            });
            continue;
        };
        let inner = inner.trim_start();
        let (list, tail) = match inner.strip_prefix('(').and_then(|s| s.split_once(')')) {
            Some(pair) => pair,
            None => {
                bad.push(BadPragma {
                    message: "malformed allow pragma: expected `allow(rule, …)`".into(),
                    line: tok.line,
                    col: tok.col,
                });
                continue;
            }
        };
        let reason = match tail.trim().strip_prefix("--") {
            Some(r) if !r.trim().is_empty() => r.trim().to_string(),
            _ => {
                bad.push(BadPragma {
                    message:
                        "allow pragma is missing its reason: append `-- why this site is exempt`"
                            .into(),
                    line: tok.line,
                    col: tok.col,
                });
                continue;
            }
        };
        let rules: Vec<String> = list
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad.push(BadPragma {
                message: "allow pragma names no rules".into(),
                line: tok.line,
                col: tok.col,
            });
            continue;
        }
        let mut ok = true;
        for r in &rules {
            if !RULE_IDS.contains(&r.as_str()) {
                bad.push(BadPragma {
                    message: format!("allow pragma names unknown rule `{r}`"),
                    line: tok.line,
                    col: tok.col,
                });
                ok = false;
            }
        }
        if !ok {
            continue;
        }
        // a stand-alone comment guards the next line; a trailing comment
        // guards its own line
        let stands_alone = src[..tok.start]
            .rfind('\n')
            .map(|nl| src[nl + 1..tok.start].trim().is_empty())
            .unwrap_or_else(|| src[..tok.start].trim().is_empty());
        let applies_to_line = if stands_alone { tok.line + 1 } else { tok.line };
        good.push(Pragma {
            rules,
            reason,
            applies_to_line,
            line: tok.line,
            col: tok.col,
        });
    }
    (good, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/eval/src/marginals.rs"), "eval");
        assert_eq!(crate_of("src/lib.rs"), "kamino");
        assert_eq!(crate_of("tests/smoke.rs"), "kamino");
    }

    #[test]
    fn kind_classification() {
        assert_eq!(kind_of("crates/serve/src/http.rs"), FileKind::Lib);
        assert_eq!(kind_of("crates/serve/src/main.rs"), FileKind::Bin);
        assert_eq!(kind_of("crates/bench/src/bin/repro.rs"), FileKind::Bin);
        assert_eq!(kind_of("crates/nn/tests/kernels.rs"), FileKind::TestDir);
        assert_eq!(kind_of("crates/bench/benches/micro.rs"), FileKind::Bench);
        assert_eq!(kind_of("examples/serve_and_query.rs"), FileKind::Example);
    }

    #[test]
    fn test_region_covers_cfg_test_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}\n";
        let ctx = FileCtx::new("crates/x/src/lib.rs".into(), src.into());
        let at = |name: &str| {
            let ci = (0..ctx.code.len())
                .find(|&c| ctx.text(&ctx.tokens[ctx.code[c]]) == name)
                .unwrap();
            ctx.is_test_code(ci)
        };
        assert!(!at("live"));
        assert!(at("inner"));
        assert!(!at("after"));
    }

    #[test]
    fn test_attribute_on_fn() {
        let src = "#[test]\nfn check() { body(); }\nfn live() {}\n";
        let ctx = FileCtx::new("crates/x/src/lib.rs".into(), src.into());
        let at = |name: &str| {
            let ci = (0..ctx.code.len())
                .find(|&c| ctx.text(&ctx.tokens[ctx.code[c]]) == name)
                .unwrap();
            ctx.is_test_code(ci)
        };
        assert!(at("body"));
        assert!(!at("live"));
    }

    #[test]
    fn pragma_parse_and_placement() {
        let src = "\
// kamino-lint: allow(hash_order) -- stand-alone guards next line
let a = 1;
let b = 2; // kamino-lint: allow(wall_clock, raw_rng) -- trailing guards its line
// kamino-lint: allow(hash_order)
// kamino-lint: allow(nope) -- unknown rule
";
        let ctx = FileCtx::new("crates/x/src/lib.rs".into(), src.into());
        assert_eq!(ctx.pragmas.len(), 2);
        assert_eq!(ctx.pragmas[0].rules, vec!["hash_order"]);
        assert_eq!(ctx.pragmas[0].applies_to_line, 2);
        assert_eq!(
            ctx.pragmas[1].rules,
            vec!["wall_clock".to_string(), "raw_rng".to_string()]
        );
        assert_eq!(ctx.pragmas[1].applies_to_line, 3);
        assert_eq!(ctx.bad_pragmas.len(), 2, "missing reason + unknown rule");
    }
}
