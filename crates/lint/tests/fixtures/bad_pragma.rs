// kamino-lint: allow(hash_order)
// kamino-lint: allow(no_such_rule) -- reason here
// kamino-lint: deny(hash_order) -- not a verb we support
pub fn noop() {}
