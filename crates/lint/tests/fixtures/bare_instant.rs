use std::time::Instant;

pub fn timed() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn gated() -> bool {
    let now = std::time::SystemTime::now(); // kamino-lint: allow(bare_instant, wall_clock) -- fixture for the dual choke-point pragma
    now.elapsed().is_ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
