pub fn total(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x)
}

pub fn total_ok(xs: &[f64]) -> f64 {
    xs.iter().fold(-0.0, |acc, x| acc + x)
}

pub fn peak(xs: &[f64]) -> f64 {
    // kamino-lint: allow(float_fold) -- max accumulator, not a sum seed
    xs.iter().copied().fold(0.0f64, f64::max)
}

pub fn count(xs: &[u64]) -> u64 {
    xs.iter().fold(0, |acc, _| acc + 1)
}
