use std::collections::HashMap;
use std::collections::HashSet;

// kamino-lint: allow(hash_order) -- scratch map drained via a sorted Vec
fn scratch(m: HashMap<u32, u32>) -> usize {
    m.len()
}

fn fresh() -> HashSet<u64> {
    HashSet::new()
}
