//! A crate root carrying both mandatory lint headers.
#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Documented, as the header demands.
pub fn noop() {}
