// a line comment with 'quotes', "strings", and a HashMap marker
/* block /* nested /* deeper */ */ still comment */
const RAW: &str = r#"raw "quoted" body with // comment and /* block */"#;
const RAW2: &str = r##"outer "# inner hash fence"##;
const BYTES: &[u8] = b"byte string \x00 \" escaped";
const CSTR: &str = c"c string";
const BRAW: &[u8] = br"byte raw";
const LIFE: &'static str = "plain with \"escape\"";
const CH: char = '\'';
const NL: char = '\n';
const UNI: char = '\u{1F600}';
const TICK: char = 'x';
const NUM: f64 = 1_000.5e-3;
const ZERO: f64 = 0.0f64;
const HEX: u64 = 0xFF_u64;
const OCT: u64 = 0o77;
const BIN: u64 = 0b1010_1010;
const RANGE_END: u64 = 10;
fn range_sum() -> u64 { (0..RANGE_END).sum() }
fn method_on_int() -> u64 { 1.max(2) }
fn r#match(r#type: u32) -> u32 { r#type }
struct Generic<'a, T: 'a>(&'a T);
