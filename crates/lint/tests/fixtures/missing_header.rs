//! A crate root without the mandatory lint headers.

pub fn noop() {}
