pub fn handle(input: Option<u32>) -> u32 {
    input.unwrap()
}

pub fn message(input: Option<u32>) -> u32 {
    input.expect("missing field")
}

pub fn fail() {
    panic!("boom");
}

pub fn poison(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn own_expect(p: &mut Parser) -> u8 {
    p.expect(b'[')
}

// kamino-lint: allow(panic_in_serve) -- startup-only path, before the listener binds
pub fn startup(cfg: Option<u32>) -> u32 { cfg.unwrap() }

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
