pub fn entropy() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn seeded() -> u64 {
    let mut rng = StdRng::seed_from_u64(17);
    rng.next_u64()
}

// kamino-lint: allow(raw_rng) -- harness stream pinned to the session seed
pub fn annotated() -> u64 { Pcg64::from_seed([0u8; 32]).next() }
