pub fn matmul(a: &[f64]) -> f64 {
    a.iter().sum()
}

pub fn matmul_ref(a: &[f64]) -> f64 {
    a.iter().copied().sum()
}

pub fn decay_reference(a: &[f64]) -> f64 {
    a.first().copied().unwrap_or(-0.0)
}

// kamino-lint: allow(twin_drift) -- transcribed constant table, not a runtime parity twin
pub struct TableRef {
    /// Row index.
    pub row: usize,
}
