#[test]
fn matmul_matches_reference() {
    assert_eq!(matmul_ref(&[1.0]), 1.0);
}
