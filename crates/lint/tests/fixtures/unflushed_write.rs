use std::fs::{self, File};
use std::io::{self, Write};

fn leaky(path: &std::path::Path, bytes: &[u8]) -> io::Result<()> {
    fs::write(path, bytes)?;
    let mut f = File::create(path)?;
    f.write_all(bytes)
}

fn durable(path: &std::path::Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

fn debug_dump(path: &std::path::Path, s: &str) {
    // kamino-lint: allow(unflushed_write) -- best-effort debug artifact, not a durability surface
    let _ = fs::write(path, s);
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_are_fine() {
        let _ = std::fs::write("/tmp/x", b"scratch");
    }
}
