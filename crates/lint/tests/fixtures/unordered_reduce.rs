use std::sync::Mutex;

pub fn gather(out: &Mutex<Vec<u64>>, v: u64) {
    out.lock().unwrap().push(v);
}

pub fn merge(out: &Mutex<Vec<u64>>, vs: &[u64]) {
    out.lock().expect("poisoned").extend(vs.iter().copied());
}

pub fn keyed(out: &Mutex<std::collections::BTreeMap<u64, u64>>, k: u64, v: u64) {
    out.lock().unwrap().insert(k, v);
}

pub fn slotted(out: &Mutex<Vec<u64>>, v: u64) {
    // kamino-lint: allow(unordered_reduce) -- demo slot write, merged in fixed order downstream
    out.lock().unwrap().push(v);
}
