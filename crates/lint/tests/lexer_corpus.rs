//! Lexer test over a corpus of gnarly-but-real Rust syntax: nested block
//! comments, raw strings with hash fences, byte/C strings, char vs.
//! lifetime, radix and separator-heavy numbers, raw identifiers.

use kamino_lint::lex::{lex, TokKind};

fn corpus() -> String {
    let path = format!(
        "{}/tests/fixtures/lexer_corpus.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn every_non_whitespace_byte_is_covered_exactly_once() {
    let src = corpus();
    let toks = lex(&src);
    let mut covered = vec![0u8; src.len()];
    let mut prev_end = 0;
    for t in &toks {
        assert!(t.start >= prev_end, "tokens out of order or overlapping");
        assert!(t.end > t.start, "empty token");
        prev_end = t.end;
        for c in covered.iter_mut().take(t.end).skip(t.start) {
            *c += 1;
        }
    }
    // whitespace may sit inside a comment/string token or between tokens;
    // every other byte must belong to exactly one token
    for (i, (&c, b)) in covered.iter().zip(src.bytes()).enumerate() {
        if !b.is_ascii_whitespace() {
            assert_eq!(c, 1, "byte {i} ({:?}) covered {c} times", b as char);
        }
    }
}

#[test]
fn comments_do_not_leak_and_do_not_multiply() {
    let src = corpus();
    let toks = lex(&src);
    let line_comments: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::LineComment)
        .collect();
    let block_comments: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::BlockComment)
        .collect();
    // the `// comment` and `/* block */` inside the raw string on line 3
    // must not lex as comments
    assert_eq!(line_comments.len(), 1);
    assert_eq!(line_comments[0].line, 1);
    assert_eq!(block_comments.len(), 1);
    assert_eq!(block_comments[0].line, 2);
    assert!(block_comments[0].text(&src).ends_with("still comment */"));
    // content of comments and strings never surfaces as identifiers
    for t in toks.iter().filter(|t| t.kind == TokKind::Ident) {
        let txt = t.text(&src);
        assert_ne!(txt, "HashMap", "comment content leaked into idents");
        assert_ne!(txt, "quoted", "raw-string content leaked into idents");
        assert_ne!(txt, "nested", "block-comment content leaked into idents");
    }
}

#[test]
fn string_flavors_lex_as_single_tokens() {
    let src = corpus();
    let toks = lex(&src);
    let strs: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text(&src))
        .collect();
    assert_eq!(
        strs,
        vec![
            r####"r#"raw "quoted" body with // comment and /* block */"#"####,
            r####"r##"outer "# inner hash fence"##"####,
            r#"b"byte string \x00 \" escaped""#,
            r#"c"c string""#,
            r#"br"byte raw""#,
            r#""plain with \"escape\"""#,
        ]
    );
}

#[test]
fn chars_vs_lifetimes() {
    let src = corpus();
    let toks = lex(&src);
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text(&src))
        .collect();
    assert_eq!(chars, vec![r"'\''", r"'\n'", r"'\u{1F600}'", "'x'"]);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text(&src))
        .collect();
    // 'static on the LIFE line, then 'a three times in `Generic<'a, T: 'a>(&'a T)`
    assert_eq!(lifetimes, vec!["'static", "'a", "'a", "'a"]);
}

#[test]
fn numbers_with_separators_radixes_and_method_calls() {
    let src = corpus();
    let toks = lex(&src);
    let nums: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text(&src))
        .collect();
    assert_eq!(
        nums,
        vec![
            "1_000.5e-3",
            "0.0f64",
            "0xFF_u64",
            "0o77",
            "0b1010_1010",
            "10",
            "0", // `(0..RANGE_END)` — the range must not eat the dots
            "1", // `1.max(2)` — the method call must not become a float
            "2",
        ]
    );
}

#[test]
fn raw_identifiers_stay_whole() {
    let src = corpus();
    let toks = lex(&src);
    let raw_idents: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text(&src).starts_with("r#"))
        .map(|t| t.text(&src))
        .collect();
    assert_eq!(raw_idents, vec!["r#match", "r#type", "r#type"]);
}
