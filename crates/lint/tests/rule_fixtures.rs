//! Per-rule fixture tests: each fixture under `tests/fixtures/` seeds
//! known violations (and pragma-suppressed sites), and every test asserts
//! the exact `(rule, line, col)` set the engine must report. The fixture
//! directory itself is excluded from workspace scans by the engine.

use std::path::Path;

use kamino_lint::engine::{find_workspace_root, lint_contexts, lint_tree, Finding, Report};
use kamino_lint::report::render_json;
use kamino_lint::source::FileCtx;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lint one fixture as if it lived at `virtual_path` in the workspace.
fn lint_one(virtual_path: &str, name: &str) -> Report {
    lint_contexts(vec![FileCtx::new(virtual_path.into(), fixture(name))])
}

fn triples(findings: &[Finding]) -> Vec<(&str, u32, u32)> {
    findings
        .iter()
        .map(|f| (f.rule.as_str(), f.line, f.col))
        .collect()
}

#[test]
fn hash_order_flags_maps_in_output_crates_and_honors_pragma() {
    let r = lint_one("crates/eval/src/hash_order_fixture.rs", "hash_order.rs");
    assert_eq!(
        triples(&r.findings),
        vec![
            ("hash_order", 1, 23),
            ("hash_order", 2, 23),
            ("hash_order", 9, 15),
            ("hash_order", 10, 5),
        ]
    );
    assert_eq!(triples(&r.suppressed), vec![("hash_order", 5, 15)]);
    assert_eq!(
        r.suppressed[0].suppressed.as_deref(),
        Some("scratch map drained via a sorted Vec")
    );
}

#[test]
fn hash_order_is_silent_outside_output_crates() {
    let r = lint_one("crates/nn/src/hash_order_fixture.rs", "hash_order.rs");
    assert!(triples(&r.findings).is_empty());
}

#[test]
fn wall_clock_skips_tests_and_honors_trailing_pragma() {
    let r = lint_one("crates/core/src/wall_clock_fixture.rs", "wall_clock.rs");
    // both clock rules fire on a raw read; the line-9 pragma names only
    // wall_clock, so bare_instant still surfaces there
    assert_eq!(
        triples(&r.findings),
        vec![
            ("bare_instant", 4, 14),
            ("wall_clock", 4, 14),
            ("bare_instant", 9, 26),
        ]
    );
    assert_eq!(triples(&r.suppressed), vec![("wall_clock", 9, 26)]);
}

#[test]
fn wall_clock_is_silent_in_bench_targets() {
    let r = lint_one("crates/core/benches/wall_clock_fixture.rs", "wall_clock.rs");
    assert!(triples(&r.findings).is_empty());
}

#[test]
fn bare_instant_fires_in_any_crate_and_dual_pragma_covers_both_rules() {
    // kamino-eval is not an "output crate", but the clock choke point
    // applies everywhere: bare_instant has no crate exemption
    let r = lint_one("crates/eval/src/bare_instant_fixture.rs", "bare_instant.rs");
    assert_eq!(
        triples(&r.findings),
        vec![("bare_instant", 4, 14), ("wall_clock", 4, 14)]
    );
    assert_eq!(
        triples(&r.suppressed),
        vec![("bare_instant", 9, 26), ("wall_clock", 9, 26)]
    );
    assert!(r.findings[0].hint.contains("kamino_obs::clock"));
}

#[test]
fn bare_instant_is_silent_in_test_dirs_and_bench_targets() {
    let r = lint_one(
        "crates/eval/tests/bare_instant_fixture.rs",
        "bare_instant.rs",
    );
    assert!(triples(&r.findings).is_empty());
    let r = lint_one(
        "crates/eval/benches/bare_instant_fixture.rs",
        "bare_instant.rs",
    );
    assert!(triples(&r.findings).is_empty());
}

#[test]
fn raw_rng_flags_entropy_everywhere_and_seeding_outside_rng_crates() {
    let r = lint_one("crates/eval/src/raw_rng_fixture.rs", "raw_rng.rs");
    assert_eq!(
        triples(&r.findings),
        vec![("raw_rng", 2, 19), ("raw_rng", 7, 27)]
    );
    assert_eq!(triples(&r.suppressed), vec![("raw_rng", 12, 36)]);
}

#[test]
fn raw_rng_allows_seeded_streams_in_rng_crates_but_never_entropy() {
    let r = lint_one("crates/core/src/raw_rng_fixture.rs", "raw_rng.rs");
    // thread_rng stays flagged even in kamino-core; seed_from_u64 and
    // from_seed are that crate's prerogative
    assert_eq!(triples(&r.findings), vec![("raw_rng", 2, 19)]);
    assert!(r.suppressed.is_empty());
}

#[test]
fn float_fold_flags_positive_zero_seed_only() {
    let r = lint_one("crates/nn/src/float_fold_fixture.rs", "float_fold.rs");
    // -0.0 (line 6) and integer 0 (line 15) are fine; the pragma covers
    // the max-fold on line 11
    assert_eq!(triples(&r.findings), vec![("float_fold", 2, 20)]);
    assert_eq!(triples(&r.suppressed), vec![("float_fold", 11, 29)]);
}

#[test]
fn unordered_reduce_flags_locked_appends_not_keyed_inserts() {
    let r = lint_one(
        "crates/core/src/unordered_fixture.rs",
        "unordered_reduce.rs",
    );
    assert_eq!(
        triples(&r.findings),
        vec![("unordered_reduce", 4, 25), ("unordered_reduce", 8, 35)]
    );
    assert_eq!(triples(&r.suppressed), vec![("unordered_reduce", 17, 25)]);
}

#[test]
fn panic_in_serve_exempts_lock_poison_tests_and_non_string_expect() {
    let r = lint_one("crates/serve/src/panic_fixture.rs", "panic_in_serve.rs");
    assert_eq!(
        triples(&r.findings),
        vec![
            ("panic_in_serve", 2, 11),
            ("panic_in_serve", 6, 11),
            ("panic_in_serve", 10, 5),
        ]
    );
    assert_eq!(triples(&r.suppressed), vec![("panic_in_serve", 22, 47)]);
}

#[test]
fn panic_in_serve_only_applies_to_the_serve_crate() {
    let r = lint_one("crates/eval/src/panic_fixture.rs", "panic_in_serve.rs");
    assert!(triples(&r.findings)
        .iter()
        .all(|(rule, _, _)| *rule != "panic_in_serve"));
}

#[test]
fn unflushed_write_flags_unsynced_persistence_in_serve_only() {
    let r = lint_one(
        "crates/serve/src/unflushed_fixture.rs",
        "unflushed_write.rs",
    );
    // fs::write always; File::create only when no sync_all follows in
    // the same function; the pragma'd debug dump and the test module are
    // exempt
    assert_eq!(
        triples(&r.findings),
        vec![("unflushed_write", 5, 5), ("unflushed_write", 6, 17)]
    );
    assert_eq!(triples(&r.suppressed), vec![("unflushed_write", 18, 13)]);
    assert!(r.findings[0].hint.contains("serve::durable::write_atomic"));
}

#[test]
fn unflushed_write_is_silent_outside_the_serve_crate() {
    let r = lint_one("crates/eval/src/unflushed_fixture.rs", "unflushed_write.rs");
    assert!(triples(&r.findings).is_empty());
    let r = lint_one(
        "crates/serve/tests/unflushed_fixture.rs",
        "unflushed_write.rs",
    );
    assert!(triples(&r.findings).is_empty());
}

#[test]
fn twin_drift_requires_a_test_or_bench_reference() {
    let defs = FileCtx::new(
        "crates/nn/src/twin_fixture.rs".into(),
        fixture("twin_defs.rs"),
    );
    let tests = FileCtx::new(
        "crates/nn/tests/twin_parity.rs".into(),
        fixture("twin_tests.rs"),
    );
    let r = lint_contexts(vec![defs, tests]);
    // matmul_ref is exercised by the test file; decay_reference is not;
    // TableRef carries a pragma
    assert_eq!(triples(&r.findings), vec![("twin_drift", 9, 8)]);
    assert!(r.findings[0].message.contains("decay_reference"));
    assert_eq!(triples(&r.suppressed), vec![("twin_drift", 14, 12)]);
}

#[test]
fn twin_drift_fires_without_the_test_file() {
    let defs = FileCtx::new(
        "crates/nn/src/twin_fixture.rs".into(),
        fixture("twin_defs.rs"),
    );
    let r = lint_contexts(vec![defs]);
    assert_eq!(
        triples(&r.findings),
        vec![("twin_drift", 5, 8), ("twin_drift", 9, 8)]
    );
}

#[test]
fn missing_lint_header_fires_on_bare_crate_roots_only() {
    let r = lint_one("crates/newcrate/src/lib.rs", "missing_header.rs");
    assert_eq!(
        triples(&r.findings),
        vec![("missing_lint_header", 1, 1), ("missing_lint_header", 1, 1)]
    );
    assert!(r.findings[0].message.contains("missing_docs"));
    assert!(r.findings[1].message.contains("unsafe_code"));

    // same content in a non-root module: no finding
    let r = lint_one("crates/newcrate/src/module.rs", "missing_header.rs");
    assert!(r.findings.is_empty());

    // a root with both headers: no finding
    let r = lint_one("crates/newcrate/src/lib.rs", "header_ok.rs");
    assert!(r.findings.is_empty());
    assert!(r.suppressed.is_empty());
}

#[test]
fn malformed_pragmas_are_findings_and_never_suppress() {
    let r = lint_one("crates/core/src/bad_pragma_fixture.rs", "bad_pragma.rs");
    assert_eq!(
        triples(&r.findings),
        vec![
            ("bad_pragma", 1, 1),
            ("bad_pragma", 2, 1),
            ("bad_pragma", 3, 1),
        ]
    );
    assert!(r.findings[0].message.contains("missing its reason"));
    assert!(r.findings[1].message.contains("no_such_rule"));
    assert!(r.findings[2].message.contains("unrecognized"));
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the lint crate");
    let report = lint_tree(&root).expect("scan workspace");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}:{} [{}] {}", f.file, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        report.findings.is_empty(),
        "workspace contract violations:\n{}",
        rendered.join("\n")
    );
    // every suppression carries its mandatory reason
    assert!(report
        .suppressed
        .iter()
        .all(|f| f.suppressed.as_deref().is_some_and(|r| !r.is_empty())));
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the lint crate");
    let a = render_json(&lint_tree(&root).expect("first scan"));
    let b = render_json(&lint_tree(&root).expect("second scan"));
    assert_eq!(a, b);
    assert!(a.contains("\"version\": 1"));
}
