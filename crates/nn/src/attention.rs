//! Learned attention over context-attribute embeddings.
//!
//! AimNet (§2.3) "relies on the attention mechanism to learn structural
//! dependencies between different attributes … and uses the attention
//! weights to combine the representations of inputs into a vector
//! representation (the context vector) for the target attribute." Each
//! discriminative sub-model has a fixed set of context attributes, so the
//! attention here is a learned score per context position: the scores pass
//! through a softmax and the context vector is the convex combination of
//! context embeddings. After training, [`Attention::weights`] exposes which
//! attributes the model attends to — the interpretable structure AimNet
//! reports.

use crate::linalg::{axpy, dot, softmax_in_place};
use crate::param::ParamBlock;
use crate::scratch::Scratch;

/// Softmax attention with one learnable score per context attribute.
#[derive(Debug, Clone)]
pub struct Attention {
    /// Raw scores (length = number of context attributes).
    pub scores: ParamBlock,
    dim: usize,
}

/// Forward cache for [`Attention::forward`].
#[derive(Debug, Clone)]
pub struct AttentionCache {
    /// Softmax weights α.
    pub alpha: Vec<f64>,
}

impl Attention {
    /// Attention over `n_context` embeddings of width `dim`. Scores start
    /// at zero — uniform attention.
    pub fn new(n_context: usize, dim: usize) -> Attention {
        Attention {
            scores: ParamBlock::zeros(n_context),
            dim,
        }
    }

    /// Rebuilds attention from persisted score values (snapshot support).
    pub fn from_values(dim: usize, scores: Vec<f64>) -> Attention {
        Attention {
            scores: ParamBlock {
                grads: vec![0.0; scores.len()],
                values: scores,
            },
            dim,
        }
    }

    /// Number of context positions.
    pub fn n_context(&self) -> usize {
        self.scores.len()
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Current attention weights (softmax of scores).
    pub fn weights(&self) -> Vec<f64> {
        let mut alpha = self.scores.values.clone();
        softmax_in_place(&mut alpha);
        alpha
    }

    /// Combines context embeddings into the context vector
    /// `v = Σ α_i e_i`, `α = softmax(scores)`.
    pub fn forward(&self, embeddings: &[&[f64]], v: &mut [f64]) -> AttentionCache {
        let mut scratch = Scratch::new();
        self.forward_pooled(embeddings, v, &mut scratch)
    }

    /// [`Attention::forward`] with the cache's `α` buffer drawn from
    /// `scratch`; retire it with `scratch.put(cache.alpha)` after backward.
    pub fn forward_pooled(
        &self,
        embeddings: &[&[f64]],
        v: &mut [f64],
        scratch: &mut Scratch,
    ) -> AttentionCache {
        assert_eq!(
            embeddings.len(),
            self.scores.len(),
            "context arity mismatch"
        );
        assert_eq!(v.len(), self.dim);
        let mut alpha = scratch.take(self.scores.len());
        alpha.copy_from_slice(&self.scores.values);
        softmax_in_place(&mut alpha);
        v.iter_mut().for_each(|x| *x = 0.0);
        for (a, e) in alpha.iter().zip(embeddings) {
            axpy(*a, e, v);
        }
        AttentionCache { alpha }
    }

    /// Backward pass: given `dv`, accumulates score gradients and writes
    /// each context embedding's gradient into `d_embeddings`.
    ///
    /// With `g_i = e_i · dv`: `de_i = α_i·dv` and
    /// `ds_i = α_i (g_i − Σ_j α_j g_j)` (softmax Jacobian).
    pub fn backward(
        &mut self,
        embeddings: &[&[f64]],
        cache: &AttentionCache,
        dv: &[f64],
        d_embeddings: &mut [Vec<f64>],
    ) {
        let mut scratch = Scratch::new();
        self.backward_pooled(embeddings, cache, dv, d_embeddings, &mut scratch);
    }

    /// [`Attention::backward`] with the `g_i = e_i · dv` intermediate drawn
    /// from (and returned to) `scratch`.
    pub fn backward_pooled(
        &mut self,
        embeddings: &[&[f64]],
        cache: &AttentionCache,
        dv: &[f64],
        d_embeddings: &mut [Vec<f64>],
        scratch: &mut Scratch,
    ) {
        let m = embeddings.len();
        assert_eq!(d_embeddings.len(), m);
        let mut g = scratch.take(m);
        for (gi, e) in g.iter_mut().zip(embeddings) {
            *gi = dot(e, dv);
        }
        let mean: f64 = cache.alpha.iter().zip(&g).map(|(a, gi)| a * gi).sum();
        for i in 0..m {
            self.scores.grads[i] += cache.alpha[i] * (g[i] - mean);
            d_embeddings[i].iter_mut().for_each(|x| *x = 0.0);
            axpy(cache.alpha[i], dv, &mut d_embeddings[i]);
        }
        scratch.put(g);
    }

    /// Applies `f` to the score block.
    pub fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        f(&mut self.scores);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::finite_diff_check;

    #[test]
    fn uniform_attention_at_init() {
        let attn = Attention::new(4, 2);
        let w = attn.weights();
        assert!(w.iter().all(|&a| (a - 0.25).abs() < 1e-12));
    }

    #[test]
    fn forward_is_convex_combination() {
        let mut attn = Attention::new(2, 2);
        attn.scores.values = vec![0.0, f64::NEG_INFINITY];
        let e1 = [1.0, 2.0];
        let e2 = [10.0, 20.0];
        let mut v = [0.0; 2];
        attn.forward(&[&e1, &e2], &mut v);
        // all mass on the first embedding
        assert!((v[0] - 1.0).abs() < 1e-12 && (v[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn score_gradients_match_finite_differences() {
        let e1 = [0.5, -0.2, 0.1];
        let e2 = [1.5, 0.3, -0.4];
        let e3 = [-0.9, 0.8, 0.2];
        let mut attn = Attention::new(3, 3);
        attn.scores.values = vec![0.1, -0.2, 0.3];
        finite_diff_check(
            &mut |a: &mut Attention| {
                let mut v = [0.0; 3];
                a.forward(&[&e1, &e2, &e3], &mut v);
                0.5 * v.iter().map(|x| x * x).sum::<f64>()
            },
            &mut |a: &mut Attention| {
                let mut v = [0.0; 3];
                let cache = a.forward(&[&e1, &e2, &e3], &mut v);
                let mut de = vec![vec![0.0; 3]; 3];
                a.backward(&[&e1, &e2, &e3], &cache, &v, &mut de);
            },
            &mut |a, f| a.visit_blocks(f),
            &mut attn,
        );
    }

    #[test]
    fn embedding_gradients_scale_with_alpha() {
        let mut attn = Attention::new(2, 2);
        attn.scores.values = vec![1.0, 1.0]; // α = [0.5, 0.5]
        let e1 = [1.0, 0.0];
        let e2 = [0.0, 1.0];
        let mut v = [0.0; 2];
        let cache = attn.forward(&[&e1, &e2], &mut v);
        let mut de = vec![vec![0.0; 2]; 2];
        attn.backward(&[&e1, &e2], &cache, &[2.0, 4.0], &mut de);
        assert!((de[0][0] - 1.0).abs() < 1e-12 && (de[0][1] - 2.0).abs() < 1e-12);
        assert!((de[1][0] - 1.0).abs() < 1e-12 && (de[1][1] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_context_count_panics() {
        let attn = Attention::new(2, 2);
        let e1 = [0.0, 0.0];
        let mut v = [0.0; 2];
        attn.forward(&[&e1], &mut v);
    }
}
