//! Output heads for the discriminative sub-models (§2.3): "a list of
//! prediction probabilities for all values of a target attribute with the
//! discrete domain, or the regression parameters (mean and std) of a
//! Gaussian distribution for a target attribute with a continuous domain."

use rand::Rng;

use crate::layers::Linear;
use crate::linalg::softmax_in_place;
use crate::loss::{gaussian_nll, softmax_cross_entropy};
use crate::param::ParamBlock;
use crate::scratch::Scratch;

/// Categorical head: `logits = W·v + b`, softmax prediction, cross-entropy
/// training loss.
#[derive(Debug, Clone)]
pub struct CategoricalHead {
    linear: Linear,
}

impl CategoricalHead {
    /// Head mapping a `dim`-dimensional context vector to `card` classes.
    pub fn new<R: Rng + ?Sized>(dim: usize, card: usize, rng: &mut R) -> CategoricalHead {
        CategoricalHead {
            linear: Linear::new(dim, card, rng),
        }
    }

    /// Rebuilds a head from its persisted linear layer (snapshot support).
    pub fn from_linear(linear: Linear) -> CategoricalHead {
        CategoricalHead { linear }
    }

    /// The underlying logit layer (snapshot support).
    pub fn linear(&self) -> &Linear {
        &self.linear
    }

    /// Number of classes.
    pub fn card(&self) -> usize {
        self.linear.n_out()
    }

    /// Predicted class probabilities for context vector `v`.
    pub fn predict(&self, v: &[f64]) -> Vec<f64> {
        let mut logits = vec![0.0; self.card()];
        self.linear.forward(v, &mut logits);
        softmax_in_place(&mut logits);
        logits
    }

    /// Training step piece: computes the cross-entropy loss for `target`
    /// and accumulates parameter gradients; writes `∂L/∂v` into `dv`.
    pub fn loss_backward(&mut self, v: &[f64], target: u32, dv: &mut [f64]) -> f64 {
        let mut scratch = Scratch::new();
        self.loss_backward_pooled(v, target, dv, &mut scratch)
    }

    /// [`CategoricalHead::loss_backward`] with the logit buffers drawn
    /// from (and returned to) `scratch`.
    pub fn loss_backward_pooled(
        &mut self,
        v: &[f64],
        target: u32,
        dv: &mut [f64],
        scratch: &mut Scratch,
    ) -> f64 {
        let mut logits = scratch.take(self.card());
        self.linear.forward(v, &mut logits);
        let mut dlogits = scratch.take(self.card());
        let loss = softmax_cross_entropy(&logits, target as usize, &mut dlogits);
        dv.iter_mut().for_each(|x| *x = 0.0);
        self.linear.backward(v, &dlogits, Some(dv));
        scratch.put(logits);
        scratch.put(dlogits);
        loss
    }

    /// Applies `f` to the head's parameter blocks.
    pub fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        self.linear.visit_blocks(f);
    }
}

/// Gaussian regression head: `μ = w_μ·v + b_μ`, `ln σ = clamp(w_σ·v + b_σ)`,
/// trained with Gaussian NLL. Sampling candidates for a continuous target
/// (Algorithm 3) draws from `N(μ, σ²)`.
#[derive(Debug, Clone)]
pub struct GaussianHead {
    linear: Linear, // 2 outputs: [μ, ln σ]
}

/// Clamp range for `ln σ`: σ ∈ [e^{−4}, e^{2}] ≈ [0.018, 7.4] in
/// standardized units, wide enough for any attribute and narrow enough to
/// keep NLL gradients bounded.
const LOG_SIGMA_RANGE: (f64, f64) = (-4.0, 2.0);

impl GaussianHead {
    /// Head mapping a `dim`-dimensional context vector to (μ, ln σ).
    pub fn new<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> GaussianHead {
        GaussianHead {
            linear: Linear::new(dim, 2, rng),
        }
    }

    /// Rebuilds a head from its persisted linear layer (snapshot support).
    pub fn from_linear(linear: Linear) -> GaussianHead {
        assert_eq!(linear.n_out(), 2, "Gaussian head needs exactly (μ, ln σ)");
        GaussianHead { linear }
    }

    /// The underlying (μ, ln σ) layer (snapshot support).
    pub fn linear(&self) -> &Linear {
        &self.linear
    }

    /// Predicted (μ, σ) in standardized units.
    pub fn predict(&self, v: &[f64]) -> (f64, f64) {
        let mut out = [0.0; 2];
        self.linear.forward(v, &mut out);
        let log_sigma = out[1].clamp(LOG_SIGMA_RANGE.0, LOG_SIGMA_RANGE.1);
        (out[0], log_sigma.exp())
    }

    /// Computes the Gaussian NLL of target `y` (standardized), accumulates
    /// parameter gradients, writes `∂L/∂v` into `dv`.
    pub fn loss_backward(&mut self, v: &[f64], y: f64, dv: &mut [f64]) -> f64 {
        let mut out = [0.0; 2];
        self.linear.forward(v, &mut out);
        let clamped = out[1].clamp(LOG_SIGMA_RANGE.0, LOG_SIGMA_RANGE.1);
        let (loss, dmu, dls) = gaussian_nll(out[0], clamped, y);
        // gradient does not flow through an active clamp
        let dls = if out[1] == clamped { dls } else { 0.0 };
        dv.iter_mut().for_each(|x| *x = 0.0);
        self.linear.backward(v, &[dmu, dls], Some(dv));
        loss
    }

    /// Applies `f` to the head's parameter blocks.
    pub fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        self.linear.visit_blocks(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::finite_diff_check;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn categorical_predict_is_distribution() {
        let mut rng = StdRng::seed_from_u64(0);
        let head = CategoricalHead::new(4, 5, &mut rng);
        let p = head.predict(&[0.1, -0.3, 0.8, 0.0]);
        assert_eq!(p.len(), 5);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn categorical_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = [0.2, -0.5, 0.9];
        let mut head = CategoricalHead::new(3, 4, &mut rng);
        finite_diff_check(
            &mut |h: &mut CategoricalHead| {
                let p = h.predict(&v);
                -p[2].ln()
            },
            &mut |h: &mut CategoricalHead| {
                let mut dv = [0.0; 3];
                h.loss_backward(&v, 2, &mut dv);
            },
            &mut |h, f| h.visit_blocks(f),
            &mut head,
        );
    }

    #[test]
    fn categorical_dv_matches_fd() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = CategoricalHead::new(3, 4, &mut rng);
        let v = [0.2, -0.5, 0.9];
        let mut dv = [0.0; 3];
        head.loss_backward(&v, 1, &mut dv);
        let h = 1e-6;
        for i in 0..3 {
            let mut vp = v;
            vp[i] += h;
            let mut vm = v;
            vm[i] -= h;
            let lp = -head.predict(&vp)[1].ln();
            let lm = -head.predict(&vm)[1].ln();
            let num = (lp - lm) / (2.0 * h);
            assert!((num - dv[i]).abs() < 1e-5, "dv[{i}] {num} vs {}", dv[i]);
        }
    }

    #[test]
    fn training_categorical_head_fits_simple_mapping() {
        // v = [1,0] ⇒ class 0; v = [0,1] ⇒ class 1. A few hundred SGD steps
        // on the head alone must learn it.
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = CategoricalHead::new(2, 2, &mut rng);
        for _ in 0..300 {
            for (v, t) in [([1.0, 0.0], 0u32), ([0.0, 1.0], 1u32)] {
                let mut dv = [0.0; 2];
                head.visit_blocks(&mut |b| b.zero_grad());
                head.loss_backward(&v, t, &mut dv);
                head.visit_blocks(&mut |b| {
                    for i in 0..b.len() {
                        b.values[i] -= 0.5 * b.grads[i];
                    }
                });
            }
        }
        assert!(head.predict(&[1.0, 0.0])[0] > 0.9);
        assert!(head.predict(&[0.0, 1.0])[1] > 0.9);
    }

    #[test]
    fn gaussian_predict_positive_sigma() {
        let mut rng = StdRng::seed_from_u64(4);
        let head = GaussianHead::new(3, &mut rng);
        let (mu, sigma) = head.predict(&[0.5, -0.5, 0.2]);
        assert!(mu.is_finite());
        assert!(sigma > 0.0);
    }

    #[test]
    fn gaussian_gradcheck() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [0.4, 0.1, -0.6];
        let y = 0.9;
        let mut head = GaussianHead::new(3, &mut rng);
        finite_diff_check(
            &mut |h: &mut GaussianHead| {
                let (mu, sigma) = h.predict(&v);
                sigma.ln() + (y - mu) * (y - mu) / (2.0 * sigma * sigma)
            },
            &mut |h: &mut GaussianHead| {
                let mut dv = [0.0; 3];
                h.loss_backward(&v, y, &mut dv);
            },
            &mut |h, f| h.visit_blocks(f),
            &mut head,
        );
    }

    #[test]
    fn training_gaussian_head_recovers_mean() {
        // As σ approaches the clamp floor the μ-gradient grows like 1/σ²,
        // so unclipped fixed-lr SGD on a constant target diverges — the
        // same reason Algorithm 2 clips per-example gradients. Train with
        // an L2 clip like the real pipeline does.
        let mut rng = StdRng::seed_from_u64(6);
        let mut head = GaussianHead::new(2, &mut rng);
        let v = [1.0, 0.0];
        for t in 0..2000 {
            let mut dv = [0.0; 2];
            head.visit_blocks(&mut |b| b.zero_grad());
            head.loss_backward(&v, 1.7, &mut dv);
            let mut sq = 0.0;
            head.visit_blocks(&mut |b| sq += b.grad_sq_norm());
            let scale = (1.0 / sq.sqrt()).min(1.0);
            let lr = 0.1 / (1.0 + t as f64 / 200.0);
            head.visit_blocks(&mut |b| {
                for i in 0..b.len() {
                    b.values[i] -= lr * scale * b.grads[i];
                }
            });
        }
        let (mu, sigma) = head.predict(&v);
        assert!((mu - 1.7).abs() < 0.05, "mu {mu}");
        // constant target ⇒ σ shrinks toward the clamp floor
        assert!(sigma < 0.2, "sigma {sigma}");
    }
}
