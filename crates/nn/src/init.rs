//! Weight initialization.

use rand::Rng;

use crate::param::ParamBlock;

/// Xavier/Glorot-uniform initialization for a `fan_out × fan_in` matrix:
/// `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier<R: Rng + ?Sized>(fan_out: usize, fan_in: usize, rng: &mut R) -> ParamBlock {
    let scale = (6.0 / (fan_in + fan_out) as f64).sqrt();
    ParamBlock::uniform(fan_out * fan_in, scale, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(0);
        let small = xavier(4, 4, &mut rng);
        let large = xavier(400, 400, &mut rng);
        // kamino-lint: allow(float_fold) -- max accumulator: 0.0 is the identity for max over non-negative values, not a sum seed
        let max_small = small.values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        // kamino-lint: allow(float_fold) -- max accumulator: 0.0 is the identity for max over non-negative values, not a sum seed
        let max_large = large.values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(max_small <= (6.0f64 / 8.0).sqrt() + 1e-12);
        assert!(max_large <= (6.0f64 / 800.0).sqrt() + 1e-12);
        assert!(max_large < max_small);
    }

    #[test]
    fn xavier_len() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(xavier(3, 5, &mut rng).len(), 15);
    }
}
