//! Core layers: linear, categorical embedding, continuous encoder.

use rand::Rng;

use crate::init::xavier;
use crate::linalg::{axpy, matvec, matvec_t_acc, outer_acc};
use crate::param::ParamBlock;
use crate::scratch::Scratch;

/// A dense layer `y = W·x + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, row-major `out × in`.
    pub w: ParamBlock,
    /// Bias vector of length `out`.
    pub b: ParamBlock,
    n_in: usize,
    n_out: usize,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new<R: Rng + ?Sized>(n_in: usize, n_out: usize, rng: &mut R) -> Linear {
        Linear {
            w: xavier(n_out, n_in, rng),
            b: ParamBlock::zeros(n_out),
            n_in,
            n_out,
        }
    }

    /// Rebuilds a layer from persisted parameter values (snapshot
    /// support). Gradient buffers start zeroed, like a freshly
    /// constructed layer between optimizer steps.
    pub fn from_values(n_in: usize, n_out: usize, w: Vec<f64>, b: Vec<f64>) -> Linear {
        assert_eq!(w.len(), n_in * n_out, "weight tensor shape mismatch");
        assert_eq!(b.len(), n_out, "bias tensor shape mismatch");
        Linear {
            w: ParamBlock {
                grads: vec![0.0; w.len()],
                values: w,
            },
            b: ParamBlock {
                grads: vec![0.0; b.len()],
                values: b,
            },
            n_in,
            n_out,
        }
    }

    /// Input width.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output width.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// `y = W·x + b`.
    pub fn forward(&self, x: &[f64], y: &mut [f64]) {
        matvec(&self.w.values, x, y);
        axpy(1.0, &self.b.values, y);
    }

    /// Accumulates parameter gradients given the forward input `x` and the
    /// output gradient `dy`; accumulates the input gradient into `dx` when
    /// provided (the first layer of a model passes `None`).
    pub fn backward(&mut self, x: &[f64], dy: &[f64], dx: Option<&mut [f64]>) {
        outer_acc(&mut self.w.grads, dy, x);
        axpy(1.0, dy, &mut self.b.grads);
        if let Some(dx) = dx {
            matvec_t_acc(&self.w.values, dy, dx);
        }
    }

    /// Applies `f` to both parameter blocks.
    pub fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

/// Lookup-table embedding for a categorical attribute: code → `R^d`
/// (§2.3: "a learnable lookup table mapping embeddings to domain values").
#[derive(Debug, Clone)]
pub struct Embedding {
    /// `card × dim` table, row-major.
    pub table: ParamBlock,
    card: usize,
    dim: usize,
}

impl Embedding {
    /// A new embedding table with small uniform init.
    pub fn new<R: Rng + ?Sized>(card: usize, dim: usize, rng: &mut R) -> Embedding {
        let scale = (1.0 / dim as f64).sqrt();
        Embedding {
            table: ParamBlock::uniform(card * dim, scale, rng),
            card,
            dim,
        }
    }

    /// Rebuilds an embedding table from persisted values (snapshot
    /// support).
    pub fn from_values(card: usize, dim: usize, table: Vec<f64>) -> Embedding {
        assert_eq!(table.len(), card * dim, "embedding table shape mismatch");
        Embedding {
            table: ParamBlock {
                grads: vec![0.0; table.len()],
                values: table,
            },
            card,
            dim,
        }
    }

    /// Domain cardinality.
    pub fn card(&self) -> usize {
        self.card
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The embedding row for `code`.
    pub fn forward(&self, code: u32) -> &[f64] {
        let c = code as usize;
        assert!(
            c < self.card,
            "code {c} out of range for cardinality {}",
            self.card
        );
        &self.table.values[c * self.dim..(c + 1) * self.dim]
    }

    /// Accumulates the gradient `dz` into the row for `code`.
    pub fn backward(&mut self, code: u32, dz: &[f64]) {
        let c = code as usize;
        axpy(
            1.0,
            dz,
            &mut self.table.grads[c * self.dim..(c + 1) * self.dim],
        );
    }

    /// Applies `f` to the table block.
    pub fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        f(&mut self.table);
    }
}

/// Encoder for a (standardized) continuous scalar, per §2.3:
/// `z = B·ω(A·x + c) + d` with ReLU `ω`, mapping `x ∈ R` to `R^dim`
/// through a hidden layer of the same width.
#[derive(Debug, Clone)]
pub struct ContinuousEncoder {
    /// Hidden projection `A` (`dim × 1`) — stored as a vector.
    pub a: ParamBlock,
    /// Hidden bias `c`.
    pub c: ParamBlock,
    /// Output projection `B` (`dim × dim`).
    pub b: ParamBlock,
    /// Output bias `d`.
    pub d: ParamBlock,
    dim: usize,
}

/// Forward cache for [`ContinuousEncoder::forward`], needed by backward.
#[derive(Debug, Clone)]
pub struct EncoderCache {
    x: f64,
    hidden: Vec<f64>, // post-ReLU
}

impl EncoderCache {
    /// Retires the cache's hidden buffer back into `scratch` once backward
    /// no longer needs it (pairs with [`ContinuousEncoder::forward_pooled`]).
    pub fn recycle(self, scratch: &mut Scratch) {
        scratch.put(self.hidden);
    }
}

impl ContinuousEncoder {
    /// A new encoder producing `dim`-dimensional embeddings.
    pub fn new<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> ContinuousEncoder {
        ContinuousEncoder {
            a: xavier(dim, 1, rng),
            c: ParamBlock::zeros(dim),
            b: xavier(dim, dim, rng),
            d: ParamBlock::zeros(dim),
            dim,
        }
    }

    /// Rebuilds an encoder from persisted values (snapshot support).
    pub fn from_values(
        dim: usize,
        a: Vec<f64>,
        c: Vec<f64>,
        b: Vec<f64>,
        d: Vec<f64>,
    ) -> ContinuousEncoder {
        assert_eq!(a.len(), dim, "encoder A shape mismatch");
        assert_eq!(c.len(), dim, "encoder c shape mismatch");
        assert_eq!(b.len(), dim * dim, "encoder B shape mismatch");
        assert_eq!(d.len(), dim, "encoder d shape mismatch");
        let block = |values: Vec<f64>| ParamBlock {
            grads: vec![0.0; values.len()],
            values,
        };
        ContinuousEncoder {
            a: block(a),
            c: block(c),
            b: block(b),
            d: block(d),
            dim,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Computes `z = B·relu(A·x + c) + d`, returning the cache for backward.
    pub fn forward(&self, x: f64, z: &mut [f64]) -> EncoderCache {
        self.forward_with_hidden(x, z, vec![0.0; self.dim])
    }

    /// Like [`ContinuousEncoder::forward`], but the cache's hidden buffer
    /// comes from `scratch`; retire the cache with
    /// [`EncoderCache::recycle`] when backward is done with it.
    pub fn forward_pooled(&self, x: f64, z: &mut [f64], scratch: &mut Scratch) -> EncoderCache {
        self.forward_with_hidden(x, z, scratch.take(self.dim))
    }

    fn forward_with_hidden(&self, x: f64, z: &mut [f64], mut hidden: Vec<f64>) -> EncoderCache {
        debug_assert_eq!(hidden.len(), self.dim);
        for ((h, &a), &c) in hidden.iter_mut().zip(&self.a.values).zip(&self.c.values) {
            *h = (a * x + c).max(0.0);
        }
        matvec(&self.b.values, &hidden, z);
        axpy(1.0, &self.d.values, z);
        EncoderCache { x, hidden }
    }

    /// Accumulates parameter gradients given the output gradient `dz`.
    pub fn backward(&mut self, cache: &EncoderCache, dz: &[f64]) {
        let mut scratch = Scratch::new();
        self.backward_pooled(cache, dz, &mut scratch);
    }

    /// [`ContinuousEncoder::backward`] with the intermediate `dh` buffer
    /// drawn from (and returned to) `scratch`.
    pub fn backward_pooled(&mut self, cache: &EncoderCache, dz: &[f64], scratch: &mut Scratch) {
        // z = B·h + d
        outer_acc(&mut self.b.grads, dz, &cache.hidden);
        axpy(1.0, dz, &mut self.d.grads);
        let mut dh = scratch.take(self.dim);
        matvec_t_acc(&self.b.values, dz, &mut dh);
        // h = relu(a·x + c)
        for ((&dhi, &h), (ga, gc)) in dh
            .iter()
            .zip(&cache.hidden)
            .zip(self.a.grads.iter_mut().zip(self.c.grads.iter_mut()))
        {
            if h > 0.0 {
                *ga += dhi * cache.x;
                *gc += dhi;
            }
        }
        scratch.put(dh);
    }

    /// Applies `f` to all four parameter blocks.
    pub fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        f(&mut self.a);
        f(&mut self.c);
        f(&mut self.b);
        f(&mut self.d);
    }
}

/// ReLU forward: `y = max(x, 0)`.
#[inline]
pub fn relu(x: &[f64], y: &mut [f64]) {
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv = xv.max(0.0);
    }
}

/// ReLU backward: `dx = dy ⊙ [y > 0]` given the forward *output* `y`.
#[inline]
pub fn relu_backward(y: &[f64], dy: &[f64], dx: &mut [f64]) {
    for i in 0..y.len() {
        dx[i] = if y[i] > 0.0 { dy[i] } else { 0.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::finite_diff_check;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_matches_manual() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        l.w.values = vec![1.0, 2.0, 3.0, 4.0];
        l.b.values = vec![0.5, -0.5];
        let mut y = [0.0; 2];
        l.forward(&[1.0, 1.0], &mut y);
        assert_eq!(y, [3.5, 6.5]);
        assert_eq!(l.n_in(), 2);
        assert_eq!(l.n_out(), 2);
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = [0.3, -0.7, 1.1];
        // loss = sum(y²)/2 so dy = y
        let mut layer = Linear::new(3, 2, &mut rng);
        finite_diff_check(
            &mut |l: &mut Linear| {
                let mut y = [0.0; 2];
                l.forward(&x, &mut y);
                0.5 * (y[0] * y[0] + y[1] * y[1])
            },
            &mut |l: &mut Linear| {
                let mut y = [0.0; 2];
                l.forward(&x, &mut y);
                l.backward(&x, &y, None);
            },
            &mut |l, f| l.visit_blocks(f),
            &mut layer,
        );
    }

    #[test]
    fn linear_input_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(2, 2, &mut rng);
        l.w.values = vec![1.0, 2.0, 3.0, 4.0];
        let mut dx = [0.0; 2];
        l.backward(&[0.0, 0.0], &[1.0, 1.0], Some(&mut dx));
        assert_eq!(dx, [4.0, 6.0]);
    }

    #[test]
    fn embedding_rows_and_backward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = Embedding::new(3, 4, &mut rng);
        assert_eq!(e.card(), 3);
        assert_eq!(e.forward(2).len(), 4);
        e.backward(1, &[1.0, 2.0, 3.0, 4.0]);
        e.backward(1, &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(&e.table.grads[4..8], &[2.0, 2.0, 3.0, 4.0]);
        assert!(e.table.grads[0..4].iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn embedding_code_out_of_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = Embedding::new(3, 4, &mut rng);
        e.forward(3);
    }

    #[test]
    fn encoder_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = 0.8;
        let mut enc = ContinuousEncoder::new(5, &mut rng);
        finite_diff_check(
            &mut |e: &mut ContinuousEncoder| {
                let mut z = vec![0.0; 5];
                e.forward(x, &mut z);
                0.5 * z.iter().map(|v| v * v).sum::<f64>()
            },
            &mut |e: &mut ContinuousEncoder| {
                let mut z = vec![0.0; 5];
                let cache = e.forward(x, &mut z);
                e.backward(&cache, &z);
            },
            &mut |e, f| e.visit_blocks(f),
            &mut enc,
        );
    }

    #[test]
    fn relu_roundtrip() {
        let x = [-1.0, 0.0, 2.0];
        let mut y = [0.0; 3];
        relu(&x, &mut y);
        assert_eq!(y, [0.0, 0.0, 2.0]);
        let mut dx = [0.0; 3];
        relu_backward(&y, &[1.0, 1.0, 1.0], &mut dx);
        assert_eq!(dx, [0.0, 0.0, 1.0]);
    }
}
