//! Minimal neural substrate with per-example gradients.
//!
//! Rust's ML ecosystem is thin, and DP-SGD (Algorithm 2 of the paper) needs
//! *per-example* gradient clipping — which mainstream autodiff frameworks
//! make awkward anyway. Kamino's sub-models are small fixed architectures
//! (attribute embeddings → attention → categorical/Gaussian head, per §2.3),
//! so this crate hand-writes forward/backward for exactly the pieces
//! required and verifies every one against finite differences:
//!
//! * [`param`] — flat parameter blocks with paired gradient buffers,
//! * [`linalg`] — the handful of dense kernels everything shares,
//! * [`layers`] — linear layers, categorical embeddings, and the paper's
//!   continuous-value encoder `z = B·ω(A·x + c) + d`,
//! * [`attention`] — learned softmax attention over context-attribute
//!   embeddings producing the context vector,
//! * [`heads`] — softmax/cross-entropy head for categorical targets and a
//!   Gaussian (μ, log σ) regression head for numeric targets,
//! * [`mlp`] — small ReLU MLPs used by the DP-VAE / PATE-GAN baselines and
//!   the MLP classifier,
//! * [`loss`] — cross-entropy, MSE, BCE-with-logits, Gaussian NLL,
//! * [`optim`] — DP-SGD (per-example clip → sum → Gaussian noise →
//!   average, Algorithm 2 lines 13–16); plain SGD is the
//!   `noise = 0, clip = ∞` special case so private and non-private runs
//!   share one code path,
//! * [`scratch`] — a recycling buffer pool backing the `*_pooled` layer
//!   variants so the per-example hot loops stay allocation-free.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attention;
pub mod heads;
pub mod init;
pub mod layers;
pub mod linalg;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod param;
pub mod scratch;
pub mod snapshot;

pub use attention::Attention;
pub use heads::{CategoricalHead, GaussianHead};
pub use layers::{ContinuousEncoder, Embedding, Linear};
pub use mlp::Mlp;
pub use optim::{microbatch_parallel_worthwhile, DpSgd, PerExampleModel, MICROBATCH};
pub use param::ParamBlock;
pub use scratch::Scratch;

// Public so downstream crates can gradient-check their composite models
// (kamino-core's sub-models run the same harness in their tests).
pub mod testutil;
