//! Dense kernels shared by all layers.
//!
//! Matrices are row-major `out × in`, stored flat. These are the only
//! numeric kernels in the workspace; everything else composes them, so
//! keeping them allocation-free matters (the performance guide's
//! "reuse workhorse buffers" idiom — callers pass output slices).
//!
//! ## Tiling and the bit-identity contract
//!
//! The matvec/outer kernels are register-blocked over `ROW_BLOCK` output
//! rows: one pass over `x` (or `x_grad`) serves four rows at a time, which
//! cuts memory traffic ~4× and gives the CPU four independent accumulation
//! chains. Crucially, the blocking never reorders the floating-point
//! operations *of any single output element* — each `y[o]` is still a
//! strictly left-to-right dot product, and each `x_grad[j]` still receives
//! its `d·w` terms in ascending `o` order with the exact `d == 0.0` skips
//! of the naive loop. The tiled kernels are therefore **bit-identical** to
//! their [`matvec_ref`]/[`matvec_t_acc_ref`]/[`outer_acc_ref`] reference
//! twins (property-tested in `tests/proptest_kernels.rs`), and the
//! workspace determinism contract (serial ≡ parallel ≡ pre-tiling output)
//! is unaffected.

/// Output rows processed per register block by the tiled kernels.
const ROW_BLOCK: usize = 4;

/// `y = W·x` for row-major `W (out × in)` — naive per-row reference.
///
/// The serial-reference twin of [`matvec`]; kept (and exported) so parity
/// tests and microbenchmarks can pin the tiled kernel against it.
#[inline]
pub fn matvec_ref(w: &[f64], x: &[f64], y: &mut [f64]) {
    let n_in = x.len();
    debug_assert_eq!(w.len(), y.len() * n_in);
    for (o, yo) in y.iter_mut().enumerate() {
        let row = &w[o * n_in..(o + 1) * n_in];
        *yo = dot(row, x);
    }
}

/// `y = W·x` for row-major `W (out × in)`, blocked over `ROW_BLOCK`
/// output rows. Bit-identical to [`matvec_ref`] (each `y[o]` is the same
/// left-to-right dot product; see the module docs).
#[inline]
pub fn matvec(w: &[f64], x: &[f64], y: &mut [f64]) {
    let n_in = x.len();
    let n_out = y.len();
    debug_assert_eq!(w.len(), n_out * n_in);
    let mut o = 0;
    while o + ROW_BLOCK <= n_out {
        let base = o * n_in;
        let r0 = &w[base..base + n_in];
        let r1 = &w[base + n_in..base + 2 * n_in];
        let r2 = &w[base + 2 * n_in..base + 3 * n_in];
        let r3 = &w[base + 3 * n_in..base + 4 * n_in];
        // -0.0 is `Sum for f64`'s fold identity (and IEEE's true additive
        // identity), so starting there keeps each row bit-identical to
        // `dot` even when every product is -0.0.
        let (mut a0, mut a1, mut a2, mut a3) = (-0.0, -0.0, -0.0, -0.0);
        for (k, &xk) in x.iter().enumerate() {
            a0 += r0[k] * xk;
            a1 += r1[k] * xk;
            a2 += r2[k] * xk;
            a3 += r3[k] * xk;
        }
        y[o] = a0;
        y[o + 1] = a1;
        y[o + 2] = a2;
        y[o + 3] = a3;
        o += ROW_BLOCK;
    }
    for o in o..n_out {
        y[o] = dot(&w[o * n_in..(o + 1) * n_in], x);
    }
}

/// `x_grad += Wᵀ·dy` for row-major `W (out × in)` — naive per-row
/// reference (the serial twin of [`matvec_t_acc`]).
#[inline]
pub fn matvec_t_acc_ref(w: &[f64], dy: &[f64], x_grad: &mut [f64]) {
    let n_in = x_grad.len();
    debug_assert_eq!(w.len(), dy.len() * n_in);
    for (o, &d) in dy.iter().enumerate() {
        if d == 0.0 {
            continue;
        }
        let row = &w[o * n_in..(o + 1) * n_in];
        for (xg, &wv) in x_grad.iter_mut().zip(row) {
            *xg += d * wv;
        }
    }
}

/// `x_grad += Wᵀ·dy` for row-major `W (out × in)`, blocked over
/// `ROW_BLOCK` rows of `W` so each pass over `x_grad` retires four `dy`
/// terms. Bit-identical to [`matvec_t_acc_ref`]: per element `x_grad[j]`
/// the `d·w` terms are added in the same ascending-`o` order, and a term
/// is skipped exactly when `d == 0.0` (the skip is semantic, not an
/// optimization — adding `0.0` could flip `-0.0` to `+0.0` or turn `±∞`
/// weights into NaN).
#[inline]
pub fn matvec_t_acc(w: &[f64], dy: &[f64], x_grad: &mut [f64]) {
    let n_in = x_grad.len();
    let n_out = dy.len();
    debug_assert_eq!(w.len(), n_out * n_in);
    let mut o = 0;
    while o + ROW_BLOCK <= n_out {
        let (d0, d1, d2, d3) = (dy[o], dy[o + 1], dy[o + 2], dy[o + 3]);
        if d0 == 0.0 && d1 == 0.0 && d2 == 0.0 && d3 == 0.0 {
            o += ROW_BLOCK;
            continue;
        }
        let base = o * n_in;
        let r0 = &w[base..base + n_in];
        let r1 = &w[base + n_in..base + 2 * n_in];
        let r2 = &w[base + 2 * n_in..base + 3 * n_in];
        let r3 = &w[base + 3 * n_in..base + 4 * n_in];
        for (j, xg) in x_grad.iter_mut().enumerate() {
            let mut acc = *xg;
            if d0 != 0.0 {
                acc += d0 * r0[j];
            }
            if d1 != 0.0 {
                acc += d1 * r1[j];
            }
            if d2 != 0.0 {
                acc += d2 * r2[j];
            }
            if d3 != 0.0 {
                acc += d3 * r3[j];
            }
            *xg = acc;
        }
        o += ROW_BLOCK;
    }
    for (o, &d) in dy.iter().enumerate().skip(o) {
        if d == 0.0 {
            continue;
        }
        let row = &w[o * n_in..(o + 1) * n_in];
        for (xg, &wv) in x_grad.iter_mut().zip(row) {
            *xg += d * wv;
        }
    }
}

/// `W_grad += dy ⊗ x` (outer product accumulate) — naive per-row
/// reference (the serial twin of [`outer_acc`]).
#[inline]
pub fn outer_acc_ref(w_grad: &mut [f64], dy: &[f64], x: &[f64]) {
    let n_in = x.len();
    debug_assert_eq!(w_grad.len(), dy.len() * n_in);
    for (o, &d) in dy.iter().enumerate() {
        if d == 0.0 {
            continue;
        }
        let row = &mut w_grad[o * n_in..(o + 1) * n_in];
        for (wg, &xv) in row.iter_mut().zip(x) {
            *wg += d * xv;
        }
    }
}

/// `W_grad += dy ⊗ x`, blocked over `ROW_BLOCK` gradient rows so one
/// pass over `x` feeds four rows. Every `w_grad[o][j]` is touched at most
/// once (the update is element-wise independent), so the blocking is
/// trivially bit-identical to [`outer_acc_ref`]; the `d == 0.0` skip is
/// preserved per row.
#[inline]
pub fn outer_acc(w_grad: &mut [f64], dy: &[f64], x: &[f64]) {
    let n_in = x.len();
    let n_out = dy.len();
    debug_assert_eq!(w_grad.len(), n_out * n_in);
    let mut o = 0;
    while o + ROW_BLOCK <= n_out {
        let (d0, d1, d2, d3) = (dy[o], dy[o + 1], dy[o + 2], dy[o + 3]);
        if d0 == 0.0 && d1 == 0.0 && d2 == 0.0 && d3 == 0.0 {
            o += ROW_BLOCK;
            continue;
        }
        let block = &mut w_grad[o * n_in..(o + ROW_BLOCK) * n_in];
        let (b0, rest) = block.split_at_mut(n_in);
        let (b1, rest) = rest.split_at_mut(n_in);
        let (b2, b3) = rest.split_at_mut(n_in);
        for (j, &xj) in x.iter().enumerate() {
            if d0 != 0.0 {
                b0[j] += d0 * xj;
            }
            if d1 != 0.0 {
                b1[j] += d1 * xj;
            }
            if d2 != 0.0 {
                b2[j] += d2 * xj;
            }
            if d3 != 0.0 {
                b3[j] += d3 * xj;
            }
        }
        o += ROW_BLOCK;
    }
    for (o, &d) in dy.iter().enumerate().skip(o) {
        if d == 0.0 {
            continue;
        }
        let row = &mut w_grad[o * n_in..(o + 1) * n_in];
        for (wg, &xv) in row.iter_mut().zip(x) {
            *wg += d * xv;
        }
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha·x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// In-place numerically-stable softmax.
pub fn softmax_in_place(z: &mut [f64]) {
    let max = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 && sum.is_finite() {
        for v in z.iter_mut() {
            *v /= sum;
        }
    } else {
        let u = 1.0 / z.len() as f64;
        z.iter_mut().for_each(|v| *v = u);
    }
}

/// Numerically-stable `ln Σ exp(z_i)`.
pub fn log_sum_exp(z: &[f64]) -> f64 {
    let max = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    max + z.iter().map(|&v| (v - max).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_2x3() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [[1,2,3],[4,5,6]]
        let x = [1.0, 0.0, -1.0];
        let mut y = [0.0; 2];
        matvec(&w, &x, &mut y);
        assert_eq!(y, [-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_acc_transposes() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let dy = [1.0, 1.0];
        let mut xg = [0.0; 3];
        matvec_t_acc(&w, &dy, &mut xg);
        assert_eq!(xg, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_acc_accumulates() {
        let mut wg = [0.0; 6];
        outer_acc(&mut wg, &[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(wg, [3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        outer_acc(&mut wg, &[1.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(wg, [4.0, 5.0, 6.0, 6.0, 8.0, 10.0]);
    }

    /// Deterministic pseudo-random fill with awkward values mixed in
    /// (negative zero, subnormal-ish magnitudes) to stress bit-identity.
    fn fill(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match state % 7 {
                    0 => 0.0,
                    1 => -0.0,
                    _ => ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * (i as f64 + 1.0),
                }
            })
            .collect()
    }

    #[test]
    fn tiled_kernels_are_bit_identical_to_reference() {
        // shapes straddling the ROW_BLOCK boundary, including a remainder
        for &(n_out, n_in) in &[(1usize, 1usize), (3, 5), (4, 4), (5, 7), (8, 3), (13, 11)] {
            let w = fill(n_out as u64 * 31 + n_in as u64, n_out * n_in);
            let x = fill(n_in as u64 + 7, n_in);
            let dy = fill(n_out as u64 + 99, n_out);

            let mut y_t = vec![0.0; n_out];
            let mut y_r = vec![0.0; n_out];
            matvec(&w, &x, &mut y_t);
            matvec_ref(&w, &x, &mut y_r);
            for (a, b) in y_t.iter().zip(&y_r) {
                assert_eq!(a.to_bits(), b.to_bits(), "matvec {n_out}x{n_in}");
            }

            let mut xg_t = fill(5, n_in);
            let mut xg_r = xg_t.clone();
            matvec_t_acc(&w, &dy, &mut xg_t);
            matvec_t_acc_ref(&w, &dy, &mut xg_r);
            for (a, b) in xg_t.iter().zip(&xg_r) {
                assert_eq!(a.to_bits(), b.to_bits(), "matvec_t_acc {n_out}x{n_in}");
            }

            let mut wg_t = fill(9, n_out * n_in);
            let mut wg_r = wg_t.clone();
            outer_acc(&mut wg_t, &dy, &x);
            outer_acc_ref(&mut wg_r, &dy, &x);
            for (a, b) in wg_t.iter().zip(&wg_r) {
                assert_eq!(a.to_bits(), b.to_bits(), "outer_acc {n_out}x{n_in}");
            }
        }
    }

    #[test]
    fn zero_skip_preserves_signed_zero_and_infinities() {
        // dy = 0.0 must skip the term entirely: adding 0.0·w would flip
        // -0.0 accumulators to +0.0 and turn infinite weights into NaN.
        let w = [f64::INFINITY, -1.0, 2.0, 5.0];
        let dy = [0.0, 1.0];
        let mut xg = [-0.0, 0.5];
        matvec_t_acc(&w, &dy, &mut xg);
        assert_eq!(xg[0].to_bits(), (2.0f64 + -0.0).to_bits());
        let mut wg = [-0.0, -0.0, 0.0, 0.0];
        outer_acc(&mut wg, &[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(wg[0].to_bits(), (-0.0f64).to_bits(), "skipped row mutated");
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = [1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, [3.0, -1.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let mut a = [1.0, 2.0, 3.0];
        let mut b = [1001.0, 1002.0, 1003.0];
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!(a[2] > a[1] && a[1] > a[0]);
    }

    #[test]
    fn softmax_handles_extreme_inputs() {
        let mut z = [f64::NEG_INFINITY, 0.0];
        softmax_in_place(&mut z);
        assert_eq!(z, [0.0, 1.0]);
        let mut all_neg_inf = [f64::NEG_INFINITY, f64::NEG_INFINITY];
        softmax_in_place(&mut all_neg_inf);
        assert_eq!(all_neg_inf, [0.5, 0.5]);
    }

    #[test]
    fn log_sum_exp_stable() {
        let z = [1000.0, 1000.0];
        assert!((log_sum_exp(&z) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }
}
