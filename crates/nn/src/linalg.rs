//! Dense kernels shared by all layers.
//!
//! Matrices are row-major `out × in`, stored flat. These are the only
//! numeric kernels in the workspace; everything else composes them, so
//! keeping them allocation-free matters (the performance guide's
//! "reuse workhorse buffers" idiom — callers pass output slices).

/// `y = W·x` for row-major `W (out × in)`.
#[inline]
pub fn matvec(w: &[f64], x: &[f64], y: &mut [f64]) {
    let n_in = x.len();
    debug_assert_eq!(w.len(), y.len() * n_in);
    for (o, yo) in y.iter_mut().enumerate() {
        let row = &w[o * n_in..(o + 1) * n_in];
        *yo = dot(row, x);
    }
}

/// `x_grad += Wᵀ·dy` for row-major `W (out × in)`.
#[inline]
pub fn matvec_t_acc(w: &[f64], dy: &[f64], x_grad: &mut [f64]) {
    let n_in = x_grad.len();
    debug_assert_eq!(w.len(), dy.len() * n_in);
    for (o, &d) in dy.iter().enumerate() {
        if d == 0.0 {
            continue;
        }
        let row = &w[o * n_in..(o + 1) * n_in];
        for (xg, &wv) in x_grad.iter_mut().zip(row) {
            *xg += d * wv;
        }
    }
}

/// `W_grad += dy ⊗ x` (outer product accumulate) for row-major gradients.
#[inline]
pub fn outer_acc(w_grad: &mut [f64], dy: &[f64], x: &[f64]) {
    let n_in = x.len();
    debug_assert_eq!(w_grad.len(), dy.len() * n_in);
    for (o, &d) in dy.iter().enumerate() {
        if d == 0.0 {
            continue;
        }
        let row = &mut w_grad[o * n_in..(o + 1) * n_in];
        for (wg, &xv) in row.iter_mut().zip(x) {
            *wg += d * xv;
        }
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha·x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// In-place numerically-stable softmax.
pub fn softmax_in_place(z: &mut [f64]) {
    let max = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 && sum.is_finite() {
        for v in z.iter_mut() {
            *v /= sum;
        }
    } else {
        let u = 1.0 / z.len() as f64;
        z.iter_mut().for_each(|v| *v = u);
    }
}

/// Numerically-stable `ln Σ exp(z_i)`.
pub fn log_sum_exp(z: &[f64]) -> f64 {
    let max = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    max + z.iter().map(|&v| (v - max).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_2x3() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [[1,2,3],[4,5,6]]
        let x = [1.0, 0.0, -1.0];
        let mut y = [0.0; 2];
        matvec(&w, &x, &mut y);
        assert_eq!(y, [-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_acc_transposes() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let dy = [1.0, 1.0];
        let mut xg = [0.0; 3];
        matvec_t_acc(&w, &dy, &mut xg);
        assert_eq!(xg, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_acc_accumulates() {
        let mut wg = [0.0; 6];
        outer_acc(&mut wg, &[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(wg, [3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        outer_acc(&mut wg, &[1.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(wg, [4.0, 5.0, 6.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = [1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, [3.0, -1.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let mut a = [1.0, 2.0, 3.0];
        let mut b = [1001.0, 1002.0, 1003.0];
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!(a[2] > a[1] && a[1] > a[0]);
    }

    #[test]
    fn softmax_handles_extreme_inputs() {
        let mut z = [f64::NEG_INFINITY, 0.0];
        softmax_in_place(&mut z);
        assert_eq!(z, [0.0, 1.0]);
        let mut all_neg_inf = [f64::NEG_INFINITY, f64::NEG_INFINITY];
        softmax_in_place(&mut all_neg_inf);
        assert_eq!(all_neg_inf, [0.5, 0.5]);
    }

    #[test]
    fn log_sum_exp_stable() {
        let z = [1000.0, 1000.0];
        assert!((log_sum_exp(&z) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }
}
