//! Loss functions with analytic gradients.

use crate::linalg::log_sum_exp;

/// Softmax cross-entropy: returns the loss and writes `∂L/∂logits` into
/// `dlogits` (`softmax(logits) − onehot(target)`).
pub fn softmax_cross_entropy(logits: &[f64], target: usize, dlogits: &mut [f64]) -> f64 {
    assert!(target < logits.len(), "target class out of range");
    let lse = log_sum_exp(logits);
    for (d, &z) in dlogits.iter_mut().zip(logits) {
        *d = (z - lse).exp();
    }
    dlogits[target] -= 1.0;
    lse - logits[target]
}

/// Mean squared error over a vector: `L = Σ (p−t)²/2`, gradient `p − t`.
pub fn mse(pred: &[f64], target: &[f64], dpred: &mut [f64]) -> f64 {
    debug_assert_eq!(pred.len(), target.len());
    let mut loss = 0.0;
    for i in 0..pred.len() {
        let e = pred[i] - target[i];
        dpred[i] = e;
        loss += 0.5 * e * e;
    }
    loss
}

/// Binary cross-entropy on a single logit with target in {0, 1}:
/// `L = −t·ln σ(z) − (1−t)·ln(1−σ(z))`, gradient `σ(z) − t`.
/// Computed in the numerically stable `max(z,0) − z·t + ln(1+e^{−|z|})`
/// form.
pub fn bce_with_logit(logit: f64, target: f64) -> (f64, f64) {
    debug_assert!((0.0..=1.0).contains(&target));
    let loss = logit.max(0.0) - logit * target + (-logit.abs()).exp().ln_1p();
    let sigma = 1.0 / (1.0 + (-logit).exp());
    (loss, sigma - target)
}

/// Gaussian negative log-likelihood with parameters (μ, ln σ):
/// `L = ln σ + (y−μ)²/(2σ²)` (dropping the constant), with gradients
/// `∂L/∂μ = (μ−y)/σ²` and `∂L/∂lnσ = 1 − (y−μ)²/σ²`.
pub fn gaussian_nll(mu: f64, log_sigma: f64, y: f64) -> (f64, f64, f64) {
    let sigma2 = (2.0 * log_sigma).exp();
    let diff = y - mu;
    let loss = log_sigma + diff * diff / (2.0 * sigma2);
    let dmu = -diff / sigma2;
    let dlog_sigma = 1.0 - diff * diff / sigma2;
    (loss, dmu, dlog_sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = [0.0, 0.0, 0.0, 0.0];
        let mut d = [0.0; 4];
        let loss = softmax_cross_entropy(&logits, 1, &mut d);
        assert!((loss - (4.0f64).ln()).abs() < 1e-12);
        assert!((d[1] - (0.25 - 1.0)).abs() < 1e-12);
        assert!((d[0] - 0.25).abs() < 1e-12);
        // gradient sums to zero
        assert!(d.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_gradient_matches_fd() {
        let base = [0.4, -1.2, 2.0];
        let mut d = [0.0; 3];
        softmax_cross_entropy(&base, 2, &mut d);
        for i in 0..3 {
            let num = finite_diff(
                |x| {
                    let mut z = base;
                    z[i] = x;
                    let mut tmp = [0.0; 3];
                    softmax_cross_entropy(&z, 2, &mut tmp)
                },
                base[i],
            );
            assert!(
                (num - d[i]).abs() < 1e-6,
                "component {i}: {num} vs {}",
                d[i]
            );
        }
    }

    #[test]
    fn cross_entropy_stable_with_huge_logits() {
        let logits = [1000.0, -1000.0];
        let mut d = [0.0; 2];
        let loss = softmax_cross_entropy(&logits, 0, &mut d);
        assert!(loss.abs() < 1e-9);
        assert!(d.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn mse_loss_and_gradient() {
        let mut d = [0.0; 2];
        let loss = mse(&[1.0, 3.0], &[0.0, 1.0], &mut d);
        assert!((loss - 2.5).abs() < 1e-12);
        assert_eq!(d, [1.0, 2.0]);
    }

    #[test]
    fn bce_matches_naive_formula() {
        for &(z, t) in &[(0.3, 1.0), (-2.0, 0.0), (5.0, 1.0), (-5.0, 1.0)] {
            let (loss, grad) = bce_with_logit(z, t);
            let sigma = 1.0 / (1.0 + (-z).exp());
            let naive = -t * sigma.ln() - (1.0 - t) * (1.0 - sigma).ln();
            assert!((loss - naive).abs() < 1e-9, "z={z} t={t}");
            assert!((grad - (sigma - t)).abs() < 1e-12);
        }
    }

    #[test]
    fn bce_stable_at_extreme_logits() {
        let (loss, grad) = bce_with_logit(500.0, 0.0);
        assert!((loss - 500.0).abs() < 1e-9);
        assert!((grad - 1.0).abs() < 1e-9);
        let (loss2, _) = bce_with_logit(-500.0, 0.0);
        assert!(loss2.abs() < 1e-9);
    }

    #[test]
    fn gaussian_nll_gradients_match_fd() {
        let (mu, ls, y) = (0.7, -0.3, 1.5);
        let (_, dmu, dls) = gaussian_nll(mu, ls, y);
        let num_mu = finite_diff(|m| gaussian_nll(m, ls, y).0, mu);
        let num_ls = finite_diff(|l| gaussian_nll(mu, l, y).0, ls);
        assert!((dmu - num_mu).abs() < 1e-6);
        assert!((dls - num_ls).abs() < 1e-6);
    }

    #[test]
    fn gaussian_nll_minimized_at_truth() {
        // at μ = y, the μ-gradient vanishes and lnσ-gradient pushes σ down
        let (_, dmu, dls) = gaussian_nll(2.0, 0.0, 2.0);
        assert_eq!(dmu, 0.0);
        assert_eq!(dls, 1.0);
    }
}
