//! Small ReLU MLPs.
//!
//! The DP-VAE and PATE-GAN baselines and the MLP classifier in the
//! evaluation stack all need a generic feed-forward network. Hidden layers
//! use ReLU; the output layer is linear (callers attach the loss).

use rand::Rng;

use crate::layers::Linear;
use crate::param::ParamBlock;
use crate::scratch::Scratch;

/// A feed-forward network `linear → relu → … → linear`.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// Forward activations cached for backward.
#[derive(Debug, Clone, Default)]
pub struct MlpCache {
    /// `acts[0]` is the input; `acts[i]` the post-activation output of
    /// layer `i−1` (post-ReLU for hidden layers, raw for the last).
    acts: Vec<Vec<f64>>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[8, 16, 16, 4]` for
    /// an 8-input, 4-output network with two hidden layers of 16.
    pub fn new<R: Rng + ?Sized>(widths: &[usize], rng: &mut R) -> Mlp {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Input width.
    pub fn n_in(&self) -> usize {
        self.layers[0].n_in()
    }

    /// Output width.
    pub fn n_out(&self) -> usize {
        self.layers.last().unwrap().n_out()
    }

    /// Runs the network, filling `cache` for a later [`Mlp::backward`].
    /// Returns the output activation.
    ///
    /// Reusing the same `cache` across calls also reuses its activation
    /// buffers, so steady-state forward passes only allocate the returned
    /// output vector.
    pub fn forward(&self, x: &[f64], cache: &mut MlpCache) -> Vec<f64> {
        let n = self.layers.len();
        cache.acts.resize_with(n + 1, Vec::new);
        cache.acts[0].clear();
        cache.acts[0].extend_from_slice(x);
        let last = n - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let (prev, rest) = cache.acts.split_at_mut(i + 1);
            let out = &mut rest[0];
            out.clear();
            out.resize(layer.n_out(), 0.0);
            layer.forward(&prev[i], out);
            if i != last {
                // ReLU in place: the cache stores the post-activation value
                for v in out.iter_mut() {
                    *v = v.max(0.0);
                }
            }
        }
        cache.acts[n].clone()
    }

    /// Inference-only forward (no cache retained).
    pub fn infer(&self, x: &[f64]) -> Vec<f64> {
        let mut cache = MlpCache::default();
        self.forward(x, &mut cache)
    }

    /// Backpropagates `dout` (gradient at the network output), accumulating
    /// parameter gradients, and returns the gradient at the input.
    pub fn backward(&mut self, cache: &MlpCache, dout: &[f64]) -> Vec<f64> {
        let mut scratch = Scratch::new();
        self.backward_pooled(cache, dout, &mut scratch)
    }

    /// [`Mlp::backward`] with all intermediate gradient buffers drawn from
    /// `scratch`; the returned input gradient can be retired back into the
    /// pool by the caller.
    pub fn backward_pooled(
        &mut self,
        cache: &MlpCache,
        dout: &[f64],
        scratch: &mut Scratch,
    ) -> Vec<f64> {
        assert_eq!(
            cache.acts.len(),
            self.layers.len() + 1,
            "cache does not match forward"
        );
        let mut grad = scratch.take(dout.len());
        grad.copy_from_slice(dout);
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            // ReLU backward for hidden layers (the cached act is post-ReLU)
            if i != last {
                let act = &cache.acts[i + 1];
                for (g, &a) in grad.iter_mut().zip(act) {
                    *g = if a > 0.0 { *g } else { 0.0 };
                }
            }
            let mut dx = scratch.take(layer.n_in());
            layer.backward(&cache.acts[i], &grad, Some(&mut dx));
            scratch.put(grad);
            grad = dx;
        }
        grad
    }

    /// Applies `f` to every layer's parameter blocks.
    pub fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        for layer in &mut self.layers {
            layer.visit_blocks(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::finite_diff_check;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[3, 8, 2], &mut rng);
        assert_eq!(mlp.n_in(), 3);
        assert_eq!(mlp.n_out(), 2);
        assert_eq!(mlp.infer(&[0.1, 0.2, 0.3]).len(), 2);
    }

    #[test]
    fn forward_matches_infer() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&[4, 6, 3], &mut rng);
        let x = [0.5, -0.5, 0.2, 0.9];
        let mut cache = MlpCache::default();
        assert_eq!(mlp.forward(&x, &mut cache), mlp.infer(&x));
    }

    #[test]
    fn gradcheck_two_hidden_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = [0.3, -0.8, 0.5];
        let mut mlp = Mlp::new(&[3, 5, 4, 2], &mut rng);
        finite_diff_check(
            &mut |m: &mut Mlp| {
                let y = m.infer(&x);
                0.5 * y.iter().map(|v| v * v).sum::<f64>()
            },
            &mut |m: &mut Mlp| {
                let mut cache = MlpCache::default();
                let y = m.forward(&x, &mut cache);
                m.backward(&cache, &y);
            },
            &mut |m, f| m.visit_blocks(f),
            &mut mlp,
        );
    }

    #[test]
    fn input_gradient_matches_fd() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[2, 4, 1], &mut rng);
        let x = [0.7, -0.2];
        let mut cache = MlpCache::default();
        let y = mlp.forward(&x, &mut cache);
        let dx = mlp.backward(&cache, &[y[0]]);
        let h = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let lp = 0.5 * mlp.infer(&xp)[0].powi(2);
            let lm = 0.5 * mlp.infer(&xm)[0].powi(2);
            let num = (lp - lm) / (2.0 * h);
            assert!((num - dx[i]).abs() < 1e-5, "dx[{i}] {num} vs {}", dx[i]);
        }
    }

    #[test]
    fn learns_xor() {
        // the classic nonlinear sanity check: XOR is not linearly separable
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[2, 8, 1], &mut rng);
        let data = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..3000 {
            for (x, t) in data {
                let mut cache = MlpCache::default();
                let y = mlp.forward(&x, &mut cache);
                let (_, dlogit) = crate::loss::bce_with_logit(y[0], t);
                mlp.visit_blocks(&mut |b| b.zero_grad());
                mlp.backward(&cache, &[dlogit]);
                mlp.visit_blocks(&mut |b| {
                    for i in 0..b.len() {
                        b.values[i] -= 0.5 * b.grads[i];
                    }
                });
            }
        }
        for (x, t) in data {
            let p = 1.0 / (1.0 + (-mlp.infer(&x)[0]).exp());
            assert!((p - t).abs() < 0.2, "xor({x:?}) predicted {p}, want {t}");
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn rejects_degenerate_widths() {
        let mut rng = StdRng::seed_from_u64(0);
        Mlp::new(&[3], &mut rng);
    }
}
