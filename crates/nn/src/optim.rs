//! DP-SGD — Algorithm 2 lines 11–16 of the paper.
//!
//! Each iteration Poisson-samples a batch, computes the gradient of each
//! example separately, clips every per-example gradient to global L2 norm
//! `C`, sums the clipped gradients, perturbs the sum with `N(0, σ_d²C²I)`,
//! divides by the *expected* batch size `b`, and takes a gradient step.
//! Plain SGD is recovered with `noise_multiplier = 0` and `clip = ∞`, so
//! private and non-private training share one code path (the ε = ∞ runs of
//! Figure 6 use exactly that).

use rand::Rng;

use kamino_dp::standard_normal;

use crate::param::ParamBlock;

/// A model trainable one example at a time.
///
/// `forward_backward` must *accumulate* gradients for exactly one example
/// into the model's parameter blocks (the optimizer zeroes them first), and
/// return that example's loss.
pub trait PerExampleModel<E: ?Sized> {
    /// Computes loss and gradients for one example.
    fn forward_backward(&mut self, example: &E) -> f64;
    /// Enumerates all trainable parameter blocks in a stable order.
    fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock));
}

/// DP-SGD configuration (the relevant slice of the paper's Ψ).
#[derive(Debug, Clone, Copy)]
pub struct DpSgd {
    /// Per-example gradient clip threshold `C`.
    pub clip: f64,
    /// Noise multiplier `σ_d` (noise std is `σ_d·C`).
    pub noise_multiplier: f64,
    /// Learning rate `η`.
    pub lr: f64,
    /// Expected batch size `b` (the divisor; Poisson batches vary around it).
    pub expected_batch: f64,
}

/// Fixed per-example-gradient microbatch size. Both the serial and the
/// parallel path accumulate clipped gradients microbatch-by-microbatch and
/// merge the partial sums in microbatch order, so the floating-point
/// result is independent of thread count — parallel training is
/// bit-identical to serial training for a fixed seed.
pub const MICROBATCH: usize = 16;

/// Whether [`DpSgd::step_parallel`] would actually fan `batch_len`
/// examples out across threads (parallel feature on, more than one
/// microbatch, more than one worker available). Callers use this to skip
/// building worker prototypes when the serial fallback would run anyway.
pub fn microbatch_parallel_worthwhile(batch_len: usize) -> bool {
    #[cfg(feature = "parallel")]
    {
        batch_len > MICROBATCH && rayon::current_num_threads() > 1
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = batch_len;
        false
    }
}

/// Accumulates the clipped per-example gradient sums and total loss for
/// `batch` (one microbatch) into fresh buffers shaped like `sizes`.
///
/// This is the **fused** clip-and-accumulate kernel: after each example's
/// backward pass, one traversal computes the global L2 norm and a second
/// fused traversal scales, accumulates into `sums`, *and re-zeroes* the
/// gradient buffers for the next example — two passes over the gradients
/// instead of the reference's three (norm, scale-add, zero). The per-sum
/// arithmetic (`s += scale · g` in block/index order) is exactly that of
/// [`accumulate_clipped_reference`], so the result is bit-identical; the
/// parity is property-tested in `tests/proptest_kernels.rs` and pinned by
/// the `fused_step_matches_reference_step` test below.
fn accumulate_clipped<E, M>(
    model: &mut M,
    batch: &[E],
    clip: f64,
    sizes: &[usize],
) -> (Vec<Vec<f64>>, f64)
where
    M: PerExampleModel<E>,
{
    let mut sums: Vec<Vec<f64>> = sizes.iter().map(|&n| vec![0.0; n]).collect();
    let mut total_loss = 0.0;
    // The fused pass below leaves every gradient buffer zeroed after each
    // example, so clearing any caller-left state once up front preserves
    // the trait's "the optimizer zeroes them first" contract.
    model.visit_blocks(&mut |b| b.zero_grad());
    for example in batch {
        total_loss += model.forward_backward(example);
        // Global L2 norm across all blocks, then clip scale.
        let mut sq = 0.0;
        model.visit_blocks(&mut |b| sq += b.grad_sq_norm());
        let norm = sq.sqrt();
        let scale = if norm > clip { clip / norm } else { 1.0 };
        let mut idx = 0;
        model.visit_blocks(&mut |b| {
            for (s, g) in sums[idx].iter_mut().zip(b.grads.iter_mut()) {
                *s += scale * *g;
                *g = 0.0;
            }
            idx += 1;
        });
    }
    (sums, total_loss)
}

/// The unfused serial-reference twin of `accumulate_clipped`: zero the
/// gradients, backward, norm pass, then a separate scale-and-add pass —
/// three traversals per example. Kept public so parity tests and the
/// microbenchmarks can pin the fused kernel against it.
pub fn accumulate_clipped_reference<E, M>(
    model: &mut M,
    batch: &[E],
    clip: f64,
    sizes: &[usize],
) -> (Vec<Vec<f64>>, f64)
where
    M: PerExampleModel<E>,
{
    let mut sums: Vec<Vec<f64>> = sizes.iter().map(|&n| vec![0.0; n]).collect();
    let mut total_loss = 0.0;
    for example in batch {
        model.visit_blocks(&mut |b| b.zero_grad());
        total_loss += model.forward_backward(example);
        let mut sq = 0.0;
        model.visit_blocks(&mut |b| sq += b.grad_sq_norm());
        let norm = sq.sqrt();
        let scale = if norm > clip { clip / norm } else { 1.0 };
        let mut idx = 0;
        model.visit_blocks(&mut |b| {
            for (s, g) in sums[idx].iter_mut().zip(&b.grads) {
                *s += scale * g;
            }
            idx += 1;
        });
    }
    (sums, total_loss)
}

impl DpSgd {
    /// A non-private configuration (no clipping, no noise).
    pub fn non_private(lr: f64, expected_batch: f64) -> DpSgd {
        DpSgd {
            clip: f64::INFINITY,
            noise_multiplier: 0.0,
            lr,
            expected_batch,
        }
    }

    fn check(&self) {
        assert!(
            self.expected_batch > 0.0,
            "expected batch size must be positive"
        );
        assert!(self.clip > 0.0, "clip threshold must be positive");
    }

    /// Block shapes of `model` (stable order, per `visit_blocks`).
    fn block_sizes<E, M: PerExampleModel<E>>(&self, model: &mut M) -> Vec<usize> {
        let mut sizes = Vec::new();
        model.visit_blocks(&mut |b| sizes.push(b.len()));
        sizes
    }

    /// Noises the merged gradient sum (σ_d·C per coordinate), averages by
    /// the expected batch size, and applies the step to `model`.
    fn apply<E, M, R>(&self, model: &mut M, sums: &[Vec<f64>], rng: &mut R)
    where
        M: PerExampleModel<E>,
        R: Rng + ?Sized,
    {
        let noise_std = self.noise_multiplier
            * if self.clip.is_finite() {
                self.clip
            } else {
                0.0
            };
        let mut idx = 0;
        model.visit_blocks(&mut |b| {
            for (i, s) in sums[idx].iter().enumerate() {
                let noisy = s + if noise_std > 0.0 {
                    noise_std * standard_normal(rng)
                } else {
                    0.0
                };
                b.values[i] -= self.lr * noisy / self.expected_batch;
            }
            idx += 1;
        });
    }

    /// Runs one optimizer step on `batch`, returning the mean example loss
    /// (or 0.0 for an empty Poisson batch — the step still applies noise,
    /// as the mechanism requires). Serial; see [`DpSgd::step_parallel`]
    /// for the microbatch-parallel form (both produce identical updates).
    pub fn step<E, M, R>(&self, model: &mut M, batch: &[E], rng: &mut R) -> f64
    where
        M: PerExampleModel<E>,
        R: Rng + ?Sized,
    {
        self.check();
        let sizes = self.block_sizes::<E, _>(model);
        let mut sums: Vec<Vec<f64>> = sizes.iter().map(|&n| vec![0.0; n]).collect();
        let mut total_loss = 0.0;
        for micro in batch.chunks(MICROBATCH) {
            let (part, loss) = accumulate_clipped(model, micro, self.clip, &sizes);
            for (s, p) in sums.iter_mut().zip(&part) {
                for (a, b) in s.iter_mut().zip(p) {
                    *a += b;
                }
            }
            total_loss += loss;
        }
        self.apply::<E, _, _>(model, &sums, rng);
        if batch.is_empty() {
            0.0
        } else {
            total_loss / batch.len() as f64
        }
    }

    /// [`DpSgd::step`] built on [`accumulate_clipped_reference`] — the
    /// unfused three-traversal kernel. Produces bit-identical parameters
    /// and loss to [`DpSgd::step`]; retained as the serial-reference twin
    /// for the parity suite and the `micro_substrates` fused-vs-reference
    /// pair.
    pub fn step_reference<E, M, R>(&self, model: &mut M, batch: &[E], rng: &mut R) -> f64
    where
        M: PerExampleModel<E>,
        R: Rng + ?Sized,
    {
        self.check();
        let sizes = self.block_sizes::<E, _>(model);
        let mut sums: Vec<Vec<f64>> = sizes.iter().map(|&n| vec![0.0; n]).collect();
        let mut total_loss = 0.0;
        for micro in batch.chunks(MICROBATCH) {
            let (part, loss) = accumulate_clipped_reference(model, micro, self.clip, &sizes);
            for (s, p) in sums.iter_mut().zip(&part) {
                for (a, b) in s.iter_mut().zip(p) {
                    *a += b;
                }
            }
            total_loss += loss;
        }
        self.apply::<E, _, _>(model, &sums, rng);
        if batch.is_empty() {
            0.0
        } else {
            total_loss / batch.len() as f64
        }
    }

    /// Microbatch-parallel DP-SGD step: per-example gradients are
    /// computed on up to `ceil(|batch| / MICROBATCH)` workers, each
    /// operating on a fresh model built by `make_worker` (a clone of the
    /// current parameters), and the clipped sums are merged in microbatch
    /// order before the (serial) noise-and-apply phase on `model`.
    ///
    /// Because the merge order is fixed by microbatch index — not thread
    /// schedule — and `rng` is only consumed in the apply phase, this
    /// produces **bit-identical** parameters to [`DpSgd::step`] for any
    /// thread count. Requires the `parallel` feature; without it (or for
    /// small batches) it falls back to the serial step.
    pub fn step_parallel<E, M, W, F, R>(
        &self,
        model: &mut M,
        batch: &[E],
        rng: &mut R,
        make_worker: F,
    ) -> f64
    where
        M: PerExampleModel<E>,
        W: PerExampleModel<E>,
        E: Sync,
        F: Fn() -> W + Sync,
        R: Rng + ?Sized,
    {
        #[cfg(feature = "parallel")]
        {
            self.check();
            if batch.len() > MICROBATCH && rayon::current_num_threads() > 1 {
                let sizes = self.block_sizes::<E, _>(model);
                let n_micro = batch.len().div_ceil(MICROBATCH);
                let parts = rayon::par_map_indexed(n_micro, |mi| {
                    let start = mi * MICROBATCH;
                    let end = (start + MICROBATCH).min(batch.len());
                    let mut worker = make_worker();
                    accumulate_clipped(&mut worker, &batch[start..end], self.clip, &sizes)
                });
                let mut sums: Vec<Vec<f64>> = sizes.iter().map(|&n| vec![0.0; n]).collect();
                let mut total_loss = 0.0;
                for (part, loss) in &parts {
                    for (s, p) in sums.iter_mut().zip(part) {
                        for (a, b) in s.iter_mut().zip(p) {
                            *a += b;
                        }
                    }
                    total_loss += loss;
                }
                self.apply::<E, _, _>(model, &sums, rng);
                return total_loss / batch.len() as f64;
            }
        }
        let _ = &make_worker;
        self.step(model, batch, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 1-parameter quadratic model: loss(x) = (w − x)²/2, grad = w − x.
    struct Quad {
        w: ParamBlock,
    }

    impl PerExampleModel<f64> for Quad {
        fn forward_backward(&mut self, x: &f64) -> f64 {
            let d = self.w.values[0] - x;
            self.w.grads[0] += d;
            0.5 * d * d
        }
        fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
            f(&mut self.w);
        }
    }

    #[test]
    fn non_private_sgd_converges_to_mean() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Quad {
            w: ParamBlock::zeros(1),
        };
        let data = [1.0, 2.0, 3.0, 4.0];
        let cfg = DpSgd::non_private(0.2, data.len() as f64);
        for _ in 0..200 {
            cfg.step(&mut model, &data, &mut rng);
        }
        assert!((model.w.values[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn clipping_bounds_per_example_influence() {
        // One outlier example (x = 1000) must move w by at most
        // lr·C/b per step when clipping is on.
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = Quad {
            w: ParamBlock::zeros(1),
        };
        let cfg = DpSgd {
            clip: 1.0,
            noise_multiplier: 0.0,
            lr: 0.5,
            expected_batch: 1.0,
        };
        cfg.step(&mut model, &[1000.0], &mut rng);
        // unclipped gradient would be −1000; clipped is −1
        assert!((model.w.values[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fused_accumulate_matches_reference_twin() {
        // direct twin pairing: the fused two-pass accumulate must agree
        // bit-for-bit with the three-pass reference on the same batch
        let data = [1.0, -3.0, 250.0, 0.25];
        let mut fused_model = Quad {
            w: ParamBlock::zeros(1),
        };
        let mut ref_model = Quad {
            w: ParamBlock::zeros(1),
        };
        let sizes = vec![1usize];
        let (fused, fused_loss) = accumulate_clipped(&mut fused_model, &data, 1.0, &sizes);
        let (reference, ref_loss) =
            accumulate_clipped_reference(&mut ref_model, &data, 1.0, &sizes);
        assert_eq!(fused, reference);
        assert_eq!(fused_loss.to_bits(), ref_loss.to_bits());
    }

    #[test]
    fn clipping_is_global_across_blocks() {
        struct TwoBlock {
            a: ParamBlock,
            b: ParamBlock,
        }
        impl PerExampleModel<()> for TwoBlock {
            fn forward_backward(&mut self, _: &()) -> f64 {
                self.a.grads[0] += 3.0;
                self.b.grads[0] += 4.0;
                0.0
            }
            fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
                f(&mut self.a);
                f(&mut self.b);
            }
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = TwoBlock {
            a: ParamBlock::zeros(1),
            b: ParamBlock::zeros(1),
        };
        // global norm is 5; clip to 1 ⇒ per-block grads scale by 1/5
        let cfg = DpSgd {
            clip: 1.0,
            noise_multiplier: 0.0,
            lr: 1.0,
            expected_batch: 1.0,
        };
        cfg.step(&mut model, &[()], &mut rng);
        assert!((model.a.values[0] + 0.6).abs() < 1e-12);
        assert!((model.b.values[0] + 0.8).abs() < 1e-12);
    }

    #[test]
    fn noise_perturbs_empty_batches_too() {
        // the Gaussian mechanism must fire even when the Poisson batch is
        // empty, otherwise the release leaks the batch size
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Quad {
            w: ParamBlock::zeros(1),
        };
        let cfg = DpSgd {
            clip: 1.0,
            noise_multiplier: 1.0,
            lr: 1.0,
            expected_batch: 4.0,
        };
        let loss = cfg.step::<f64, _, _>(&mut model, &[], &mut rng);
        assert_eq!(loss, 0.0);
        assert_ne!(
            model.w.values[0], 0.0,
            "noise must be applied to empty batches"
        );
    }

    #[test]
    fn noise_magnitude_scales_with_multiplier() {
        let trials = 2000;
        let spread = |mult: f64, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = DpSgd {
                clip: 1.0,
                noise_multiplier: mult,
                lr: 1.0,
                expected_batch: 1.0,
            };
            let mut acc = 0.0;
            for _ in 0..trials {
                let mut model = Quad {
                    w: ParamBlock::zeros(1),
                };
                cfg.step::<f64, _, _>(&mut model, &[], &mut rng);
                acc += model.w.values[0] * model.w.values[0];
            }
            (acc / trials as f64).sqrt()
        };
        let s1 = spread(1.0, 7);
        let s3 = spread(3.0, 7);
        assert!((s3 / s1 - 3.0).abs() < 0.3, "noise ratio {}", s3 / s1);
    }

    #[test]
    fn private_training_still_converges_roughly() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = Quad {
            w: ParamBlock::zeros(1),
        };
        let data = [2.0, 3.0];
        let cfg = DpSgd {
            clip: 5.0,
            noise_multiplier: 0.1,
            lr: 0.1,
            expected_batch: 2.0,
        };
        for _ in 0..500 {
            cfg.step(&mut model, &data, &mut rng);
        }
        assert!(
            (model.w.values[0] - 2.5).abs() < 0.5,
            "w = {}",
            model.w.values[0]
        );
    }

    #[test]
    fn parallel_step_is_bitwise_identical_to_serial() {
        // 40 examples → 3 microbatches; the parallel path must reproduce
        // the serial parameters exactly (fixed-order merge), including
        // when noise is on (rng draws happen in the apply phase only).
        let data: Vec<f64> = (0..40).map(|i| (i % 7) as f64 - 3.0).collect();
        for noise in [0.0, 0.7] {
            let cfg = DpSgd {
                clip: 1.0,
                noise_multiplier: noise,
                lr: 0.1,
                expected_batch: 32.0,
            };
            let mut serial = Quad {
                w: ParamBlock::zeros(1),
            };
            let mut rng_s = StdRng::seed_from_u64(11);
            let mut parallel = Quad {
                w: ParamBlock::zeros(1),
            };
            let mut rng_p = StdRng::seed_from_u64(11);
            let mut losses = (0.0, 0.0);
            for _ in 0..20 {
                losses.0 = cfg.step(&mut serial, &data, &mut rng_s);
                let proto = parallel.w.clone();
                losses.1 = cfg.step_parallel(&mut parallel, &data, &mut rng_p, || Quad {
                    w: proto.clone(),
                });
            }
            assert_eq!(serial.w.values[0].to_bits(), parallel.w.values[0].to_bits());
            assert_eq!(losses.0, losses.1);
        }
    }

    #[test]
    fn fused_step_matches_reference_step() {
        // The fused clip-accumulate (norm pass + scale-add-rezero pass)
        // must reproduce the unfused three-pass reference bit for bit,
        // including with noise on (identical rng consumption).
        let data: Vec<f64> = (0..40).map(|i| (i % 9) as f64 - 4.0).collect();
        for noise in [0.0, 1.1] {
            let cfg = DpSgd {
                clip: 1.0,
                noise_multiplier: noise,
                lr: 0.1,
                expected_batch: 32.0,
            };
            let mut fused = Quad {
                w: ParamBlock::zeros(1),
            };
            let mut rng_f = StdRng::seed_from_u64(17);
            let mut reference = Quad {
                w: ParamBlock::zeros(1),
            };
            let mut rng_r = StdRng::seed_from_u64(17);
            for _ in 0..20 {
                let lf = cfg.step(&mut fused, &data, &mut rng_f);
                let lr = cfg.step_reference(&mut reference, &data, &mut rng_r);
                assert_eq!(lf.to_bits(), lr.to_bits());
            }
            assert_eq!(fused.w.values[0].to_bits(), reference.w.values[0].to_bits());
        }
    }

    #[test]
    fn fused_step_clears_stale_gradients() {
        // forward_backward accumulates, so any caller-left gradient state
        // must be cleared before the first example — the fused kernel does
        // it once at entry instead of per example.
        let mut rng = StdRng::seed_from_u64(23);
        let mut model = Quad {
            w: ParamBlock::zeros(1),
        };
        model.w.grads[0] = 1e9; // stale garbage
        let cfg = DpSgd::non_private(0.5, 1.0);
        cfg.step(&mut model, &[0.0], &mut rng);
        assert_eq!(model.w.values[0], 0.0, "stale gradient leaked into step");
    }

    #[test]
    fn reports_mean_loss() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = Quad {
            w: ParamBlock::zeros(1),
        };
        let cfg = DpSgd::non_private(0.0, 2.0); // lr 0: loss unchanged
        let loss = cfg.step(&mut model, &[1.0, 3.0], &mut rng);
        assert!((loss - (0.5 + 4.5) / 2.0).abs() < 1e-12);
    }
}
