//! Parameter blocks: flat value/gradient buffers.

use rand::Rng;

/// One trainable tensor, stored flat, with a gradient buffer of the same
/// shape. Layers own their blocks; models expose them to the optimizer via
/// [`crate::optim::PerExampleModel::visit_blocks`].
#[derive(Debug, Clone)]
pub struct ParamBlock {
    /// Parameter values.
    pub values: Vec<f64>,
    /// Gradient accumulator (per-example during DP-SGD).
    pub grads: Vec<f64>,
}

impl ParamBlock {
    /// A zero-initialized block of `len` parameters.
    pub fn zeros(len: usize) -> ParamBlock {
        ParamBlock {
            values: vec![0.0; len],
            grads: vec![0.0; len],
        }
    }

    /// A block initialized uniformly on `[-scale, scale]`.
    pub fn uniform<R: Rng + ?Sized>(len: usize, scale: f64, rng: &mut R) -> ParamBlock {
        let values = (0..len)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        ParamBlock {
            values,
            grads: vec![0.0; len],
        }
    }

    /// Number of parameters.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the block is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Zeroes the gradient buffer.
    #[inline]
    pub fn zero_grad(&mut self) {
        self.grads.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Sum of squared gradients (for global-norm clipping).
    #[inline]
    pub fn grad_sq_norm(&self) -> f64 {
        self.grads.iter().map(|g| g * g).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_shape() {
        let b = ParamBlock::zeros(5);
        assert_eq!(b.len(), 5);
        assert!(b.values.iter().all(|&v| v == 0.0));
        assert!(!b.is_empty());
    }

    #[test]
    fn uniform_init_within_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = ParamBlock::uniform(1000, 0.2, &mut rng);
        assert!(b.values.iter().all(|&v| v.abs() <= 0.2));
        // not degenerate
        let distinct = b.values.iter().filter(|&&v| v != b.values[0]).count();
        assert!(distinct > 900);
    }

    #[test]
    fn zero_grad_and_norm() {
        let mut b = ParamBlock::zeros(3);
        b.grads = vec![3.0, 4.0, 0.0];
        assert_eq!(b.grad_sq_norm(), 25.0);
        b.zero_grad();
        assert_eq!(b.grad_sq_norm(), 0.0);
    }
}
