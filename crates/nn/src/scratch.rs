//! A tiny buffer pool for the per-example hot loops.
//!
//! Every forward/backward pass through the sub-model stack used to
//! allocate a handful of short `Vec<f64>`s (encoder hidden layers, head
//! logits, attention dot products, MLP intermediates). At DP-SGD batch
//! sizes that is thousands of allocations per optimizer step. [`Scratch`]
//! recycles those vectors: `take(len)` hands out a zeroed buffer (reusing
//! a retired one when available) and `put` retires it again.
//!
//! The pool is purely an allocation cache — buffers are re-zeroed on
//! `take`, no numeric state leaks between uses, and nothing about the
//! pool touches RNG streams or summation order, so pooled code paths are
//! bit-identical to their allocating twins (see the determinism notes in
//! ARCHITECTURE.md).

/// A recycling pool of `Vec<f64>` buffers.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<f64>>,
}

impl Scratch {
    /// An empty pool.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// A zeroed buffer of exactly `len` elements, reusing a retired
    /// buffer's allocation when one is available.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        match self.pool.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => vec![0.0; len],
        }
    }

    /// Retires a buffer back into the pool for later reuse.
    pub fn put(&mut self, v: Vec<f64>) {
        self.pool.push(v);
    }

    /// Number of retired buffers currently pooled (for tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_and_zeroes() {
        let mut s = Scratch::new();
        let mut a = s.take(4);
        a[0] = 7.0;
        let cap = a.capacity();
        s.put(a);
        assert_eq!(s.pooled(), 1);
        let b = s.take(3);
        assert_eq!(b, vec![0.0; 3]);
        assert_eq!(b.capacity(), cap, "allocation was not reused");
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn take_grows_when_needed() {
        let mut s = Scratch::new();
        s.put(Vec::new());
        let b = s.take(8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&x| x == 0.0));
    }
}
