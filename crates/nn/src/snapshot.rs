//! Weight-tensor snapshot codec: every layer the Kamino model is built
//! from ([`Linear`], [`Embedding`], [`ContinuousEncoder`], [`Attention`],
//! the two heads) round-trips through the shared wire rules. Only
//! parameter *values* travel — gradient buffers are transient optimizer
//! state and come back zeroed, exactly like a freshly built layer between
//! steps.

use kamino_data::wire::{ByteReader, ByteWriter, WireError};

use crate::attention::Attention;
use crate::heads::{CategoricalHead, GaussianHead};
use crate::layers::{ContinuousEncoder, Embedding, Linear};

/// Encodes a dense layer (shape + weight and bias tensors).
pub fn encode_linear(l: &Linear, w: &mut ByteWriter) {
    w.put_usize(l.n_in());
    w.put_usize(l.n_out());
    w.put_f64s(&l.w.values);
    w.put_f64s(&l.b.values);
}

/// Decodes a dense layer written by [`encode_linear`].
pub fn decode_linear(r: &mut ByteReader<'_>) -> Result<Linear, WireError> {
    let n_in = r.usize()?;
    let n_out = r.usize()?;
    let wv = r.f64s()?;
    let bv = r.f64s()?;
    if wv.len() != n_in * n_out || bv.len() != n_out {
        return Err(WireError::Malformed(format!(
            "linear tensor shape mismatch: {}x{} with |w|={} |b|={}",
            n_out,
            n_in,
            wv.len(),
            bv.len()
        )));
    }
    Ok(Linear::from_values(n_in, n_out, wv, bv))
}

/// Encodes an embedding table.
pub fn encode_embedding(e: &Embedding, w: &mut ByteWriter) {
    w.put_usize(e.card());
    w.put_usize(e.dim());
    w.put_f64s(&e.table.values);
}

/// Decodes an embedding written by [`encode_embedding`].
pub fn decode_embedding(r: &mut ByteReader<'_>) -> Result<Embedding, WireError> {
    let card = r.usize()?;
    let dim = r.usize()?;
    let table = r.f64s()?;
    if table.len() != card * dim {
        return Err(WireError::Malformed(format!(
            "embedding table shape mismatch: {card}x{dim} with {} values",
            table.len()
        )));
    }
    Ok(Embedding::from_values(card, dim, table))
}

/// Encodes a continuous-scalar encoder (`z = B·ω(A·x + c) + d`).
pub fn encode_encoder(e: &ContinuousEncoder, w: &mut ByteWriter) {
    w.put_usize(e.dim());
    w.put_f64s(&e.a.values);
    w.put_f64s(&e.c.values);
    w.put_f64s(&e.b.values);
    w.put_f64s(&e.d.values);
}

/// Decodes an encoder written by [`encode_encoder`].
pub fn decode_encoder(r: &mut ByteReader<'_>) -> Result<ContinuousEncoder, WireError> {
    let dim = r.usize()?;
    let a = r.f64s()?;
    let c = r.f64s()?;
    let b = r.f64s()?;
    let d = r.f64s()?;
    if a.len() != dim || c.len() != dim || b.len() != dim * dim || d.len() != dim {
        return Err(WireError::Malformed(format!(
            "encoder tensor shape mismatch at dim {dim}"
        )));
    }
    Ok(ContinuousEncoder::from_values(dim, a, c, b, d))
}

/// Encodes an attention combiner (scores + width).
pub fn encode_attention(a: &Attention, w: &mut ByteWriter) {
    w.put_usize(a.dim());
    w.put_f64s(&a.scores.values);
}

/// Decodes attention written by [`encode_attention`].
pub fn decode_attention(r: &mut ByteReader<'_>) -> Result<Attention, WireError> {
    let dim = r.usize()?;
    let scores = r.f64s()?;
    Ok(Attention::from_values(dim, scores))
}

/// Encodes a categorical head (its logit layer).
pub fn encode_cat_head(h: &CategoricalHead, w: &mut ByteWriter) {
    encode_linear(h.linear(), w);
}

/// Decodes a categorical head written by [`encode_cat_head`].
pub fn decode_cat_head(r: &mut ByteReader<'_>) -> Result<CategoricalHead, WireError> {
    Ok(CategoricalHead::from_linear(decode_linear(r)?))
}

/// Encodes a Gaussian head (its (μ, ln σ) layer).
pub fn encode_gauss_head(h: &GaussianHead, w: &mut ByteWriter) {
    encode_linear(h.linear(), w);
}

/// Decodes a Gaussian head written by [`encode_gauss_head`].
pub fn decode_gauss_head(r: &mut ByteReader<'_>) -> Result<GaussianHead, WireError> {
    let linear = decode_linear(r)?;
    if linear.n_out() != 2 {
        return Err(WireError::Malformed(format!(
            "Gaussian head must have 2 outputs, got {}",
            linear.n_out()
        )));
    }
    Ok(GaussianHead::from_linear(linear))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_roundtrip_preserves_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(3, 4, &mut rng);
        let mut w = ByteWriter::new();
        encode_linear(&l, &mut w);
        let bytes = w.into_bytes();
        let got = decode_linear(&mut ByteReader::new(&bytes)).unwrap();
        let x = [0.5, -1.0, 2.0];
        let (mut y1, mut y2) = ([0.0; 4], [0.0; 4]);
        l.forward(&x, &mut y1);
        got.forward(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn embedding_and_encoder_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = Embedding::new(5, 4, &mut rng);
        let enc = ContinuousEncoder::new(4, &mut rng);
        let mut w = ByteWriter::new();
        encode_embedding(&e, &mut w);
        encode_encoder(&enc, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let e2 = decode_embedding(&mut r).unwrap();
        let enc2 = decode_encoder(&mut r).unwrap();
        assert_eq!(e.forward(3), e2.forward(3));
        let (mut z1, mut z2) = (vec![0.0; 4], vec![0.0; 4]);
        enc.forward(0.7, &mut z1);
        enc2.forward(0.7, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn attention_and_heads_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = Attention::new(3, 4);
        a.scores.values = vec![0.2, -0.4, 0.9];
        let ch = CategoricalHead::new(4, 6, &mut rng);
        let gh = GaussianHead::new(4, &mut rng);
        let mut w = ByteWriter::new();
        encode_attention(&a, &mut w);
        encode_cat_head(&ch, &mut w);
        encode_gauss_head(&gh, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let a2 = decode_attention(&mut r).unwrap();
        let ch2 = decode_cat_head(&mut r).unwrap();
        let gh2 = decode_gauss_head(&mut r).unwrap();
        assert_eq!(a.weights(), a2.weights());
        let v = [0.1, 0.2, -0.3, 0.4];
        assert_eq!(ch.predict(&v), ch2.predict(&v));
        assert_eq!(gh.predict(&v), gh2.predict(&v));
        assert!(r.is_exhausted());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_usize(3); // n_in
        w.put_usize(4); // n_out
        w.put_f64s(&[0.0; 5]); // wrong: needs 12
        w.put_f64s(&[0.0; 4]);
        let bytes = w.into_bytes();
        assert!(decode_linear(&mut ByteReader::new(&bytes)).is_err());
    }
}
