//! Finite-difference gradient checking shared by layer/model tests.

use crate::param::ParamBlock;

/// Visitor that enumerates a model's parameter blocks in a stable order.
pub type BlockVisit<M> = dyn FnMut(&mut M, &mut dyn FnMut(&mut ParamBlock));

/// Verifies analytic gradients against central finite differences.
///
/// * `loss_fn` computes the scalar loss without touching gradients.
/// * `backward_fn` runs forward + backward, accumulating gradients into the
///   model's blocks (which this helper zeroes first).
/// * `visit` enumerates the model's parameter blocks in a stable order.
///
/// A strided subset of parameters per block is checked (up to ~24) to keep
/// tests fast while still covering every block.
pub fn finite_diff_check<M>(
    loss_fn: &mut dyn FnMut(&mut M) -> f64,
    backward_fn: &mut dyn FnMut(&mut M),
    visit: &mut BlockVisit<M>,
    model: &mut M,
) {
    visit(model, &mut |b| b.zero_grad());
    backward_fn(model);
    let mut grads: Vec<Vec<f64>> = Vec::new();
    visit(model, &mut |b| grads.push(b.grads.clone()));

    let h = 1e-5;
    for (bi, block_grads) in grads.iter().enumerate() {
        let n = block_grads.len();
        if n == 0 {
            continue;
        }
        let stride = (n / 24).max(1);
        for i in (0..n).step_by(stride) {
            let mut perturb = |m: &mut M, delta: f64| {
                let mut idx = 0;
                visit(m, &mut |b| {
                    if idx == bi {
                        b.values[i] += delta;
                    }
                    idx += 1;
                });
            };
            perturb(model, h);
            let l_plus = loss_fn(model);
            perturb(model, -2.0 * h);
            let l_minus = loss_fn(model);
            perturb(model, h); // restore
            let numeric = (l_plus - l_minus) / (2.0 * h);
            let analytic = block_grads[i];
            let tol = 1e-4 * (1.0 + numeric.abs().max(analytic.abs()));
            assert!(
                (numeric - analytic).abs() <= tol,
                "block {bi} param {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}
