//! Property-based parity tests for the optimized numeric kernels.
//!
//! The determinism contract (see ARCHITECTURE.md) requires the tiled
//! linalg kernels and the fused DP-SGD clip-accumulate to be **bit
//! identical** to their serial reference twins — not merely close: the
//! sampler's pinned-output regression tests hash exact `f64` bits. These
//! properties sweep random shapes and seeds, including exact `0.0` /
//! `-0.0` entries (the skip-guard edge cases), and compare via `to_bits`.

use kamino_nn::linalg::{
    matvec, matvec_ref, matvec_t_acc, matvec_t_acc_ref, outer_acc, outer_acc_ref,
};
use kamino_nn::{DpSgd, ParamBlock, PerExampleModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic fill from a seed, mixing in exact zeros of both signs so
/// the tiled kernels' `d != 0.0` skip guards are exercised.
fn fill(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match state % 7 {
                0 => 0.0,
                1 => -0.0,
                _ => (state % 1000) as f64 / 500.0 - 1.0,
            }
        })
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}[{i}]: {x:?} vs {y:?} differ in bits"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tiled forward matvec ≡ naive reference, to the bit, for any shape.
    #[test]
    fn tiled_matvec_matches_reference(
        n_out in 1usize..24,
        n_in in 1usize..24,
        seed in any::<u64>(),
    ) {
        let w = fill(seed, n_out * n_in);
        let x = fill(seed.wrapping_add(1), n_in);
        let mut y_t = vec![0.0; n_out];
        let mut y_r = vec![0.0; n_out];
        matvec(&w, &x, &mut y_t);
        matvec_ref(&w, &x, &mut y_r);
        assert_bits_eq(&y_t, &y_r, "matvec");
    }

    /// Tiled `x_grad += Wᵀ·dy` ≡ reference, starting from the same
    /// non-zero accumulator state (the += path matters, not just zeros).
    #[test]
    fn tiled_matvec_t_acc_matches_reference(
        n_out in 1usize..24,
        n_in in 1usize..24,
        seed in any::<u64>(),
    ) {
        let w = fill(seed, n_out * n_in);
        let dy = fill(seed.wrapping_add(2), n_out);
        let init = fill(seed.wrapping_add(3), n_in);
        let mut g_t = init.clone();
        let mut g_r = init;
        matvec_t_acc(&w, &dy, &mut g_t);
        matvec_t_acc_ref(&w, &dy, &mut g_r);
        assert_bits_eq(&g_t, &g_r, "matvec_t_acc");
    }

    /// Tiled `w_grad += dy·xᵀ` ≡ reference from shared accumulator state.
    #[test]
    fn tiled_outer_acc_matches_reference(
        n_out in 1usize..24,
        n_in in 1usize..24,
        seed in any::<u64>(),
    ) {
        let dy = fill(seed, n_out);
        let x = fill(seed.wrapping_add(4), n_in);
        let init = fill(seed.wrapping_add(5), n_out * n_in);
        let mut g_t = init.clone();
        let mut g_r = init;
        outer_acc(&mut g_t, &dy, &x);
        outer_acc_ref(&mut g_r, &dy, &x);
        assert_bits_eq(&g_t, &g_r, "outer_acc");
    }

    /// Fused clip-and-accumulate DP-SGD step ≡ the two-pass reference
    /// step: same losses and same final weights, to the bit, across
    /// random model sizes, batch sizes, clip bounds, and noise settings
    /// (both sides draw noise from identically seeded RNG streams).
    #[test]
    fn fused_dpsgd_step_matches_reference(
        dim in 1usize..6,
        batch_len in 1usize..16,
        clip_raw in 1u32..40,
        noisy in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let clip = clip_raw as f64 / 10.0;
        let batch: Vec<Vec<f64>> = (0..batch_len)
            .map(|i| fill(seed.wrapping_add(6 + i as u64), dim))
            .collect();
        let opt = DpSgd {
            clip,
            noise_multiplier: if noisy { 1.1 } else { 0.0 },
            lr: 0.1,
            expected_batch: batch_len as f64,
        };
        let mut fused = Ridge::new(dim, seed);
        let mut reference = fused.clone();
        for step in 0..4 {
            let mut r1 = StdRng::seed_from_u64(seed ^ step);
            let mut r2 = StdRng::seed_from_u64(seed ^ step);
            let l1 = opt.step(&mut fused, &batch, &mut r1);
            let l2 = opt.step_reference(&mut reference, &batch, &mut r2);
            prop_assert!(
                l1.to_bits() == l2.to_bits(),
                "loss diverged at step {step}: {l1:?} vs {l2:?}"
            );
            assert_bits_eq(&fused.w.values, &reference.w.values, "weights");
        }
    }
}

/// Tiny dense regression model: one matvec + outer-product gradient per
/// example — enough structure to make clipping and accumulation order
/// observable.
#[derive(Clone)]
struct Ridge {
    w: ParamBlock,
    dim: usize,
}

impl Ridge {
    fn new(dim: usize, seed: u64) -> Ridge {
        Ridge {
            w: ParamBlock {
                values: fill(seed, dim * dim),
                grads: vec![0.0; dim * dim],
            },
            dim,
        }
    }
}

impl PerExampleModel<Vec<f64>> for Ridge {
    fn forward_backward(&mut self, x: &Vec<f64>) -> f64 {
        let d = self.dim;
        let mut loss = 0.0;
        for r in 0..d {
            let row = r * d..(r + 1) * d;
            let y: f64 = self.w.values[row.clone()]
                .iter()
                .zip(x)
                .map(|(w, xc)| w * xc)
                .sum();
            let err = y - x[r];
            loss += 0.5 * err * err;
            for (g, &xc) in self.w.grads[row].iter_mut().zip(x) {
                *g += err * xc;
            }
        }
        loss
    }

    fn visit_blocks(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        f(&mut self.w);
    }
}
