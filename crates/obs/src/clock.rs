//! The workspace's single wall-clock choke point.
//!
//! Every non-test wall-clock read in the workspace goes through
//! [`now_nanos`] (enforced by `kamino-lint`'s `bare_instant` rule), so the
//! determinism boundary is auditable at exactly one site: time flows *out*
//! of here into spans, metrics and timing reports, and never into
//! snapshots, synthesis output, or committed artifacts.
//!
//! The clock is monotonic and process-anchored: readings are nanoseconds
//! since the first call in this process, which makes them directly usable
//! as chrome://tracing timestamps and keeps them meaningless (and
//! therefore harmless) outside the process that produced them.

use std::sync::OnceLock;
use std::time::Instant;

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the process anchor (the first call).
///
/// The first call returns 0 and pins the anchor; readings never decrease.
pub fn now_nanos() -> u64 {
    // kamino-lint: allow(wall_clock, bare_instant) -- the single choke point every other clock read routes through
    let anchor = *ANCHOR.get_or_init(Instant::now);
    u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// [`now_nanos`] scaled to whole seconds (per-second metric buckets).
pub fn now_secs() -> u64 {
    now_nanos() / 1_000_000_000
}

/// Convenience: seconds elapsed since an earlier [`now_nanos`] reading.
pub fn secs_since(start_nanos: u64) -> f64 {
    now_nanos().saturating_sub(start_nanos) as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_anchored() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
        assert!(secs_since(a) >= 0.0);
        assert!(now_secs() <= now_nanos());
    }
}
